"""Sharded workspace over live servers: the wire path of the circuit,
HELLO shard advertisements, and ``shards://`` connect routing."""

import pytest

import repro
from repro.net import NetSession, ReproServer
from repro.runtime.workspace import Workspace
from repro.service import ServiceConfig, TransactionService
from repro.shard import ShardError, ShardedWorkspace

SCHEMA = (
    "order(o, c) -> int(o), string(c).\n"
    "lineitem(o, l, q) -> int(o), int(l), int(q).\n"
)
PARTITION = {"order": 0, "lineitem": 0}
ORDERS = [(i, "c{}".format(i % 5)) for i in range(30)]
ITEMS = [(i % 30, i, (i * 7) % 23) for i in range(90)]


@pytest.fixture()
def fleet():
    services, servers = [], []
    for index in range(3):
        service = TransactionService(config=ServiceConfig(
            shard_index=index, shard_count=3))
        server = ReproServer(service)
        server.start()
        services.append(service)
        servers.append(server)
    yield servers
    for server, service in zip(servers, services):
        server.stop()
        service.close()


def endpoints_of(servers):
    return ["{}:{}".format(s.host, s.port) for s in servers]


def load_both(sharded, oracle):
    for target in (sharded, oracle):
        target.addblock(SCHEMA, name="schema")
        target.load("order", ORDERS)
        target.load("lineitem", ITEMS)


def test_net_circuit_matches_oracle(fleet):
    oracle = Workspace()
    with ShardedWorkspace.connect(
            endpoints_of(fleet), dict(PARTITION)) as sharded:
        load_both(sharded, oracle)
        sharded.addblock(
            "total[o] = s <- agg<<s = sum(q)>> lineitem(o, l, q).",
            name="totals")
        oracle.addblock(
            "total[o] = s <- agg<<s = sum(q)>> lineitem(o, l, q).",
            name="totals")
        src = "".join(
            '+order({0}, "cz"). +lineitem({0}, {1}, 4).'.format(
                1000 + i, 9000 + i) for i in range(5))
        result = sharded.exec(src)
        oracle.exec(src)
        assert result.committed
        for pred in ("order", "lineitem", "total"):
            assert sharded.rows(pred) == sorted(
                tuple(r) for r in oracle.rows(pred))
        q = "perCust[c] = s <- agg<<s = sum(q)>> order(o, c), lineitem(o, l, q)."
        assert sharded.query(q) == sorted(
            tuple(r) for r in oracle.query(q))


def test_hello_advertises_shard_identity(fleet):
    server = fleet[1]
    with NetSession(server.host, server.port) as session:
        assert session.server_shard == {"index": 1, "count": 3}
        assert session.status()["shard"] == {"index": 1, "count": 3}


def test_misordered_endpoints_rejected(fleet):
    shuffled = endpoints_of(fleet)
    shuffled = [shuffled[1], shuffled[0], shuffled[2]]
    with pytest.raises(ShardError):
        ShardedWorkspace.connect(shuffled, dict(PARTITION))


def test_connect_url_routing(fleet):
    url = "shards://" + ",".join(endpoints_of(fleet))
    with repro.connect(url, partition=dict(PARTITION)) as sharded:
        assert isinstance(sharded, ShardedWorkspace)
        sharded.addblock(SCHEMA, name="schema")
        sharded.load("order", ORDERS)
        assert len(sharded.rows("order")) == len(ORDERS)
        manifest = sharded.manifest()
        assert manifest["n_shards"] == 3
        assert manifest["partition"] == PARTITION


def test_status_reports_members(fleet):
    with ShardedWorkspace.connect(
            endpoints_of(fleet), dict(PARTITION)) as sharded:
        status = sharded.status()
        assert status["role"] == "coordinator"
        assert [m["shard"]["index"] for m in status["members"]] == [0, 1, 2]
