"""Co-partition classification (:func:`repro.engine.planner.classify_rules`)
and the partition-anchored order helper."""

from repro.engine.optimizer import anchored_orders
from repro.engine.planner import (
    KEY_BROKEN,
    KEY_KEYED,
    KEY_PARTIAL_AGG,
    KEY_REPLICATED,
    KEY_SCATTERED,
    classify_rules,
)
from repro.logiql.compiler import compile_program

PARTITION = {"order": 0, "lineitem": 0}


def classify(source, partition=PARTITION, seed_classes=None):
    block = compile_program(source)
    rules = list(block.rules) + list(block.reactive_rules)
    return rules, classify_rules(rules, partition, seed_classes=seed_classes)


class TestPlacements:
    def test_partition_spec_seeds_keyed(self):
        _, analysis = classify("big(o) <- order(o, c).")
        assert analysis.class_of("order").kind == KEY_KEYED
        assert analysis.class_of("order").col == 0
        assert analysis.class_of("lineitem").kind == KEY_KEYED

    def test_unknown_preds_default_replicated(self):
        _, analysis = classify("r(x) <- rate(n, x).")
        assert analysis.class_of("rate").kind == KEY_REPLICATED
        assert analysis.class_of("r").kind == KEY_REPLICATED
        assert analysis.copartitioned

    def test_copartitioned_join_keeps_key(self):
        rules, analysis = classify(
            "big(o, l) <- order(o, c), lineitem(o, l, q).")
        assert analysis.copartitioned
        cls = analysis.class_of("big")
        assert cls.kind == KEY_KEYED and cls.col == 0
        anchor = analysis.anchors[id(rules[0])]
        assert anchor.kind == "var"

    def test_projecting_key_away_scatters(self):
        _, analysis = classify("cust(c) <- order(o, c).")
        assert analysis.copartitioned
        assert analysis.class_of("cust").kind == KEY_SCATTERED

    def test_disagreeing_keys_break(self):
        # o and l partition different atoms: no single shard witnesses
        # the join
        _, analysis = classify(
            "bad(o, l) <- order(o, c), lineitem(l, o, q).")
        assert not analysis.copartitioned
        assert analysis.class_of("bad").kind == KEY_BROKEN

    def test_negation_over_keyed_with_anchor_ok(self):
        _, analysis = classify(
            "lonely(o, c) <- order(o, c), !lineitem(o, l, q).")
        assert analysis.copartitioned
        assert analysis.class_of("lonely").kind == KEY_KEYED

    def test_negation_over_scattered_breaks(self):
        _, analysis = classify(
            "cust(c) <- order(o, c).\n"
            "bad(o) <- order(o, c), !cust(c).")
        assert not analysis.copartitioned
        assert analysis.class_of("bad").kind == KEY_BROKEN

    def test_agg_keeping_key_stays_keyed(self):
        _, analysis = classify(
            "total[o] = s <- agg<<s = sum(q)>> lineitem(o, l, q).")
        assert analysis.copartitioned
        assert analysis.class_of("total").kind == KEY_KEYED

    def test_agg_losing_key_is_partial(self):
        _, analysis = classify(
            "grand[] = s <- agg<<s = sum(q)>> lineitem(o, l, q).")
        assert analysis.copartitioned
        cls = analysis.class_of("grand")
        assert cls.kind == KEY_PARTIAL_AGG and cls.fn == "sum"

    def test_partial_agg_consumed_downstream_breaks(self):
        _, analysis = classify(
            "grand[] = s <- agg<<s = sum(q)>> lineitem(o, l, q).\n"
            "report(s) <- grand[] = s.")
        assert not analysis.copartitioned
        assert analysis.class_of("report").kind == KEY_BROKEN

    def test_literal_key_anchor(self):
        rules, analysis = classify('vip(c) <- order(7, c).')
        assert analysis.copartitioned
        anchor = analysis.anchors[id(rules[0])]
        assert anchor.kind == "const" and anchor.consts == (7,)

    def test_seed_classes_carry_installed_views(self):
        _, installed = classify(
            "cust(c) <- order(o, c).")
        rules, analysis = classify(
            "bad(o) <- order(o, c), !cust(c).",
            seed_classes=installed.classes)
        assert not analysis.copartitioned

    def test_broken_reason_is_recorded(self):
        _, analysis = classify(
            "bad(o, l) <- order(o, c), lineitem(l, o, q).")
        assert analysis.broken
        rule, reason = analysis.broken[0]
        assert isinstance(reason, str) and reason

    def test_recursive_component_reaches_fixpoint(self):
        # transitive closure over a scattered edge projection: the
        # head must stabilize at a placement no worse than its body
        _, analysis = classify(
            "link(c, c2) <- order(o, c), order(o, c2).\n"
            "reach(c, c2) <- link(c, c2).\n"
            "reach(c, c2) <- reach(c, m), link(m, c2).")
        assert analysis.class_of("link").kind == KEY_SCATTERED
        assert analysis.class_of("reach").kind == KEY_SCATTERED


class TestAnchoredOrders:
    def test_anchor_leads_when_possible(self):
        block = compile_program(
            "big(o, l) <- order(o, c), lineitem(o, l, q).")
        orders = anchored_orders(block.rules[0], "o")
        assert orders and all(order[0] == "o" for order in orders)

    def test_falls_back_when_anchor_cannot_lead(self):
        block = compile_program(
            "w(o, y) <- order(o, c), y = o + 1.")
        # y is an assignment output; it can never lead
        orders = anchored_orders(block.rules[0], "y")
        assert orders  # unconstrained candidates returned instead
