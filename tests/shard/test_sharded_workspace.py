"""In-process sharded workspace: the equivalence property suite (every
sharded result bit-identical to a single-process oracle) plus the
cross-shard commit circuit's failure modes."""

import pytest

from repro.runtime.errors import ConflictError
from repro.runtime.workspace import Workspace
from repro.shard import ShardCommitError, ShardError, ShardedWorkspace

SCHEMA = (
    "order(o, c) -> int(o), string(c).\n"
    "lineitem(o, l, q) -> int(o), int(l), int(q).\n"
    "rate(n, v) -> string(n), int(v).\n"
)
PARTITION = {"order": 0, "lineitem": 0}
ORDERS = [(i, "c{}".format(i % 5)) for i in range(40)]
ITEMS = [(i % 40, i, (i * 7) % 23) for i in range(120)]
RATES = [("std", 3), ("bulk", 2)]


def make_pair(n_shards=3):
    sharded = ShardedWorkspace.local(n_shards, dict(PARTITION))
    oracle = Workspace()
    for target in (sharded, oracle):
        target.addblock(SCHEMA, name="schema")
        target.load("order", ORDERS)
        target.load("lineitem", ITEMS)
        target.load("rate", RATES)
    return sharded, oracle


def oracle_rows(oracle, pred):
    return sorted(tuple(r) for r in oracle.rows(pred))


def oracle_query(oracle, source, answer=None):
    return sorted(tuple(r) for r in oracle.query(source, answer))


class TestEquivalence:
    """Same verbs against the sharded fleet and a single process; every
    observable must match bit-for-bit (integer workloads, so aggregate
    recombination is exact)."""

    def test_partitioned_and_replicated_extensions(self):
        sharded, oracle = make_pair()
        with sharded:
            for pred in ("order", "lineitem", "rate"):
                assert sharded.rows(pred) == oracle_rows(oracle, pred)

    def test_fragments_are_disjoint_and_cover(self):
        sharded, oracle = make_pair()
        with sharded:
            fragments = [
                sorted(tuple(r)
                       for r in sharded._pool.backend(i).rows("order"))
                for i in range(3)
            ]
            merged = [row for frag in fragments for row in frag]
            assert len(merged) == len(set(merged))  # disjoint
            assert sorted(merged) == oracle_rows(oracle, "order")
            assert sum(1 for frag in fragments if frag) > 1  # actually split

    def test_copartitioned_view_addblock(self):
        sharded, oracle = make_pair()
        view = "total[o] = s <- agg<<s = sum(q)>> lineitem(o, l, q).\n"
        with sharded:
            sharded.addblock(view, name="totals")
            oracle.addblock(view, name="totals")
            assert sharded.rows("total") == oracle_rows(oracle, "total")

    def test_scatter_query_deduplicates(self):
        sharded, oracle = make_pair()
        q = "cust(c) <- order(o, c)."
        with sharded:
            assert sharded.query(q) == oracle_query(oracle, q)

    def test_copartitioned_join_query(self):
        sharded, oracle = make_pair()
        q = "big(o, c, q) <- order(o, c), lineitem(o, l, q), q > 15."
        with sharded:
            assert sharded.query(q) == oracle_query(oracle, q)

    @pytest.mark.parametrize("fn,exp", [
        ("sum", None), ("count", None), ("min", None), ("max", None)])
    def test_partial_aggregates_recombine(self, fn, exp):
        sharded, oracle = make_pair()
        q = "g[] = s <- agg<<s = {}(q)>> lineitem(o, l, q).".format(fn)
        with sharded:
            rows = sharded.query(q)
            assert rows == oracle_query(oracle, q)
            assert len(rows) == 1

    def test_grouped_partial_aggregate(self):
        sharded, oracle = make_pair()
        # group key is the *customer*, not the partition key: per-shard
        # partials per customer must fold across shards
        q = ("perCust[c] = s <- agg<<s = sum(q)>> "
             "order(o, c), lineitem(o, l, q).")
        with sharded:
            assert sharded.query(q) == oracle_query(oracle, q)

    def test_avg_falls_back_to_gather(self):
        sharded, oracle = make_pair()
        q = "a[] = v <- agg<<v = avg(q)>> lineitem(o, l, q)."
        with sharded:
            before = sharded.query(q)
            assert before == oracle_query(oracle, q)

    def test_broken_query_falls_back_to_gather(self):
        sharded, oracle = make_pair()
        # join keyed on different variables: not shard-local, must gather
        q = "pair(a, b) <- order(a, c), order(b, c), a < b."
        with sharded:
            assert sharded.query(q) == oracle_query(oracle, q)

    def test_literal_key_query_routes_to_owner(self):
        sharded, oracle = make_pair()
        q = "mine(l, q) <- lineitem(7, l, q)."
        with sharded:
            from repro import stats as _stats

            counters = {}
            with _stats.scope(counters):
                rows = sharded.query(q)
            assert rows == oracle_query(oracle, q)
            assert counters.get("shard.single_shard_queries") == 1

    def test_replicated_query_routes_to_one_shard(self):
        sharded, oracle = make_pair()
        q = "r(n, v) <- rate(n, v)."
        with sharded:
            assert sharded.query(q) == oracle_query(oracle, q)

    def test_load_with_removals(self):
        sharded, oracle = make_pair()
        gone = ORDERS[::7]
        with sharded:
            sharded.load("order", [], remove=gone)
            oracle.load("order", [], remove=gone)
            assert sharded.rows("order") == oracle_rows(oracle, "order")


class TestExecRouting:
    def test_literal_key_write_routes_single_shard(self):
        sharded, oracle = make_pair()
        src = '+order(1000, "c9"). +lineitem(1000, 777, 5).'
        with sharded:
            from repro import stats as _stats

            counters = {}
            with _stats.scope(counters):
                result = sharded.exec(src)
            # both writes hash key 1000: one shard, no circuit
            assert result.committed
            assert counters.get("shard.single_shard_execs") == 1
            assert not counters.get("shard.circuits")
            oracle.exec(src)
            assert sharded.rows("order") == oracle_rows(oracle, "order")
            assert sharded.rows("lineitem") == oracle_rows(
                oracle, "lineitem")

    def test_cross_shard_write_runs_circuit(self):
        sharded, oracle = make_pair()
        src = "".join(
            '+order({}, "cx").'.format(1000 + i) for i in range(6))
        with sharded:
            from repro import stats as _stats

            counters = {}
            with _stats.scope(counters):
                result = sharded.exec(src)
            assert result.committed and result.kind == "exec"
            assert counters.get("shard.circuits") == 1
            oracle.exec(src)
            assert sharded.rows("order") == oracle_rows(oracle, "order")

    def test_rule_driven_write_matches_oracle(self):
        sharded, oracle = make_pair()
        # derived write fanning out from partitioned reads into the
        # partitioned predicate itself (same key: stays owned)
        src = ('+lineitem(o, 9000, 1) <- order(o, c), c = "c1".')
        with sharded:
            sharded.exec(src)
            oracle.exec(src)
            assert sharded.rows("lineitem") == oracle_rows(
                oracle, "lineitem")

    def test_replicated_write_lands_everywhere(self):
        sharded, oracle = make_pair()
        src = '+rate("promo", 1).'
        with sharded:
            sharded.exec(src)
            oracle.exec(src)
            assert sharded.rows("rate") == oracle_rows(oracle, "rate")
            for index in range(3):
                assert ("promo", 1) in {
                    tuple(r)
                    for r in sharded._pool.backend(index).rows("rate")}

    def test_derived_replicated_write_deduplicates(self):
        sharded, oracle = make_pair()
        # every shard derives a subset of the same replicated write from
        # its fragment; the union must be one logical write per row
        src = '+rate(c, 1) <- order(o, c).'
        with sharded:
            sharded.exec(src)
            oracle.exec(src)
            assert sharded.rows("rate") == oracle_rows(oracle, "rate")


class TestRefusals:
    def test_broken_block_refused(self):
        sharded, _ = make_pair()
        with sharded:
            with pytest.raises(ShardError):
                sharded.addblock(
                    "bad(o, l) <- order(o, c), lineitem(l, o, q).")
            assert "bad" not in " ".join(sharded.blocks())

    def test_avg_partial_refused_at_addblock(self):
        sharded, _ = make_pair()
        with sharded:
            with pytest.raises(ShardError):
                sharded.addblock(
                    "a[] = v <- agg<<v = avg(q)>> lineitem(o, l, q).")

    def test_failed_addblock_rolls_back_everywhere(self):
        sharded, _ = make_pair()
        with sharded:
            # second block redefines total with a broken rule: refused
            # before any shard sees it
            sharded.addblock(
                "total[o] = s <- agg<<s = sum(q)>> lineitem(o, l, q).",
                name="totals")
            with pytest.raises(ShardError):
                sharded.addblock(
                    "report(s) <- total[o] = s, o > 100000.\n"
                    "bad(o, l) <- order(o, c), lineitem(l, o, q).")
            assert sharded.blocks() == ["schema", "totals"]
            # the refusal fired before any shard saw the block: no
            # shard derives report
            for index in range(3):
                assert sharded._pool.backend(index).query(
                    "_(s) <- report(s).") == []

    def test_closed_coordinator_rejects_verbs(self):
        sharded, _ = make_pair()
        sharded.close()
        with pytest.raises(Exception):
            sharded.rows("order")


class TestCircuitFailures:
    def test_commit_failure_compensates_committed_prefix(self):
        sharded, oracle = make_pair()
        with sharded:
            before = {
                pred: sharded.rows(pred)
                for pred in ("order", "lineitem", "rate")}
            victim = sharded._pool.backend(2)
            original = victim.shard_commit

            def boom(token, deltas, **kwargs):
                victim.shard_abort(token)
                raise RuntimeError("shard 2 crashed at commit")

            victim.shard_commit = boom
            src = "".join(
                '+order({}, "cx").'.format(1000 + i) for i in range(6))
            with pytest.raises(RuntimeError):
                sharded.exec(src)
            victim.shard_commit = original
            # the committed prefix was rolled back: nothing changed
            for pred, rows in before.items():
                assert sharded.rows(pred) == rows

    def test_conflict_retries_whole_circuit(self):
        sharded, oracle = make_pair()
        with sharded:
            victim = sharded._pool.backend(0)
            original = victim.shard_commit
            calls = {"n": 0}

            def flaky(token, deltas, **kwargs):
                calls["n"] += 1
                if calls["n"] == 1:
                    victim.shard_abort(token)
                    raise ConflictError("raced a local commit")
                return original(token, deltas, **kwargs)

            victim.shard_commit = flaky
            src = "".join(
                '+order({}, "cx").'.format(1000 + i) for i in range(6))
            result = sharded.exec(src)
            victim.shard_commit = original
            assert result.committed and result.attempts == 2
            oracle.exec(src)
            assert sharded.rows("order") == oracle_rows(oracle, "order")

    def test_compensation_failure_raises_commit_error(self):
        sharded, _ = make_pair()
        with sharded:
            src = "".join(
                '+order({}, "cx").'.format(1000 + i) for i in range(6))
            last = sharded._pool.backend(2)
            first = sharded._pool.backend(0)
            original_commit = last.shard_commit
            original_apply = first.shard_apply

            def boom(token, deltas, **kwargs):
                last.shard_abort(token)
                raise RuntimeError("late crash")

            def no_apply(deltas, **kwargs):
                raise RuntimeError("compensation also failed")

            last.shard_commit = boom
            first.shard_apply = no_apply
            try:
                with pytest.raises(ShardCommitError):
                    sharded.exec(src)
            finally:
                last.shard_commit = original_commit
                first.shard_apply = original_apply


class TestConnectRouting:
    def test_connect_requires_endpoints(self):
        import repro

        with pytest.raises(ValueError):
            repro.connect("shards://")
