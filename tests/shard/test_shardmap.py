"""Shard map placement: determinism, no-op re-fragmenting, manifests."""

import os
import subprocess
import sys

import pytest

from repro.ds.hashing import stable_hash
from repro.shard import ShardMap
from repro.storage.relation import Delta

KEYS = [
    "alpha", "beta", "gamma", "", "a-very-long-customer-key",
    0, 1, 17, -4, 2**40, 3.5, True, None, ("nested", 2),
]


class TestPlacement:
    def test_assignment_is_stable_hash_mod_n(self):
        smap = ShardMap(3, {"order": 0})
        for key in KEYS:
            assert smap.shard_of_key(key) == stable_hash(key) % 3
            assert smap.shard_of("order", (key, "x")) == stable_hash(key) % 3

    def test_replicated_pred_has_no_owner(self):
        smap = ShardMap(3, {"order": 0})
        assert smap.shard_of("rate", ("std", 3)) is None
        assert not smap.is_partitioned("rate")
        assert smap.key_col("order") == 0 and smap.key_col("rate") is None

    def test_narrow_row_rejected(self):
        smap = ShardMap(2, {"wide": 3})
        with pytest.raises(ValueError):
            smap.shard_of("wide", ("only", "three"))

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap(0)
        with pytest.raises(ValueError):
            ShardMap(2, {"p": -1})
        with pytest.raises(ValueError):
            ShardMap(2, endpoints=["only-one:1"])


class TestDeterminism:
    """The ISSUE's partitioner property: placement must agree across
    processes (``PYTHONHASHSEED`` notwithstanding) and re-sharding the
    same rows to the same N must be a bit-identical no-op."""

    @staticmethod
    def _assignments_in_subprocess(hashseed):
        script = (
            "from repro.ds.hashing import stable_hash\n"
            "keys = ['alpha', 'beta', 'gamma', '', "
            "'a-very-long-customer-key', 0, 1, 17, -4, 2**40, 3.5, "
            "True, None, ('nested', 2)]\n"
            "print([stable_hash(k) % 5 for k in keys])\n"
        )
        env = dict(os.environ, PYTHONHASHSEED=str(hashseed))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.getcwd(), "src"),
                        env.get("PYTHONPATH")) if p)
        out = subprocess.check_output(
            [sys.executable, "-c", script], env=env)
        return out.decode().strip()

    def test_assignment_identical_across_hashseeds(self):
        first = self._assignments_in_subprocess(1)
        second = self._assignments_in_subprocess(4242)
        assert first == second
        # and both agree with this process
        assert first == str([stable_hash(k) % 5 for k in KEYS])

    def test_refragmenting_is_a_noop(self):
        smap = ShardMap(4, {"order": 0})
        rows = [(k, i) for i, k in enumerate(KEYS)]
        once = smap.fragment("order", rows)
        again = smap.fragment("order", [tuple(r) for r in rows])
        assert once == again
        # fragments cover the input exactly, preserving input order
        assert sorted((r for frag in once for r in frag), key=repr) == sorted(
            rows, key=repr)
        # re-fragmenting a fragment keeps every row on its own shard
        for index, frag in enumerate(once):
            refrag = smap.fragment("order", frag)
            assert refrag[index] == frag
            assert all(not f for j, f in enumerate(refrag) if j != index)


class TestSplitDelta:
    def test_split_routes_rows_to_owners(self):
        # deltas hold ordered sets, so rows must be comparable: use a
        # homogeneous string key population
        keys = ["k-{}".format(i) for i in range(20)]
        smap = ShardMap(3, {"order": 0})
        delta = Delta.from_iters(
            [(k, "add") for k in keys], [(k, "gone") for k in keys[:4]])
        parts = smap.split_delta("order", delta)
        for index, part in parts.items():
            for row in part.added:
                assert smap.shard_of("order", row) == index
            for row in part.removed:
                assert smap.shard_of("order", row) == index
        assert sorted(r for p in parts.values() for r in p.added) == [
            (k, "add") for k in sorted(keys)]

    def test_empty_shards_omitted(self):
        smap = ShardMap(8, {"order": 0})
        parts = smap.split_delta("order", Delta.from_iters([("alpha", 1)]))
        assert len(parts) == 1


class TestManifest:
    def test_round_trip(self):
        smap = ShardMap(3, {"order": 0, "lineitem": 1},
                        endpoints=["a:1", "b:2", "c:3"])
        assert ShardMap.from_manifest(smap.manifest()) == smap

    def test_version_check(self):
        record = ShardMap(2, {"p": 0}).manifest()
        record["version"] = 99
        with pytest.raises(ValueError):
            ShardMap.from_manifest(record)
