"""MLN soft constraints and MAP inference (§2.3.3)."""

import math

import pytest

from repro import Workspace
from repro.prob import MLN
from repro.prob.mln import MLNError


def paper_workspace():
    ws = Workspace()
    ws.addblock(
        """
        Customer(c) -> .
        Item(p) -> .
        Promoted(p) -> Item(p).
        Similar(p, q) -> Item(p), Item(q).
        Friends(c, d) -> Customer(c), Customer(d).
        Purchase(c, p) -> Customer(c), Item(p).
        1.5 : Customer(c), Promoted(p) -> Purchase(c, p).
        0.5 : Customer(c), Promoted(q), Similar(p, q) -> !Purchase(c, p).
        1.0 : Purchase(d, p), Friends(c, d) -> Purchase(c, p).
        0.8 : !Purchase(d, p), Friends(c, d) -> !Purchase(c, p).
        """,
        name="mln",
    )
    ws.load("Customer", [("ann",), ("bob",)])
    ws.load("Item", [("tea",), ("coffee",)])
    ws.load("Promoted", [("tea",)])
    ws.load("Similar", [("coffee", "tea")])
    ws.load("Friends", [("bob", "ann")])
    return ws


class TestMAPInference:
    def test_promoted_items_purchased(self):
        assignment, _ = MLN(paper_workspace(), ["Purchase"]).map_inference()
        purchases = assignment["Purchase"]
        assert ("ann", "tea") in purchases
        assert ("bob", "tea") in purchases

    def test_similar_item_discouraged(self):
        assignment, _ = MLN(paper_workspace(), ["Purchase"]).map_inference()
        assert ("ann", "coffee") not in assignment["Purchase"]
        assert ("bob", "coffee") not in assignment["Purchase"]

    def test_map_maximizes_weight_exactly(self):
        """Brute-force over all worlds must agree with the MIP."""
        ws = paper_workspace()
        mln = MLN(ws, ["Purchase"])
        candidates = mln.candidate_atoms()["Purchase"]
        var_index = {"Purchase": {t: i for i, t in enumerate(candidates)}}
        clauses = mln.ground_clauses(var_index)

        def world_weight(world):
            total = 0.0
            for weight, literals in clauses:
                if literals is None:
                    total += weight
                    continue
                satisfied = any(
                    (index in world) == positive for index, positive in literals
                )
                if satisfied:
                    total += weight
            return total

        best = max(
            (world_weight({i for i in range(len(candidates)) if mask >> i & 1})
             for mask in range(1 << len(candidates))),
        )
        _, objective = mln.map_inference(atom_prior=0.0)
        assert abs(objective - best) < 1e-6

    def test_negative_weight_discourages(self):
        ws = Workspace()
        ws.addblock(
            """
            Item(p) -> .
            Pick(p) -> Item(p).
            -2.0 : Item(p) -> Pick(p).
            """,
            name="m",
        )
        ws.load("Item", [("x",)])
        assignment, _ = MLN(ws, ["Pick"]).map_inference()
        assert assignment["Pick"] == set()

    def test_evidence_folded_into_constants(self):
        ws = paper_workspace()
        mln = MLN(ws, ["Purchase"])
        candidates = mln.candidate_atoms()["Purchase"]
        var_index = {"Purchase": {t: i for i, t in enumerate(candidates)}}
        clauses = mln.ground_clauses(var_index)
        # groundings with non-promoted items on the LHS must have been
        # folded away (constant factors) or dropped, not kept symbolic
        for _, literals in clauses:
            if literals is None:
                continue
            assert all(isinstance(lit, tuple) for lit in literals)

    def test_no_soft_constraints_rejected(self):
        ws = Workspace()
        ws.addblock("Item(p) -> .", name="m")
        with pytest.raises(MLNError):
            MLN(ws, ["Item"])

    def test_tie_breaking_prior(self):
        ws = Workspace()
        ws.addblock(
            """
            Item(p) -> .
            Pick(p) -> Item(p).
            1.0 : Pick(p) -> Pick(p).
            """,
            name="m",
        )
        ws.load("Item", [("x",)])
        assignment, _ = MLN(ws, ["Pick"]).map_inference()
        # the tautology gives equal weight either way; the prior
        # breaks the tie toward the minimal world
        assert assignment["Pick"] == set()
