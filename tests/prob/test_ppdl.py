"""Probabilistic-programming Datalog: Flip rules, conditioning, inference."""

import pytest

from repro import Workspace
from repro.prob import PPDLProgram
from repro.prob.ppdl import PPDLError


def promotion_ws(n_customers=3, bought=None, prior=0.2, rates=(0.1, 0.8)):
    ws = Workspace()
    ws.addblock(
        """
        Item(p) -> .
        Customer(c) -> .
        Promotion[p] = b -> Item(p), int(b).
        BuyRate[p, b] = r -> Item(p), int(b), float(r).
        Buys[c, p] = b -> Customer(c), Item(p), int(b).
        Visited(c) -> Customer(c).
        Bought[c, p] = b -> Customer(c), Item(p), int(b).
        Promotion[p] = Flip[{prior}] <- .
        Buys[c, p] = Flip[r] <- BuyRate[p, b] = r, Promotion[p] = b,
            Customer(c).
        Visited(c), Bought[c, p] = b -> Buys[c, p] = b.
        """.format(prior=prior),
        name="ppdl",
    )
    customers = [("c{}".format(i),) for i in range(n_customers)]
    ws.load("Item", [("pop",)])
    ws.load("Customer", customers)
    ws.load("BuyRate", [("pop", 0, rates[0]), ("pop", 1, rates[1])])
    if bought is not None:
        ws.load("Visited", customers)
        ws.load("Bought", [("c{}".format(i), "pop", b)
                           for i, b in enumerate(bought)])
    return ws


def analytic_posterior(prior, rates, bought):
    like1 = 1.0
    like0 = 1.0
    for b in bought:
        like1 *= rates[1] if b else (1 - rates[1])
        like0 *= rates[0] if b else (1 - rates[0])
    numerator = prior * like1
    return numerator / (numerator + (1 - prior) * like0)


class TestExactInference:
    def test_posterior_matches_bayes(self):
        bought = [1, 1, 1]
        program = PPDLProgram(promotion_ws(3, bought))
        posterior = program.posterior("Promotion")
        expected = analytic_posterior(0.2, (0.1, 0.8), bought)
        assert abs(posterior[("pop", 1)] - expected) < 1e-12
        assert abs(posterior[("pop", 0)] - (1 - expected)) < 1e-12

    def test_counter_evidence(self):
        bought = [0, 0, 0]
        program = PPDLProgram(promotion_ws(3, bought))
        posterior = program.posterior("Promotion")
        expected = analytic_posterior(0.2, (0.1, 0.8), bought)
        assert abs(posterior[("pop", 1)] - expected) < 1e-12
        assert posterior[("pop", 1)] < 0.05

    def test_prior_without_observations(self):
        program = PPDLProgram(promotion_ws(2, bought=None))
        posterior = program.posterior("Promotion")
        assert abs(posterior[("pop", 1)] - 0.2) < 1e-12

    def test_map_world(self):
        program = PPDLProgram(promotion_ws(3, [1, 1, 1]))
        probability, world = program.map_world()
        assert ("pop", 1) in world["Promotion"]
        assert 0 < probability <= 1

    def test_impossible_observation(self):
        ws = promotion_ws(1, [1], rates=(0.0, 0.0))
        program = PPDLProgram(ws)
        with pytest.raises(PPDLError):
            program.posterior("Promotion")

    def test_flip_limit(self):
        ws = promotion_ws(30, bought=None)
        program = PPDLProgram(ws, max_flips=5)
        with pytest.raises(PPDLError):
            program.posterior("Promotion")


class TestSampling:
    def test_sampler_approximates_exact(self):
        bought = [1, 1, 0]
        ws = promotion_ws(3, bought)
        program = PPDLProgram(ws)
        exact = program.posterior("Promotion")[("pop", 1)]
        sampled = program.sample_posterior("Promotion", n_samples=800, seed=3)
        assert abs(sampled.get(("pop", 1), 0.0) - exact) < 0.1


class TestStructure:
    def test_dependent_rules_ordered(self):
        program = PPDLProgram(promotion_ws(2, [1, 1]))
        ordered = [rule.head_pred for rule in program._ordered_rules]
        assert ordered.index("Promotion") < ordered.index("Buys")

    def test_no_prob_rules_rejected(self):
        ws = Workspace()
        ws.addblock("p(x) -> int(x).", name="d")
        with pytest.raises(PPDLError):
            PPDLProgram(ws)

    def test_derived_views_over_prob_preds(self):
        ws = promotion_ws(2, [1, 1])
        ws.addblock(
            "buyers(c) <- Buys[c, p] = b, b = 1.",
            name="views",
        )
        program = PPDLProgram(ws)
        posterior = program.posterior("buyers")
        # both observed buyers appear with probability 1
        assert abs(posterior[("c0",)] - 1.0) < 1e-9
        assert abs(posterior[("c1",)] - 1.0) < 1e-9
