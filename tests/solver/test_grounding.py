"""Grounding LogiQL into LP/MIP: the paper's §2.3.1 pipeline."""

import pytest

from repro import Workspace
from repro.solver import SolveSession, solve_workspace
from repro.solver.grounding import GroundingError

ASSORTMENT = """
Product(p) -> .
spacePerProd[p] = v -> Product(p), float(v).
profitPerProd[p] = v -> Product(p), float(v).
maxShelf[] = v -> float(v).
Stock[p] = v -> Product(p), {value_type}(v).
totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x, spacePerProd[p] = y, z = x * y.
totalProfit[] = u <- agg<<u = sum(z)>> Stock[p] = x, profitPerProd[p] = y, z = x * y.
Product(p) -> Stock[p] >= 0.
Product(p) -> Stock[p] <= 20.
totalShelf[] = u, maxShelf[] = v -> u <= v.
lang:solve:variable(`Stock).
lang:solve:max(`totalProfit).
"""


def build(value_type="float", shelf=80.0):
    ws = Workspace()
    ws.addblock(ASSORTMENT.format(value_type=value_type), name="model")
    ws.load("Product", [("w",), ("g",)])
    ws.load("spacePerProd", [("w", 2.0), ("g", 3.0)])
    ws.load("profitPerProd", [("w", 5.0), ("g", 7.0)])
    ws.load("maxShelf", [(shelf,)])
    return ws


class TestLPGrounding:
    def test_paper_example_lp(self):
        ws = build(shelf=50.0)
        result, assignments = solve_workspace(ws)
        assert result.ok
        # LP optimum: w=20 (space 40), g=10/3
        assert abs(result.objective - (100 + 70 / 3.0)) < 1e-6
        stock = dict(ws.rows("Stock"))
        assert abs(stock["w"] - 20.0) < 1e-6

    def test_solution_satisfies_views(self):
        ws = build(shelf=50.0)
        solve_workspace(ws)
        shelf = ws.rows("totalShelf")[0][0]
        assert shelf <= 50.0 + 1e-6

    def test_integer_type_triggers_mip(self):
        ws = build(value_type="int", shelf=50.0)
        result, _ = solve_workspace(ws)
        assert result.ok
        assert abs(result.objective - 123.0) < 1e-6  # w=19, g=4
        assert all(isinstance(v, int) for _, v in ws.rows("Stock"))

    def test_incremental_resolve(self):
        ws = build(shelf=50.0)
        session = SolveSession(ws)
        session.solve()
        ws.load("maxShelf", [(80.0,)], remove=[(50.0,)])
        result, _ = session.solve(changed_preds={"maxShelf", "totalShelf"})
        assert abs(result.objective - (100 + 7 * 40 / 3.0)) < 1e-6

    def test_infeasible_model(self):
        ws = build(shelf=50.0)
        ws.addblock("Product(p) -> Stock[p] >= 30.", name="impossible")
        result, assignments = solve_workspace(ws)
        assert result.status == "infeasible"
        assert not assignments

    def test_min_objective(self):
        ws = Workspace()
        ws.addblock(
            """
            Item(i) -> .
            amount[i] = v -> Item(i), float(v).
            need[] = v -> float(v).
            total[] = u <- agg<<u = sum(v)>> amount[i] = v.
            Item(i) -> amount[i] >= 0.
            total[] = u, need[] = n -> u >= n.
            costPer[i] = c -> Item(i), float(c).
            cost[] = u <- agg<<u = sum(z)>> amount[i] = v, costPer[i] = c,
                z = v * c.
            lang:solve:variable(`amount).
            lang:solve:min(`cost).
            """,
            name="diet",
        )
        ws.load("Item", [("cheap",), ("dear",)])
        ws.load("costPer", [("cheap", 1.0), ("dear", 3.0)])
        ws.load("need", [(10.0,)])
        result, _ = solve_workspace(ws)
        assert result.ok
        assert abs(result.objective - 10.0) < 1e-6
        assert dict(ws.rows("amount"))["dear"] < 1e-9


class TestGroundingErrors:
    def test_missing_directives(self):
        ws = Workspace()
        ws.addblock("x[] = v -> float(v).", name="d")
        with pytest.raises(GroundingError):
            SolveSession(ws)

    def test_nonlinear_rejected(self):
        ws = Workspace()
        ws.addblock(
            """
            Item(i) -> .
            a[i] = v -> Item(i), float(v).
            sq[] = u <- agg<<u = sum(z)>> a[i] = x, a[i] = y, z = x * y.
            lang:solve:variable(`a).
            lang:solve:max(`sq).
            """,
            name="bad",
        )
        ws.load("Item", [("p",)])
        with pytest.raises(GroundingError):
            solve_workspace(ws)

    def test_data_violation_detected(self):
        ws = Workspace()
        ws.addblock(
            """
            Item(i) -> .
            a[i] = v -> Item(i), float(v).
            bound[i] = b -> Item(i), float(b).
            obj[] = u <- agg<<u = sum(v)>> a[i] = v.
            Item(i) -> a[i] <= bound[i].
            lang:solve:variable(`a).
            lang:solve:max(`obj).
            """,
            name="m",
        )
        ws.load("Item", [("p",)])
        # bound[p] missing: the constraint is violated by data alone
        with pytest.raises(GroundingError):
            solve_workspace(ws)
