"""Simplex tests, including a randomized cross-check against scipy."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.solver.simplex import LinearProgram, solve_lp


class TestClassicProblems:
    def test_textbook_maximization(self):
        # max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 -> 36 at (2, 6)
        lp = LinearProgram(2, minimize=False)
        lp.set_objective([3.0, 5.0])
        lp.add_ub([1.0, 0.0], 4)
        lp.add_ub([0.0, 2.0], 12)
        lp.add_ub([3.0, 2.0], 18)
        result = solve_lp(lp)
        assert result.ok
        assert abs(result.objective - 36.0) < 1e-8
        assert np.allclose(result.x, [2.0, 6.0])

    def test_equality_constraints(self):
        lp = LinearProgram(2)
        lp.set_objective([1.0, 2.0])
        lp.add_eq([1.0, 1.0], 10)
        result = solve_lp(lp)
        assert result.ok and abs(result.objective - 10.0) < 1e-8
        assert abs(result.x[0] - 10.0) < 1e-8  # cheaper variable maxed

    def test_infeasible(self):
        lp = LinearProgram(1)
        lp.set_objective([1.0])
        lp.add_ub([1.0], 1)
        lp.add_lb([1.0], 2)
        assert solve_lp(lp).status == "infeasible"

    def test_unbounded(self):
        lp = LinearProgram(1, minimize=False)
        lp.set_objective([1.0])
        lp.add_lb([1.0], 0)
        assert solve_lp(lp).status == "unbounded"

    def test_free_variables(self):
        lp = LinearProgram(1)
        lp.set_objective([1.0])
        lp.set_bounds(0, None, None)
        lp.add_lb([1.0], -5)
        result = solve_lp(lp)
        assert result.ok and abs(result.objective + 5.0) < 1e-8

    def test_upper_bounds(self):
        lp = LinearProgram(1, minimize=False)
        lp.set_objective([1.0])
        lp.set_bounds(0, 0.0, 7.5)
        result = solve_lp(lp)
        assert result.ok and abs(result.objective - 7.5) < 1e-8

    def test_shifted_lower_bounds(self):
        lp = LinearProgram(2)
        lp.set_objective([1.0, 1.0])
        lp.set_bounds(0, 2.0, None)
        lp.set_bounds(1, 3.0, None)
        result = solve_lp(lp)
        assert result.ok and abs(result.objective - 5.0) < 1e-8

    def test_degenerate_no_cycling(self):
        # classic degeneracy: multiple bases for the same vertex
        lp = LinearProgram(2, minimize=False)
        lp.set_objective([1.0, 1.0])
        lp.add_ub([1.0, 0.0], 1)
        lp.add_ub([1.0, 0.0], 1)  # duplicate row
        lp.add_ub([0.0, 1.0], 1)
        result = solve_lp(lp)
        assert result.ok and abs(result.objective - 2.0) < 1e-8


class TestRandomizedVsScipy:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_lp(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 7))
        m = int(rng.integers(1, 7))
        c = rng.standard_normal(n)
        A = rng.standard_normal((m, n))
        b = rng.random(m) * 5
        bounds = []
        lp = LinearProgram(n)
        lp.set_objective(c)
        for row in range(m):
            lp.add_ub(A[row], b[row])
        for column in range(n):
            hi = 10.0 if rng.random() < 0.5 else None
            lp.set_bounds(column, 0.0, hi)
            bounds.append((0.0, hi))
        mine = solve_lp(lp)
        reference = linprog(c, A_ub=A, b_ub=b, bounds=bounds, method="highs")
        if reference.status == 0:
            assert mine.ok
            assert abs(mine.objective - reference.fun) < 1e-6
        elif reference.status == 3:
            assert mine.status == "unbounded"
        elif reference.status == 2:
            assert mine.status == "infeasible"
