"""Branch & bound MIP tests."""

import numpy as np
from scipy.optimize import linprog, milp
from scipy.optimize import Bounds, LinearConstraint

from repro.solver.mip import solve_mip
from repro.solver.simplex import LinearProgram


class TestKnapsackStyle:
    def test_integer_rounding_matters(self):
        # max 5x + 7y s.t. 2x + 3y <= 50, 0<=x,y<=20 integer -> 123
        lp = LinearProgram(2, minimize=False)
        lp.set_objective([5.0, 7.0])
        lp.add_ub([2.0, 3.0], 50)
        lp.set_bounds(0, 0.0, 20.0)
        lp.set_bounds(1, 0.0, 20.0)
        result = solve_mip(lp, [0, 1])
        assert result.ok
        assert abs(result.objective - 123.0) < 1e-8
        assert all(abs(v - round(v)) < 1e-9 for v in result.x)

    def test_relaxation_already_integral(self):
        lp = LinearProgram(1, minimize=False)
        lp.set_objective([1.0])
        lp.set_bounds(0, 0.0, 5.0)
        result = solve_mip(lp, [0])
        assert result.ok and result.x[0] == 5.0

    def test_binary_knapsack(self):
        values = [10.0, 13.0, 7.0, 8.0]
        weights = [3.0, 4.0, 2.0, 3.0]
        lp = LinearProgram(4, minimize=False)
        lp.set_objective(values)
        lp.add_ub(weights, 7.0)
        for column in range(4):
            lp.set_bounds(column, 0.0, 1.0)
        result = solve_mip(lp, [0, 1, 2, 3])
        assert result.ok
        # best: items 0 + 1 (weight 7, value 23)
        assert abs(result.objective - 23.0) < 1e-8

    def test_infeasible_mip(self):
        lp = LinearProgram(1)
        lp.set_objective([1.0])
        lp.add_lb([1.0], 0.4)
        lp.add_ub([1.0], 0.6)
        result = solve_mip(lp, [0])
        assert result.status == "infeasible"

    def test_mixed_integer_continuous(self):
        # y continuous, x integer
        lp = LinearProgram(2, minimize=False)
        lp.set_objective([1.0, 1.0])
        lp.add_ub([1.0, 1.0], 3.5)
        lp.set_bounds(0, 0.0, 2.5)
        lp.set_bounds(1, 0.0, None)
        result = solve_mip(lp, [0])
        assert result.ok
        assert abs(result.x[0] - round(result.x[0])) < 1e-9
        assert abs(result.objective - 3.5) < 1e-8

    def test_randomized_vs_scipy_milp(self):
        rng = np.random.default_rng(11)
        for _ in range(6):
            n = int(rng.integers(2, 5))
            c = rng.integers(1, 10, size=n).astype(float)
            w = rng.integers(1, 6, size=n).astype(float)
            cap = float(rng.integers(5, 15))
            lp = LinearProgram(n, minimize=False)
            lp.set_objective(c)
            lp.add_ub(w, cap)
            for column in range(n):
                lp.set_bounds(column, 0.0, 4.0)
            mine = solve_mip(lp, list(range(n)))
            reference = milp(
                -c,
                constraints=LinearConstraint(w.reshape(1, -1), -np.inf, cap),
                bounds=Bounds(0, 4),
                integrality=np.ones(n),
            )
            assert mine.ok and reference.status == 0
            assert abs(mine.objective - (-reference.fun)) < 1e-6
