"""Unit tests for symbolic linear expressions and grounder internals."""

import pytest

from repro import Workspace
from repro.engine import ir
from repro.solver.grounding import Grounder, GroundingError, LinExprS, _eval_sym


class TestLinExprS:
    def test_var_and_const(self):
        x = LinExprS.var(("S", ("a",)))
        assert not x.is_constant
        assert LinExprS(3.0).is_constant

    def test_addition_merges_coefficients(self):
        x = LinExprS.var("x")
        y = LinExprS.var("y")
        expr = x + y + x + 2.0
        assert expr.coeffs == {"x": 2.0, "y": 1.0}
        assert expr.const == 2.0

    def test_subtraction(self):
        x = LinExprS.var("x")
        expr = (x + 5.0) - (x * 0.5)
        assert expr.coeffs == {"x": 0.5}
        assert expr.const == 5.0

    def test_scalar_multiplication(self):
        x = LinExprS.var("x")
        expr = (x + 1.0) * 3.0
        assert expr.coeffs == {"x": 3.0} and expr.const == 3.0
        expr = LinExprS(2.0) * x  # constant * symbolic
        assert expr.coeffs == {"x": 2.0}

    def test_nonlinear_product_rejected(self):
        x = LinExprS.var("x")
        with pytest.raises(GroundingError):
            x * x

    def test_division(self):
        x = LinExprS.var("x")
        expr = x / 2.0
        assert expr.coeffs == {"x": 0.5}
        with pytest.raises(GroundingError):
            LinExprS(1.0) / x


class TestSymbolicEvaluation:
    def test_mixed_arithmetic(self):
        expr = ir.BinOp("*", ir.Var("x"), ir.Var("y"))
        result = _eval_sym(expr, {"y": 4.0}, {"x": LinExprS.var("v")})
        assert result.coeffs == {"v": 4.0}

    def test_plain_path(self):
        expr = ir.BinOp("+", ir.Var("a"), ir.Const(1))
        assert _eval_sym(expr, {"a": 2}, {}) == 3

    def test_builtin_over_symbolic_rejected(self):
        expr = ir.Call("abs", [ir.Var("x")])
        with pytest.raises(GroundingError):
            _eval_sym(expr, {}, {"x": LinExprS.var("v")})

    def test_modulo_over_symbolic_rejected(self):
        expr = ir.BinOp("%", ir.Var("x"), ir.Const(2))
        with pytest.raises(GroundingError):
            _eval_sym(expr, {}, {"x": LinExprS.var("v")})


class TestGrounderInternals:
    def build(self):
        ws = Workspace()
        ws.addblock(
            """
            Item(i) -> .
            a[i] = v -> Item(i), float(v).
            w[i] = v -> Item(i), float(v).
            total[] = u <- agg<<u = sum(z)>> a[i] = x, w[i] = y, z = x * y.
            scaled[i] = s <- a[i] = v, s = v * 2.0.
            Item(i) -> a[i] >= 0.
            lang:solve:variable(`a).
            lang:solve:max(`total).
            """,
            name="m",
        )
        ws.load("Item", [("p",), ("q",)])
        ws.load("w", [("p", 3.0), ("q", 4.0)])
        return ws

    def test_symbolic_closure(self):
        ws = self.build()
        grounder = Grounder(ws.state, ["a"], "total", "max")
        assert grounder._symbolic == {"a", "total", "scaled"}

    def test_domains_from_entity_population(self):
        ws = self.build()
        grounder = Grounder(ws.state, ["a"], "total", "max")
        assert grounder.domains() == {"a": [("p",), ("q",)]}

    def test_linearize_aggregate(self):
        ws = self.build()
        grounder = Grounder(ws.state, ["a"], "total", "max")
        table = grounder._linearize("total")
        [expr] = table.values()
        assert expr.coeffs == {("a", ("p",)): 3.0, ("a", ("q",)): 4.0}

    def test_linearize_basic_rule(self):
        ws = self.build()
        grounder = Grounder(ws.state, ["a"], "total", "max")
        table = grounder._linearize("scaled")
        assert table[("p",)].coeffs == {("a", ("p",)): 2.0}

    def test_row_cache_invalidation(self):
        ws = self.build()
        grounder = Grounder(ws.state, ["a"], "total", "max")
        grounder.build()
        assert grounder._row_cache
        grounder.refresh(ws.state, changed_preds={"unrelated"})
        assert grounder._row_cache  # untouched rows survive
        grounder.refresh(ws.state, changed_preds=None)
        assert not grounder._row_cache

    def test_non_entity_key_rejected(self):
        ws = Workspace()
        ws.addblock(
            """
            a[i] = v -> int(i), float(v).
            t[] = u <- agg<<u = sum(v)>> a[i] = v.
            lang:solve:variable(`a).
            lang:solve:max(`t).
            """,
            name="m",
        )
        grounder = Grounder.__new__(Grounder)
        from repro.solver.solve import SolveSession
        with pytest.raises(GroundingError):
            SolveSession(ws).solve()
