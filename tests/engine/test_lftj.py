"""Full LFTJ: correctness against brute force, worst-case optimality."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.ir import AssignAtom, BinOp, CompareAtom, Const, PredAtom, Var
from repro.engine.lftj import LeapfrogTrieJoin, join_count
from repro.engine.planner import build_plan
from repro.storage.relation import Relation


def run(atoms, relations, var_order=None, output=None):
    plan = build_plan(atoms, var_order=var_order, output_vars=output or ())
    rows = set(LeapfrogTrieJoin(plan, relations).run())
    if output:
        positions = [plan.var_order.index(v) for v in output]
        return {tuple(r[p] for p in positions) for r in rows}
    return rows


def brute_triangles(edges):
    edge_set = set(edges)
    by_src = {}
    for a, b in edges:
        by_src.setdefault(a, []).append(b)
    out = set()
    for a, b in edges:
        for c in by_src.get(b, ()):
            if (a, c) in edge_set:
                out.add((a, b, c))
    return out


class TestTriangles:
    def test_small_graph(self):
        edges = [(1, 2), (2, 3), (1, 3), (3, 1), (2, 1)]
        relation = Relation.from_iter(2, edges)
        atoms = [
            PredAtom("E", [Var("a"), Var("b")]),
            PredAtom("E", [Var("b"), Var("c")]),
            PredAtom("E", [Var("a"), Var("c")]),
        ]
        assert run(atoms, {"E": relation}, ["a", "b", "c"]) == brute_triangles(edges)

    def test_random_graphs_all_var_orders(self):
        rng = random.Random(3)
        edges = set()
        while len(edges) < 120:
            a, b = rng.randrange(15), rng.randrange(15)
            if a != b:
                edges.add((a, b))
        relation = Relation.from_iter(2, edges)
        atoms = [
            PredAtom("E", [Var("a"), Var("b")]),
            PredAtom("E", [Var("b"), Var("c")]),
            PredAtom("E", [Var("a"), Var("c")]),
        ]
        expected = brute_triangles(edges)
        for order in itertools.permutations(["a", "b", "c"]):
            result = run(atoms, {"E": relation}, var_order=list(order))
            remapped = {
                tuple(r[order.index(v)] for v in ("a", "b", "c")) for r in result
            }
            assert remapped == expected, order


class TestFeatures:
    def setup_method(self):
        self.S = Relation.from_iter(2, [(1, 10), (2, 20), (3, 30)])
        self.T = Relation.from_iter(1, [(2,)])

    def test_constants(self):
        atoms = [PredAtom("S", [Const(2), Var("y")])]
        assert run(atoms, {"S": self.S}, output=["y"]) == {(20,)}
        atoms = [PredAtom("S", [Var("x"), Const(99)])]
        assert run(atoms, {"S": self.S}, output=["x"]) == set()

    def test_negation(self):
        atoms = [
            PredAtom("S", [Var("x"), Var("y")]),
            PredAtom("T", [Var("x")], negated=True),
        ]
        assert run(atoms, {"S": self.S, "T": self.T}, output=["x"]) == {(1,), (3,)}

    def test_negation_with_local_existential(self):
        U = Relation.from_iter(1, [(1,), (2,), (9,)])
        atoms = [
            PredAtom("U", [Var("x")]),
            PredAtom("S", [Var("x"), Var("anything")], negated=True),
        ]
        assert run(atoms, {"U": U, "S": self.S}, output=["x"]) == {(9,)}

    def test_comparisons(self):
        atoms = [
            PredAtom("S", [Var("x"), Var("y")]),
            CompareAtom(">", Var("y"), Const(15)),
        ]
        assert run(atoms, {"S": self.S}, output=["x"]) == {(2,), (3,)}
        atoms = [
            PredAtom("S", [Var("x"), Var("y")]),
            CompareAtom("!=", Var("x"), Const(2)),
        ]
        assert run(atoms, {"S": self.S}, output=["x"]) == {(1,), (3,)}

    def test_arithmetic_assignment(self):
        atoms = [
            PredAtom("S", [Var("x"), Var("y")]),
            AssignAtom("z", BinOp("*", Var("y"), Const(2))),
        ]
        assert run(atoms, {"S": self.S}, output=["x", "z"]) == {
            (1, 20), (2, 40), (3, 60),
        }

    def test_assignment_joins_back(self):
        # z computed AND constrained by another atom: singleton intersect
        atoms = [
            PredAtom("S", [Var("x"), Var("y")]),
            AssignAtom("z", BinOp("+", Var("x"), Const(1))),
            PredAtom("T", [Var("z")]),
        ]
        assert run(atoms, {"S": self.S, "T": self.T}, output=["x"]) == {(1,)}

    def test_repeated_variable(self):
        R = Relation.from_iter(2, [(1, 1), (1, 2), (3, 3)])
        atoms = [PredAtom("R", [Var("x"), Var("x")])]
        assert run(atoms, {"R": R}, output=["x"]) == {(1,), (3,)}

    def test_wildcard_projection(self):
        atoms = [PredAtom("S", [Var("x"), Var("unused")])]
        assert run(atoms, {"S": self.S}, output=["x"]) == {(1,), (2,), (3,)}

    def test_cross_product(self):
        A = Relation.from_iter(1, [(1,), (2,)])
        B = Relation.from_iter(1, [("x",), ("y",)])
        atoms = [PredAtom("A", [Var("a")]), PredAtom("B", [Var("b")])]
        assert run(atoms, {"A": A, "B": B}, output=["a", "b"]) == {
            (1, "x"), (1, "y"), (2, "x"), (2, "y"),
        }

    def test_empty_relation_shortcircuit(self):
        atoms = [
            PredAtom("S", [Var("x"), Var("y")]),
            PredAtom("Z", [Var("x")]),
        ]
        assert run(atoms, {"S": self.S, "Z": Relation.empty(1)}) == set()

    def test_ground_positive_atom(self):
        atoms = [
            PredAtom("T", [Const(2)]),
            PredAtom("S", [Var("x"), Var("y")]),
        ]
        assert len(run(atoms, {"S": self.S, "T": self.T}, output=["x"])) == 3
        atoms[0] = PredAtom("T", [Const(5)])
        assert run(atoms, {"S": self.S, "T": self.T}, output=["x"]) == set()

    def test_ground_negated_atom(self):
        atoms = [
            PredAtom("T", [Const(5)], negated=True),
            PredAtom("S", [Var("x"), Var("y")]),
        ]
        assert len(run(atoms, {"S": self.S, "T": self.T}, output=["x"])) == 3


class TestWorstCaseOptimality:
    def test_output_bounded_by_agm(self):
        """LFTJ search steps stay within ~AGM bound (N^1.5 for triangles)."""
        rng = random.Random(5)
        for n_edges in (50, 150, 400):
            edges = set()
            while len(edges) < n_edges:
                a, b = rng.randrange(40), rng.randrange(40)
                if a != b:
                    edges.add((a, b))
            relation = Relation.from_iter(2, edges)
            atoms = [
                PredAtom("E", [Var("a"), Var("b")]),
                PredAtom("E", [Var("b"), Var("c")]),
                PredAtom("E", [Var("a"), Var("c")]),
            ]
            plan = build_plan(atoms, var_order=["a", "b", "c"])
            stats = {}
            executor = LeapfrogTrieJoin(plan, {"E": relation}, stats=stats)
            count = sum(1 for _ in executor.run())
            agm = n_edges**1.5
            assert stats["steps"] <= 4 * agm + 10 * n_edges, (
                n_edges, stats["steps"], agm,
            )
            assert count == len(brute_triangles(edges))


@settings(max_examples=40, deadline=None)
@given(
    st.sets(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=20),
    st.sets(st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=20),
)
def test_two_way_join_matches_brute_force(r_tuples, s_tuples):
    R = Relation.from_iter(2, r_tuples)
    S = Relation.from_iter(2, s_tuples)
    atoms = [
        PredAtom("R", [Var("a"), Var("b")]),
        PredAtom("S", [Var("b"), Var("c")]),
    ]
    result = run(atoms, {"R": R, "S": S}, output=["a", "b", "c"])
    expected = {
        (a, b, c) for (a, b) in r_tuples for (b2, c) in s_tuples if b == b2
    }
    assert result == expected
