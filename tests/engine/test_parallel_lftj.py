"""Domain-partitioned parallel LFTJ: bit-identical to serial execution."""

import random

import pytest

from repro import stats as global_stats
from repro.engine.evaluator import Evaluator, RuleSet
from repro.engine.ir import CompareAtom, Const, PredAtom, Var
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.parallel import (
    ParallelConfig,
    ParallelLeapfrogTrieJoin,
    shard_ranges,
)
from repro.engine.planner import build_plan
from repro.engine.pool import JoinWorkerPool
from repro.engine.rules import Rule
from repro.engine.sensitivity import SensitivityRecorder
from repro.storage.relation import Relation

TRIANGLE = [
    PredAtom("E", [Var("a"), Var("b")]),
    PredAtom("E", [Var("b"), Var("c")]),
    PredAtom("E", [Var("a"), Var("c")]),
]


@pytest.fixture(scope="module")
def pool():
    pool = JoinWorkerPool(max_workers=2)
    yield pool
    pool.shutdown()


def config(pool, shards=3, **kwargs):
    kwargs.setdefault("force", True)
    return ParallelConfig(shards=shards, pool=pool, **kwargs)


def random_graph(n_nodes, n_edges, seed):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < n_edges:
        a, b = rng.randrange(n_nodes), rng.randrange(n_nodes)
        if a != b:
            edges.add((a, b))
    return Relation.from_iter(2, edges)


def test_key_range_restriction_matches_filtered_serial():
    relation = random_graph(40, 220, seed=7)
    plan = build_plan(TRIANGLE, var_order=["a", "b", "c"])
    everything = list(LeapfrogTrieJoin(plan, {"E": relation}).run())
    lo, hi = 10, 30
    sliced = list(
        LeapfrogTrieJoin(
            plan, {"E": relation}, first_key_range=(lo, hi)
        ).run()
    )
    assert sliced == [row for row in everything if lo <= row[0] < hi]
    unbounded = list(
        LeapfrogTrieJoin(
            plan, {"E": relation}, first_key_range=(None, None)
        ).run()
    )
    assert unbounded == everything


def test_shard_ranges_partition_the_domain():
    relation = random_graph(50, 300, seed=3)
    plan = build_plan(TRIANGLE, var_order=["a", "b", "c"])
    ranges = shard_ranges(plan, {"E": relation}, 4)
    assert ranges is not None and len(ranges) >= 2
    assert ranges[0][0] is None and ranges[-1][1] is None
    for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
        assert hi == lo  # contiguous half-open cover


def test_parallel_triangles_bit_identical(pool):
    relation = random_graph(60, 500, seed=11)
    plan = build_plan(TRIANGLE, var_order=["a", "b", "c"])
    serial = list(LeapfrogTrieJoin(plan, {"E": relation}, prefer_array=True).run())
    stats = {}
    parallel = list(
        ParallelLeapfrogTrieJoin(
            plan, {"E": relation}, config=config(pool), stats=stats
        ).run()
    )
    assert parallel == serial
    assert stats["parallel_joins"] == 1
    assert stats["shards"] >= 2
    assert stats["steps"] > 0  # shard counters merged back


def test_parallel_with_constants_filters_and_negation(pool):
    edges = random_graph(30, 160, seed=5)
    marked = Relation.from_iter(1, [(i,) for i in range(0, 30, 3)])
    atoms = [
        PredAtom("E", [Var("a"), Var("b")]),
        PredAtom("E", [Var("b"), Var("c")]),
        PredAtom("M", [Var("a")]),
        PredAtom("E", [Var("c"), Const(1)], negated=True),
        CompareAtom("<", Var("a"), Var("c")),
    ]
    plan = build_plan(atoms, var_order=["a", "b", "c"])
    env = {"E": edges, "M": marked}
    serial = list(LeapfrogTrieJoin(plan, env, prefer_array=True).run())
    parallel = list(
        ParallelLeapfrogTrieJoin(plan, env, config=config(pool)).run()
    )
    assert parallel == serial
    assert serial  # the workload is non-trivial


def test_small_input_falls_back_to_serial(pool):
    relation = Relation.from_iter(2, [(1, 2), (2, 3), (1, 3)])
    plan = build_plan(TRIANGLE, var_order=["a", "b", "c"])
    stats = {}
    rows = list(
        ParallelLeapfrogTrieJoin(
            plan,
            {"E": relation},
            config=ParallelConfig(shards=3, pool=pool, min_cost=4096),
            stats=stats,
        ).run()
    )
    assert rows == [(1, 2, 3)]
    assert stats["serial_fallbacks"] == 1
    assert "parallel_joins" not in stats


def test_recorder_forces_serial_execution(pool):
    relation = random_graph(40, 300, seed=2)
    plan = build_plan(TRIANGLE, var_order=["a", "b", "c"])
    recorder = SensitivityRecorder()
    stats = {}
    rows = list(
        ParallelLeapfrogTrieJoin(
            plan,
            {"E": relation},
            config=config(pool),
            recorder=recorder,
            stats=stats,
        ).run()
    )
    assert stats["serial_fallbacks"] == 1
    assert recorder.predicates() == {"E"}
    assert rows == list(LeapfrogTrieJoin(plan, {"E": relation}).run())


def test_evaluator_parallel_matches_serial_materialization(pool):
    edges = random_graph(40, 260, seed=9)
    rules = [
        Rule("T", [Var("a"), Var("b"), Var("c")], list(TRIANGLE)),
        Rule(
            "P",
            [Var("a"), Var("c")],
            [PredAtom("E", [Var("a"), Var("b")]), PredAtom("E", [Var("b"), Var("c")])],
        ),
    ]
    serial_rel, _ = Evaluator(RuleSet(rules)).evaluate({"E": edges})
    parallel_rel, _ = Evaluator(
        RuleSet(rules), parallel=config(pool)
    ).evaluate({"E": edges})
    assert sorted(serial_rel["T"]) == sorted(parallel_rel["T"])
    assert sorted(serial_rel["P"]) == sorted(parallel_rel["P"])


def test_worker_counters_propagate_to_parent(pool):
    """Counters bumped inside pool workers (satellite of the tracing
    work): each shard result carries an envelope of the global counter
    deltas its task produced worker-side, and the parent merges them —
    so ``join.*`` movement totals match a serial run instead of
    silently losing the workers' share."""
    relation = random_graph(60, 500, seed=21)
    plan = build_plan(TRIANGLE, var_order=["a", "b", "c"])

    serial_stats = {}
    serial = list(
        LeapfrogTrieJoin(
            plan, {"E": relation}, prefer_array=True, stats=serial_stats
        ).run()
    )
    assert serial and serial_stats["steps"] > 0

    before = global_stats.snapshot()
    stats = {}
    parallel = list(
        ParallelLeapfrogTrieJoin(
            plan, {"E": relation}, config=config(pool), stats=stats
        ).run()
    )
    bumped = global_stats.delta_since(before)
    assert parallel == serial
    assert stats["parallel_joins"] == 1
    # level-0 visits partition exactly across shards, so merged steps
    # equal the serial count; seeks/opens include per-shard boundary
    # work, so they can only be >= the serial figures — the regression
    # guarded here is them coming back 0 (the lost-counter bug)
    assert stats.get("steps") == serial_stats["steps"]
    assert bumped.get("join.steps") == serial_stats["steps"]
    for key in ("seeks", "nexts", "opens"):
        if key in serial_stats:
            assert stats.get(key, 0) >= serial_stats[key], key
            assert bumped.get("join." + key, 0) == stats.get(key, 0), key
    # worker-side global counters (relation index/array builds during
    # environment materialization) arrive through the envelope
    assert any(key.startswith("relation.") for key in bumped), bumped
    assert bumped.get("pool.tasks", 0) >= 2


def test_serial_fallback_reports_movement_counters(pool):
    relation = Relation.from_iter(2, [(1, 2), (2, 3), (1, 3)])
    plan = build_plan(TRIANGLE, var_order=["a", "b", "c"])
    before = global_stats.snapshot()
    stats = {}
    rows = list(
        ParallelLeapfrogTrieJoin(
            plan,
            {"E": relation},
            config=ParallelConfig(shards=3, pool=pool, min_cost=4096),
            stats=stats,
        ).run()
    )
    bumped = global_stats.delta_since(before)
    assert rows == [(1, 2, 3)]
    assert stats["serial_fallbacks"] == 1
    assert stats["steps"] > 0
    assert bumped.get("join.steps") == stats["steps"]


def test_evaluator_rule_dispatch_to_pool(pool):
    edges = random_graph(35, 200, seed=13)
    other = random_graph(35, 200, seed=14)
    # one predicate fed by two independent rules -> two pool tasks
    rules = [
        Rule(
            "J",
            [Var("x"), Var("z")],
            [PredAtom("E", [Var("x"), Var("y")]), PredAtom("E", [Var("y"), Var("z")])],
        ),
        Rule(
            "J",
            [Var("x"), Var("z")],
            [PredAtom("F", [Var("x"), Var("y")]), PredAtom("F", [Var("y"), Var("z")])],
        ),
    ]
    env = {"E": edges, "F": other}
    serial_rel, serial_states = Evaluator(RuleSet(rules)).evaluate(env)
    before = global_stats.snapshot()
    parallel_rel, parallel_states = Evaluator(
        RuleSet(rules), parallel=config(pool, dispatch_rules=True)
    ).evaluate(env)
    bumped = global_stats.delta_since(before)
    assert bumped.get("join.rule_dispatches", 0) == 2
    assert sorted(serial_rel["J"]) == sorted(parallel_rel["J"])
    # support counts (derivation multiplicities) must agree too
    assert dict(serial_states["J"].counts.items()) == dict(
        parallel_states["J"].counts.items()
    )
