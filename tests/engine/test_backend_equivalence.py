"""Property: treap, array, and columnar backends implement one contract."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import columnar as columnar_mod
from repro.engine.columnar import ColumnarTrieJoin, make_join
from repro.engine.ir import Const, PredAtom, Var
from repro.engine.iterators import ArrayTrieIterator, TreapTrieIterator
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.planner import build_plan
from repro.engine.sensitivity import SensitivityRecorder
from repro.storage.columnar import HAVE_NUMPY
from repro.storage.relation import Relation

tuples3 = st.sets(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
    min_size=1,
    max_size=25,
)


def both_backends(tuples, prefix=()):
    relation = Relation.from_iter(3, tuples)
    return (
        TreapTrieIterator(relation.index_root((0, 1, 2)), 3, prefix),
        ArrayTrieIterator(relation.flat((0, 1, 2)), 3, prefix),
    )


def random_walk(iterator, script):
    """Replay a navigation script; returns the observation log."""
    log = []
    depth = 0
    for op, value in script:
        # the trie contract: open() requires a valid current position
        if op == "open" and depth < 3 and (depth == 0 or not iterator.at_end()):
            iterator.open()
            depth += 1
        elif op == "up" and depth > 0:
            iterator.up()
            depth -= 1
        elif op == "next" and depth > 0 and not iterator.at_end():
            iterator.next()
        elif op == "seek" and depth > 0 and not iterator.at_end():
            if not iterator.key() < value:
                continue
            iterator.seek(value)
        else:
            continue
        state = "END" if (depth and iterator.at_end()) else (
            iterator.key() if depth else "ROOT"
        )
        log.append((op, depth, state))
    return log


@settings(max_examples=120, deadline=None)
@given(
    tuples3,
    st.lists(
        st.tuples(
            st.sampled_from(["open", "up", "next", "seek"]),
            st.integers(0, 6),
        ),
        max_size=40,
    ),
)
def test_backends_agree_on_random_walks(tuples, script):
    treap_it, array_it = both_backends(tuples)
    assert random_walk(treap_it, script) == random_walk(array_it, script)


@settings(max_examples=60, deadline=None)
@given(tuples3, st.integers(0, 5))
def test_backends_agree_with_fixed_prefix(tuples, prefix_value):
    treap_it, array_it = both_backends(tuples, prefix=(prefix_value,))
    assert treap_it.check_fixed_prefix() == array_it.check_fixed_prefix()
    if not treap_it.check_fixed_prefix():
        return
    script = [("open", 0), ("next", 0), ("seek", 3), ("open", 0), ("up", 0)]
    assert random_walk(treap_it, script) == random_walk(array_it, script)


def test_deep_enumeration_equivalence():
    rng = random.Random(9)
    tuples = {
        (rng.randrange(8), rng.randrange(8), rng.randrange(8))
        for _ in range(60)
    }
    treap_it, array_it = both_backends(tuples)

    def enumerate_all(it):
        out = []

        def walk(depth):
            it.open()
            while not it.at_end():
                if depth == 2:
                    out.append(it.context() + (it.key(),))
                else:
                    walk(depth + 1)
                it.next()
            it.up()

        walk(0)
        return out

    assert enumerate_all(treap_it) == enumerate_all(array_it) == sorted(tuples)


# -- whole-join equivalence, sensitivity intervals included ----------------

edges_strategy = st.sets(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=40
)
marks_strategy = st.sets(st.tuples(st.integers(0, 7)), max_size=8)
order_strategy = st.permutations(["a", "b", "c"])


def run_join(atoms, env, var_order, prefer_array):
    """One LFTJ run on fresh relations: (rows, raw sensitivity data).

    Relations are rebuilt per run so neither backend sees caches the
    other one warmed up.
    """
    relations = {
        name: Relation.from_iter(rel.arity, rel) for name, rel in env.items()
    }
    plan = build_plan(list(atoms), var_order=list(var_order))
    recorder = SensitivityRecorder()
    rows = list(
        LeapfrogTrieJoin(
            plan, relations, recorder=recorder, prefer_array=prefer_array
        ).run()
    )
    return rows, recorder._data


@settings(max_examples=80, deadline=None)
@given(edges_strategy, order_strategy)
def test_lftj_results_and_sensitivities_match_across_backends(edges, order):
    atoms = [
        PredAtom("E", [Var("a"), Var("b")]),
        PredAtom("E", [Var("b"), Var("c")]),
        PredAtom("E", [Var("a"), Var("c")]),
    ]
    env = {"E": Relation.from_iter(2, edges)}
    treap_rows, treap_sens = run_join(atoms, env, order, prefer_array=False)
    array_rows, array_sens = run_join(atoms, env, order, prefer_array=True)
    assert treap_rows == array_rows
    assert treap_sens == array_sens


@settings(max_examples=60, deadline=None)
@given(edges_strategy, marks_strategy, order_strategy, st.integers(0, 7))
def test_lftj_equivalence_with_negation_and_constants(edges, marks, order, pin):
    atoms = [
        PredAtom("E", [Var("a"), Var("b")]),
        PredAtom("E", [Var("b"), Var("c")]),
        PredAtom("M", [Var("a")], negated=True),
        PredAtom("E", [Var("c"), Const(pin)], negated=True),
    ]
    env = {
        "E": Relation.from_iter(2, edges),
        "M": Relation.from_iter(1, marks),
    }
    treap_rows, treap_sens = run_join(atoms, env, order, prefer_array=False)
    array_rows, array_sens = run_join(atoms, env, order, prefer_array=True)
    assert treap_rows == array_rows
    assert treap_sens == array_sens


# -- columnar engine backend vs pure ---------------------------------------


def run_columnar(atoms, env, var_order):
    """One columnar run on fresh relations, asserting it did not fall
    back to the pure executor."""
    columnar_mod._SETUP_CACHE.clear()
    relations = {
        name: Relation.from_iter(rel.arity, rel) for name, rel in env.items()
    }
    plan = build_plan(list(atoms), var_order=list(var_order))
    executor = make_join(plan, relations, backend="columnar")
    assert isinstance(executor, ColumnarTrieJoin)
    return list(executor.run())


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
@settings(max_examples=60, deadline=None)
@given(edges_strategy, order_strategy)
def test_columnar_join_is_bit_identical_to_pure(edges, order):
    atoms = [
        PredAtom("E", [Var("a"), Var("b")]),
        PredAtom("E", [Var("b"), Var("c")]),
        PredAtom("E", [Var("a"), Var("c")]),
    ]
    env = {"E": Relation.from_iter(2, edges)}
    pure_rows, _ = run_join(atoms, env, order, prefer_array=True)
    assert run_columnar(atoms, env, order) == pure_rows


float_keys = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-4, max_value=4
).map(lambda f: round(f, 1))
mixed_key = st.one_of(st.integers(-4, 4), float_keys)
mixed_edges = st.sets(st.tuples(mixed_key, mixed_key), min_size=1, max_size=30)


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
@settings(max_examples=60, deadline=None)
@given(mixed_edges, order_strategy)
def test_columnar_equivalence_with_mixed_numeric_keys(edges, order):
    # mixed int/float keys (2 vs 2.0, -0.0 vs 0.0) exercise the
    # canonical encoding rules shared with stable_hash
    atoms = [
        PredAtom("E", [Var("a"), Var("b")]),
        PredAtom("E", [Var("b"), Var("c")]),
        PredAtom("E", [Var("a"), Var("c")]),
    ]
    env = {"E": Relation.from_iter(2, edges)}
    pure_rows, _ = run_join(atoms, env, order, prefer_array=True)
    assert run_columnar(atoms, env, order) == pure_rows


# -- workspace-level equivalence: IVM deltas, deletes, aggregates ----------


updates_strategy = st.lists(
    st.tuples(
        st.sampled_from(["+", "-"]), st.integers(0, 5), st.integers(0, 5)
    ),
    min_size=1,
    max_size=12,
)


def _sensitivity_data(ws):
    """Raw recorded sensitivity intervals of the current materialization."""
    engine = ws.state.artifacts.engine
    mat = ws.state.materialization
    out = {}
    for rule_index in range(len(engine.ruleset.rules)):
        index = mat.sensitivity_index(rule_index)
        if index is not None:
            out[rule_index] = index._index
    return out


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
@settings(max_examples=25, deadline=None)
@given(edges_strategy, updates_strategy)
def test_workspace_ivm_equivalence_across_backends(edges, updates):
    """The full stack — loads, IVM deltas with deletes, recursion, and
    aggregates — produces bit-identical states under both backends,
    sensitivity intervals included."""
    from repro import Workspace

    program = """
        edge(x, y) -> int(x), int(y).
        tri(a, b, c) <- edge(a, b), edge(b, c), edge(a, c).
        reach(x, y) <- edge(x, y).
        reach(x, z) <- reach(x, y), edge(y, z).
        degree[x] = n <- agg<<n = count(y)>> edge(x, y).
    """
    workspaces = []
    for backend in ("pure", "columnar"):
        ws = Workspace(engine=backend)
        ws.addblock(program)
        ws.load("edge", sorted(edges))
        for sign, a, b in updates:
            ws.exec("{}edge({}, {}).".format(sign, a, b))
        workspaces.append(ws)
    pure_ws, col_ws = workspaces
    for pred in ("edge", "tri", "reach", "degree"):
        assert sorted(pure_ws.relation(pred)) == sorted(col_ws.relation(pred))
    query = "_(a, c) <- edge(a, b), edge(b, c), a != c."
    assert pure_ws.query(query) == col_ws.query(query)
    assert _sensitivity_data(pure_ws) == _sensitivity_data(col_ws)
