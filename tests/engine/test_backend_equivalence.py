"""Property: treap and array trie backends implement one contract."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.ir import Const, PredAtom, Var
from repro.engine.iterators import ArrayTrieIterator, TreapTrieIterator
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.planner import build_plan
from repro.engine.sensitivity import SensitivityRecorder
from repro.storage.relation import Relation

tuples3 = st.sets(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
    min_size=1,
    max_size=25,
)


def both_backends(tuples, prefix=()):
    relation = Relation.from_iter(3, tuples)
    return (
        TreapTrieIterator(relation.index_root((0, 1, 2)), 3, prefix),
        ArrayTrieIterator(relation.flat((0, 1, 2)), 3, prefix),
    )


def random_walk(iterator, script):
    """Replay a navigation script; returns the observation log."""
    log = []
    depth = 0
    for op, value in script:
        # the trie contract: open() requires a valid current position
        if op == "open" and depth < 3 and (depth == 0 or not iterator.at_end()):
            iterator.open()
            depth += 1
        elif op == "up" and depth > 0:
            iterator.up()
            depth -= 1
        elif op == "next" and depth > 0 and not iterator.at_end():
            iterator.next()
        elif op == "seek" and depth > 0 and not iterator.at_end():
            if not iterator.key() < value:
                continue
            iterator.seek(value)
        else:
            continue
        state = "END" if (depth and iterator.at_end()) else (
            iterator.key() if depth else "ROOT"
        )
        log.append((op, depth, state))
    return log


@settings(max_examples=120, deadline=None)
@given(
    tuples3,
    st.lists(
        st.tuples(
            st.sampled_from(["open", "up", "next", "seek"]),
            st.integers(0, 6),
        ),
        max_size=40,
    ),
)
def test_backends_agree_on_random_walks(tuples, script):
    treap_it, array_it = both_backends(tuples)
    assert random_walk(treap_it, script) == random_walk(array_it, script)


@settings(max_examples=60, deadline=None)
@given(tuples3, st.integers(0, 5))
def test_backends_agree_with_fixed_prefix(tuples, prefix_value):
    treap_it, array_it = both_backends(tuples, prefix=(prefix_value,))
    assert treap_it.check_fixed_prefix() == array_it.check_fixed_prefix()
    if not treap_it.check_fixed_prefix():
        return
    script = [("open", 0), ("next", 0), ("seek", 3), ("open", 0), ("up", 0)]
    assert random_walk(treap_it, script) == random_walk(array_it, script)


def test_deep_enumeration_equivalence():
    rng = random.Random(9)
    tuples = {
        (rng.randrange(8), rng.randrange(8), rng.randrange(8))
        for _ in range(60)
    }
    treap_it, array_it = both_backends(tuples)

    def enumerate_all(it):
        out = []

        def walk(depth):
            it.open()
            while not it.at_end():
                if depth == 2:
                    out.append(it.context() + (it.key(),))
                else:
                    walk(depth + 1)
                it.next()
            it.up()

        walk(0)
        return out

    assert enumerate_all(treap_it) == enumerate_all(array_it) == sorted(tuples)


# -- whole-join equivalence, sensitivity intervals included ----------------

edges_strategy = st.sets(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=1, max_size=40
)
marks_strategy = st.sets(st.tuples(st.integers(0, 7)), max_size=8)
order_strategy = st.permutations(["a", "b", "c"])


def run_join(atoms, env, var_order, prefer_array):
    """One LFTJ run on fresh relations: (rows, raw sensitivity data).

    Relations are rebuilt per run so neither backend sees caches the
    other one warmed up.
    """
    relations = {
        name: Relation.from_iter(rel.arity, rel) for name, rel in env.items()
    }
    plan = build_plan(list(atoms), var_order=list(var_order))
    recorder = SensitivityRecorder()
    rows = list(
        LeapfrogTrieJoin(
            plan, relations, recorder=recorder, prefer_array=prefer_array
        ).run()
    )
    return rows, recorder._data


@settings(max_examples=80, deadline=None)
@given(edges_strategy, order_strategy)
def test_lftj_results_and_sensitivities_match_across_backends(edges, order):
    atoms = [
        PredAtom("E", [Var("a"), Var("b")]),
        PredAtom("E", [Var("b"), Var("c")]),
        PredAtom("E", [Var("a"), Var("c")]),
    ]
    env = {"E": Relation.from_iter(2, edges)}
    treap_rows, treap_sens = run_join(atoms, env, order, prefer_array=False)
    array_rows, array_sens = run_join(atoms, env, order, prefer_array=True)
    assert treap_rows == array_rows
    assert treap_sens == array_sens


@settings(max_examples=60, deadline=None)
@given(edges_strategy, marks_strategy, order_strategy, st.integers(0, 7))
def test_lftj_equivalence_with_negation_and_constants(edges, marks, order, pin):
    atoms = [
        PredAtom("E", [Var("a"), Var("b")]),
        PredAtom("E", [Var("b"), Var("c")]),
        PredAtom("M", [Var("a")], negated=True),
        PredAtom("E", [Var("c"), Const(pin)], negated=True),
    ]
    env = {
        "E": Relation.from_iter(2, edges),
        "M": Relation.from_iter(1, marks),
    }
    treap_rows, treap_sens = run_join(atoms, env, order, prefer_array=False)
    array_rows, array_sens = run_join(atoms, env, order, prefer_array=True)
    assert treap_rows == array_rows
    assert treap_sens == array_sens
