"""Deeper recursion coverage: same-generation, mutual recursion,
nonlinear rules, and recursion through workspaces."""

import pytest

from repro import Workspace
from repro.engine.evaluator import Evaluator, RuleSet
from repro.engine.ir import PredAtom, Var
from repro.engine.ivm import IncrementalEngine
from repro.engine.rules import Rule
from repro.storage.relation import Delta, Relation


class TestSameGeneration:
    RULES = [
        Rule("sg", [Var("x"), Var("y")],
             [PredAtom("flat", [Var("x"), Var("y")])]),
        Rule("sg", [Var("x"), Var("y")],
             [PredAtom("up", [Var("x"), Var("x1")]),
              PredAtom("sg", [Var("x1"), Var("y1")]),
              PredAtom("down", [Var("y1"), Var("y")])]),
    ]

    def test_same_generation(self):
        # a tree: 1 -> {2, 3}, 2 -> {4}, 3 -> {5}
        up = Relation.from_iter(2, [(2, 1), (3, 1), (4, 2), (5, 3)])
        down = Relation.from_iter(2, [(1, 2), (1, 3), (2, 4), (3, 5)])
        flat = Relation.from_iter(2, [(1, 1)])
        relations, _ = Evaluator(RuleSet(self.RULES)).evaluate(
            {"up": up, "down": down, "flat": flat}
        )
        sg = set(relations["sg"])
        assert (2, 3) in sg and (3, 2) in sg  # siblings
        assert (4, 5) in sg  # cousins
        assert (2, 4) not in sg  # different generations

    def test_incremental_same_generation(self):
        up = Relation.from_iter(2, [(2, 1), (3, 1)])
        down = Relation.from_iter(2, [(1, 2), (1, 3)])
        flat = Relation.from_iter(2, [(1, 1)])
        engine = IncrementalEngine(RuleSet(self.RULES))
        mat = engine.initialize({"up": up, "down": down, "flat": flat})
        assert (2, 3) in mat.relations["sg"]
        # grow the tree one level
        mat, _ = engine.apply(mat, {
            "up": Delta.from_iters([(4, 2), (5, 3)], ()),
            "down": Delta.from_iters([(2, 4), (3, 5)], ()),
        })
        fresh, _ = Evaluator(RuleSet(self.RULES)).evaluate(
            {"up": mat.relations["up"], "down": mat.relations["down"],
             "flat": flat}
        )
        assert set(mat.relations["sg"]) == set(fresh["sg"])
        assert (4, 5) in mat.relations["sg"]


class TestNonlinearRecursion:
    def test_doubling_tc(self):
        rules = [
            Rule("tc", [Var("x"), Var("y")],
                 [PredAtom("e", [Var("x"), Var("y")])]),
            Rule("tc", [Var("x"), Var("z")],
                 [PredAtom("tc", [Var("x"), Var("y")]),
                  PredAtom("tc", [Var("y"), Var("z")])]),
        ]
        chain = Relation.from_iter(2, [(i, i + 1) for i in range(10)])
        relations, _ = Evaluator(RuleSet(rules)).evaluate({"e": chain})
        assert len(relations["tc"]) == 10 * 11 // 2

    def test_mutual_even_odd(self):
        rules = [
            Rule("even", [Var("x")], [PredAtom("zero", [Var("x")])]),
            Rule("even", [Var("y")],
                 [PredAtom("odd", [Var("x")]),
                  PredAtom("succ", [Var("x"), Var("y")])]),
            Rule("odd", [Var("y")],
                 [PredAtom("even", [Var("x")]),
                  PredAtom("succ", [Var("x"), Var("y")])]),
        ]
        succ = Relation.from_iter(2, [(i, i + 1) for i in range(10)])
        zero = Relation.from_iter(1, [(0,)])
        relations, _ = Evaluator(RuleSet(rules)).evaluate(
            {"succ": succ, "zero": zero}
        )
        assert set(relations["even"]) == {(i,) for i in range(0, 11, 2)}
        assert set(relations["odd"]) == {(i,) for i in range(1, 11, 2)}


class TestWorkspaceRecursion:
    def test_logiql_ancestor(self):
        ws = Workspace()
        ws.addblock(
            """
            parent(x, y) -> string(x), string(y).
            ancestor(x, y) <- parent(x, y).
            ancestor(x, z) <- ancestor(x, y), parent(y, z).
            forebears[x] = u <- agg<<u = count(y)>> ancestor(y, x).
            """,
            name="family",
        )
        ws.load("parent", [("adam", "seth"), ("seth", "enos"),
                           ("enos", "kenan")])
        assert ("adam", "kenan") in ws.relation("ancestor")
        assert dict(ws.rows("forebears"))["kenan"] == 3
        # incremental: break the chain
        ws.exec('-parent("seth", "enos").')
        assert ("adam", "kenan") not in ws.relation("ancestor")
        assert dict(ws.rows("forebears")).get("kenan", 0) == 1

    def test_cycle_through_workspace(self):
        ws = Workspace()
        ws.addblock(
            """
            e(x, y) -> int(x), int(y).
            reach(x, y) <- e(x, y).
            reach(x, z) <- reach(x, y), e(y, z).
            """,
            name="g",
        )
        ws.load("e", [(1, 2), (2, 3), (3, 1)])
        assert len(ws.rows("reach")) == 9
        ws.exec("-e(3, 1).")
        reach = set(ws.relation("reach"))
        assert reach == {(1, 2), (1, 3), (2, 3)}
