"""LFTJ sensitivity recording on multi-level joins: soundness checks.

The sensitivity index recorded during a run must be *sound*: any
single-tuple change that alters the join result must fall inside a
recorded interval.  These tests verify that exhaustively on small
domains.
"""

import itertools
import random

from repro.engine.ir import PredAtom, Var
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.planner import build_plan
from repro.engine.sensitivity import SensitivityRecorder
from repro.storage.relation import Relation


def run_with_recorder(atoms, relations, var_order=None):
    plan = build_plan(atoms, var_order=var_order,
                      output_vars=[v for v in (var_order or [])] or None)
    recorder = SensitivityRecorder()
    result = set(LeapfrogTrieJoin(plan, relations, recorder).run())
    return result, recorder.freeze()


def exhaustive_soundness(atoms, relations, domain, var_order):
    """For every possible single-tuple flip in every relation: if the
    result changes, the index must have flagged the tuple."""
    plan = build_plan(atoms, var_order=var_order, output_vars=var_order)
    baseline = set(LeapfrogTrieJoin(plan, relations).run())
    _, index = run_with_recorder(atoms, relations, var_order)
    missed = []
    for name, relation in relations.items():
        for tup in itertools.product(domain, repeat=relation.arity):
            flipped = (
                relation.remove(tup) if tup in relation else relation.insert(tup)
            )
            env = dict(relations)
            env[name] = flipped
            changed = set(LeapfrogTrieJoin(plan, env).run()) != baseline
            if changed and not index.tuple_affects(name, tup):
                missed.append((name, tup))
    return missed


class TestSoundness:
    def test_two_way_join(self):
        domain = range(4)
        R = Relation.from_iter(2, [(0, 1), (1, 2), (3, 3)])
        S = Relation.from_iter(2, [(1, 0), (2, 2)])
        atoms = [
            PredAtom("R", [Var("a"), Var("b")]),
            PredAtom("S", [Var("b"), Var("c")]),
        ]
        missed = exhaustive_soundness(
            atoms, {"R": R, "S": S}, domain, ["a", "b", "c"]
        )
        assert not missed, missed

    def test_triangle(self):
        domain = range(4)
        E = Relation.from_iter(2, [(0, 1), (1, 2), (0, 2), (2, 0)])
        atoms = [
            PredAtom("E", [Var("a"), Var("b")]),
            PredAtom("E", [Var("b"), Var("c")]),
            PredAtom("E", [Var("a"), Var("c")]),
        ]
        missed = exhaustive_soundness(atoms, {"E": E}, domain, ["a", "b", "c"])
        assert not missed, missed

    def test_with_negation(self):
        domain = range(3)
        R = Relation.from_iter(1, [(0,), (1,), (2,)])
        N = Relation.from_iter(1, [(1,)])
        atoms = [
            PredAtom("R", [Var("x")]),
            PredAtom("N", [Var("x")], negated=True),
        ]
        missed = exhaustive_soundness(atoms, {"R": R, "N": N}, domain, ["x"])
        assert not missed, missed

    def test_randomized(self):
        rng = random.Random(12)
        domain = range(4)
        for trial in range(8):
            R = Relation.from_iter(
                2,
                {(rng.randrange(4), rng.randrange(4)) for _ in range(5)},
            )
            S = Relation.from_iter(
                2,
                {(rng.randrange(4), rng.randrange(4)) for _ in range(5)},
            )
            atoms = [
                PredAtom("R", [Var("a"), Var("b")]),
                PredAtom("S", [Var("b"), Var("c")]),
            ]
            missed = exhaustive_soundness(
                atoms, {"R": R, "S": S}, domain, ["a", "b", "c"]
            )
            assert not missed, (trial, missed)


class TestPrecision:
    def test_some_changes_are_skippable(self):
        """The index is not trivially 'everything': the Figure 3 kind of
        insensitivity shows up in binary joins too."""
        R = Relation.from_iter(2, [(0, 1), (5, 9)])
        S = Relation.from_iter(2, [(1, 2)])
        atoms = [
            PredAtom("R", [Var("a"), Var("b")]),
            PredAtom("S", [Var("b"), Var("c")]),
        ]
        _, index = run_with_recorder(atoms, {"R": R, "S": S}, ["a", "b", "c"])
        # S values far above anything R produces are skipped regions
        skippable = [
            tup
            for tup in [(7, 0), (8, 3)]
            if not index.tuple_affects("S", tup)
        ]
        assert skippable, "expected at least one provably irrelevant tuple"
