"""The tracing layer itself: spans, scopes, exporters, overhead."""

import io
import json
import threading

import pytest

from repro import obs
from repro import stats as global_stats


@pytest.fixture
def untraced():
    """Force tracing fully off (the suite may run under REPRO_TRACE=1)."""
    was_forced = obs._forced
    obs.disable()
    yield
    obs._set_forced(was_forced)


class TestSpansDisabled:
    def test_span_is_noop_without_collector(self, untraced):
        assert not obs.tracing()
        with obs.span("anything", foo=1) as span_:
            assert span_ is None
        assert obs.current() is None

    def test_annotate_without_span_is_noop(self, untraced):
        obs.annotate(x=1)  # must not raise


class TestSpanTree:
    def test_nesting_and_counters(self):
        with obs.Profile() as prof:
            with obs.span("outer", kind="test"):
                global_stats.bump("obs_test.outer_only")
                with obs.span("inner"):
                    global_stats.bump("obs_test.both", 3)
        assert len(prof.roots) == 1
        outer = prof.roots[0]
        assert outer.name == "outer"
        assert outer.attrs == {"kind": "test"}
        assert [c.name for c in outer.children] == ["inner"]
        # the child's bumps land in every enclosing window
        assert outer.counters["obs_test.both"] == 3
        assert outer.counters["obs_test.outer_only"] == 1
        assert outer.children[0].counters == {"obs_test.both": 3}
        assert outer.wall_s >= outer.children[0].wall_s >= 0.0

    def test_find_and_walk(self):
        with obs.Profile() as prof:
            with obs.span("a"):
                with obs.span("b"):
                    pass
                with obs.span("b"):
                    pass
        assert prof.find("b") is not None
        assert len(prof.find_all("b")) == 2
        assert [s.name for s in prof.walk()] == ["a", "b", "b"]

    def test_profile_counters_sum_roots(self):
        with obs.Profile() as prof:
            with obs.span("first"):
                global_stats.bump("obs_test.sum", 2)
            with obs.span("second"):
                global_stats.bump("obs_test.sum", 5)
        assert prof.counters()["obs_test.sum"] == 7

    def test_abandoned_generator_span_is_folded_in(self):
        def gen():
            with obs.span("leaky"):
                yield 1
                yield 2

        with obs.Profile() as prof:
            with obs.span("parent"):
                iterator = gen()
                assert next(iterator) == 1
                # drop the generator without exhausting it; closing the
                # parent must not lose or orphan the open child span
                del iterator
        parent = prof.roots[0]
        assert parent.name == "parent"
        names = {s.name for s in parent.walk()}
        assert "leaky" in names or prof.find("leaky") is not None


class TestForcedMode:
    def test_enable_records_into_ambient_ring(self):
        was_forced = obs._forced
        obs.enable()
        try:
            assert obs.tracing()
            with obs.span("ambient-root"):
                pass
            roots = obs.last_roots()
            assert roots and roots[-1].name == "ambient-root"
        finally:
            obs._set_forced(was_forced)

    def test_ring_is_bounded(self):
        was_forced = obs._forced
        obs.enable()
        try:
            for _ in range(obs._AMBIENT_LIMIT + 50):
                with obs.span("flood"):
                    pass
            assert len(obs.last_roots()) <= obs._AMBIENT_LIMIT
        finally:
            obs._set_forced(was_forced)


class TestThreadIsolation:
    def test_collector_only_sees_own_thread(self):
        seen = {}

        def other_thread():
            with obs.span("other"):
                pass

        with obs.Profile() as prof:
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
            with obs.span("mine"):
                pass
            seen["names"] = [s.name for s in prof.walk()]
        assert seen["names"] == ["mine"]


class TestExporters:
    def _sample_profile(self):
        with obs.Profile() as prof:
            with obs.span("root", kind="sample"):
                global_stats.bump("obs_test.export")
                with obs.span("child"):
                    pass
        return prof

    def test_jsonl_roundtrip(self, tmp_path):
        prof = self._sample_profile()
        path = tmp_path / "trace.jsonl"
        prof.to_jsonl(str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2
        by_name = {r["name"]: r for r in records}
        assert by_name["root"]["parent"] is None
        assert by_name["child"]["parent"] == by_name["root"]["id"]
        assert by_name["root"]["counters"]["obs_test.export"] == 1

    def test_format_renders_tree(self):
        prof = self._sample_profile()
        text = prof.format()
        assert "root" in text and "child" in text
        assert "kind=sample" in text

    def test_prometheus_text(self):
        global_stats.bump("obs_test.prom", 2)
        with global_stats.timer("obs_test.prom.seconds"):
            pass
        text = obs.prometheus_text()
        assert "# TYPE repro_obs_test_prom counter" in text
        assert "# TYPE repro_obs_test_prom_seconds summary" in text
        assert "repro_obs_test_prom_seconds_count" in text

    def test_span_totals_aggregate(self):
        before = obs.span_totals().get("totals-probe", {"count": 0})["count"]
        with obs.Profile():
            with obs.span("totals-probe"):
                pass
        after = obs.span_totals()["totals-probe"]
        assert after["count"] == before + 1
        assert after["wall_s"] >= 0.0


class TestTimers:
    def test_timer_observes_duration(self):
        with global_stats.timer("obs_test.timer.seconds"):
            pass
        with global_stats.timer("obs_test.timer.seconds"):
            pass
        hist = global_stats.histograms()["obs_test.timer.seconds"]
        assert hist["count"] >= 2
        assert hist["sum"] >= hist["min"] >= 0.0
        assert hist["max"] >= hist["min"]


class TestDemo:
    def test_demo_cli_writes_trace(self, tmp_path):
        path = tmp_path / "demo.jsonl"
        out = io.StringIO()
        was_forced = obs._forced
        try:
            prof = obs._demo(jsonl_path=str(path), out=out)
        finally:
            obs._set_forced(was_forced)
        assert path.exists() and path.read_text().strip()
        # the demo runs addblock + load + query transactions
        names = {s.name for s in prof.walk()}
        assert "txn.addblock" in names
        assert "txn.query" in names
        assert "join" in names


class TestTraceContext:
    def test_no_context_outside_spans(self, untraced):
        assert obs.trace_context() is None

    def test_root_span_mints_a_trace_id(self):
        with obs.Profile():
            with obs.span("root"):
                ctx = obs.trace_context()
                assert ctx is not None
                assert ctx["trace"] and isinstance(ctx["trace"], str)
                assert isinstance(ctx["span"], int)
        assert obs.trace_context() is None

    def test_nested_span_shares_trace_points_at_leaf(self):
        with obs.Profile():
            with obs.span("root"):
                outer = obs.trace_context()
                with obs.span("leaf"):
                    inner = obs.trace_context()
                assert inner["trace"] == outer["trace"]
                assert inner["span"] != outer["span"]

    def test_remote_context_adopts_trace(self):
        with obs.Profile() as prof:
            with obs.remote_context({"trace": "T-remote", "span": 42}):
                with obs.span("continued"):
                    ctx = obs.trace_context()
                    assert ctx["trace"] == "T-remote"
        root = prof.roots[0]
        assert root.trace_id == "T-remote"
        assert root.attrs["remote_parent"] == 42

    def test_remote_context_visible_before_any_span(self):
        with obs.remote_context({"trace": "T-ambient", "span": 7}):
            ctx = obs.trace_context()
        assert ctx == {"trace": "T-ambient", "span": 7}
        assert obs.trace_context() is None

    def test_malformed_remote_context_is_noop(self):
        with obs.remote_context(None):
            pass
        with obs.remote_context({"span": 1}):  # no trace id
            assert obs.trace_context() is None
        with obs.remote_context("garbage"):
            pass

    def test_span_from_dict_mints_fresh_local_sids(self):
        record = {"sid": 5, "name": "remote", "wall_s": 0.25,
                  "attrs": {"op": "exec"}, "counters": {"join.seeks": 3},
                  "children": [{"sid": 6, "name": "inner", "wall_s": 0.1}]}
        rebuilt = obs.span_from_dict(record)
        assert rebuilt.name == "remote"
        assert rebuilt.attrs["remote_sid"] == 5
        assert rebuilt.sid != 5  # process-unique local id
        assert rebuilt.counters == {"join.seeks": 3}
        (child,) = rebuilt.children
        assert child.attrs["remote_sid"] == 6

    def test_graft_attaches_under_current_span(self):
        with obs.Profile() as prof:
            with obs.span("local"):
                grafted = obs.graft(
                    {"sid": 9, "name": "remote", "wall_s": 0.0},
                    origin="server")
                assert grafted is not None
        root = prof.roots[0]
        (child,) = root.children
        assert child.name == "remote"
        assert child.attrs["origin"] == "server"

    def test_graft_without_open_span_is_noop(self, untraced):
        assert obs.graft({"sid": 1, "name": "x", "wall_s": 0.0}) is None

    def test_graft_bad_record_is_noop(self):
        with obs.Profile():
            with obs.span("local"):
                assert obs.graft("not-a-span") is None

    def test_trace_id_survives_jsonl(self, tmp_path):
        path = tmp_path / "ctx.jsonl"
        was_forced = obs._forced
        obs.trace_to(str(path))
        try:
            with obs.span("root"):
                with obs.span("leaf"):
                    pass
        finally:
            # trace_to force-enables tracing and trace_file_off leaves
            # it on (server CLI semantics) — restore for test isolation
            obs.trace_file_off()
            obs._set_forced(was_forced)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        traces = {l["trace"] for l in lines}
        assert len(traces) == 1  # both spans stamped with the one trace
        roots = [l for l in lines if l["parent"] is None]
        assert len(roots) == 1 and roots[0]["name"] == "root"


class TestConcurrentAmbientRing:
    def test_ring_under_concurrent_writers(self):
        """Each thread's ambient ring is private: concurrent flooding
        never corrupts another thread's ring or exceeds the bound."""
        was_forced = obs._forced
        obs.enable()
        errors = []

        def flood(tag):
            try:
                for i in range(obs._AMBIENT_LIMIT + 40):
                    with obs.span("flood-{}".format(tag), i=i):
                        with obs.span("inner"):
                            pass
                roots = obs.last_roots()
                assert 0 < len(roots) <= obs._AMBIENT_LIMIT
                # the ring only holds this thread's roots, in order
                assert all(r.name == "flood-{}".format(tag) for r in roots)
                seq = [r.attrs["i"] for r in roots]
                assert seq == sorted(seq)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=flood, args=(t,))
                   for t in range(6)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            obs._set_forced(was_forced)
        assert errors == []

    def test_trace_ids_unique_across_threads(self):
        was_forced = obs._forced
        obs.enable()
        seen = []
        lock = threading.Lock()

        def work():
            local = []
            for _ in range(50):
                with obs.span("unique"):
                    local.append(obs.trace_context()["trace"])
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=work) for _ in range(4)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            obs._set_forced(was_forced)
        assert len(seen) == len(set(seen)) == 200
