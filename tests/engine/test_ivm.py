"""Incremental view maintenance: equivalence with recomputation, cost
proportionality, and the sensitivity short-circuit."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.evaluator import Evaluator, RuleSet
from repro.engine.ir import AssignAtom, BinOp, CompareAtom, Const, PredAtom, Var
from repro.engine.ivm import IncrementalEngine
from repro.engine.rules import AggSpec, Rule
from repro.storage.relation import Delta, Relation

TRIANGLE_RULES = [
    Rule("tri", [Var("a"), Var("b"), Var("c")],
         [PredAtom("E", [Var("a"), Var("b")]),
          PredAtom("E", [Var("b"), Var("c")]),
          PredAtom("E", [Var("a"), Var("c")])]),
]


def fresh_eval(rules, relations):
    out, _ = Evaluator(RuleSet(rules)).evaluate(relations)
    return out


class TestBasicMaintenance:
    def test_insert_creates_triangle(self):
        E = Relation.from_iter(2, [(1, 2), (2, 3)])
        engine = IncrementalEngine(RuleSet(TRIANGLE_RULES))
        mat = engine.initialize({"E": E})
        assert len(mat.relations["tri"]) == 0
        mat, deltas = engine.apply(mat, {"E": Delta.from_iters([(1, 3)], ())})
        assert set(mat.relations["tri"]) == {(1, 2, 3)}
        assert set(deltas["tri"].added) == {(1, 2, 3)}

    def test_delete_removes_triangle(self):
        E = Relation.from_iter(2, [(1, 2), (2, 3), (1, 3)])
        engine = IncrementalEngine(RuleSet(TRIANGLE_RULES))
        mat = engine.initialize({"E": E})
        assert len(mat.relations["tri"]) == 1
        mat, deltas = engine.apply(mat, {"E": Delta.from_iters((), [(2, 3)])})
        assert len(mat.relations["tri"]) == 0
        assert set(deltas["tri"].removed) == {(1, 2, 3)}

    def test_counting_keeps_multiply_derived(self):
        # proj(y) derived from two tuples; deleting one keeps it
        A = Relation.from_iter(2, [(1, 9), (2, 9)])
        rules = [Rule("proj", [Var("y")], [PredAtom("A", [Var("x"), Var("y")])])]
        engine = IncrementalEngine(RuleSet(rules))
        mat = engine.initialize({"A": A})
        mat, deltas = engine.apply(mat, {"A": Delta.from_iters((), [(1, 9)])})
        assert set(mat.relations["proj"]) == {(9,)}
        assert "proj" not in deltas  # no visible change
        mat, deltas = engine.apply(mat, {"A": Delta.from_iters((), [(2, 9)])})
        assert len(mat.relations["proj"]) == 0

    def test_noop_delta(self):
        E = Relation.from_iter(2, [(1, 2)])
        engine = IncrementalEngine(RuleSet(TRIANGLE_RULES))
        mat = engine.initialize({"E": E})
        mat2, deltas = engine.apply(mat, {"E": Delta.from_iters([(1, 2)], ())})
        assert not deltas
        assert mat2.relations["E"] == mat.relations["E"]

    def test_unknown_base_pred_rejected(self):
        engine = IncrementalEngine(RuleSet(TRIANGLE_RULES))
        mat = engine.initialize({"E": Relation.empty(2)})
        with pytest.raises(KeyError):
            engine.apply(mat, {"nope": Delta.from_iters([(1,)], ())})


class TestSensitivityShortCircuit:
    def test_unaffected_delta_skips_rule(self):
        E = Relation.from_iter(2, [(1, 2), (2, 3), (1, 3)])
        # view over a *different* predicate entirely
        rules = TRIANGLE_RULES + [
            Rule("other", [Var("x")], [PredAtom("F", [Var("x")])]),
        ]
        engine = IncrementalEngine(RuleSet(rules))
        mat = engine.initialize({"E": E, "F": Relation.empty(1)})
        index = mat.sensitivity_index(1)
        assert not index.tuple_affects("E", (5, 6))
        mat, deltas = engine.apply(mat, {"F": Delta.from_iters([(7,)], ())})
        assert set(mat.relations["other"]) == {(7,)}
        assert "tri" not in deltas

    def test_skip_is_sound_under_later_changes(self):
        """Inserting outside intervals, then making it relevant."""
        A = Relation.from_iter(1, [(5,)])
        B = Relation.empty(1)
        rules = [Rule("both", [Var("x")],
                      [PredAtom("A", [Var("x")]), PredAtom("B", [Var("x")])])]
        engine = IncrementalEngine(RuleSet(rules))
        mat = engine.initialize({"A": A, "B": B})
        # A(7): B is empty, nothing can change
        mat, _ = engine.apply(mat, {"A": Delta.from_iters([(7,)], ())})
        assert len(mat.relations["both"]) == 0
        # B(7): now the earlier insert must surface
        mat, _ = engine.apply(mat, {"B": Delta.from_iters([(7,)], ())})
        assert set(mat.relations["both"]) == {(7,)}
        # and deleting A(7) must retract it
        mat, _ = engine.apply(mat, {"A": Delta.from_iters((), [(7,)])})
        assert len(mat.relations["both"]) == 0


class TestAggregateMaintenance:
    RULES = [
        Rule("total", [Var("k"), Var("u")],
             [PredAtom("A", [Var("k"), Var("e"), Var("v")])],
             agg=AggSpec("sum", "u", "v"), n_keys=1),
        Rule("peak", [Var("k"), Var("u")],
             [PredAtom("A", [Var("k"), Var("e"), Var("v")])],
             agg=AggSpec("max", "u", "v"), n_keys=1),
    ]

    def test_sum_updates(self):
        A = Relation.from_iter(3, [("g", 1, 10.0), ("g", 2, 5.0)])
        engine = IncrementalEngine(RuleSet(self.RULES))
        mat = engine.initialize({"A": A})
        assert set(mat.relations["total"]) == {("g", 15.0)}
        mat, deltas = engine.apply(mat, {"A": Delta.from_iters([("g", 3, 2.0)], ())})
        assert set(mat.relations["total"]) == {("g", 17.0)}
        assert set(deltas["total"].removed) == {("g", 15.0)}
        assert set(deltas["total"].added) == {("g", 17.0)}

    def test_max_survives_non_extremum_delete(self):
        A = Relation.from_iter(3, [("g", 1, 10.0), ("g", 2, 30.0)])
        engine = IncrementalEngine(RuleSet(self.RULES))
        mat = engine.initialize({"A": A})
        mat, deltas = engine.apply(mat, {"A": Delta.from_iters((), [("g", 1, 10.0)])})
        assert set(mat.relations["peak"]) == {("g", 30.0)}
        assert "peak" not in deltas

    def test_max_recomputes_on_extremum_delete(self):
        A = Relation.from_iter(3, [("g", 1, 10.0), ("g", 2, 30.0)])
        engine = IncrementalEngine(RuleSet(self.RULES))
        mat = engine.initialize({"A": A})
        mat, _ = engine.apply(mat, {"A": Delta.from_iters((), [("g", 2, 30.0)])})
        assert set(mat.relations["peak"]) == {("g", 10.0)}

    def test_group_disappears(self):
        A = Relation.from_iter(3, [("g", 1, 10.0)])
        engine = IncrementalEngine(RuleSet(self.RULES))
        mat = engine.initialize({"A": A})
        mat, deltas = engine.apply(mat, {"A": Delta.from_iters((), [("g", 1, 10.0)])})
        assert len(mat.relations["total"]) == 0
        assert len(mat.relations["peak"]) == 0


class TestRandomizedEquivalence:
    PROGRAM = [
        Rule("tri", [Var("a"), Var("b"), Var("c")],
             [PredAtom("E", [Var("a"), Var("b")]),
              PredAtom("E", [Var("b"), Var("c")]),
              PredAtom("E", [Var("a"), Var("c")])]),
        Rule("lonely", [Var("x")],
             [PredAtom("V", [Var("x")]),
              PredAtom("E", [Var("x"), Var("w")], negated=True)]),
        Rule("outdeg", [Var("x"), Var("u")],
             [PredAtom("E", [Var("x"), Var("y")])],
             agg=AggSpec("count", "u", "y"), n_keys=1),
        Rule("tc", [Var("x"), Var("y")], [PredAtom("E", [Var("x"), Var("y")])]),
        Rule("tc", [Var("x"), Var("z")],
             [PredAtom("tc", [Var("x"), Var("y")]),
              PredAtom("E", [Var("y"), Var("z")])]),
    ]

    def test_long_random_run(self):
        rng = random.Random(99)
        dom = 10
        E = Relation.from_iter(
            2,
            {(rng.randrange(dom), rng.randrange(dom)) for _ in range(25)},
        )
        V = Relation.from_iter(1, [(i,) for i in range(dom)])
        ruleset = RuleSet(self.PROGRAM)
        engine = IncrementalEngine(ruleset)
        mat = engine.initialize({"E": E, "V": V})
        for step in range(25):
            added = {
                (rng.randrange(dom), rng.randrange(dom))
                for _ in range(rng.randrange(3))
            }
            removed = set(
                rng.sample(list(mat.relations["E"]),
                           min(len(mat.relations["E"]), rng.randrange(3)))
            )
            mat, _ = engine.apply(
                mat, {"E": Delta.from_iters(added - removed, removed)}
            )
            fresh = fresh_eval(self.PROGRAM, {"E": mat.relations["E"], "V": V})
            for pred in ("tri", "lonely", "outdeg", "tc"):
                assert set(mat.relations[pred]) == set(fresh[pred]), (step, pred)


@settings(max_examples=25, deadline=None)
@given(
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12),
    st.lists(
        st.tuples(
            st.sampled_from(["add", "remove"]),
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
        ),
        max_size=8,
    ),
)
def test_property_ivm_equals_recompute(initial, updates):
    rules = [
        Rule("join", [Var("a"), Var("c")],
             [PredAtom("E", [Var("a"), Var("b")]),
              PredAtom("E", [Var("b"), Var("c")])]),
        Rule("nonref", [Var("x")],
             [PredAtom("E", [Var("x"), Var("y")]),
              PredAtom("E", [Var("x"), Var("x")], negated=True)]),
    ]
    engine = IncrementalEngine(RuleSet(rules))
    mat = engine.initialize({"E": Relation.from_iter(2, initial)})
    for op, tup in updates:
        delta = (
            Delta.from_iters([tup], ()) if op == "add" else Delta.from_iters((), [tup])
        )
        mat, _ = engine.apply(mat, {"E": delta})
        fresh = fresh_eval(rules, {"E": mat.relations["E"]})
        assert set(mat.relations["join"]) == set(fresh["join"])
        assert set(mat.relations["nonref"]) == set(fresh["nonref"])
