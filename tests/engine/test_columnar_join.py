"""Columnar LFTJ executor: equivalence with the pure backend, codegen,
fallback rules, and backend resolution."""

import random

import pytest

from repro import stats as global_stats
from repro.engine import columnar
from repro.engine.columnar import (
    ColumnarTrieJoin,
    make_join,
    resolve_backend,
)
from repro.engine.ir import AssignAtom, BinOp, CompareAtom, Const, PredAtom, Var
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.planner import build_plan
from repro.engine.sensitivity import SensitivityRecorder
from repro.storage.columnar import HAVE_NUMPY, ColumnarUnsupported
from repro.storage.relation import Relation

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")


@pytest.fixture(params=[True, False], ids=["codegen", "interpreter"])
def codegen_mode(request, monkeypatch):
    monkeypatch.setattr(columnar, "CODEGEN", request.param)
    return request.param


def both_runs(atoms, relations, var_order=None, output_vars=(),
              first_key_range=None):
    """Rows from the pure and the columnar executor for one plan.

    Relations are rebuilt per executor so neither backend sees the
    other's warmed caches, and the columnar setup cache is keyed by
    relation version, which the rebuild changes nothing about — so we
    clear it to force a cold build every call.
    """
    columnar._SETUP_CACHE.clear()
    plan = build_plan(list(atoms), var_order=var_order, output_vars=output_vars)

    def fresh():
        return {
            name: Relation.from_iter(rel.arity, rel)
            for name, rel in relations.items()
        }

    pure_rows = list(
        LeapfrogTrieJoin(plan, fresh(), first_key_range=first_key_range).run()
    )
    col = make_join(
        plan, fresh(), backend="columnar", first_key_range=first_key_range
    )
    assert isinstance(col, ColumnarTrieJoin)
    return pure_rows, list(col.run())


def random_edges(seed, n, domain):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < n:
        a, b = rng.randrange(domain), rng.randrange(domain)
        if a != b:
            edges.add((a, b))
    return edges


TRIANGLE = [
    PredAtom("E", [Var("a"), Var("b")]),
    PredAtom("E", [Var("b"), Var("c")]),
    PredAtom("E", [Var("a"), Var("c")]),
]


class TestEquivalence:
    def test_triangle_all_var_orders(self, codegen_mode):
        env = {"E": Relation.from_iter(2, random_edges(7, 80, 12))}
        for order in (
            ("a", "b", "c"), ("b", "a", "c"), ("c", "b", "a"), ("a", "c", "b")
        ):
            pure, col = both_runs(
                TRIANGLE, env, var_order=list(order),
                output_vars=("a", "b", "c"),
            )
            assert pure == col

    def test_constants_in_atoms(self, codegen_mode):
        env = {"E": Relation.from_iter(2, random_edges(11, 40, 8))}
        some_a = next(iter(env["E"]))[0]
        for pin in (some_a, 999):  # present and absent constant
            atoms = [
                PredAtom("E", [Const(pin), Var("b")]),
                PredAtom("E", [Var("b"), Var("c")]),
            ]
            pure, col = both_runs(atoms, env, output_vars=("b", "c"))
            assert pure == col

    def test_negation(self, codegen_mode):
        env = {
            "E": Relation.from_iter(2, random_edges(13, 40, 8)),
            "M": Relation.from_iter(1, {(i,) for i in range(0, 8, 2)}),
        }
        atoms = [
            PredAtom("E", [Var("a"), Var("b")]),
            PredAtom("M", [Var("a")], negated=True),
        ]
        pure, col = both_runs(atoms, env, output_vars=("a", "b"))
        assert pure == col

    def test_filters_and_assignments(self, codegen_mode):
        env = {
            "E": Relation.from_iter(2, random_edges(17, 60, 9)),
            "S": Relation.from_iter(1, {(i,) for i in range(20)}),
        }
        atoms = [
            PredAtom("E", [Var("x"), Var("y")]),
            CompareAtom("<", Var("x"), Var("y")),
            AssignAtom(Var("z"), BinOp("+", Var("x"), Var("y"))),
            PredAtom("S", [Var("z")]),
        ]
        pure, col = both_runs(atoms, env, output_vars=("x", "y", "z"))
        assert pure == col

    def test_wildcard_projection(self, codegen_mode):
        env = {"E": Relation.from_iter(2, random_edges(19, 40, 8))}
        atoms = [
            PredAtom("E", [Var("a"), Var("b")]),
            PredAtom("E", [Var("b"), Var("_w")]),
        ]
        pure, col = both_runs(atoms, env, output_vars=("a", "b"))
        assert pure == col

    def test_string_and_mixed_numeric_keys(self, codegen_mode):
        env = {
            "R": Relation.from_iter(
                2, [("x", 1), ("x", 1.5), ("y", 2.0), ("y", 2), ("z", -0.0)]
            ),
            "T": Relation.from_iter(1, [(1,), (2.0,), (0.0,)]),
        }
        atoms = [
            PredAtom("R", [Var("k"), Var("v")]),
            PredAtom("T", [Var("v")]),
        ]
        pure, col = both_runs(atoms, env, output_vars=("k", "v"))
        assert pure == col

    def test_empty_relation_short_circuits(self, codegen_mode):
        env = {
            "E": Relation.from_iter(2, random_edges(23, 20, 6)),
            "Z": Relation.empty(1),
        }
        atoms = [
            PredAtom("E", [Var("a"), Var("b")]),
            PredAtom("Z", [Var("a")]),
        ]
        pure, col = both_runs(atoms, env, output_vars=("a", "b"))
        assert pure == col == []

    def test_first_key_range_shards_partition_the_result(self, codegen_mode):
        env = {"E": Relation.from_iter(2, random_edges(29, 90, 12))}
        full_pure, full_col = both_runs(
            TRIANGLE, env, output_vars=("a", "b", "c")
        )
        assert full_pure == full_col
        sharded = []
        for key_range in ((None, 4), (4, 8), (8, None)):
            pure, col = both_runs(
                TRIANGLE, env, output_vars=("a", "b", "c"),
                first_key_range=key_range,
            )
            assert pure == col
            sharded.extend(col)
        assert sorted(sharded) == sorted(full_col)


class TestCodegen:
    def test_specialized_source_is_attached(self):
        columnar._SETUP_CACHE.clear()
        env = {"E": Relation.from_iter(2, random_edges(31, 40, 8))}
        plan = build_plan(list(TRIANGLE), output_vars=("a", "b", "c"))
        join = make_join(plan, env, backend="columnar")
        rows = list(join.run())
        assert rows
        fn = columnar._specialized_for(plan)
        assert fn is not None and "searchsorted" in fn.source

    def test_codegen_and_interpreter_agree(self, monkeypatch):
        env = {"E": Relation.from_iter(2, random_edges(37, 70, 10))}
        plan = build_plan(list(TRIANGLE), output_vars=("a", "b", "c"))

        def rows_with(flag):
            monkeypatch.setattr(columnar, "CODEGEN", flag)
            columnar._SETUP_CACHE.clear()
            return list(make_join(plan, env, backend="columnar").run())

        assert rows_with(True) == rows_with(False)


class TestFallbacks:
    def test_recorder_forces_pure_executor(self):
        env = {"E": Relation.from_iter(2, random_edges(41, 30, 6))}
        plan = build_plan(list(TRIANGLE), output_vars=("a", "b", "c"))
        join = make_join(
            plan, env, recorder=SensitivityRecorder(), backend="columnar"
        )
        assert isinstance(join, LeapfrogTrieJoin)

    def test_unencodable_relation_falls_back_to_pure(self):
        env = {"R": Relation.from_iter(2, [(1, 2), (2, "a")])}
        atoms = [PredAtom("R", [Var("x"), Var("y")])]
        plan = build_plan(atoms, output_vars=("x", "y"))
        before = global_stats.snapshot()
        join = make_join(plan, env, backend="columnar")
        delta = global_stats.delta_since(before)
        assert isinstance(join, LeapfrogTrieJoin)
        assert delta.get("join.columnar_fallbacks") == 1
        assert sorted(join.run()) == [(1, 2), (2, "a")]

    def test_pure_backend_never_builds_columnar(self):
        env = {"E": Relation.from_iter(2, random_edges(43, 30, 6))}
        plan = build_plan(list(TRIANGLE), output_vars=("a", "b", "c"))
        join = make_join(plan, env, backend="pure")
        assert isinstance(join, LeapfrogTrieJoin)


class TestResolveBackend:
    def test_explicit_choice_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "pure")
        assert resolve_backend("columnar") == "columnar"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "columnar")
        assert resolve_backend() == "columnar"

    def test_default_is_pure(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_backend() == "pure"

    def test_invalid_name_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        with pytest.raises(ValueError):
            resolve_backend("vectorized")
        monkeypatch.setenv("REPRO_ENGINE", "nope")
        with pytest.raises(ValueError):
            resolve_backend()

    def test_missing_numpy_degrades_to_pure(self, monkeypatch):
        monkeypatch.setattr(columnar, "HAVE_NUMPY", False)
        before = global_stats.snapshot()
        assert resolve_backend("columnar") == "pure"
        delta = global_stats.delta_since(before)
        assert delta.get("join.columnar_unavailable") == 1


class TestCounters:
    def test_vector_seeks_and_batches_are_observed(self):
        columnar._SETUP_CACHE.clear()
        env = {"E": Relation.from_iter(2, random_edges(47, 80, 10))}
        plan = build_plan(list(TRIANGLE), output_vars=("a", "b", "c"))
        stats = {}
        before = global_stats.snapshot()
        join = make_join(plan, env, backend="columnar", stats=stats)
        list(join.run())
        delta = global_stats.delta_since(before)
        assert stats.get("vector_seeks", 0) > 0
        assert stats.get("batches", 0) > 0
        # the executor bumps the global counters itself (the evaluator
        # must not re-fold them — see Evaluator's bump_prefix handling)
        assert delta.get("join.vector_seeks") == stats["vector_seeks"]
        assert delta.get("join.columnar_joins") == 1
        # batch sizes feed the join.batch_sizes histogram
        histogram = global_stats.histograms().get("join.batch_sizes")
        assert histogram and histogram["count"] >= stats["batches"]
