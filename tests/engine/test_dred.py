"""DRed maintenance: recursion through deletions, rederivation."""

import random

from repro.engine.dred import DRedEngine
from repro.engine.evaluator import Evaluator, RuleSet
from repro.engine.ir import PredAtom, Var
from repro.engine.rules import AggSpec, Rule
from repro.storage.relation import Delta, Relation

TC_RULES = [
    Rule("tc", [Var("x"), Var("y")], [PredAtom("E", [Var("x"), Var("y")])]),
    Rule("tc", [Var("x"), Var("z")],
         [PredAtom("tc", [Var("x"), Var("y")]),
          PredAtom("E", [Var("y"), Var("z")])]),
]


def tc_closure(edges):
    reach = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(reach):
            for (c, d) in list(reach):
                if b == c and (a, d) not in reach:
                    reach.add((a, d))
                    changed = True
    return reach


class TestDRedTransitiveClosure:
    def test_insert_edge(self):
        engine = DRedEngine(RuleSet(TC_RULES))
        relations = engine.initialize({"E": Relation.from_iter(2, [(1, 2)])})
        relations, deltas = engine.apply(
            relations, {"E": Delta.from_iters([(2, 3)], ())}
        )
        assert set(relations["tc"]) == {(1, 2), (2, 3), (1, 3)}
        assert set(deltas["tc"].added) == {(2, 3), (1, 3)}

    def test_delete_with_rederivation(self):
        # diamond: deleting one path keeps reachability via the other
        edges = [(1, 2), (2, 4), (1, 3), (3, 4)]
        engine = DRedEngine(RuleSet(TC_RULES))
        relations = engine.initialize({"E": Relation.from_iter(2, edges)})
        assert (1, 4) in relations["tc"]
        relations, deltas = engine.apply(
            relations, {"E": Delta.from_iters((), [(2, 4)])}
        )
        assert (1, 4) in relations["tc"]  # rederived via 3
        assert (2, 4) not in relations["tc"]

    def test_delete_cascades(self):
        edges = [(1, 2), (2, 3), (3, 4)]
        engine = DRedEngine(RuleSet(TC_RULES))
        relations = engine.initialize({"E": Relation.from_iter(2, edges)})
        relations, deltas = engine.apply(
            relations, {"E": Delta.from_iters((), [(2, 3)])}
        )
        assert set(relations["tc"]) == {(1, 2), (3, 4)}
        removed = set(deltas["tc"].removed)
        assert removed == {(2, 3), (1, 3), (2, 4), (1, 4)}

    def test_cycle_deletion(self):
        edges = [(1, 2), (2, 1)]
        engine = DRedEngine(RuleSet(TC_RULES))
        relations = engine.initialize({"E": Relation.from_iter(2, edges)})
        assert (1, 1) in relations["tc"]
        relations, _ = engine.apply(relations, {"E": Delta.from_iters((), [(2, 1)])})
        assert set(relations["tc"]) == {(1, 2)}

    def test_randomized_against_closure(self):
        rng = random.Random(17)
        edges = {(rng.randrange(7), rng.randrange(7)) for _ in range(10)}
        engine = DRedEngine(RuleSet(TC_RULES))
        relations = engine.initialize({"E": Relation.from_iter(2, edges)})
        current = set(edges)
        for _ in range(20):
            if rng.random() < 0.5 or not current:
                tup = (rng.randrange(7), rng.randrange(7))
                delta = Delta.from_iters([tup], ())
                current.add(tup)
            else:
                tup = rng.choice(sorted(current))
                delta = Delta.from_iters((), [tup])
                current.discard(tup)
            relations, _ = engine.apply(relations, {"E": delta})
            assert set(relations["tc"]) == tc_closure(current)


class TestDRedNonRecursive:
    def test_plain_views(self):
        rules = [
            Rule("big", [Var("x")],
                 [PredAtom("A", [Var("x"), Var("y")])]),
        ]
        engine = DRedEngine(RuleSet(rules))
        relations = engine.initialize(
            {"A": Relation.from_iter(2, [(1, 2), (1, 3)])}
        )
        # deleting one support keeps the tuple (rederivation saves it)
        relations, deltas = engine.apply(
            relations, {"A": Delta.from_iters((), [(1, 2)])}
        )
        assert set(relations["big"]) == {(1,)}
        relations, _ = engine.apply(relations, {"A": Delta.from_iters((), [(1, 3)])})
        assert len(relations["big"]) == 0

    def test_aggregates_fall_back_to_recompute(self):
        rules = [
            Rule("total", [Var("u")],
                 [PredAtom("A", [Var("k"), Var("v")])],
                 agg=AggSpec("sum", "u", "v"), n_keys=0),
        ]
        engine = DRedEngine(RuleSet(rules))
        relations = engine.initialize(
            {"A": Relation.from_iter(2, [("a", 1.0), ("b", 2.0)])}
        )
        assert set(relations["total"]) == {(3.0,)}
        relations, deltas = engine.apply(
            relations, {"A": Delta.from_iters([("c", 4.0)], ())}
        )
        assert set(relations["total"]) == {(7.0,)}
        assert "total" in deltas
