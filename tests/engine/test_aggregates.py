"""Unit tests for the incrementally maintainable aggregate states."""

import pytest

from repro.engine.aggregates import (
    AGGREGATES,
    MultisetState,
    SumState,
    agg_add,
    agg_remove,
)


class TestSumState:
    def test_add_remove_roundtrip(self):
        state = SumState()
        state = state.add(5.0).add(3.0)
        assert state.total == 8.0 and state.count == 2
        state = state.remove(5.0)
        assert state.total == 3.0 and state.count == 1
        assert not state.is_empty()
        assert state.remove(3.0).is_empty()

    def test_immutability(self):
        state = SumState().add(1.0)
        state.add(2.0)
        assert state.total == 1.0


class TestMultisetState:
    def test_multiplicity(self):
        state = MultisetState().add(5).add(5).add(3)
        assert state.count == 3
        state = state.remove(5)
        assert state.count == 2
        assert state.values.get(5) == 1
        state = state.remove(5)
        assert 5 not in state.values

    def test_min_max_results(self):
        state = MultisetState().add(5).add(1).add(9)
        assert AGGREGATES["min"].result(state) == 1
        assert AGGREGATES["max"].result(state) == 9
        state = state.remove(1)
        assert AGGREGATES["min"].result(state) == 5


class TestAggregateDispatch:
    @pytest.mark.parametrize("fn,values,expected", [
        ("sum", [1.0, 2.0, 3.0], 6.0),
        ("count", [10, 20, 30], 3),
        ("avg", [2.0, 4.0], 3.0),
        ("min", [5, 2, 8], 2),
        ("max", [5, 2, 8], 8),
    ])
    def test_results(self, fn, values, expected):
        aggregate = AGGREGATES[fn]
        state = aggregate.empty()
        for value in values:
            state = agg_add(fn, state, value)
        assert aggregate.result(state) == expected

    @pytest.mark.parametrize("fn", ["sum", "count", "avg", "min", "max"])
    def test_remove_inverts_add(self, fn):
        aggregate = AGGREGATES[fn]
        state = aggregate.empty()
        state = agg_add(fn, state, 4)
        state = agg_add(fn, state, 7)
        after = agg_remove(fn, state, 7)
        solo = agg_add(fn, aggregate.empty(), 4)
        assert aggregate.result(after) == aggregate.result(solo)

    def test_count_ignores_magnitude(self):
        state = agg_add("count", AGGREGATES["count"].empty(), 1e9)
        state = agg_add("count", state, -1e9)
        assert AGGREGATES["count"].result(state) == 2
