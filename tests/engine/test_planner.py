"""Tests for LFTJ plan construction."""

import pytest

from repro.engine.ir import AssignAtom, BinOp, CompareAtom, Const, PredAtom, Var
from repro.engine.planner import PlanError, build_plan, default_var_order


class TestVariableOrder:
    def test_default_first_appearance(self):
        atoms = [
            PredAtom("R", [Var("a"), Var("b")]),
            PredAtom("S", [Var("b"), Var("c")]),
        ]
        assert default_var_order(atoms) == ["a", "b", "c"]

    def test_assignments_after_inputs(self):
        atoms = [
            AssignAtom("z", BinOp("+", Var("x"), Var("y"))),
            PredAtom("R", [Var("x"), Var("y")]),
        ]
        order = default_var_order(atoms)
        assert order.index("z") > order.index("x")
        assert order.index("z") > order.index("y")

    def test_cyclic_assignments_rejected(self):
        atoms = [
            AssignAtom("a", BinOp("+", Var("b"), Const(1))),
            AssignAtom("b", BinOp("+", Var("a"), Const(1))),
        ]
        with pytest.raises(PlanError):
            default_var_order(atoms)

    def test_explicit_order_must_cover(self):
        atoms = [PredAtom("R", [Var("a"), Var("b")])]
        with pytest.raises(PlanError):
            build_plan(atoms, var_order=["a"], output_vars=["a", "b"])


class TestAtomShapes:
    def test_constants_first_in_perm(self):
        atoms = [PredAtom("R", [Var("x"), Const(5), Var("y")])]
        plan = build_plan(atoms, output_vars=["x", "y"])
        atom_plan = plan.atom_plans[0]
        assert atom_plan.perm[0] == 1  # constant column leads
        assert atom_plan.const_prefix == (5,)

    def test_secondary_index_detection(self):
        atoms = [
            PredAtom("R", [Var("a"), Var("b")]),
            PredAtom("S", [Var("b"), Var("a")]),
        ]
        plan = build_plan(atoms, var_order=["a", "b"], output_vars=["a", "b"])
        shapes = {ap.pred: ap.perm for ap in plan.atom_plans}
        assert shapes["R"] == (0, 1)
        assert shapes["S"] == (1, 0)  # needs the permuted index
        assert plan.needs_index(plan.atom_plans[1])

    def test_wildcards_trail(self):
        atoms = [PredAtom("R", [Var("w1"), Var("x"), Var("w2")])]
        plan = build_plan(atoms, output_vars=["x"])
        atom_plan = plan.atom_plans[0]
        assert atom_plan.perm[0] == 1
        assert set(atom_plan.perm[1:]) == {0, 2}
        assert atom_plan.levels == (0,)

    def test_repeated_vars_rewritten(self):
        atoms = [PredAtom("R", [Var("x"), Var("x")])]
        plan = build_plan(atoms, output_vars=["x"])
        # rewritten into two distinct levels plus an equality binding
        assert len(plan.var_order) == 2
        assert plan.assigns


class TestSafety:
    def test_unbound_comparison_rejected(self):
        atoms = [CompareAtom("<", Var("x"), Const(1))]
        with pytest.raises(PlanError):
            build_plan(atoms, output_vars=["x"])

    def test_unbound_negation_rejected(self):
        atoms = [
            PredAtom("R", [Var("x")]),
            PredAtom("S", [Var("y")], negated=True),
            PredAtom("T", [Var("y")], negated=True),
        ]
        with pytest.raises(PlanError):
            build_plan(atoms, output_vars=["x"])

    def test_output_var_unbound_rejected(self):
        atoms = [PredAtom("R", [Var("x")])]
        with pytest.raises(PlanError):
            build_plan(atoms + [CompareAtom("=", Var("x"), Var("x"))],
                       var_order=["x", "y"], output_vars=["y"])

    def test_negated_local_existential_allowed(self):
        atoms = [
            PredAtom("R", [Var("x")]),
            PredAtom("S", [Var("x"), Var("local")], negated=True),
        ]
        plan = build_plan(atoms, output_vars=["x"])
        assert plan.var_order == ("x",)

    def test_filters_at_earliest_complete_level(self):
        atoms = [
            PredAtom("R", [Var("a"), Var("b")]),
            PredAtom("S", [Var("b"), Var("c")]),
            CompareAtom("<", Var("a"), Var("b")),
        ]
        plan = build_plan(atoms, var_order=["a", "b", "c"],
                          output_vars=["a", "b", "c"])
        assert plan.filters[1], "a<b should attach at b's level"
        assert not plan.filters[2]

    def test_participants_structure(self):
        atoms = [
            PredAtom("R", [Var("a"), Var("b")]),
            PredAtom("S", [Var("b"), Var("c")]),
            PredAtom("T", [Var("a"), Var("c")]),
        ]
        plan = build_plan(atoms, var_order=["a", "b", "c"],
                          output_vars=["a", "b", "c"])
        per_level = [sorted(i for i, _ in plan.participants[lvl]) for lvl in range(3)]
        assert per_level == [[0, 2], [0, 1], [1, 2]]
