"""Sampling optimizer and binary-join baselines."""

import random

import pytest

from repro.engine.baseline_joins import hash_join_query, merge_join_query
from repro.engine.ir import AssignAtom, BinOp, Const, PredAtom, Var
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.optimizer import (
    SamplingOptimizer,
    candidate_orders,
    measure_order,
    sample_relations,
)
from repro.engine.rules import Rule
from repro.storage.relation import Relation


def random_edges(n, dom, seed):
    rng = random.Random(seed)
    edges = set()
    while len(edges) < n:
        a, b = rng.randrange(dom), rng.randrange(dom)
        if a != b:
            edges.add((a, b))
    return edges


TRIANGLE_ATOMS = [
    PredAtom("E", [Var("a"), Var("b")]),
    PredAtom("E", [Var("b"), Var("c")]),
    PredAtom("E", [Var("a"), Var("c")]),
]


class TestCandidateOrders:
    def test_all_orders_for_triangle(self):
        rule = Rule("t", [Var("a"), Var("b"), Var("c")], TRIANGLE_ATOMS)
        orders = candidate_orders(rule)
        assert len(orders) == 6
        assert orders[0] == ("a", "b", "c")  # default first

    def test_assignment_dependencies_respected(self):
        rule = Rule("t", [Var("x"), Var("z")], [
            PredAtom("R", [Var("x"), Var("y")]),
            AssignAtom("z", BinOp("+", Var("x"), Var("y"))),
        ])
        for order in candidate_orders(rule):
            assert order.index("z") > order.index("x")
            assert order.index("z") > order.index("y")

    def test_limit(self):
        atoms = [PredAtom("R", [Var(chr(97 + i)) for i in range(6)])]
        rule = Rule("t", [Var(chr(97 + i)) for i in range(6)], atoms)
        assert len(candidate_orders(rule, limit=10)) <= 10


class TestSamplingOptimizer:
    def test_sampling_preserves_small_relations(self):
        r = Relation.from_iter(1, [(i,) for i in range(5)])
        sampled = sample_relations({"r": r}, 100)
        assert sampled["r"] is r

    def test_sampling_caps_size(self):
        r = Relation.from_iter(1, [(i,) for i in range(500)])
        sampled = sample_relations({"r": r}, 50)
        assert len(sampled["r"]) == 50

    def test_chosen_order_is_correct(self):
        edges = random_edges(200, 25, seed=2)
        relation = Relation.from_iter(2, edges)
        rule = Rule("t", [Var("a"), Var("b"), Var("c")], TRIANGLE_ATOMS)
        optimizer = SamplingOptimizer(sample_size=64)
        order = optimizer(rule, {"E": relation})
        plan = rule.plan(order)
        rows = set(LeapfrogTrieJoin(plan, {"E": relation}).run())
        default = set(LeapfrogTrieJoin(rule.plan(), {"E": relation}).run())
        index = [plan.var_order.index(v) for v in ("a", "b", "c")]
        remapped = {tuple(r[i] for i in index) for r in rows}
        base_index = [rule.plan().var_order.index(v) for v in ("a", "b", "c")]
        base = {tuple(r[i] for i in base_index) for r in default}
        assert remapped == base

    def test_decision_cached_per_version(self):
        relation = Relation.from_iter(2, random_edges(50, 10, seed=3))
        rule = Rule("t", [Var("a"), Var("b"), Var("c")], TRIANGLE_ATOMS)
        optimizer = SamplingOptimizer(sample_size=32)
        first = optimizer(rule, {"E": relation})
        assert optimizer(rule, {"E": relation}) == first

    def test_measure_order_returns_cost(self):
        relation = Relation.from_iter(2, random_edges(60, 12, seed=4))
        rule = Rule("t", [Var("a"), Var("b"), Var("c")], TRIANGLE_ATOMS)
        cost = measure_order(rule, {"E": relation}, ("a", "b", "c"))
        assert cost is not None and cost[0] > 0


class TestBaselineJoins:
    def test_agree_with_lftj(self):
        edges = random_edges(300, 30, seed=5)
        relation = Relation.from_iter(2, edges)
        plan = Rule("t", [Var("a"), Var("b"), Var("c")], TRIANGLE_ATOMS).plan()
        lftj = set(LeapfrogTrieJoin(plan, {"E": relation}).run())
        index = [plan.var_order.index(v) for v in ("a", "b", "c")]
        expected = {tuple(r[i] for i in index) for r in lftj}
        assert hash_join_query(TRIANGLE_ATOMS, {"E": relation}, ["a", "b", "c"]) == expected
        assert merge_join_query(TRIANGLE_ATOMS, {"E": relation}, ["a", "b", "c"]) == expected

    def test_intermediate_rows_reported(self):
        relation = Relation.from_iter(2, random_edges(100, 12, seed=6))
        stats = {}
        hash_join_query(TRIANGLE_ATOMS, {"E": relation}, ["a", "b", "c"], stats)
        # binary plans materialize the open wedges: far more rows than output
        assert stats["intermediate_rows"] > 0

    def test_cross_product_no_shared_vars(self):
        A = Relation.from_iter(2, [(1, 2)])
        B = Relation.from_iter(2, [(3, 4)])
        atoms = [PredAtom("A", [Var("a"), Var("b")]),
                 PredAtom("B", [Var("c"), Var("d")])]
        assert merge_join_query(atoms, {"A": A, "B": B}) == {(1, 2, 3, 4)}
        assert hash_join_query(atoms, {"A": A, "B": B}) == {(1, 2, 3, 4)}

    def test_rejects_unsupported_shapes(self):
        with pytest.raises(ValueError):
            hash_join_query([PredAtom("R", [Const(1), Var("x")])],
                            {"R": Relation.empty(2)})
        with pytest.raises(ValueError):
            hash_join_query([PredAtom("R", [Var("x")], negated=True)],
                            {"R": Relation.empty(1)})
