"""Plan memoization and the workspace-level plan/index cache hierarchy."""

from repro import stats as global_stats
from repro.engine.evaluator import Evaluator, RuleSet
from repro.engine.ir import PredAtom, Var
from repro.engine.plancache import PlanCache, rule_schema_key
from repro.engine.rules import Rule
from repro.runtime.workspace import Workspace
from repro.storage.relation import Delta, Relation


def chain_rule():
    return Rule(
        "P",
        [Var("x"), Var("z")],
        [PredAtom("E", [Var("x"), Var("y")]), PredAtom("E", [Var("y"), Var("z")])],
    )


def test_rule_plan_memoized_across_passes():
    """Regression: repeated evaluation passes must reuse one Plan object."""
    rule = chain_rule()
    assert rule.plan() is rule.plan()
    assert rule.plan(["x", "y", "z"]) is rule.plan(["x", "y", "z"])
    assert rule.plan(("x", "y", "z")) is rule.plan(["x", "y", "z"])
    assert rule.plan(["y", "x", "z"]) is not rule.plan(["x", "y", "z"])


def test_evaluator_reuses_plan_across_evaluations():
    rule = chain_rule()
    cache = PlanCache()
    evaluator = Evaluator(RuleSet([rule]), plan_cache=cache)
    edges = Relation.from_iter(2, [(1, 2), (2, 3)])
    first, _ = evaluator.evaluate({"E": edges})
    assert cache.misses == 1
    second, _ = evaluator.evaluate({"E": edges.insert((3, 4))})
    assert sorted(second["P"]) == [(1, 3), (2, 4)]
    assert cache.misses == 1  # second pass: pure hit
    assert cache.hits >= 1


def test_plan_cache_survives_rule_recompilation():
    """Structurally identical rules (fresh objects, as produced by a
    program re-install) share one cached plan."""
    cache = PlanCache()
    first = cache.plan_for(chain_rule())
    again = cache.plan_for(chain_rule())
    assert first is again
    assert cache.stats_snapshot()["hits"] == 1


def test_schema_key_distinguishes_arity():
    narrow = chain_rule()
    wide = Rule(
        "P",
        [Var("x"), Var("z")],
        [
            PredAtom("E", [Var("x"), Var("y"), Var("w")]),
            PredAtom("E", [Var("y"), Var("z"), Var("w2")]),
        ],
    )
    assert rule_schema_key(narrow) != rule_schema_key(wide)


def test_workspace_second_evaluation_hits_plan_cache():
    ws = Workspace()
    ws.addblock(
        """
        edge(x, y) -> int(x), int(y).
        path(x, y) <- edge(x, y).
        """
    )
    ws.load("edge", [(1, 2), (2, 3)])
    baseline = ws.engine_stats()["plan_cache"]
    ws.load("edge", [(3, 4)])  # same rule, next transaction
    after = ws.engine_stats()["plan_cache"]
    assert after["hits"] > baseline["hits"]
    assert after["misses"] == baseline["misses"]


def test_workspace_query_plans_survive_across_transactions():
    ws = Workspace()
    ws.addblock("edge(x, y) -> int(x), int(y).")
    ws.load("edge", [(1, 2), (2, 3)])
    query = "_(x, z) <- edge(x, y), edge(y, z)."
    assert ws.query(query) == [(1, 3)]
    hits_before = ws.engine_stats()["plan_cache"]["hits"]
    assert ws.query(query) == [(1, 3)]
    assert ws.engine_stats()["plan_cache"]["hits"] > hits_before


def test_rebranching_unchanged_relation_keeps_indexes_warm():
    ws = Workspace()
    ws.addblock("edge(x, y) -> int(x), int(y).")
    ws.load("edge", [(i, i + 1) for i in range(64)])
    # joining on the second column forces a permuted secondary index
    query = "_(x, z) <- edge(x, y), edge(z, y)."
    before = global_stats.snapshot()
    ws.query(query)  # builds the secondary index on the shared version
    built = global_stats.delta_since(before)
    # the pure backend builds a permuted tuple index; the columnar one
    # builds a permuted columnar layout — either way it is a cold build
    assert (
        built.get("relation.index_misses", 0) > 0
        or built.get("relation.columnar_misses", 0) > 0
    )
    before = global_stats.snapshot()
    ws.create_branch("fork")
    ws.switch("fork")
    ws.query(query)
    bumped = global_stats.delta_since(before)
    # the branch shares the relation version: the permuted structure
    # built before the branch must be reused, not rebuilt (the columnar
    # backend may reuse the whole encoded join setup, which is keyed by
    # the same relation versions and never re-touches the layouts)
    assert (
        bumped.get("relation.index_hits", 0) > 0
        or bumped.get("relation.columnar_hits", 0) > 0
        or bumped.get("join.columnar_setup_hits", 0) > 0
    )
    assert bumped.get("relation.index_misses", 0) == 0
    assert bumped.get("relation.columnar_misses", 0) == 0


def test_delta_application_promotes_flat_arrays():
    relation = Relation.from_iter(2, [(i, i % 7) for i in range(128)])
    relation.flat((1, 0))  # materialize the array backend
    before = global_stats.snapshot()
    updated = relation.apply(Delta.from_iters([(999, 0)], [(0, 0)]))
    assert updated.has_flat((1, 0))
    bumped = global_stats.delta_since(before)
    assert bumped.get("relation.flat_promotions", 0) >= 1
    assert updated.flat((1, 0)) == sorted(
        (b, a) for a, b in updated
    )
