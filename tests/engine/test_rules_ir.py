"""Unit tests for the engine IR and rule helpers."""

import pytest

from repro.engine import ir
from repro.engine.rules import AggSpec, Rule


class TestExpressions:
    def test_eval_arithmetic(self):
        expr = ir.BinOp("+", ir.Var("x"), ir.BinOp("*", ir.Const(2), ir.Var("y")))
        assert ir.eval_expr(expr, {"x": 1, "y": 3}) == 7

    def test_eval_builtins(self):
        assert ir.eval_expr(ir.Call("abs", [ir.Const(-4)]), {}) == 4
        assert ir.eval_expr(
            ir.Call("max", [ir.Var("a"), ir.Const(2)]), {"a": 9}
        ) == 9
        assert ir.eval_expr(ir.Call("sqrt", [ir.Const(9.0)]), {}) == 3.0

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            ir.BinOp("**", ir.Const(1), ir.Const(2))
        with pytest.raises(ValueError):
            ir.Call("mystery", [])

    def test_expr_vars(self):
        expr = ir.BinOp("-", ir.Var("x"), ir.Call("abs", [ir.Var("y")]))
        assert ir.expr_vars(expr) == {"x", "y"}
        assert ir.expr_vars(ir.Const(5)) == set()

    def test_structural_equality(self):
        a = ir.BinOp("+", ir.Var("x"), ir.Const(1))
        b = ir.BinOp("+", ir.Var("x"), ir.Const(1))
        assert a == b and hash(a) == hash(b)
        assert a != ir.BinOp("+", ir.Var("x"), ir.Const(2))

    def test_const_type_sensitive(self):
        assert ir.Const(1) != ir.Const(1.0)
        assert ir.Const(1) != ir.Const(True)


class TestAtoms:
    def test_compare_holds(self):
        atom = ir.CompareAtom("<=", ir.Var("a"), ir.Const(5))
        assert atom.holds({"a": 5})
        assert not atom.holds({"a": 6})
        assert atom.var_names() == {"a"}

    def test_assign_compute(self):
        atom = ir.AssignAtom("z", ir.BinOp("*", ir.Var("x"), ir.Const(3)))
        assert atom.compute({"x": 4}) == 12
        assert atom.input_vars() == {"x"}

    def test_pred_atom_vars(self):
        atom = ir.PredAtom("R", [ir.Var("x"), ir.Const(1), ir.Var("x")])
        assert atom.var_names() == ["x"]
        assert atom.arity == 3


class TestRule:
    def test_head_vars_plain(self):
        rule = Rule("h", [ir.Var("a"), ir.Const(1)],
                    [ir.PredAtom("R", [ir.Var("a"), ir.Var("b")])])
        assert rule.head_vars() == ["a"]

    def test_head_vars_aggregate_includes_all_bound(self):
        rule = Rule(
            "total", [ir.Var("g"), ir.Var("u")],
            [ir.PredAtom("R", [ir.Var("g"), ir.Var("e"), ir.Var("v")])],
            agg=AggSpec("sum", "u", "v"), n_keys=1,
        )
        assert set(rule.head_vars()) == {"g", "e", "v"}
        assert "u" not in rule.head_vars()

    def test_body_preds(self):
        rule = Rule("h", [ir.Var("x")], [
            ir.PredAtom("A", [ir.Var("x")]),
            ir.PredAtom("B", [ir.Var("x")], negated=True),
            ir.CompareAtom("<", ir.Var("x"), ir.Const(9)),
        ])
        assert rule.body_preds() == {"A", "B"}
        assert rule.body_preds(positive_only=True) == {"A"}

    def test_plan_cached(self):
        rule = Rule("h", [ir.Var("x")], [ir.PredAtom("A", [ir.Var("x")])])
        assert rule.plan() is rule.plan()
        assert rule.plan(("x",)) is rule.plan(("x",))

    def test_agg_head_must_end_with_result_var(self):
        with pytest.raises(ValueError):
            Rule("t", [ir.Var("u"), ir.Var("g")],
                 [ir.PredAtom("R", [ir.Var("g"), ir.Var("v")])],
                 agg=AggSpec("sum", "u", "v"))

    def test_bad_agg_function(self):
        with pytest.raises(ValueError):
            AggSpec("median", "u", "v")
