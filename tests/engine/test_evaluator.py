"""Tests for bottom-up evaluation: strata, recursion, aggregates, counts."""

import pytest

from repro.engine.evaluator import (
    EvaluationError,
    Evaluator,
    FunctionalDependencyViolation,
    RuleSet,
)
from repro.engine.ir import AssignAtom, BinOp, CompareAtom, Const, PredAtom, Var
from repro.engine.rules import AggSpec, Rule, StratificationError, stratify
from repro.storage.relation import Relation


def ev(rules, relations):
    return Evaluator(RuleSet(rules)).evaluate(relations)


class TestStratification:
    def test_linear_strata(self):
        rules = [
            Rule("b", [Var("x")], [PredAtom("a", [Var("x")])]),
            Rule("c", [Var("x")], [PredAtom("b", [Var("x")])]),
        ]
        strata, recursive = stratify(rules)
        assert strata.index(["b"]) < strata.index(["c"])
        assert recursive == [False, False]

    def test_recursive_component(self):
        rules = [
            Rule("tc", [Var("x"), Var("y")], [PredAtom("e", [Var("x"), Var("y")])]),
            Rule("tc", [Var("x"), Var("z")],
                 [PredAtom("tc", [Var("x"), Var("y")]),
                  PredAtom("e", [Var("y"), Var("z")])]),
        ]
        strata, recursive = stratify(rules)
        assert strata == [["tc"]]
        assert recursive == [True]

    def test_mutual_recursion(self):
        rules = [
            Rule("even", [Var("x")], [PredAtom("zero", [Var("x")])]),
            Rule("even", [Var("y")],
                 [PredAtom("odd", [Var("x")]), PredAtom("succ", [Var("x"), Var("y")])]),
            Rule("odd", [Var("y")],
                 [PredAtom("even", [Var("x")]), PredAtom("succ", [Var("x"), Var("y")])]),
        ]
        strata, recursive = stratify(rules)
        assert sorted(strata[0]) == ["even", "odd"]
        assert recursive == [True]

    def test_negation_through_recursion_rejected(self):
        rules = [
            Rule("p", [Var("x")],
                 [PredAtom("a", [Var("x")]), PredAtom("q", [Var("x")], negated=True)]),
            Rule("q", [Var("x")],
                 [PredAtom("a", [Var("x")]), PredAtom("p", [Var("x")], negated=True)]),
        ]
        with pytest.raises(StratificationError):
            stratify(rules)

    def test_aggregate_through_recursion_rejected(self):
        rules = [
            Rule("s", [Var("u")], [PredAtom("s", [Var("v")])],
                 agg=AggSpec("sum", "u", "v"), n_keys=0),
        ]
        with pytest.raises(StratificationError):
            stratify(rules)

    def test_negation_of_lower_stratum_ok(self):
        rules = [
            Rule("p", [Var("x")], [PredAtom("a", [Var("x")])]),
            Rule("q", [Var("x")],
                 [PredAtom("a", [Var("x")]), PredAtom("p", [Var("x")], negated=True)]),
        ]
        strata, _ = stratify(rules)
        assert strata.index(["p"]) < strata.index(["q"])


class TestEvaluation:
    def test_transitive_closure(self):
        E = Relation.from_iter(2, [(1, 2), (2, 3), (3, 4), (5, 6)])
        rules = [
            Rule("tc", [Var("x"), Var("y")], [PredAtom("E", [Var("x"), Var("y")])]),
            Rule("tc", [Var("x"), Var("z")],
                 [PredAtom("tc", [Var("x"), Var("y")]),
                  PredAtom("E", [Var("y"), Var("z")])]),
        ]
        relations, states = ev(rules, {"E": E})
        assert set(relations["tc"]) == {
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (5, 6),
        }
        assert states["tc"].kind == "recursive"

    def test_cyclic_graph_terminates(self):
        E = Relation.from_iter(2, [(1, 2), (2, 1)])
        rules = [
            Rule("tc", [Var("x"), Var("y")], [PredAtom("E", [Var("x"), Var("y")])]),
            Rule("tc", [Var("x"), Var("z")],
                 [PredAtom("tc", [Var("x"), Var("y")]),
                  PredAtom("E", [Var("y"), Var("z")])]),
        ]
        relations, _ = ev(rules, {"E": E})
        assert set(relations["tc"]) == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_support_counts_existential_collapsed(self):
        # x is existential: support counts are per *distinct*
        # non-existential derivation (the existence-diff maintenance
        # path keeps them consistent; see test_ivm for the updates)
        A = Relation.from_iter(2, [(1, 10), (2, 10), (3, 30)])
        rules = [Rule("proj", [Var("y")], [PredAtom("A", [Var("x"), Var("y")])])]
        relations, states = ev(rules, {"A": A})
        assert set(relations["proj"]) == {(10,), (30,)}
        counts = dict(states["proj"].counts.items())
        assert counts == {(10,): 1, (30,): 1}

    def test_support_counts_multiple_derivation_paths(self):
        A = Relation.from_iter(2, [(1, 10), (2, 10), (3, 30)])
        B = Relation.from_iter(1, [(1,), (2,), (3,)])
        # y co-occurs with the head variable x: real multiplicities
        rules = [Rule("pair", [Var("y")],
                      [PredAtom("A", [Var("x"), Var("y")]),
                       PredAtom("B", [Var("x")])])]
        relations, states = ev(rules, {"A": A, "B": B})
        counts = dict(states["pair"].counts.items())
        assert counts == {(10,): 2, (30,): 1}

    def test_multiple_rules_sum_counts(self):
        A = Relation.from_iter(1, [(1,)])
        B = Relation.from_iter(1, [(1,), (2,)])
        rules = [
            Rule("u", [Var("x")], [PredAtom("A", [Var("x")])]),
            Rule("u", [Var("x")], [PredAtom("B", [Var("x")])]),
        ]
        relations, states = ev(rules, {"A": A, "B": B})
        assert dict(states["u"].counts.items()) == {(1,): 2, (2,): 1}

    def test_functional_dependency_violation(self):
        A = Relation.from_iter(2, [(1, 10), (1, 20)])
        rules = [
            Rule("f", [Var("k"), Var("v")],
                 [PredAtom("A", [Var("k"), Var("v")])], n_keys=1),
        ]
        with pytest.raises(FunctionalDependencyViolation):
            ev(rules, {"A": A})

    def test_mixed_agg_plain_rules_rejected(self):
        rules = [
            Rule("p", [Var("u")], [PredAtom("a", [Var("v")])],
                 agg=AggSpec("sum", "u", "v"), n_keys=0),
            Rule("p", [Var("x")], [PredAtom("b", [Var("x")])]),
        ]
        with pytest.raises(EvaluationError):
            RuleSet(rules)


class TestAggregates:
    def make(self, fn):
        return Rule(
            "out", [Var("k"), Var("u")],
            [PredAtom("A", [Var("k"), Var("e"), Var("v")])],
            agg=AggSpec(fn, "u", "v"), n_keys=1,
        )

    def setup_method(self):
        self.A = Relation.from_iter(
            3, [("g1", 1, 10.0), ("g1", 2, 30.0), ("g2", 1, 5.0)]
        )

    def test_sum(self):
        relations, _ = ev([self.make("sum")], {"A": self.A})
        assert set(relations["out"]) == {("g1", 40.0), ("g2", 5.0)}

    def test_count(self):
        relations, _ = ev([self.make("count")], {"A": self.A})
        assert set(relations["out"]) == {("g1", 2), ("g2", 1)}

    def test_min_max(self):
        relations, _ = ev([self.make("min")], {"A": self.A})
        assert set(relations["out"]) == {("g1", 10.0), ("g2", 5.0)}
        relations, _ = ev([self.make("max")], {"A": self.A})
        assert set(relations["out"]) == {("g1", 30.0), ("g2", 5.0)}

    def test_avg(self):
        relations, _ = ev([self.make("avg")], {"A": self.A})
        assert set(relations["out"]) == {("g1", 20.0), ("g2", 5.0)}

    def test_duplicate_values_count_separately(self):
        A = Relation.from_iter(2, [("a", 7.0), ("b", 7.0)])
        rules = [Rule("total", [Var("u")],
                      [PredAtom("A", [Var("k"), Var("v")])],
                      agg=AggSpec("sum", "u", "v"), n_keys=0)]
        relations, _ = ev(rules, {"A": A})
        assert set(relations["total"]) == {(14.0,)}

    def test_empty_group_absent(self):
        relations, _ = ev([self.make("sum")], {"A": Relation.empty(3)})
        assert len(relations["out"]) == 0

    def test_weighted_sum_via_assignment(self):
        stock = Relation.from_iter(2, [("a", 2.0), ("b", 3.0)])
        space = Relation.from_iter(2, [("a", 1.5), ("b", 2.0)])
        rule = Rule(
            "totalShelf", [Var("u")],
            [PredAtom("Stock", [Var("p"), Var("x")]),
             PredAtom("space", [Var("p"), Var("y")]),
             AssignAtom("z", BinOp("*", Var("x"), Var("y")))],
            agg=AggSpec("sum", "u", "z"), n_keys=0,
        )
        relations, _ = ev([rule], {"Stock": stock, "space": space})
        assert set(relations["totalShelf"]) == {(9.0,)}


class TestReuse:
    def test_reuse_skips_recompute(self):
        A = Relation.from_iter(1, [(1,)])
        rules = [Rule("p", [Var("x")], [PredAtom("A", [Var("x")])])]
        ruleset = RuleSet(rules)
        relations, states = Evaluator(ruleset).evaluate({"A": A})
        sentinel = Relation.from_iter(1, [(42,)])
        reused, reused_states = Evaluator(ruleset).evaluate(
            {"A": A}, reuse=({"p": sentinel}, {"p": states["p"]})
        )
        assert reused["p"] is sentinel
