"""Tests for trie iterators: treap and array backends, virtual iterators."""

import pytest

from repro.engine.iterators import (
    ArrayTrieIterator,
    RangeIterator,
    SingletonIterator,
    TreapTrieIterator,
    trie_iterator,
)
from repro.storage.relation import Relation

TUPLES = [(1, 3, 4), (1, 3, 5), (1, 4, 6), (1, 4, 8), (1, 4, 9), (1, 5, 2), (3, 5, 2)]


def backends():
    relation = Relation.from_iter(3, TUPLES)
    return [
        TreapTrieIterator(relation.index_root((0, 1, 2)), 3),
        ArrayTrieIterator(relation.flat((0, 1, 2)), 3),
    ]


@pytest.mark.parametrize("backend_index", [0, 1])
class TestTrieNavigation:
    """The paper's Figure 4 trie, navigated level by level."""

    def test_first_level(self, backend_index):
        it = backends()[backend_index]
        it.open()
        assert it.key() == 1
        it.next()
        assert it.key() == 3
        it.next()
        assert it.at_end()

    def test_open_descends_to_children(self, backend_index):
        it = backends()[backend_index]
        it.open()  # 1
        it.open()  # 3
        assert it.key() == 3
        it.next()
        assert it.key() == 4
        it.next()
        assert it.key() == 5
        it.next()
        assert it.at_end()

    def test_up_restores_parent(self, backend_index):
        it = backends()[backend_index]
        it.open()
        it.open()
        it.next()  # at (1, 4)
        it.open()  # third level: 6, 8, 9
        assert it.key() == 6
        it.seek(7)
        assert it.key() == 8
        it.up()
        assert it.key() == 4
        it.next()
        assert it.key() == 5

    def test_seek_within_level(self, backend_index):
        it = backends()[backend_index]
        it.open()
        it.open()  # level 2 of prefix (1,): 3, 4, 5
        it.seek(4)
        assert it.key() == 4
        it.seek(9)
        assert it.at_end()

    def test_full_enumeration(self, backend_index):
        it = backends()[backend_index]
        seen = []

        def walk(depth):
            it.open()
            while not it.at_end():
                if depth == 2:
                    seen.append(it.context()[len(it._fixed):] + (it.key(),))
                else:
                    walk(depth + 1)
                it.next()
            it.up()

        walk(0)
        assert seen == TUPLES

    def test_context(self, backend_index):
        it = backends()[backend_index]
        it.open()
        assert it.context() == ()
        it.open()
        assert it.context() == (1,)
        it.open()
        assert it.context() == (1, 3)


class TestFixedPrefix:
    def test_constant_prefix_restricts(self):
        relation = Relation.from_iter(3, TUPLES)
        it = trie_iterator(relation, (0, 1, 2), fixed_prefix=(1, 4))
        assert it.check_fixed_prefix()
        it.open()
        assert [it.key()] == [6]
        it.next()
        assert it.key() == 8

    def test_absent_prefix(self):
        relation = Relation.from_iter(3, TUPLES)
        it = trie_iterator(relation, (0, 1, 2), fixed_prefix=(2,))
        assert not it.check_fixed_prefix()

    def test_empty_relation_prefix(self):
        it = trie_iterator(Relation.empty(2), (0, 1), fixed_prefix=())
        assert not it.check_fixed_prefix()


class TestPermutedIterators:
    def test_secondary_index_order(self):
        relation = Relation.from_iter(2, [(1, "b"), (2, "a"), (3, "b")])
        it = trie_iterator(relation, (1, 0))
        it.open()
        assert it.key() == "a"
        it.next()
        assert it.key() == "b"
        it.open()
        assert it.key() == 1
        it.next()
        assert it.key() == 3

    def test_prefer_array(self):
        relation = Relation.from_iter(2, [(1, 2)])
        it = trie_iterator(relation, (0, 1), prefer_array=True)
        assert isinstance(it, ArrayTrieIterator)
        # once cached, the array backend is reused automatically
        it2 = trie_iterator(relation, (0, 1))
        assert isinstance(it2, ArrayTrieIterator)


class TestVirtualIterators:
    def test_singleton(self):
        it = SingletonIterator(5)
        assert it.key() == 5 and not it.at_end()
        it.seek(3)
        assert it.key() == 5
        it.seek(5)
        assert not it.at_end()
        it.seek(6)
        assert it.at_end()

    def test_singleton_next_exhausts(self):
        it = SingletonIterator("x")
        it.next()
        assert it.at_end()

    def test_range_iterator(self):
        it = RangeIterator(2, 6)
        seen = []
        while not it.at_end():
            seen.append(it.key())
            it.next()
        assert seen == [2, 3, 4, 5]
        it = RangeIterator(0, 100)
        it.seek(42)
        assert it.key() == 42
