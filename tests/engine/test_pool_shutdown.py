"""Worker-pool lifecycle: interpreter exit must stop live workers.

``JoinWorkerPool`` registers every started pool in a ``WeakSet`` and an
``atexit`` hook shuts them down, so a REPL session or benchmark that
parallelized one join exits cleanly instead of leaking worker
processes.  These tests cover the registry bookkeeping in-process and
the exit hook end-to-end in a subprocess.
"""

import subprocess
import sys
import textwrap

from repro.engine.pool import _LIVE_POOLS, JoinWorkerPool, _shutdown_live_pools


class TestRegistry:
    def test_unstarted_pool_is_not_registered(self):
        pool = JoinWorkerPool(max_workers=2)
        assert pool not in _LIVE_POOLS

    def test_started_pool_registered_until_shutdown(self):
        pool = JoinWorkerPool(max_workers=2)
        pool._ensure_executor()
        assert pool in _LIVE_POOLS
        pool.shutdown()
        assert pool not in _LIVE_POOLS
        assert pool._executor is None

    def test_shutdown_idempotent(self):
        pool = JoinWorkerPool(max_workers=2)
        pool._ensure_executor()
        pool.shutdown()
        pool.shutdown()  # second call is a no-op, not an error
        assert pool not in _LIVE_POOLS

    def test_exit_hook_stops_live_pools(self):
        pool = JoinWorkerPool(max_workers=2)
        executor = pool._ensure_executor()
        _shutdown_live_pools()  # what atexit runs
        assert pool not in _LIVE_POOLS
        assert pool._executor is None
        # the underlying executor really stopped: new submits are refused
        try:
            executor.submit(int)
        except RuntimeError:
            pass
        else:  # pragma: no cover - would mean workers leaked
            raise AssertionError("executor accepted work after exit hook")

    def test_exit_hook_safe_when_empty(self):
        _shutdown_live_pools()
        _shutdown_live_pools()

    def test_dead_pool_drops_out_of_registry(self):
        pool = JoinWorkerPool(max_workers=2)
        pool._ensure_executor()
        pool.shutdown()
        before = len(_LIVE_POOLS)
        del pool
        assert len(_LIVE_POOLS) <= before  # WeakSet holds no strong refs


class TestInterpreterExit:
    def test_process_with_live_pool_exits_cleanly(self):
        """A process that starts workers and never calls shutdown()
        must still terminate promptly with status 0."""
        script = textwrap.dedent("""
            from repro.engine.pool import JoinWorkerPool
            pool = JoinWorkerPool(max_workers=2)
            executor = pool._ensure_executor()
            assert executor.submit(sum, (1, 2, 3)).result() == 6
            print("ok")
            # no pool.shutdown(): the atexit hook must handle it
        """)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"
