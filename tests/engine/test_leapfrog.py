"""Unary leapfrog join — including the paper's Figure 3, verbatim."""

from repro.ds.pset import PSet
from repro.engine.leapfrog import LeapfrogJoin
from repro.engine.sensitivity import SensitivityRecorder
from repro.storage.datum import BOTTOM, TOP


def run_join(*sets, recorder=None, names=None):
    cursors = [PSet.from_iter(s).cursor() for s in sets]
    trackers = None
    if recorder is not None:
        trackers = [
            recorder.tracker(name, (0,), 0, ()) for name in names
        ]
    join = LeapfrogJoin(cursors, trackers)
    out = []
    while not join.at_end():
        out.append(join.key)
        join.next()
    return out


class TestFigure3:
    """The paper's running example, asserted verbatim."""

    A = [0, 1, 3, 4, 5, 6, 7, 8, 9, 11]
    B = [0, 2, 6, 7, 8, 9]
    C = [2, 4, 5, 8, 10]

    def test_intersection_is_8(self):
        assert run_join(self.A, self.B, self.C) == [8]

    def test_sensitivity_intervals_match_paper(self):
        recorder = SensitivityRecorder()
        run_join(self.A, self.B, self.C, recorder=recorder, names="ABC")
        index = recorder.freeze()
        assert index.intervals_for("A")[0][()] == [
            (BOTTOM, 0), (2, 3), (8, 8), (10, 11),
        ]
        assert index.intervals_for("B")[0][()] == [
            (BOTTOM, 0), (3, 6), (8, 8), (11, TOP),
        ]
        assert index.intervals_for("C")[0][()] == [
            (BOTTOM, 2), (6, 8), (8, 10),
        ]

    def test_paper_claims_about_changes(self):
        recorder = SensitivityRecorder()
        run_join(self.A, self.B, self.C, recorder=recorder, names="ABC")
        index = recorder.freeze()
        # "inserting the fact C(3) or deleting the fact C(4) would not
        # affect the computation"
        assert not index.tuple_affects("C", (3,))
        assert not index.tuple_affects("C", (4,))
        # changes inside recorded intervals do affect it
        assert index.tuple_affects("C", (7,))
        assert index.tuple_affects("A", (2,))
        assert index.tuple_affects("B", (5,))
        assert index.tuple_affects("B", (100,))  # [11, +inf]
        assert not index.tuple_affects("A", (1,))


class TestLeapfrogGeneral:
    def test_pairwise(self):
        assert run_join([1, 2, 3], [2, 3, 4]) == [2, 3]

    def test_disjoint(self):
        assert run_join([1, 3], [2, 4]) == []

    def test_identical(self):
        assert run_join([1, 2], [1, 2], [1, 2]) == [1, 2]

    def test_single_iterator(self):
        assert run_join([5, 6, 7]) == [5, 6, 7]

    def test_one_empty(self):
        assert run_join([1, 2], []) == []

    def test_strings(self):
        assert run_join(["a", "b", "d"], ["b", "c", "d"]) == ["b", "d"]

    def test_seek_interface(self):
        cursors = [PSet.from_iter([1, 3, 5, 7, 9]).cursor(),
                   PSet.from_iter([3, 5, 7]).cursor()]
        join = LeapfrogJoin(cursors)
        assert join.key == 3
        join.seek(6)
        assert join.key == 7
        join.next()
        assert join.at_end()

    def test_randomized_vs_set_intersection(self):
        import random

        rng = random.Random(42)
        for _ in range(50):
            sets = [
                set(rng.sample(range(60), rng.randint(0, 25)))
                for _ in range(rng.randint(1, 5))
            ]
            expected = sorted(set.intersection(*sets)) if sets else []
            assert run_join(*sets) == expected
