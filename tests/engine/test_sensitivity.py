"""Sensitivity recorders and indexes beyond the Figure 3 golden test."""

from repro.engine.sensitivity import (
    SensitivityIndex,
    SensitivityRecorder,
    canonical_pred,
)
from repro.storage.datum import BOTTOM, TOP
from repro.storage.relation import Delta


class TestCanonicalNames:
    def test_passthrough(self):
        assert canonical_pred("sales") == "sales"
        assert canonical_pred("+sales") == "+sales"

    def test_delta_pass_names(self):
        assert canonical_pred("@new:sales") == "sales"
        assert canonical_pred("@old:sales") == "sales"

    def test_virtuals_dropped(self):
        assert canonical_pred("@delta") is None
        assert canonical_pred("@cand") is None
        assert canonical_pred("@bound:x") is None

    def test_start_stripped(self):
        assert canonical_pred("inventory@start") == "inventory"
        assert canonical_pred("@new:inventory@start") == "inventory"


class TestRecorder:
    def test_contextual_intervals(self):
        recorder = SensitivityRecorder()
        recorder.tracker("R", (0, 1), 1, ("a",)).record(1, 5)
        recorder.tracker("R", (0, 1), 1, ("b",)).record(10, 20)
        index = recorder.freeze()
        assert index.tuple_affects("R", ("a", 3))
        assert not index.tuple_affects("R", ("a", 9))
        assert index.tuple_affects("R", ("b", 15))
        assert not index.tuple_affects("R", ("c", 3))

    def test_permuted_lookup(self):
        recorder = SensitivityRecorder()
        # recorded under the (1, 0) secondary index
        recorder.tracker("R", (1, 0), 0, ()).record(5, 5)
        index = recorder.freeze()
        # tuple (x, 5) permutes to (5, x): level 0 value is 5
        assert index.tuple_affects("R", ("x", 5))
        assert not index.tuple_affects("R", ("x", 6))

    def test_record_point_and_everything(self):
        recorder = SensitivityRecorder()
        recorder.record_point("N", ("a", 1))
        recorder.record_everything("B")
        index = recorder.freeze()
        assert index.tuple_affects("N", ("a", 1))
        assert not index.tuple_affects("N", ("a", 2))
        assert index.tuple_affects("B", ("anything",))

    def test_record_prefix(self):
        recorder = SensitivityRecorder()
        recorder.record_prefix("R", (0, 1), ("k",))
        index = recorder.freeze()
        assert index.tuple_affects("R", ("k", 99))
        assert not index.tuple_affects("R", ("other", 99))

    def test_freeze_cached_until_dirty(self):
        recorder = SensitivityRecorder()
        recorder.tracker("R", (0,), 0, ()).record(1, 2)
        first = recorder.freeze()
        assert recorder.freeze() is first
        recorder.tracker("R", (0,), 0, ()).record(5, 6)
        assert recorder.freeze() is not first

    def test_merge_from(self):
        a = SensitivityRecorder()
        a.tracker("R", (0,), 0, ()).record(1, 2)
        b = SensitivityRecorder()
        b.tracker("R", (0,), 0, ()).record(10, 12)
        a.merge_from(b)
        index = a.freeze()
        assert index.tuple_affects("R", (1,))
        assert index.tuple_affects("R", (11,))
        assert not index.tuple_affects("R", (5,))

    def test_delta_affects(self):
        recorder = SensitivityRecorder()
        recorder.tracker("R", (0,), 0, ()).record(10, 20)
        index = recorder.freeze()
        assert index.delta_affects("R", Delta.from_iters([(15,)], ()))
        assert index.delta_affects("R", Delta.from_iters((), [(10,)]))
        assert not index.delta_affects("R", Delta.from_iters([(5,)], [(25,)]))
        assert not index.delta_affects("S", Delta.from_iters([(15,)], ()))


class TestIntervalRepresentation:
    def test_touching_intervals_kept_separate(self):
        recorder = SensitivityRecorder()
        tracker = recorder.tracker("R", (0,), 0, ())
        tracker.record(6, 8)
        tracker.record(8, 10)
        index = recorder.freeze()
        assert index.intervals_for("R")[0][()] == [(6, 8), (8, 10)]
        for value in (6, 7, 8, 9, 10):
            assert index.tuple_affects("R", (value,))
        assert not index.tuple_affects("R", (5,))
        assert not index.tuple_affects("R", (11,))

    def test_overlapping_intervals_merged(self):
        recorder = SensitivityRecorder()
        tracker = recorder.tracker("R", (0,), 0, ())
        tracker.record(1, 10)
        tracker.record(5, 7)
        index = recorder.freeze()
        assert index.intervals_for("R")[0][()] == [(1, 10)]

    def test_unbounded_endpoints(self):
        recorder = SensitivityRecorder()
        tracker = recorder.tracker("R", (0,), 0, ())
        tracker.record(BOTTOM, 3)
        tracker.record(9, TOP)
        index = recorder.freeze()
        assert index.tuple_affects("R", (-(10**9),))
        assert index.tuple_affects("R", (10**9,))
        assert not index.tuple_affects("R", (5,))

    def test_string_intervals(self):
        recorder = SensitivityRecorder()
        recorder.tracker("R", (0,), 0, ()).record("b", "d")
        index = recorder.freeze()
        assert index.tuple_affects("R", ("c",))
        assert not index.tuple_affects("R", ("a",))
        assert not index.tuple_affects("R", ("e",))
