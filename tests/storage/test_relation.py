"""Tests for persistent relations, deltas, and secondary indexes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds.treap import MISSING
from repro.storage.relation import Delta, Relation


class TestRelationBasics:
    def test_empty(self):
        r = Relation.empty(2)
        assert len(r) == 0 and not r
        assert (1, 2) not in r

    def test_from_iter_dedup_and_sort(self):
        r = Relation.from_iter(2, [(2, 1), (1, 1), (2, 1)])
        assert len(r) == 2
        assert list(r) == [(1, 1), (2, 1)]

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            Relation.from_iter(2, [(1, 2, 3)])
        with pytest.raises(ValueError):
            Relation.empty(2).insert((1,))

    def test_insert_remove_persistent(self):
        r = Relation.from_iter(1, [(1,)])
        r2 = r.insert((2,))
        assert list(r) == [(1,)]
        assert list(r2) == [(1,), (2,)]
        r3 = r2.remove((1,))
        assert list(r3) == [(2,)]

    def test_iter_prefix(self):
        r = Relation.from_iter(3, [(1, 3, 4), (1, 3, 5), (1, 4, 6), (3, 5, 2)])
        assert list(r.iter_prefix((1, 3))) == [(1, 3, 4), (1, 3, 5)]
        assert list(r.iter_prefix((1,))) == [(1, 3, 4), (1, 3, 5), (1, 4, 6)]
        assert list(r.iter_prefix((9,))) == []

    def test_lookup_functional(self):
        r = Relation.from_iter(2, [("a", 1), ("b", 2)])
        assert r.lookup(("a",)) == 1
        assert r.lookup(("z",)) is MISSING
        assert r.lookup(("z",), default=0) == 0

    def test_set_algebra(self):
        a = Relation.from_iter(1, [(1,), (2,), (3,)])
        b = Relation.from_iter(1, [(2,), (4,)])
        assert set(a.union(b)) == {(1,), (2,), (3,), (4,)}
        assert set(a.intersect(b)) == {(2,)}
        assert set(a.subtract(b)) == {(1,), (3,)}

    def test_project(self):
        r = Relation.from_iter(2, [(1, "x"), (2, "x"), (1, "y")])
        assert set(r.project([1])) == {("x",), ("y",)}
        assert set(r.project([1, 0])) == {("x", 1), ("x", 2), ("y", 1)}

    def test_equality_and_hash(self):
        a = Relation.from_iter(1, [(1,), (2,)])
        b = Relation.from_iter(1, [(2,), (1,)])
        assert a == b and hash(a) == hash(b)
        assert a != a.insert((3,))

    def test_sample(self):
        r = Relation.from_iter(1, [(i,) for i in range(100)])
        sample = r.sample(10, seed=1)
        assert len(sample) == 10
        assert all(t in r for t in sample)
        assert r.sample(200) == list(r)


class TestDelta:
    def test_apply(self):
        r = Relation.from_iter(1, [(1,), (2,)])
        d = Delta.from_iters([(3,)], [(1,)])
        assert set(r.apply(d)) == {(2,), (3,)}

    def test_apply_empty_is_identity(self):
        r = Relation.from_iter(1, [(1,)])
        assert r.apply(Delta()) is r

    def test_add_wins_over_remove(self):
        r = Relation.from_iter(1, [(1,)])
        d = Delta.from_iters([(1,)], [(1,)])
        assert set(r.apply(d)) == {(1,)}

    def test_normalized(self):
        base = Relation.from_iter(1, [(1,), (2,)])
        d = Delta.from_iters([(1,), (3,)], [(2,), (9,)])
        n = d.normalized(base)
        assert set(n.added) == {(3,)}
        assert set(n.removed) == {(2,)}

    def test_normalized_overlap_add_wins(self):
        base = Relation.from_iter(1, [(1,)])
        d = Delta.from_iters([(1,)], [(1,)])
        n = d.normalized(base)
        assert not n  # no net change

    def test_inverse_then(self):
        d1 = Delta.from_iters([(1,)], [(2,)])
        d2 = Delta.from_iters([(2,)], [(1,)])
        composed = d1.then(d2)
        assert set(composed.added) == {(2,)}
        assert set(composed.removed) == {(1,)}
        inverse = d1.inverse()
        assert set(inverse.added) == {(2,)} and set(inverse.removed) == {(1,)}

    def test_diff_reconstructs(self):
        a = Relation.from_iter(2, [(1, 1), (2, 2), (3, 3)])
        b = Relation.from_iter(2, [(2, 2), (4, 4)])
        delta = a.diff(b)
        assert a.apply(delta) == b


class TestSecondaryIndexes:
    def test_index_root_permutes(self):
        r = Relation.from_iter(2, [(1, "b"), (2, "a")])
        root = r.index_root((1, 0))
        from repro.ds import treap

        assert [k for k, _ in treap.items(root)] == [("a", 2), ("b", 1)]

    def test_index_maintained_incrementally(self):
        r = Relation.from_iter(2, [(i, 100 - i) for i in range(50)])
        r.index_root((1, 0))  # materialize the index
        r2 = r.apply(Delta.from_iters([(999, -1)], [(0, 100)]))
        from repro.ds import treap

        keys = [k for k, _ in treap.items(r2.index_root((1, 0)))]
        assert (-1, 999) in keys
        assert (100, 0) not in keys
        assert len(keys) == 50

    def test_flat_cache(self):
        r = Relation.from_iter(2, [(2, "a"), (1, "b")])
        flat = r.flat((0, 1))
        assert flat == [(1, "b"), (2, "a")]
        assert r.has_flat((0, 1))
        assert r.flat((1, 0)) == [("a", 2), ("b", 1)]


@settings(max_examples=60, deadline=None)
@given(
    st.sets(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=25),
    st.sets(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=6),
    st.sets(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=6),
)
def test_apply_matches_set_semantics(base, added, removed):
    relation = Relation.from_iter(2, base)
    delta = Delta.from_iters(added, removed)
    result = set(relation.apply(delta))
    assert result == (base - removed) | added
