"""Tests for the value model and 6NF schema declarations."""

import datetime
from decimal import Decimal

from repro.storage.datum import (
    BOTTOM,
    TOP,
    PrimitiveType,
    check_type,
    infer_type,
    type_from_name,
)
from repro.storage.schema import EntityType, PredicateDecl, PredicateKind, Schema


class TestSentinels:
    def test_bottom_below_everything(self):
        for value in (0, -10**9, "", "a", 1.5, False, (), datetime.date(1, 1, 1)):
            assert BOTTOM < value
            assert value > BOTTOM
            assert not value < BOTTOM
        assert BOTTOM <= BOTTOM and not BOTTOM < BOTTOM

    def test_top_above_everything(self):
        for value in (10**9, "zzzz", 1e300, True, ("z",)):
            assert value < TOP
            assert TOP > value
            assert not TOP < value
        assert TOP >= TOP and not TOP > TOP

    def test_tuple_comparison_with_sentinels(self):
        assert (1, 5) < (1, TOP)
        assert (1, TOP) < (2, BOTTOM)
        assert (1, BOTTOM) < (1, 0)
        assert ("a",) < ("a", TOP)  # shorter prefix sorts first


class TestTypeInference:
    def test_infer(self):
        assert infer_type(3) is PrimitiveType.INT
        assert infer_type(3.5) is PrimitiveType.FLOAT
        assert infer_type(True) is PrimitiveType.BOOLEAN
        assert infer_type("x") is PrimitiveType.STRING
        assert infer_type(Decimal("1.5")) is PrimitiveType.DECIMAL
        assert infer_type(datetime.date(2015, 1, 1)) is PrimitiveType.DATE
        assert infer_type(object()) is None

    def test_check_type_widening(self):
        assert check_type(3, PrimitiveType.INT)
        assert check_type(3, PrimitiveType.FLOAT)  # int widens to float
        assert not check_type(3.5, PrimitiveType.INT)
        assert not check_type(True, PrimitiveType.INT)  # bool is boolean
        assert check_type(True, PrimitiveType.BOOLEAN)

    def test_type_from_name(self):
        assert type_from_name("int") is PrimitiveType.INT
        assert type_from_name("float[64]") is PrimitiveType.FLOAT
        assert type_from_name("nonsense") is None


class TestSchema:
    def test_declare_and_get(self):
        decl = PredicateDecl(
            "Stock",
            [EntityType("Product"), PrimitiveType.FLOAT],
            is_functional=True,
        )
        schema = Schema().declare(decl)
        assert schema.get("Stock") is decl
        assert "Stock" in schema and len(schema) == 1
        assert decl.arity == 2 and decl.n_keys == 1

    def test_entity_types(self):
        schema = Schema().declare_entity(EntityType("Product"))
        assert schema.is_entity("Product")
        assert schema.entity("Product") == EntityType("Product")
        assert not schema.is_entity("Nope")

    def test_drop(self):
        schema = Schema().declare(PredicateDecl("p", [PrimitiveType.INT]))
        assert "p" in schema
        assert "p" not in schema.drop("p")
        assert "p" in schema  # original untouched

    def test_with_kind(self):
        decl = PredicateDecl("p", [PrimitiveType.INT])
        assert decl.kind is None
        derived = decl.with_kind(PredicateKind.DERIVED)
        assert derived.kind is PredicateKind.DERIVED
        assert decl.kind is None

    def test_relational_n_keys(self):
        decl = PredicateDecl("edge", [PrimitiveType.INT, PrimitiveType.INT])
        assert decl.n_keys == 2 and not decl.is_functional

    def test_predicates_sorted(self):
        schema = (
            Schema()
            .declare(PredicateDecl("b", [PrimitiveType.INT]))
            .declare(PredicateDecl("a", [PrimitiveType.INT]))
        )
        assert [d.name for d in schema.predicates()] == ["a", "b"]
