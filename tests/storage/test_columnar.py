"""Columnar storage: dictionary encoding, canonicalization, layouts."""

import math

import pytest

from repro import stats as global_stats
from repro.ds.hashing import canonical_key, stable_hash
from repro.storage.columnar import (
    HAVE_NUMPY,
    ColumnarLayout,
    ColumnarUnsupported,
    encode_column,
)
from repro.storage.relation import Relation

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")


class TestEncodeColumn:
    def test_round_trip_preserves_values_and_order(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        codes, domain = encode_column(values)
        assert [domain[c] for c in codes] == values
        assert domain == sorted(set(values))
        # order-preserving: code comparison == value comparison
        for i, u in enumerate(domain):
            for j, v in enumerate(domain):
                assert (i < j) == (u < v)

    def test_domain_holds_python_objects_not_numpy_scalars(self):
        codes, domain = encode_column([10, 20])
        assert all(type(v) is int for v in domain)
        # decoded values must stable_hash exactly like the originals
        assert stable_hash(domain[0]) == stable_hash(10)

    def test_negative_zero_collapses_to_positive_zero(self):
        codes, domain = encode_column([-0.0, 0.0, 1.5])
        assert domain == [0.0, 1.5]
        assert math.copysign(1.0, domain[0]) == 1.0
        assert codes[0] == codes[1] == 0

    def test_nan_is_rejected_as_data_error(self):
        with pytest.raises(ValueError):
            encode_column([1.0, float("nan")])

    def test_mixed_int_float_keys_sort_numerically(self):
        # regression: 1 and 1.5 and 2 must interleave by value, and an
        # equal int/float pair must share one code (canonical_key treats
        # 2 == 2.0), exactly as the pure backend's tuple sort does
        codes, domain = encode_column([2, 1.5, 1, 2.0])
        assert domain == [1, 1.5, 2]
        assert list(codes) == [2, 1, 0, 2]

    def test_incomparable_values_raise_columnar_unsupported(self):
        with pytest.raises(ColumnarUnsupported):
            encode_column([1, "a"])

    def test_unhashable_values_raise_columnar_unsupported(self):
        with pytest.raises(ColumnarUnsupported):
            encode_column([[1], [2]])

    def test_strings_encode_in_lexicographic_order(self):
        codes, domain = encode_column(["pear", "apple", "fig"])
        assert domain == ["apple", "fig", "pear"]
        assert [domain[c] for c in codes] == ["pear", "apple", "fig"]


class TestColumnarLayout:
    def test_layout_matches_sorted_rows(self):
        rows = sorted({(i % 3, i % 5, i) for i in range(30)})
        layout = ColumnarLayout(rows, 3)
        assert layout.n_rows == len(rows)
        decoded = [
            tuple(layout.domains[j][layout.codes[j][i]] for j in range(3))
            for i in range(layout.n_rows)
        ]
        assert decoded == rows

    def test_run_starts_mark_prefix_group_boundaries(self):
        rows = [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (2, 5)]
        layout = ColumnarLayout(rows, 2)
        assert list(layout.run_starts(0)) == [0, 3, 5]
        assert list(layout.run_starts(1)) == [0, 1, 2, 3, 4, 5]

    def test_run_starts_respects_lo_hi_window(self):
        rows = [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2)]
        layout = ColumnarLayout(rows, 2)
        assert list(layout.run_starts(0, 2, 5)) == [2]
        assert list(layout.run_starts(1, 2, 5)) == [2, 3, 4]
        assert list(layout.run_starts(0, 3, 3)) == []


class TestRelationAccessor:
    def test_columnar_accessor_caches_per_permutation(self):
        relation = Relation.from_iter(2, [(i, i % 3) for i in range(16)])
        before = global_stats.snapshot()
        first = relation.columnar((1, 0))
        again = relation.columnar((1, 0))
        delta = global_stats.delta_since(before)
        assert first is again
        assert delta.get("relation.columnar_misses") == 1
        assert delta.get("relation.columnar_hits") == 1

    def test_unencodable_relation_raises_and_caches_failure(self):
        # rows sort fine tuple-wise (first column decides) but the
        # second column mixes ints and strings, which do not encode
        relation = Relation.from_iter(2, [(1, 2), (2, "a")])
        with pytest.raises(ColumnarUnsupported):
            relation.columnar((0, 1))
        with pytest.raises(ColumnarUnsupported):
            relation.columnar((0, 1))
