"""Index/array cache promotion across relation versions.

`Relation.apply` must carry its parent's secondary indexes and sorted
arrays into the child version (incrementally maintained), so unchanged
or lightly-edited versions never pay a rebuild.
"""

import pytest

from repro import stats as global_stats
from repro.storage.relation import Delta, Relation, _merge_sorted

SWAP = (1, 0)


def rel(n=50, step=3):
    return Relation.from_iter(2, [(i, (i * step) % n) for i in range(n)])


def expected_flat(relation, perm):
    return sorted(tuple(t[i] for i in perm) for t in relation)


def test_apply_promotes_secondary_index():
    relation = rel()
    relation.index_root(SWAP)  # build + cache the permuted index
    before = global_stats.snapshot()
    child = relation.apply(Delta.from_iters([(999, 1)], [(0, 0)]))
    bumped = global_stats.delta_since(before)
    assert bumped.get("relation.index_promotions", 0) == 1
    # the child answers permuted lookups without a rebuild
    before = global_stats.snapshot()
    child.index_root(SWAP)
    bumped = global_stats.delta_since(before)
    assert bumped.get("relation.index_hits", 0) == 1
    assert bumped.get("relation.index_misses", 0) == 0


def test_promoted_index_content_is_correct():
    relation = rel()
    relation.index_root(SWAP)
    child = relation.apply(Delta.from_iters([(999, 1), (998, 2)], [(3, 9), (6, 18)]))
    promoted = child._indexes[SWAP]
    assert list(promoted) == expected_flat(child, SWAP)


def test_apply_promotes_flat_array():
    relation = rel(128)
    relation.flat(SWAP)
    child = relation.apply(Delta.from_iters([(999, 7)], [(1, 3)]))
    assert child.has_flat(SWAP)
    assert child._flat[SWAP] == expected_flat(child, SWAP)


def test_flat_promotion_handles_add_and_remove_of_same_tuple():
    # `apply` semantics: removal first, re-insertion wins
    relation = rel(64)
    relation.flat(SWAP)
    relation.flat((0, 1))
    delta = Delta.from_iters([(0, 0), (500, 5)], [(0, 0)])
    child = relation.apply(delta)
    assert (0, 0) in child
    assert (500, 5) in child
    assert child._flat[SWAP] == expected_flat(child, SWAP)
    assert child._flat[(0, 1)] == expected_flat(child, (0, 1))


def test_huge_delta_drops_flat_cache_instead_of_merging():
    relation = rel(20)
    relation.flat(SWAP)
    big = Delta.from_iters([(1000 + i, i) for i in range(200)])
    child = relation.apply(big)
    assert not child.has_flat(SWAP)  # dropped, rebuilt lazily on demand
    assert child.flat(SWAP) == expected_flat(child, SWAP)


def test_union_promotes_receiver_caches():
    left = rel(100)
    left.index_root(SWAP)
    left.flat(SWAP)
    right = Relation.from_iter(2, [(2000, 1), (2001, 2)])
    merged = left.union(right)
    assert merged.has_flat(SWAP)
    assert merged._flat[SWAP] == expected_flat(merged, SWAP)
    assert list(merged._indexes[SWAP]) == expected_flat(merged, SWAP)


def test_union_with_empty_is_identity():
    relation = rel()
    assert relation.union(Relation.empty(2)) is relation
    assert Relation.empty(2).union(relation) is relation


def test_subtract_promotes_and_short_circuits():
    relation = rel(80)
    relation.flat(SWAP)
    assert relation.subtract(Relation.empty(2)) is relation
    smaller = relation.subtract(Relation.from_iter(2, [(0, 0), (1, 3)]))
    assert smaller.has_flat(SWAP)
    assert smaller._flat[SWAP] == expected_flat(smaller, SWAP)


def test_apply_noop_delta_returns_same_version():
    relation = rel()
    assert relation.apply(Delta()) is relation
    # delta that changes nothing (removing absent, adding present)
    assert relation.apply(Delta.from_iters([(0, 0)], [(7777, 1)])) is relation


@pytest.mark.parametrize(
    "rows, added, removed",
    [
        ([], [], set()),
        ([], [(1,), (2,)], set()),
        ([(1,), (3,)], [(2,)], set()),
        ([(1,), (2,), (3,)], [], {(2,)}),
        ([(1,), (2,)], [(2,)], {(2,)}),  # re-insertion wins over removal
        ([(1,), (2,), (5,)], [(0,), (3,), (9,)], {(1,), (5,)}),
    ],
)
def test_merge_sorted_matches_set_semantics(rows, added, removed):
    expected = sorted((set(rows) - removed) | set(added))
    assert _merge_sorted(rows, sorted(added), removed) == expected
