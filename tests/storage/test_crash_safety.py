"""Crash safety: a checkpoint killed mid-write must be invisible.

The durability protocol is: write + fsync the new pack, fsync the
directory, *then* atomically rename the manifest.  A crash anywhere
before the rename leaves the previous manifest — and therefore the
previous checkpoint — fully intact; orphaned packs from the aborted
attempt are never referenced and their names are reused (with
truncation) by the next successful checkpoint.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.runtime.workspace import Workspace
from repro.service.faults import FaultInjector, InjectedCrash
from repro.storage.pager import read_manifest

BLOCK = """
item[k] = v -> int(k), int(v).
doubled[k] = u <- item[k] = v, u = v * 2.
"""


def build_workspace():
    ws = Workspace()
    ws.addblock(BLOCK, name="items")
    ws.load("item", [(i, i * 10) for i in range(20)])
    return ws


def snapshot(ws):
    return {
        "item": ws.rows("item"),
        "doubled": ws.rows("doubled"),
        "hash": ws.relation("item").structural_hash(),
        "head": ws.version().id,
    }


def assert_matches(ws, expected):
    assert ws.rows("item") == expected["item"]
    assert ws.rows("doubled") == expected["doubled"]
    assert ws.relation("item").structural_hash() == expected["hash"]
    assert ws.version().id == expected["head"]


class TestInjectedCrash:
    def test_crash_between_pack_and_manifest(self, tmp_path):
        """The scripted fault fires after the pack is durable but
        before the manifest swap — the paradigmatic torn checkpoint."""
        ws = build_workspace()
        ws.checkpoint(str(tmp_path))
        committed = snapshot(ws)
        manifest_before = read_manifest(str(tmp_path))

        ws.load("item", [(99, 990)])
        faults = FaultInjector().script("checkpoint", "crash")
        with pytest.raises(InjectedCrash):
            ws.checkpoint(str(tmp_path), fault_fire=faults.fire)

        # the manifest is bit-identical to the pre-crash one...
        assert read_manifest(str(tmp_path)) == manifest_before
        # ...and restore recovers the previous checkpoint exactly
        assert_matches(Workspace.open(str(tmp_path)), committed)

    def test_recheckpoint_after_crash_succeeds(self, tmp_path):
        ws = build_workspace()
        ws.checkpoint(str(tmp_path))
        ws.load("item", [(99, 990)])
        faults = FaultInjector().script("checkpoint", "crash")
        with pytest.raises(InjectedCrash):
            ws.checkpoint(str(tmp_path), fault_fire=faults.fire)

        # same workspace retries: the orphaned pack's name is reused
        # (truncating it) and the delta lands
        result = ws.checkpoint(str(tmp_path))
        assert result["nodes_written"] > 0
        ws2 = Workspace.open(str(tmp_path))
        assert (99, 990) in ws2.relation("item")
        assert ws2.rows("doubled") == ws.rows("doubled")

    def test_crash_on_first_checkpoint_leaves_no_manifest(self, tmp_path):
        ws = build_workspace()
        faults = FaultInjector().script("checkpoint", "crash")
        with pytest.raises(InjectedCrash):
            ws.checkpoint(str(tmp_path), fault_fire=faults.fire)
        assert read_manifest(str(tmp_path)) is None
        with pytest.raises(FileNotFoundError):
            Workspace.open(str(tmp_path))


class TestHardKill:
    def test_os_exit_mid_checkpoint(self, tmp_path):
        """Kill the interpreter with os._exit (no cleanup handlers, no
        flushing) between the pack write and the manifest swap, then
        assert a fresh process recovers the previous checkpoint."""
        ws = build_workspace()
        ws.checkpoint(str(tmp_path))
        committed = snapshot(ws)
        manifest_before = read_manifest(str(tmp_path))

        script = textwrap.dedent("""
            import os, sys
            from repro.runtime.workspace import Workspace
            ws = Workspace.open(sys.argv[1])
            ws.load("item", [(777, 7770)])
            def die(point):
                os._exit(42)
            ws.checkpoint(sys.argv[1], fault_fire=die)
            raise SystemExit("checkpoint returned past the kill point")
        """)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 42, proc.stderr

        # the aborted attempt left an orphan pack; the manifest must
        # not reference it and recovery must not read it
        manifest = read_manifest(str(tmp_path))
        assert manifest == manifest_before
        on_disk = {n for n in os.listdir(str(tmp_path)) if n.endswith(".pack")}
        assert set(manifest["packs"]) <= on_disk
        assert_matches(Workspace.open(str(tmp_path)), committed)

    def test_truncated_orphan_pack_is_ignored(self, tmp_path):
        """Even a torn (partially written) orphan pack must not break
        recovery: only manifest-listed packs are ever indexed."""
        ws = build_workspace()
        ws.checkpoint(str(tmp_path))
        committed = snapshot(ws)
        # simulate a torn write from a crashed successor checkpoint
        with open(os.path.join(str(tmp_path), "nodes-000002.pack"), "wb") as fh:
            fh.write(b"\x01\x02\x03")  # shorter than one record header
        assert_matches(Workspace.open(str(tmp_path)), committed)

        # and the next real checkpoint reuses + truncates the name
        ws.load("item", [(5, 999)], remove=[(5, 50)])
        ws.checkpoint(str(tmp_path))
        ws3 = Workspace.open(str(tmp_path))
        assert (5, 999) in ws3.relation("item")
        assert (5, 50) not in ws3.relation("item")
