"""Durable checkpoint/restore: round-trip fidelity and incrementality.

The contract under test (paper §3: unique representation makes
durability log-free): ``Workspace.checkpoint`` → ``Workspace.open``
reproduces the workspace bit-identically — relation contents AND treap
structure (structural hashes), support counts, aggregation state,
sensitivity-driven IVM behavior, installed blocks, and the version-DAG
skeleton — while repeated checkpoints write only the nodes that
changed.
"""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.ds.pmap import PMap
from repro.ds.pset import PSet
from repro.engine.aggregates import MultisetState, SumState
from repro.runtime.workspace import Workspace
from repro.storage.datum import BOTTOM, TOP
from repro.storage.pager import (
    CheckpointStore,
    decode_value,
    encode_value,
    has_checkpoint,
    read_manifest,
)

RETAIL = """
Product(p) -> string(p).
Stock[p] = v -> string(p), float(v).
inStock(p) <- Product(p), Stock[p] = v, v > 0.0.
totalShelf[] = u <- agg<<u = sum(v)>> Stock[p] = v.
"""


@pytest.fixture
def retail():
    ws = Workspace()
    ws.addblock(RETAIL, name="retail")
    ws.load("Product", [("a",), ("b",), ("c",)])
    ws.load("Stock", [("a", 4.0), ("b", 8.0), ("c", 0.0)])
    return ws


def reopened(ws, path):
    ws.checkpoint(str(path))
    return Workspace.open(str(path))


class TestCodec:
    def test_value_round_trip(self):
        values = [
            None, True, False, 0, 1, -1, 2**70, -(2**70), 0.5, -2.5,
            "", "héllo", b"\x00\xff", (1, "a", (2.0, None)), [1, [2], 3],
            {"k": 1, 2: "v"}, BOTTOM, TOP,
        ]
        for value in values:
            assert decode_value(encode_value(value)) == value

    def test_encoding_canonical(self):
        assert encode_value((1, "a")) == encode_value((1, "a"))
        assert encode_value(1) != encode_value(1.0)
        assert encode_value(True) != encode_value(1)

    def test_agg_states(self):
        out = decode_value(encode_value(SumState(12.5, 3)))
        assert (out.total, out.count) == (12.5, 3)
        ms = MultisetState(PMap.from_dict({1.0: 2, 3.0: 1}), 3)
        out = decode_value(encode_value(ms))
        assert out.count == 3
        assert list(out.values.items()) == [(1.0, 2), (3.0, 1)]

    def test_unencodable_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())


class TestRoundTrip:
    def test_rows_and_structure_bit_identical(self, retail, tmp_path):
        ws2 = reopened(retail, tmp_path)
        for pred in ("Product", "Stock", "inStock", "totalShelf"):
            assert retail.rows(pred) == ws2.rows(pred)
            assert (
                retail.relation(pred).structural_hash()
                == ws2.relation(pred).structural_hash()
            )

    def test_support_counts_restored(self, retail, tmp_path):
        ws2 = reopened(retail, tmp_path)
        for pred, state in retail.state.materialization.states.items():
            restored = ws2.state.materialization.states[pred]
            assert restored.kind == state.kind
            assert restored.agg_fn == state.agg_fn
            assert list(restored.counts.items()) == list(state.counts.items())
            assert list(restored.groups) == list(state.groups)

    def test_blocks_restored(self, retail, tmp_path):
        ws2 = reopened(retail, tmp_path)
        assert ws2.blocks() == retail.blocks()

    def test_meta_state_restored(self, retail, tmp_path):
        ws2 = reopened(retail, tmp_path)
        meta1 = retail.state.meta_state
        meta2 = ws2.state.meta_state
        assert meta2.block_facts == meta1.block_facts
        for pred in ("lang_edb", "lang_idb", "need_frame"):
            assert meta2.rows(pred) == meta1.rows(pred)

    def test_branches_restored(self, retail, tmp_path):
        retail.create_branch("scratch")
        retail.switch("scratch")
        retail.load("Product", [("d",)])
        retail.switch("main")
        ws2 = reopened(retail, tmp_path)
        assert ws2.branches() == ["main", "scratch"]
        assert ws2.branch == "main"
        assert ws2.rows("Product") == [("a",), ("b",), ("c",)]
        ws2.switch("scratch")
        assert ws2.rows("Product") == [("a",), ("b",), ("c",), ("d",)]

    def test_version_dag_skeleton_restored(self, retail, tmp_path):
        head = retail.version()
        ws2 = reopened(retail, tmp_path)
        head2 = ws2.version()
        assert head2.id == head.id
        chain = [v.id for v in head.ancestors()]
        chain2 = [v.id for v in head2.ancestors()]
        assert chain2 == chain

    def test_new_versions_do_not_collide(self, retail, tmp_path):
        ws2 = reopened(retail, tmp_path)
        restored_ids = {v.id for v in ws2.version().ancestors()}
        ws2.load("Product", [("z",)])
        assert ws2.version().id not in restored_ids

    def test_ivm_works_after_restore(self, retail, tmp_path):
        # incremental maintenance (not re-derivation) must continue
        # correctly from the restored support counts and sensitivities
        ws2 = reopened(retail, tmp_path)
        for ws in (retail, ws2):
            ws.exec('^Stock["c"] = 5.0 <- .')
            ws.exec('-Product("a").')
        assert ws2.rows("inStock") == retail.rows("inStock")
        assert ws2.rows("totalShelf") == retail.rows("totalShelf")
        assert (
            ws2.relation("inStock").structural_hash()
            == retail.relation("inStock").structural_hash()
        )

    def test_addblock_works_after_restore(self, retail, tmp_path):
        ws2 = reopened(retail, tmp_path)
        for ws in (retail, ws2):
            ws.addblock("lowStock(p) <- Stock[p] = v, v < 5.0.", name="low")
        assert ws2.rows("lowStock") == retail.rows("lowStock")

    def test_empty_workspace_round_trips(self, tmp_path):
        ws2 = reopened(Workspace(), tmp_path)
        assert ws2.branches() == ["main"]
        assert ws2.blocks() == []


class TestIncrementality:
    def test_unchanged_recheckpoint_writes_nothing(self, retail, tmp_path):
        first = retail.checkpoint(str(tmp_path))
        second = retail.checkpoint(str(tmp_path))
        assert first["nodes_written"] > 0
        assert second["nodes_written"] == 0
        assert second["bytes_written"] == 0

    def test_small_delta_writes_small(self, retail, tmp_path):
        first = retail.checkpoint(str(tmp_path))
        retail.exec('+Product("zz").')
        third = retail.checkpoint(str(tmp_path))
        assert 0 < third["nodes_written"] < first["nodes_written"]

    def test_shared_subtrees_written_once(self, retail, tmp_path):
        # a branch shares all its structure with its parent: the branch
        # itself must cost zero node writes
        retail.checkpoint(str(tmp_path))
        retail.create_branch("twin")
        result = retail.checkpoint(str(tmp_path))
        assert result["nodes_written"] == 0

    def test_fresh_store_still_incremental_after_open(self, retail, tmp_path):
        # the memo is rebuilt during restore, so the first checkpoint
        # from a reopened workspace is a no-op too
        ws2 = reopened(retail, tmp_path)
        result = ws2.checkpoint(str(tmp_path))
        assert result["nodes_written"] == 0


class TestManifest:
    def test_crash_before_first_manifest_leaves_nothing(self, tmp_path):
        assert not has_checkpoint(str(tmp_path))
        with pytest.raises(FileNotFoundError):
            CheckpointStore(str(tmp_path)).restore_into(Workspace())

    def test_manifest_names_packs_and_roots(self, retail, tmp_path):
        retail.checkpoint(str(tmp_path))
        manifest = read_manifest(str(tmp_path))
        assert manifest["seq"] == 1
        assert manifest["packs"] == ["nodes-000001.pack"]
        for name in manifest["packs"]:
            assert os.path.exists(os.path.join(str(tmp_path), name))
        state = manifest["states"][str(manifest["branches"]["main"])]
        assert set(state["base"]) == {"Product", "Stock"}
        assert "inStock" in state["relations"]
        assert "retail" in state["blocks"]

    def test_unsupported_format_rejected(self, retail, tmp_path):
        retail.checkpoint(str(tmp_path))
        manifest_path = os.path.join(str(tmp_path), "MANIFEST.json")
        with open(manifest_path) as fh:
            text = fh.read()
        with open(manifest_path, "w") as fh:
            fh.write(text.replace('"format": 1', '"format": 99'))
        with pytest.raises(ValueError, match="format"):
            read_manifest(str(tmp_path))

    def test_corrupt_record_detected(self, retail, tmp_path):
        retail.checkpoint(str(tmp_path))
        pack = os.path.join(str(tmp_path), "nodes-000001.pack")
        with open(pack, "r+b") as fh:
            fh.seek(25)
            byte = fh.read(1)
            fh.seek(25)
            fh.write(bytes((byte[0] ^ 0xFF,)))
        with pytest.raises(ValueError, match="digest mismatch"):
            Workspace.open(str(tmp_path))


class TestCrossProcess:
    def test_restore_in_fresh_interpreter(self, retail, tmp_path):
        """The real durability claim: a different process (different
        PYTHONHASHSEED) restores identical contents and structure."""
        retail.checkpoint(str(tmp_path))
        script = textwrap.dedent("""
            import sys
            from repro.runtime.workspace import Workspace
            ws = Workspace.open(sys.argv[1])
            print(ws.rows("inStock"))
            print(ws.rows("totalShelf"))
            print(ws.relation("Product").structural_hash())
            ws.exec('+Product("zz").')
            print(ws.checkpoint(sys.argv[1])["nodes_written"])
        """)
        out = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True, text=True, check=True,
            env=dict(os.environ, PYTHONHASHSEED="12345"),
        ).stdout.splitlines()
        assert out[0] == repr(retail.rows("inStock"))
        assert out[1] == repr(retail.rows("totalShelf"))
        assert out[2] == repr(retail.relation("Product").structural_hash())
        # the child's post-delta checkpoint was incremental, and this
        # process can restore what the child wrote
        assert 0 < int(out[3]) < 20
        ws3 = Workspace.open(str(tmp_path))
        assert ("zz",) in ws3.relation("Product")
