"""The live telemetry plane: histogram quantiles, the snapshot ring,
the sampler thread, and the Prometheus exposition."""

import threading
import time

import pytest

from repro import obs
from repro import stats
from repro.obs.telemetry import TelemetryRing


class TestHistogramQuantiles:
    def test_quantiles_over_known_distribution(self):
        name = "qtest.known"
        for value in range(1, 101):  # 1..100, uniform
            stats.observe(name, value)
        hist = stats.histograms()[name]
        assert hist["count"] == 100
        assert hist["min"] == 1 and hist["max"] == 100
        # nearest-rank on 1..100: p50 lands mid-distribution, p99 at
        # the tail
        assert 45 <= hist["p50"] <= 55
        assert 85 <= hist["p90"] <= 95
        assert 95 <= hist["p99"] <= 100

    def test_single_sample_collapses_all_quantiles(self):
        name = "qtest.single"
        stats.observe(name, 7.5)
        hist = stats.histograms()[name]
        assert hist["p50"] == hist["p90"] == hist["p99"] == 7.5

    def test_window_is_bounded_and_tracks_recent_values(self):
        name = "qtest.window"
        for _ in range(stats.SAMPLE_WINDOW):
            stats.observe(name, 1.0)
        # overwrite the whole window with a shifted distribution
        for _ in range(stats.SAMPLE_WINDOW):
            stats.observe(name, 100.0)
        hist = stats.histograms()[name]
        assert hist["count"] == 2 * stats.SAMPLE_WINDOW  # lifetime count
        assert hist["min"] == 1.0  # lifetime min survives the window
        assert hist["p50"] == 100.0  # quantiles reflect the window

    def test_quantiles_are_order_insensitive(self):
        import random

        rnd = random.Random(7)
        values = [float(i) for i in range(200)]
        rnd.shuffle(values)
        name = "qtest.shuffled"
        for value in values:
            stats.observe(name, value)
        hist = stats.histograms()[name]
        assert 90 <= hist["p50"] <= 110

    def test_prometheus_text_emits_quantile_lines(self):
        name = "qtest.prom"
        for value in (1.0, 2.0, 3.0, 4.0):
            stats.observe(name, value)
        text = obs.prometheus_text()
        assert 'repro_qtest_prom{quantile="0.5"}' in text
        assert 'repro_qtest_prom{quantile="0.9"}' in text
        assert 'repro_qtest_prom{quantile="0.99"}' in text
        assert "repro_qtest_prom_count 4" in text


class TestTelemetryRing:
    def test_ring_records_and_bounds(self):
        ring = TelemetryRing(capacity=4)
        for i in range(10):
            ring.record({"ts": float(i), "counters": {}, "gauges": {},
                         "histograms": {}})
        assert len(ring) == 4
        entries = ring.tail()
        assert [e["ts"] for e in entries] == [6.0, 7.0, 8.0, 9.0]
        # seq survives eviction: pollers can detect the gap
        assert [e["seq"] for e in entries] == [6, 7, 8, 9]

    def test_tail_n(self):
        ring = TelemetryRing(capacity=8)
        for i in range(5):
            ring.record({"ts": float(i)})
        assert [e["seq"] for e in ring.tail(2)] == [3, 4]

    def test_record_snapshots_now_by_default(self):
        ring = TelemetryRing(capacity=2)
        stats.bump("qtest.ring.counter")
        entry = ring.record()
        assert entry["counters"].get("qtest.ring.counter", 0) >= 1
        assert "gauges" in entry and "histograms" in entry

    def test_entries_are_copies(self):
        ring = TelemetryRing(capacity=2)
        ring.record({"ts": 1.0})
        ring.tail()[0]["ts"] = 999.0
        assert ring.tail()[0]["ts"] == 1.0

    def test_concurrent_writers_never_exceed_capacity(self):
        ring = TelemetryRing(capacity=16)
        errors = []

        def writer():
            try:
                for i in range(200):
                    ring.record({"ts": float(i)})
                    assert len(ring) <= 16
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        entries = ring.tail()
        assert len(entries) == 16
        seqs = [e["seq"] for e in entries]
        assert seqs == sorted(seqs) and len(set(seqs)) == 16


class TestSnapshots:
    def test_telemetry_snapshot_shape(self):
        stats.bump("qtest.snap.counter")
        payload = obs.telemetry_snapshot()
        assert payload["counters"].get("qtest.snap.counter", 0) >= 1
        assert "pid" in payload and "span_totals" in payload
        assert "slow_txns" in payload
        assert "ring" not in payload  # only with ring_tail > 0

    def test_telemetry_snapshot_with_ring_tail(self):
        obs.telemetry_ring().record()
        payload = obs.telemetry_snapshot(ring_tail=2)
        assert payload["ring"]
        assert all("seq" in e for e in payload["ring"])


class TestSampler:
    def test_sampler_fills_ring_and_stops(self):
        ring = obs.telemetry_ring()
        before = len(ring)
        obs.start_sampler(0.01)
        try:
            deadline = time.time() + 2.0
            while len(ring) <= before and time.time() < deadline:
                time.sleep(0.01)
        finally:
            obs.stop_sampler()
        assert len(ring) > before
        settled = len(ring)
        time.sleep(0.05)
        assert len(ring) == settled  # sampler really stopped

    def test_start_is_idempotent_replace(self):
        first = obs.start_sampler(5.0)
        second = obs.start_sampler(5.0)
        try:
            assert first is not second
            assert first._halt.is_set()  # the old sampler was told to stop
        finally:
            obs.stop_sampler()
