"""EXPLAIN ANALYZE and the slow-transaction log."""

import pytest

from repro import Workspace, obs
from repro import stats
from repro.obs import ExplainReport


@pytest.fixture
def no_slow_log():
    """Isolate the process-wide slow-transaction log and threshold."""
    was = obs.slow_txn_threshold()
    obs.set_slow_txn_threshold(None)
    obs.clear_slow_txn_log()
    yield
    obs.set_slow_txn_threshold(was)
    obs.clear_slow_txn_log()


@pytest.fixture
def triangle_ws():
    ws = Workspace()
    ws.addblock("edge(x, y) -> int(x), int(y).")
    ws.exec("+edge(1, 2). +edge(2, 3). +edge(1, 3). "
            "+edge(3, 4). +edge(1, 4).")
    return ws


class TestExplainQuery:
    def test_estimates_paired_with_actuals(self, triangle_ws):
        report = triangle_ws.explain(
            "_(x, y, z) <- edge(x, y), edge(y, z), edge(x, z).")
        assert isinstance(report, ExplainReport)
        assert report.row_count == 2  # (1,2,3) and (1,3,4)
        assert report.answer == "_"
        (rule,) = report.rules
        assert rule["rule"] == "_"
        assert rule["executions"] >= 1
        assert rule["actual_steps"] > 0
        assert rule["estimated_steps"] is not None
        assert rule["var_order"] and len(rule["var_order"]) == 3
        assert rule["error_ratio"] == pytest.approx(
            (rule["estimated_steps"] + 1.0) / (rule["actual_steps"] + 1.0))

    def test_error_ratio_feeds_histogram(self, triangle_ws):
        before = stats.histograms().get("optimizer.estimate_error", {})
        triangle_ws.explain("_(x, z) <- edge(x, y), edge(y, z).")
        after = stats.histograms()["optimizer.estimate_error"]
        assert after["count"] > before.get("count", 0)
        assert "p50" in after and "p99" in after

    def test_multi_rule_report(self, triangle_ws):
        report = triangle_ws.explain(
            "hop(x, z) <- edge(x, y), edge(y, z). "
            "_(x, z) <- hop(x, z), edge(x, z).")
        labels = {rule["rule"] for rule in report.rules}
        assert labels == {"hop", "_"}
        for rule in report.rules:
            assert rule["executions"] >= 1

    def test_report_roundtrips_and_formats(self, triangle_ws):
        report = triangle_ws.explain("_(x, y) <- edge(x, y).")
        rebuilt = ExplainReport.from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()
        text = rebuilt.format()
        assert "EXPLAIN ANALYZE" in text
        assert "est/act" in text

    def test_reactive_rules_rejected(self, triangle_ws):
        from repro import TransactionAborted

        with pytest.raises(TransactionAborted):
            triangle_ws.explain("+edge(9, 9).")


class TestSlowTxnLog:
    def test_disabled_by_default(self, no_slow_log):
        assert obs.maybe_record_slow("exec", "t1", 999.0) is None
        assert obs.slow_txn_log() == []

    def test_records_over_threshold(self, no_slow_log):
        obs.set_slow_txn_threshold(0.5)
        assert obs.maybe_record_slow("exec", "fast", 0.1) is None
        entry = obs.maybe_record_slow(
            "exec", "slow", 0.9, counters={"join.seeks": 5})
        assert entry is not None
        log = obs.slow_txn_log()
        assert len(log) == 1
        assert log[0]["kind"] == "exec" and log[0]["name"] == "slow"
        assert log[0]["latency_s"] == 0.9
        assert log[0]["counters"] == {"join.seeks": 5}

    def test_log_is_bounded(self, no_slow_log):
        obs.set_slow_txn_threshold(0.001)
        for i in range(100):
            obs.maybe_record_slow("exec", "t{}".format(i), 1.0)
        log = obs.slow_txn_log()
        assert len(log) == 64
        assert log[-1]["name"] == "t99"  # newest retained

    def test_workspace_txns_feed_the_log(self, no_slow_log):
        obs.set_slow_txn_threshold(1e-9)  # everything is "slow"
        ws = Workspace()
        ws.addblock("p(x) -> int(x).")
        ws.exec("+p(1).")
        log = obs.slow_txn_log()
        kinds = {entry["kind"] for entry in log}
        assert "exec" in kinds
        assert all(entry["latency_s"] > 0 for entry in log)

    def test_trace_coordinates_recorded_when_tracing(self, no_slow_log):
        obs.set_slow_txn_threshold(1e-9)
        ws = Workspace()
        ws.addblock("p(x) -> int(x).")
        with obs.Profile():
            ws.exec("+p(1).")
        entries = [e for e in obs.slow_txn_log() if e["kind"] == "exec"]
        assert entries and "trace" in entries[-1]
        assert entries[-1]["trace"]
        assert isinstance(entries[-1]["span"], int)

    def test_service_config_sets_threshold(self, no_slow_log):
        from repro.service import ServiceConfig, TransactionService

        service = TransactionService(
            config=ServiceConfig(slow_txn_s=123.0))
        try:
            assert obs.slow_txn_threshold() == 123.0
        finally:
            service.close()
