"""Typed error frames: every ReproError subclass round-trips the wire
with the same class, message, and payload attributes.

The exhaustiveness check is structural: the factory table below is
asserted to cover :func:`error_registry` exactly, so adding a new error
class without teaching the wire (and this test) about it fails loudly.
"""

import pytest

from repro.net.protocol import (
    ConnectionLost,
    LeaderUnavailable,
    NetError,
    ProtocolError,
    ReplicaReadOnly,
    StaleRead,
    _WireConstraint,
    error_from_wire,
    error_registry,
    error_to_wire,
)
from repro.runtime.errors import (
    ConflictError,
    ConstraintViolation,
    Overloaded,
    ReproError,
    TransactionAborted,
    TxnTimeout,
    UnknownPredicate,
)
from repro.service.faults import InjectedCrash
from repro.shard import ShardCommitError, ShardError


class _FakeConstraint:
    text = "inventory[s] = v -> v >= 0"


# one representative instance per error class, payload attributes loaded
FACTORIES = {
    "ReproError": lambda: ReproError("base failure"),
    "TransactionAborted": lambda: TransactionAborted("txn aborted"),
    "ConstraintViolation": lambda: ConstraintViolation(
        [(_FakeConstraint(), {"s": "widget", "v": -1})]),
    "ConflictError": lambda: ConflictError(
        "write-write conflict", preds=("inventory", "orders")),
    "TxnTimeout": lambda: TxnTimeout(
        "deadline elapsed after 1.5s", deadline_s=1.5),
    "Overloaded": lambda: Overloaded(
        "admission queue full", depth=65, limit=64, retry_after_s=0.05),
    "UnknownPredicate": lambda: UnknownPredicate("no such predicate: foo"),
    "InjectedCrash": lambda: InjectedCrash("injected crash at commit"),
    "NetError": lambda: NetError("generic net failure"),
    "ProtocolError": lambda: ProtocolError("bad frame"),
    "ConnectionLost": lambda: ConnectionLost("peer vanished mid-frame"),
    "ReplicaReadOnly": lambda: ReplicaReadOnly("writes go to the leader"),
    "StaleRead": lambda: StaleRead("replica fleet behind watermark 42"),
    "LeaderUnavailable": lambda: LeaderUnavailable("no leader among 3 endpoints"),
    "ShardError": lambda: ShardError("block is not shard-local-exact"),
    "ShardCommitError": lambda: ShardCommitError(
        "compensation of committed shards failed"),
}


def test_factories_cover_registry_exactly():
    registry = error_registry()
    assert set(FACTORIES) == set(registry), (
        "error classes changed: wire round-trip coverage must be updated "
        "(missing: {}, stale: {})".format(
            set(registry) - set(FACTORIES), set(FACTORIES) - set(registry)))


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_roundtrip_preserves_class_and_message(name):
    original = FACTORIES[name]()
    rebuilt = error_from_wire(error_to_wire(original))
    assert type(rebuilt) is type(original)
    assert str(rebuilt) == str(original)
    assert rebuilt.args == tuple(
        a if isinstance(a, (str, int, float, bool, bytes)) or a is None
        else str(a) for a in original.args)


def test_overloaded_retry_after_survives():
    rebuilt = error_from_wire(error_to_wire(
        Overloaded("busy", depth=10, limit=8, retry_after_s=0.25)))
    assert rebuilt.retry_after_s == 0.25
    assert rebuilt.depth == 10
    assert rebuilt.limit == 8


def test_txn_timeout_deadline_survives():
    rebuilt = error_from_wire(error_to_wire(
        TxnTimeout("too slow", deadline_s=2.5)))
    assert rebuilt.deadline_s == 2.5


def test_conflict_preds_survive():
    rebuilt = error_from_wire(error_to_wire(
        ConflictError("conflict", preds=("b", "a"))))
    assert rebuilt.preds == ["a", "b"]
    # message was formatted once server-side; no double suffix
    assert str(rebuilt).count("predicates:") == 1


def test_constraint_violations_survive_as_text():
    original = ConstraintViolation(
        [(_FakeConstraint(), {"s": "widget", "v": -1})])
    rebuilt = error_from_wire(error_to_wire(original))
    assert str(rebuilt) == str(original)
    [(constraint, binding)] = rebuilt.violations
    assert isinstance(constraint, _WireConstraint)
    assert constraint.text == _FakeConstraint.text
    assert binding == {"s": "widget", "v": -1}


def test_back_compat_mixins_survive():
    assert isinstance(
        error_from_wire(error_to_wire(TransactionAborted("x"))), RuntimeError)
    assert isinstance(
        error_from_wire(error_to_wire(UnknownPredicate("x"))), KeyError)
    assert isinstance(
        error_from_wire(error_to_wire(ConnectionLost("x"))), ConnectionError)


def test_unknown_class_degrades_to_base():
    rebuilt = error_from_wire(
        {"type": "FutureFancyError", "args": ("from the future",),
         "attrs": {}})
    assert type(rebuilt) is ReproError
    assert "FutureFancyError" in str(rebuilt)
    assert "from the future" in str(rebuilt)


def test_foreign_exception_wrapped():
    wire = error_to_wire(ValueError("not a repro error"))
    rebuilt = error_from_wire(wire)
    assert type(rebuilt) is ReproError
    assert "not a repro error" in str(rebuilt)
