"""Distributed tracing across the network tier: HELLO negotiation,
one stitched trace per TCP transaction (client -> server -> committer,
and replica -> leader for checkpoint sync), plus the telemetry and
explain wire verbs and the ``obs top`` dashboard."""

import io
import os

import pytest

from repro import obs
from repro.net import NetSession, Replica, ReproServer
from repro.net.protocol import F_RESPONSE
from repro.obs import ExplainReport
from repro.service import ServiceConfig, TransactionService


@pytest.fixture()
def server():
    service = TransactionService(config=ServiceConfig(max_pending=32))
    with ReproServer(service) as srv:
        yield srv
    service.close()


@pytest.fixture()
def session(server):
    with NetSession(server.host, server.port) as s:
        yield s


def _walk(span_):
    yield span_
    for child in span_.children:
        yield from _walk(child)


class TestNegotiation:
    def test_hello_advertises_trace_capability(self, session):
        assert session._server_trace is True

    def test_untraced_dispatch_attaches_no_trace(self, server):
        frames = server._dispatch(1, "ping", {}, None)
        (ftype, payload), = frames
        assert ftype == F_RESPONSE
        assert "trace" not in payload

    def test_traced_dispatch_attaches_closed_span(self, server):
        frames = server._dispatch(
            2, "ping", {}, {"trace": "T-test", "span": 11})
        (ftype, payload), = frames
        assert ftype == F_RESPONSE
        record = payload["trace"]
        assert record["name"] == "net.request"
        assert record["attrs"]["op"] == "ping"
        assert record["attrs"]["remote_parent"] == 11
        assert record["wall_s"] >= 0.0  # span closed before serialization
        # the per-request collector is gone: the server thread is not
        # left tracing
        assert not obs.tracing()


class TestStitchedTraces:
    def test_exec_yields_one_stitched_trace(self, session):
        session.addblock("edge(x, y) -> int(x), int(y).", name="b1")
        with obs.Profile() as prof:
            result = session.exec("+edge(1, 2). +edge(2, 3).")
        assert result.status == "committed"
        # exactly one root: the client's net.call span
        (root,) = prof.roots
        assert root.name == "net.call" and root.attrs["op"] == "exec"
        assert root.trace_id
        spans = list(_walk(root))
        by_origin = {}
        for span_ in spans:
            origin = span_.attrs.get("origin")
            if origin:
                by_origin.setdefault(origin, []).append(span_.name)
        # the server continued our trace...
        assert "net.request" in by_origin["server"]
        # ...and the committer's batch span was grafted inside it
        assert "service.commit_batch" in by_origin["committer"]
        names = {span_.name for span_ in spans}
        assert "service.exec" in names and "commit" in names
        # remote spans keep their server-side ids for cross-log joins
        remote = [s for s in spans if "remote_sid" in s.attrs]
        assert remote
        # local sids stay process-unique after the graft
        sids = [s.sid for s in spans]
        assert len(sids) == len(set(sids))

    def test_query_trace_carries_server_subtree(self, session):
        session.addblock("p(x) -> int(x).", name="b1")
        session.load("p", [(i,) for i in range(10)])
        with obs.Profile() as prof:
            rows = session.query("_(x) <- p(x).")
        assert len(rows) == 10
        roots = [r for r in prof.roots if r.attrs.get("op") == "query"]
        (root,) = roots
        names = {span_.name for span_ in _walk(root)}
        assert "net.request" in names and "service.query" in names

    def test_untraced_client_records_nothing(self, session):
        session.addblock("q(x) -> int(x).", name="b2")
        before = len(obs.last_roots())
        session.exec("+q(1).")
        assert not obs.tracing()
        assert len(obs.last_roots()) == before

    def test_replica_sync_roots_a_distributed_trace(self, tmp_path):
        service = TransactionService(config=ServiceConfig(
            checkpoint_path=str(tmp_path / "leader")))
        try:
            with ReproServer(service) as srv:
                with NetSession(srv.host, srv.port) as s:
                    s.addblock("item[k] = v -> int(k), int(v).", name="items")
                    s.load("item", [(i, i) for i in range(50)])
                    s.checkpoint()
                with Replica(srv.host, srv.port,
                             os.path.join(str(tmp_path), "r1")) as rep:
                    with obs.Profile() as prof:
                        info = rep.sync()
                    assert info["ingested"]
            root = next(r for r in prof.roots if r.name == "replica.sync")
            spans = list(_walk(root))
            calls = [s for s in spans if s.name == "net.call"]
            assert {c.attrs["op"] for c in calls} >= {
                "sync_manifest", "sync_records"}
            served = [s for s in spans
                      if s.name == "net.request"
                      and s.attrs.get("origin") == "server"]
            assert served  # the leader's subtrees grafted under our root
        finally:
            service.close()


class TestTelemetryVerb:
    def test_telemetry_over_the_wire(self, server, session):
        session.addblock("p(x) -> int(x).", name="b1")
        session.exec("+p(1).")
        payload = session.telemetry(ring_tail=4)
        assert payload["counters"]["service.commits"] >= 1
        assert payload["service"]["committed"] >= 1
        assert "span_totals" in payload and "slow_txns" in payload
        assert payload["pid"] == os.getpid()  # in-process server

    def test_ring_streams_when_sampler_configured(self, tmp_path):
        service = TransactionService(config=ServiceConfig(
            telemetry_interval_s=0.02, telemetry_ring=8))
        try:
            with ReproServer(service) as srv:
                with NetSession(srv.host, srv.port) as s:
                    deadline = 100
                    ring = []
                    while not ring and deadline:
                        ring = s.telemetry(ring_tail=4).get("ring") or []
                        deadline -= 1
                    assert ring
                    seqs = [e["seq"] for e in ring]
                    assert seqs == sorted(seqs)
        finally:
            service.close()


class TestExplainVerb:
    def test_explain_over_the_wire(self, session):
        session.addblock("edge(x, y) -> int(x), int(y).", name="b1")
        session.exec("+edge(1, 2). +edge(2, 3). +edge(1, 3).")
        report = session.explain(
            "_(x, z) <- edge(x, y), edge(y, z).")
        assert isinstance(report, ExplainReport)
        assert report.row_count == 1
        (rule,) = report.rules
        assert rule["actual_steps"] > 0
        assert rule["estimated_steps"] is not None
        assert rule["error_ratio"] is not None
        assert "EXPLAIN ANALYZE" in report.format()


class TestTopDashboard:
    def test_top_once_renders(self, server, session):
        session.addblock("p(x) -> int(x).", name="b1")
        session.exec("+p(1).")
        from repro.obs import top

        out = io.StringIO()
        rc = top.main(["{}:{}".format(server.host, server.port), "--once"],
                      out=out)
        assert rc == 0
        text = out.getvalue()
        assert "repro top" in text
        assert "service.commits" in text or "counters" in text
