"""Live server ↔ client tests: verb surface, result shapes, chunked
streaming, pipelined connections, concurrent clients, typed errors."""

import threading

import pytest

from repro import ConstraintViolation, TxnResult, UnknownPredicate
from repro.net import NetSession, ReproServer
from repro.net.protocol import ConnectionLost
from repro.runtime.errors import ReproError
from repro.service import ServiceConfig, TransactionService
from repro.storage.relation import Delta


@pytest.fixture()
def server():
    service = TransactionService(config=ServiceConfig(
        max_pending=32, net_chunk_rows=8))
    with ReproServer(service) as srv:
        yield srv
    service.close()


@pytest.fixture()
def session(server):
    with NetSession(server.host, server.port) as s:
        yield s


def test_hello_carries_service_policy(server, session):
    config = server.service.config
    assert session.policy["max_retries"] == config.max_retries
    assert session.policy["backoff_base_s"] == config.backoff_base_s
    assert session.policy["backoff_cap_s"] == config.backoff_cap_s


def test_exec_returns_txnresult_with_deltas(session):
    session.addblock("p(x) -> int(x).", name="b1")
    result = session.exec("+p(1). +p(2).")
    assert isinstance(result, TxnResult)
    assert result.status == "committed" and result.kind == "exec"
    assert isinstance(result.deltas["p"], Delta)
    assert sorted(result.deltas["p"].added) == [(1,), (2,)]
    assert result.latency_s is not None


def test_query_roundtrip(session):
    session.addblock("p(x) -> int(x).", name="b1")
    session.load("p", [(i,) for i in range(5)])
    assert sorted(session.query("_(x) <- p(x).")) == [(i,) for i in range(5)]
    result = session.query_result("_(x) <- p(x).")
    assert isinstance(result, TxnResult) and result.kind == "query"
    assert sorted(result.rows) == [(i,) for i in range(5)]


def test_large_answer_streams_in_chunks(server, session):
    session.addblock("p(x) -> int(x).", name="b1")
    n = 100  # >> net_chunk_rows=8, so the answer crosses in CHUNK frames
    session.load("p", [(i,) for i in range(n)])
    rows = session.query("_(x) <- p(x).")
    assert sorted(rows) == [(i,) for i in range(n)]


def test_rows_and_removeblock(session):
    session.addblock("p(x) -> int(x).", name="b1")
    session.load("p", [(1,), (2,)], remove=())
    assert sorted(session.rows("p")) == [(1,), (2,)]
    removed = session.removeblock("b1")
    assert removed.kind == "removeblock"


def test_constraint_violation_is_typed_over_the_wire(session):
    session.addblock("inv[s] = v -> string(s), int(v).\n"
                     "inv[s] = v -> v >= 0.", name="inv")
    with pytest.raises(ConstraintViolation) as info:
        session.exec('^inv["widget"] = -1.')
    assert info.value.violations
    # server state unchanged
    assert session.rows("inv") == []


def test_unknown_predicate_is_typed_over_the_wire(session):
    with pytest.raises(UnknownPredicate):
        session.rows("never_declared")


def test_ping_and_stats(session):
    assert session.ping() < 5.0
    stats = session.stats()
    assert "committed" in stats and "in_flight" in stats


def test_checkpoint_requires_configuration(session):
    with pytest.raises(ReproError):
        session.checkpoint()


def test_closed_session_refuses_verbs(server):
    s = NetSession(server.host, server.port)
    s.close()
    with pytest.raises(ReproError):
        s.query("_(x) <- p(x).")


def test_concurrent_clients_share_one_server(server):
    admin = NetSession(server.host, server.port)
    admin.addblock("counter[k] = v -> string(k), int(v).", name="c")
    admin.load("counter", [("k{}".format(i), 0) for i in range(8)])
    errors = []

    def client(index):
        try:
            with NetSession(server.host, server.port) as s:
                for _ in range(5):
                    s.exec('^counter["k{0}"] = x <- '
                           'counter@start["k{0}"] = y, x = y + 1.'
                           .format(index))
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert sorted(admin.rows("counter")) == [
        ("k{}".format(i), 5) for i in range(8)]
    admin.close()


def test_session_reconnects_for_idempotent_reads(server, session):
    session.addblock("p(x) -> int(x).", name="b1")
    session.load("p", [(1,)])
    assert session.query("_(x) <- p(x).") == [(1,)]
    # tear the client's transport out from under it; the next read
    # must transparently reconnect under the server's policy
    session._sock.close()
    session._sock = None
    assert session.query("_(x) <- p(x).") == [(1,)]


def test_graceful_stop_sends_goodbye(server):
    s = NetSession(server.host, server.port)
    s.addblock("p(x) -> int(x).", name="b1")
    server.stop(drain_s=2.0)
    # the server is gone: a non-idempotent verb surfaces a typed
    # transport error instead of hanging
    with pytest.raises(ConnectionLost):
        s.exec("+p(1).")
    s.close()


def test_server_refuses_connections_past_capacity():
    service = TransactionService(config=ServiceConfig(
        net_max_connections=2))
    with ReproServer(service) as srv:
        a = NetSession(srv.host, srv.port)
        b = NetSession(srv.host, srv.port)
        from repro.runtime.errors import Overloaded
        with pytest.raises((Overloaded, ConnectionLost)) as info:
            c = NetSession(srv.host, srv.port)
            c.ping()
        if isinstance(info.value, Overloaded):
            assert info.value.retry_after_s is not None
        a.close()
        b.close()
    service.close()


def test_service_serve_convenience():
    service = TransactionService()
    server = service.serve()
    try:
        with NetSession(server.host, server.port) as s:
            s.addblock("p(x) -> int(x).", name="b1")
            s.exec("+p(7).")
            assert s.rows("p") == [(7,)]
    finally:
        server.stop()
        service.close()
