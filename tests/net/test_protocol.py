"""Frame codec properties: bit-identical round trips under arbitrary
payloads and arbitrary TCP chunking (split and coalesced reads)."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.protocol import (
    F_CHUNK,
    F_ERROR,
    F_GOODBYE,
    F_HELLO,
    F_REQUEST,
    F_RESPONSE,
    FRAME_NAMES,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    decode_frame_body,
    encode_frame,
)

FRAME_TYPES = sorted(FRAME_NAMES)

# the codec's value universe (scalars nest into rows, dicts, lists)
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=6),
        st.lists(inner, max_size=6).map(tuple),
        st.dictionaries(st.text(max_size=10), inner, max_size=6),
    ),
    max_leaves=25,
)


def chunked(blob, rnd, max_chunk):
    """Split ``blob`` into random-sized chunks (the TCP read schedule)."""
    chunks = []
    offset = 0
    while offset < len(blob):
        size = rnd.randint(1, max_chunk)
        chunks.append(blob[offset:offset + size])
        offset += size
    return chunks


@settings(max_examples=200, deadline=None)
@given(values, st.sampled_from(FRAME_TYPES))
def test_frame_roundtrip_bit_identical(payload, ftype):
    blob = encode_frame(ftype, payload)
    got_type, got_payload = decode_frame_body(blob[4:])
    assert got_type == ftype
    assert got_payload == payload
    # canonical: re-encoding the decoded payload reproduces the bytes
    assert encode_frame(ftype, got_payload) == blob


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.tuples(st.sampled_from(FRAME_TYPES), values),
             min_size=1, max_size=8),
    st.randoms(use_true_random=False),
    st.integers(min_value=1, max_value=64),
)
def test_decoder_survives_any_chunking(frames, rnd, max_chunk):
    stream = b"".join(encode_frame(ftype, payload)
                      for ftype, payload in frames)
    decoder = FrameDecoder()
    decoded = []
    for chunk in chunked(stream, rnd, max_chunk):
        decoded.extend(decoder.feed(chunk))
    assert decoded == frames
    assert decoder.buffered == 0


def test_decoder_coalesced_single_feed():
    frames = [(F_REQUEST, {"id": 1, "op": "ping", "args": {}}),
              (F_RESPONSE, {"id": 1, "result": {}}),
              (F_GOODBYE, {})]
    stream = b"".join(encode_frame(f, p) for f, p in frames)
    assert FrameDecoder().feed(stream) == frames


def test_partial_frame_stays_buffered():
    blob = encode_frame(F_HELLO, {"proto": PROTOCOL_VERSION})
    decoder = FrameDecoder()
    assert decoder.feed(blob[:7]) == []
    assert decoder.buffered == 7
    assert decoder.feed(blob[7:]) == [(F_HELLO, {"proto": PROTOCOL_VERSION})]
    assert decoder.buffered == 0


def test_oversized_frame_is_protocol_error_not_allocation():
    decoder = FrameDecoder(max_frame_bytes=128)
    huge_header = struct.pack("<I", 1 << 30)
    with pytest.raises(ProtocolError):
        decoder.feed(huge_header)


def test_encode_respects_frame_limit():
    with pytest.raises(ProtocolError):
        encode_frame(F_CHUNK, {"rows": ["x" * 4096]}, max_frame_bytes=256)


def test_bad_version_rejected():
    blob = bytearray(encode_frame(F_HELLO, {}))
    blob[4] = PROTOCOL_VERSION + 1
    with pytest.raises(ProtocolError):
        decode_frame_body(bytes(blob[4:]))


def test_unknown_frame_type_rejected():
    blob = bytearray(encode_frame(F_HELLO, {}))
    blob[5] = 0x7F
    with pytest.raises(ProtocolError):
        decode_frame_body(bytes(blob[4:]))


def test_undecodable_payload_is_protocol_error():
    with pytest.raises(ProtocolError):
        decode_frame_body(bytes((PROTOCOL_VERSION, F_ERROR)) + b"\xff\xff")


# -- trace-context propagation -------------------------------------------------

# what a real client attaches: trace id string + integer span id
trace_ctxs = st.fixed_dictionaries({
    "trace": st.text(min_size=1, max_size=24),
    "span": st.integers(min_value=0, max_value=2 ** 32),
})

# arbitrary python values a span tree might carry (including things the
# codec cannot encode, which trace_to_wire must scrub to reprs)
wild = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
        st.floats(allow_nan=False),
        st.text(max_size=20),
        st.binary(max_size=20),
        st.just(object()),
        st.just({1, 2, 3}),
        st.just(complex(1, 2)),
    ),
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.lists(inner, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=15,
)


@settings(max_examples=150, deadline=None)
@given(
    trace_ctxs,
    st.randoms(use_true_random=False),
    st.integers(min_value=1, max_value=48),
)
def test_trace_ctx_roundtrips_under_chunking(ctx, rnd, max_chunk):
    """A REQUEST carrying trace_ctx survives any TCP read schedule
    bit-identically — the wire contract the stitched traces ride on."""
    request = {"id": 7, "op": "exec", "args": {"source": "+p(1)."},
               "trace_ctx": ctx}
    response = {"id": 7, "result": {},
                "trace": {"sid": 1, "name": "net.request", "wall_s": 0.5,
                          "attrs": {"remote_parent": ctx["span"]},
                          "children": [{"sid": 2, "name": "service.exec",
                                        "wall_s": 0.25}]}}
    stream = encode_frame(F_REQUEST, request) \
        + encode_frame(F_RESPONSE, response)
    decoder = FrameDecoder()
    decoded = []
    for chunk in chunked(stream, rnd, max_chunk):
        decoded.extend(decoder.feed(chunk))
    assert decoded == [(F_REQUEST, request), (F_RESPONSE, response)]
    assert decoded[0][1]["trace_ctx"] == ctx


@settings(max_examples=150, deadline=None)
@given(wild)
def test_trace_to_wire_output_always_encodes(record):
    """trace_to_wire scrubs arbitrary span attributes into values the
    frame codec accepts — attaching a trace can never break a frame."""
    from repro.net.protocol import trace_to_wire

    scrubbed = trace_to_wire(record)
    blob = encode_frame(F_RESPONSE, {"id": 1, "trace": scrubbed})
    got_type, payload = decode_frame_body(blob[4:])
    assert got_type == F_RESPONSE
    # scrubbing is idempotent modulo tuples->lists: decoding returns
    # exactly what was attached
    assert payload["trace"] == trace_to_wire(scrubbed)


def test_trace_to_wire_preserves_span_shape():
    from repro.net.protocol import trace_to_wire

    record = {"sid": 3, "name": "net.request", "wall_s": 0.125,
              "attrs": {"op": "exec", "weird": object()},
              "counters": {"join.seeks": 4},
              "children": ({"sid": 4, "name": "commit", "wall_s": 0.1},)}
    wired = trace_to_wire(record)
    assert wired["sid"] == 3 and wired["counters"] == {"join.seeks": 4}
    assert isinstance(wired["children"], list)  # tuples become lists
    assert isinstance(wired["attrs"]["weird"], str)  # repr-scrubbed
