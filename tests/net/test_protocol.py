"""Frame codec properties: bit-identical round trips under arbitrary
payloads and arbitrary TCP chunking (split and coalesced reads)."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.protocol import (
    F_CHUNK,
    F_ERROR,
    F_GOODBYE,
    F_HELLO,
    F_REQUEST,
    F_RESPONSE,
    FRAME_NAMES,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    decode_frame_body,
    encode_frame,
)

FRAME_TYPES = sorted(FRAME_NAMES)

# the codec's value universe (scalars nest into rows, dicts, lists)
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=6),
        st.lists(inner, max_size=6).map(tuple),
        st.dictionaries(st.text(max_size=10), inner, max_size=6),
    ),
    max_leaves=25,
)


def chunked(blob, rnd, max_chunk):
    """Split ``blob`` into random-sized chunks (the TCP read schedule)."""
    chunks = []
    offset = 0
    while offset < len(blob):
        size = rnd.randint(1, max_chunk)
        chunks.append(blob[offset:offset + size])
        offset += size
    return chunks


@settings(max_examples=200, deadline=None)
@given(values, st.sampled_from(FRAME_TYPES))
def test_frame_roundtrip_bit_identical(payload, ftype):
    blob = encode_frame(ftype, payload)
    got_type, got_payload = decode_frame_body(blob[4:])
    assert got_type == ftype
    assert got_payload == payload
    # canonical: re-encoding the decoded payload reproduces the bytes
    assert encode_frame(ftype, got_payload) == blob


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.tuples(st.sampled_from(FRAME_TYPES), values),
             min_size=1, max_size=8),
    st.randoms(use_true_random=False),
    st.integers(min_value=1, max_value=64),
)
def test_decoder_survives_any_chunking(frames, rnd, max_chunk):
    stream = b"".join(encode_frame(ftype, payload)
                      for ftype, payload in frames)
    decoder = FrameDecoder()
    decoded = []
    for chunk in chunked(stream, rnd, max_chunk):
        decoded.extend(decoder.feed(chunk))
    assert decoded == frames
    assert decoder.buffered == 0


def test_decoder_coalesced_single_feed():
    frames = [(F_REQUEST, {"id": 1, "op": "ping", "args": {}}),
              (F_RESPONSE, {"id": 1, "result": {}}),
              (F_GOODBYE, {})]
    stream = b"".join(encode_frame(f, p) for f, p in frames)
    assert FrameDecoder().feed(stream) == frames


def test_partial_frame_stays_buffered():
    blob = encode_frame(F_HELLO, {"proto": PROTOCOL_VERSION})
    decoder = FrameDecoder()
    assert decoder.feed(blob[:7]) == []
    assert decoder.buffered == 7
    assert decoder.feed(blob[7:]) == [(F_HELLO, {"proto": PROTOCOL_VERSION})]
    assert decoder.buffered == 0


def test_oversized_frame_is_protocol_error_not_allocation():
    decoder = FrameDecoder(max_frame_bytes=128)
    huge_header = struct.pack("<I", 1 << 30)
    with pytest.raises(ProtocolError):
        decoder.feed(huge_header)


def test_encode_respects_frame_limit():
    with pytest.raises(ProtocolError):
        encode_frame(F_CHUNK, {"rows": ["x" * 4096]}, max_frame_bytes=256)


def test_bad_version_rejected():
    blob = bytearray(encode_frame(F_HELLO, {}))
    blob[4] = PROTOCOL_VERSION + 1
    with pytest.raises(ProtocolError):
        decode_frame_body(bytes(blob[4:]))


def test_unknown_frame_type_rejected():
    blob = bytearray(encode_frame(F_HELLO, {}))
    blob[5] = 0x7F
    with pytest.raises(ProtocolError):
        decode_frame_body(bytes(blob[4:]))


def test_undecodable_payload_is_protocol_error():
    with pytest.raises(ProtocolError):
        decode_frame_body(bytes((PROTOCOL_VERSION, F_ERROR)) + b"\xff\xff")
