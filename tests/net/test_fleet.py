"""The read-serving replica fleet: watermark stamps, session
consistency (read-your-writes), replica serving endpoints, election
and promotion after a leader crash, and the cluster client's routing.

Everything runs in-process: one leader service + N serving replicas,
each on its own kernel-chosen port, all sharing tmp_path checkpoint
directories — the same topology the CI fleet job runs as subprocesses.
"""

import os
import threading
import time

import pytest

import repro
from repro.net import (
    ClusterSession,
    LeaderUnavailable,
    NetSession,
    Replica,
    ReplicaReadOnly,
    StaleRead,
)
from repro.net.server import ReproServer
from repro.service import FaultInjector, ServiceConfig, TransactionService

BLOCK = "kv[k] = v -> int(k), int(v).\n"


def start_leader(tmp_path, *, faults=None):
    service = TransactionService(
        config=ServiceConfig(
            checkpoint_path=os.path.join(str(tmp_path), "leader"),
            # fleets checkpoint eagerly: the checkpoint stream *is*
            # the replication channel
            checkpoint_every_n_commits=1,
        ),
        faults=faults,
    )
    server = service.serve()
    session = NetSession(server.host, server.port)
    session.addblock(BLOCK)
    session.load("kv", [(1, 10), (2, 20)])
    return service, server, session


def start_replica(tmp_path, server, name, **kwargs):
    replica = Replica(
        server.host, server.port, os.path.join(str(tmp_path), name),
        name=name, **kwargs)
    while replica.sync()["ingested"]:  # one checkpoint per call: drain
        pass
    replica.serve()
    return replica


@pytest.fixture
def fleet(tmp_path):
    service, server, admin = start_leader(tmp_path)
    replicas = [start_replica(tmp_path, server, "r{}".format(i))
                for i in range(2)]
    try:
        yield service, server, admin, replicas
    finally:
        admin.close()
        for replica in replicas:
            replica.close()
        server.stop()
        service.close()


def endpoints(server, replicas):
    return ["{}:{}".format(*server.address)] + [r.endpoint for r in replicas]


# -- watermark semantics -------------------------------------------------------


def test_responses_carry_the_commit_watermark(fleet):
    service, server, admin, replicas = fleet
    assert admin.last_watermark is None or admin.last_watermark >= 0
    admin.exec("^kv[1] = 11.")
    # the write's response is stamped with the post-commit watermark
    assert admin.last_watermark == service.commit_watermark
    assert admin.watermark == service.commit_watermark
    assert admin.server_role == "leader"


def test_watermark_is_monotone_across_reconnects(fleet):
    service, server, admin, replicas = fleet
    admin.exec("^kv[1] = 12.")
    seen = admin.watermark
    assert seen > 0
    # tear the transport; the next (idempotent) verb reconnects
    admin._drop_connection()
    admin.query("_(v) <- kv[1] = v.")
    assert admin.watermark >= seen


def test_replica_serves_reads_with_its_watermark(fleet):
    service, server, admin, replicas = fleet
    wm = service.commit_watermark
    replica = replicas[0]
    assert replica.sync()["ingested"] is False  # already current
    assert replica.watermark == wm
    with NetSession(*replica.endpoint.split(":")[:1],
                    int(replica.endpoint.split(":")[1])) as session:
        assert session.server_role == "replica"
        assert sorted(session.query("_(k, v) <- kv[k] = v.")) == \
            sorted(admin.query("_(k, v) <- kv[k] = v."))
        assert session.last_watermark == wm


def test_replica_endpoint_refuses_writes_with_typed_error(fleet):
    service, server, admin, replicas = fleet
    host, port = replicas[0].endpoint.split(":")
    with NetSession(host, int(port)) as session:
        with pytest.raises(ReplicaReadOnly) as excinfo:
            session.exec("^kv[1] = 99.")
        # the refusal names the leader so clients can reroute
        assert "leader" in str(excinfo.value)
        # reads still answer on the same connection
        assert session.rows("kv")


def test_stale_session_read_raises_typed_error(fleet):
    service, server, admin, replicas = fleet
    host, port = replicas[0].endpoint.split(":")
    with NetSession(host, int(port), consistency="session") as session:
        # simulate history observed elsewhere (e.g. via the leader):
        # the replica cannot serve at/above it
        session.watermark = replicas[0].watermark + 1000
        with pytest.raises(StaleRead):
            session.query("_(v) <- kv[1] = v.")
        # eventual consistency takes the same answer happily
    with NetSession(host, int(port), consistency="eventual") as session:
        session.watermark = replicas[0].watermark + 1000
        assert session.query("_(v) <- kv[1] = v.")


def test_watch_long_poll_returns_on_new_checkpoint(fleet):
    service, server, admin, replicas = fleet
    before = admin.status()
    results = {}

    def watcher():
        results["status"] = admin2.watch(
            seq=before["checkpoint_seq"], timeout_s=10.0)

    admin2 = NetSession(server.host, server.port)
    thread = threading.Thread(target=watcher)
    thread.start()
    time.sleep(0.05)
    admin.exec("^kv[2] = 21.")  # checkpoint_every_n_commits=1
    thread.join(timeout=10.0)
    admin2.close()
    assert not thread.is_alive()
    assert results["status"]["checkpoint_seq"] > before["checkpoint_seq"]


def test_watch_times_out_with_current_status(fleet):
    service, server, admin, replicas = fleet
    status = admin.watch(seq=10 ** 9, timeout_s=0.2)
    assert status["role"] == "leader"
    assert status["checkpoint_seq"] <= 10 ** 9


# -- cluster client ------------------------------------------------------------


def test_cluster_routes_writes_to_leader_and_reads_to_replicas(fleet):
    service, server, admin, replicas = fleet
    for replica in replicas:
        replica.follow(heartbeat_s=0.2)
    with ClusterSession(endpoints(server, replicas)) as cluster:
        result = cluster.exec("^kv[1] = 42.")
        assert result.committed
        assert cluster.watermark == service.commit_watermark
        # session consistency: the read must reflect our own write,
        # whether a replica caught up or the leader answered
        assert cluster.query("_(v) <- kv[1] = v.") == [(42,)]
        roles = {m["role"] for m in cluster.fleet_stats()["members"].values()
                 if m["role"]}
        assert "leader" in roles


def test_cluster_read_your_writes_with_stale_replicas(fleet):
    service, server, admin, replicas = fleet
    # replicas are NOT following: they stay pinned at the old
    # checkpoint, so every replica read after the write is stale
    with ClusterSession(endpoints(server, replicas),
                        stale_wait_s=0.01) as cluster:
        cluster.exec("^kv[2] = 77.")
        assert cluster.query("_(v) <- kv[2] = v.") == [(77,)]
        stats = cluster.fleet_stats()
        assert stats["watermark"] == service.commit_watermark


def test_cluster_eventual_mode_accepts_stale_replica_answers(fleet):
    service, server, admin, replicas = fleet
    with ClusterSession(endpoints(server, replicas),
                        consistency="eventual") as cluster:
        cluster.exec("^kv[2] = 88.")
        rows = cluster.query("_(v) <- kv[2] = v.")
        # a non-following replica answers with the pre-write value;
        # eventual mode explicitly allows that
        assert rows in ([(20,)], [(77,)], [(88,)])


def test_cluster_strong_mode_reads_from_leader_only(fleet):
    service, server, admin, replicas = fleet
    with ClusterSession(endpoints(server, replicas),
                        consistency="strong") as cluster:
        cluster.exec("^kv[1] = 55.")
        assert cluster.query("_(v) <- kv[1] = v.") == [(55,)]
        # only the leader member ever opened a session
        stats = cluster.fleet_stats()
        touched = [ep for ep, m in stats["members"].items() if m["role"]]
        assert touched == ["{}:{}".format(*server.address)]


def test_cluster_survives_full_replica_outage(fleet):
    service, server, admin, replicas = fleet
    for replica in replicas:
        replica.close()
    with ClusterSession(endpoints(server, replicas),
                        exclude_s=30.0) as cluster:
        assert sorted(cluster.query("_(k, v) <- kv[k] = v.")) == \
            sorted(admin.query("_(k, v) <- kv[k] = v."))


def test_leader_unavailable_is_typed(tmp_path):
    with ClusterSession(["127.0.0.1:1", "127.0.0.1:2"],
                        leader_wait_s=0.3) as cluster:
        with pytest.raises(LeaderUnavailable):
            cluster.exec("^kv[1] = 1.")


# -- promotion and failover ----------------------------------------------------


def test_promotion_is_watermark_monotone(fleet):
    service, server, admin, replicas = fleet
    admin.exec("^kv[1] = 13.")
    wm_before = service.commit_watermark
    replica = replicas[0]
    deadline = time.monotonic() + 10.0
    while replica.watermark < wm_before and time.monotonic() < deadline:
        if not replica.sync()["ingested"]:
            time.sleep(0.05)
    assert replica.watermark == wm_before
    status = replica.promote()
    assert status["role"] == "leader"
    assert status["watermark"] == wm_before
    # the promoted endpoint accepts writes on the SAME socket surface
    host, port = replica.endpoint.split(":")
    with NetSession(host, int(port)) as session:
        assert session.server_role == "leader"
        result = session.exec("^kv[1] = 14.")
        assert result.committed
        # commit sequence numbers continue, never restart
        assert session.watermark > wm_before
        assert session.query("_(v) <- kv[1] = v.") == [(14,)]


def test_promotion_is_idempotent(fleet):
    service, server, admin, replicas = fleet
    replica = replicas[0]
    first = replica.promote()
    second = replica.promote()
    assert first["role"] == second["role"] == "leader"


def test_election_is_deterministic_on_injected_leader_crash(tmp_path):
    faults = FaultInjector()
    service, server, admin = start_leader(tmp_path, faults=faults)
    replicas = [
        start_replica(tmp_path, server, "e{}".format(i))
        for i in range(2)
    ]
    try:
        # both replicas are equally caught up, so the tie-break
        # (smallest endpoint string) decides — compute it up front
        peers = [r.endpoint for r in replicas]
        for replica, other in zip(replicas, reversed(replicas)):
            replica.peers = [other.endpoint]
        assert replicas[0].watermark == replicas[1].watermark
        expected = min(peers)
        for replica in replicas:
            replica.follow(heartbeat_s=0.2, leader_timeout_s=0.8)
        # the injected crash: the leader drops every frame it would
        # send, so heartbeats fail while the process is still "up"
        faults.script("net_send", "drop", times=10000)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if any(r.promoted is not None for r in replicas):
                break
            time.sleep(0.1)
        promoted = [r for r in replicas if r.promoted is not None]
        assert len(promoted) == 1, "exactly one replica must win"
        assert promoted[0].endpoint == expected
        # the loser re-pointed its follow loop at the new leader
        loser = next(r for r in replicas if r.promoted is None)
        winner_host, winner_port = expected.split(":")
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if (loser.host, loser.port) == (winner_host, int(winner_port)):
                break
            time.sleep(0.1)
        assert (loser.host, loser.port) == (winner_host, int(winner_port))
    finally:
        admin.close()
        for replica in replicas:
            replica.close()
        server.stop()
        service.close()


def test_cluster_client_fails_over_writes_after_promotion(fleet):
    service, server, admin, replicas = fleet
    eps = endpoints(server, replicas)
    with ClusterSession(eps, leader_wait_s=10.0,
                        retry_writes_on_failover=True) as cluster:
        cluster.exec("^kv[1] = 70.")
        # the leader dies; a replica is promoted (externally here —
        # the election test covers replica-side detection)
        server.stop()
        service.close()
        replicas[0].promote()
        result = cluster.exec("^kv[1] = 71.")
        assert result.committed
        assert cluster.query("_(v) <- kv[1] = v.") == [(71,)]
        assert cluster.fleet_stats()["members"][
            replicas[0].endpoint]["role"] == "leader"


# -- unified entry point -------------------------------------------------------


def test_repro_connect_cluster_url_end_to_end(fleet):
    service, server, admin, replicas = fleet
    url = "cluster://" + ",".join(endpoints(server, replicas))
    with repro.connect(url) as cluster:
        assert isinstance(cluster, ClusterSession)
        cluster.exec("^kv[2] = 99.")
        assert cluster.query("_(v) <- kv[2] = v.") == [(99,)]


# -- lag-based self-exclusion --------------------------------------------------


def test_replica_advertises_staleness_bound(fleet, tmp_path):
    _, server, _, _ = fleet
    bounded = start_replica(
        tmp_path, server, "bounded", max_staleness_s=5.0)
    try:
        status = bounded.status()
        assert status["max_staleness_s"] == 5.0
        assert status["staleness_s"] >= 0.0
        assert status["staleness_s"] < 5.0  # just synced
    finally:
        bounded.close()


def test_cluster_excludes_replica_past_its_staleness_bound(fleet, tmp_path):
    service, server, admin, replicas = fleet
    # a replica that promises 1ms freshness and is not following: its
    # self-advertised staleness blows the bound almost immediately
    laggard = start_replica(
        tmp_path, server, "laggard", max_staleness_s=0.001)
    try:
        time.sleep(0.05)
        eps = ["{}:{}".format(*server.address), laggard.endpoint]
        with ClusterSession(eps, consistency="eventual",
                            lag_probe_s=0.0001) as cluster:
            for _ in range(6):
                time.sleep(0.002)
                assert cluster.query("_(v) <- kv[1] = v.") == [(10,)]
            stats = cluster.fleet_stats()
            lagging = [ep for ep, m in stats["members"].items()
                       if m["lag_excluded"]]
            assert lagging == [laggard.endpoint]
    finally:
        laggard.close()


def test_cluster_keeps_fresh_replicas_in_rotation(fleet):
    service, server, admin, replicas = fleet
    # default replicas advertise no bound: lag exclusion never trips
    with ClusterSession(endpoints(server, replicas),
                        consistency="eventual",
                        lag_probe_s=0.0001) as cluster:
        for _ in range(4):
            assert cluster.query("_(v) <- kv[1] = v.") == [(10,)]
        stats = cluster.fleet_stats()
        assert not any(
            m["lag_excluded"] for m in stats["members"].values())
