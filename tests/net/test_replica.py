"""Checkpoint-shipping read replicas: cold sync equality, O(log n)
delta sync (asserted on pager counters), read-only enforcement,
restart from local disk, and background following."""

import os
import time

import pytest

from repro import stats as _stats
from repro.net import NetSession, Replica, ReproServer
from repro.net.protocol import ReplicaReadOnly
from repro.service import ServiceConfig, TransactionService

N = 2000


@pytest.fixture()
def leader(tmp_path):
    service = TransactionService(config=ServiceConfig(
        checkpoint_path=str(tmp_path / "leader")))
    with ReproServer(service) as server:
        with NetSession(server.host, server.port) as s:
            s.addblock("item[k] = v -> int(k), int(v).", name="items")
            s.load("item", [(i, i * 7) for i in range(N)])
            s.checkpoint()
        yield server, str(tmp_path)
    service.close()


def test_cold_sync_matches_leader(leader):
    server, tmp = leader
    with Replica(server.host, server.port, os.path.join(tmp, "r1")) as rep:
        info = rep.sync()
        assert info["ingested"] and info["fetched_records"] > 0
        assert sorted(rep.rows("item")) == [(i, i * 7) for i in range(N)]
        assert rep.query("_(v) <- item[3] = v.") == [(21,)]


def test_delta_sync_fetches_o_log_n_records(leader):
    server, tmp = leader
    with Replica(server.host, server.port, os.path.join(tmp, "r2")) as rep:
        cold = {}
        with _stats.scope(cold):
            rep.sync()
        cold_fetched = cold.get("pager.sync.fetched_records", 0)
        assert cold_fetched > 100  # the cold sync moved the whole tree

        # one-tuple change on the leader, new checkpoint
        with NetSession(server.host, server.port) as s:
            s.exec("^item[3] = 999.")
            s.checkpoint()

        delta = {}
        with _stats.scope(delta):
            info = rep.sync()
        assert info["ingested"]
        fetched = delta.get("pager.sync.fetched_records", 0)
        # structural sharing: only the spine above the changed tuple
        # (plus a handful of metadata roots) crosses the wire —
        # O(log n), not O(n)
        assert 0 < fetched <= 64, fetched
        assert fetched * 5 < cold_fetched, (fetched, cold_fetched)
        assert rep.query("_(v) <- item[3] = v.") == [(999,)]
        assert len(rep.rows("item")) == N


def test_sync_is_idempotent_when_current(leader):
    server, tmp = leader
    with Replica(server.host, server.port, os.path.join(tmp, "r3")) as rep:
        rep.sync()
        info = rep.sync()
        assert info["ingested"] is False
        assert info["fetched_records"] == 0


def test_replica_rejects_writes(leader):
    server, tmp = leader
    with Replica(server.host, server.port, os.path.join(tmp, "r4")) as rep:
        rep.sync()
        for verb in (lambda: rep.exec("+item[9] = 9."),
                     lambda: rep.addblock("q(x) -> int(x)."),
                     lambda: rep.removeblock("items"),
                     lambda: rep.load("item", [(9, 9)])):
            with pytest.raises(ReplicaReadOnly):
                verb()


def test_replica_restarts_from_local_checkpoint(leader):
    server, tmp = leader
    path = os.path.join(tmp, "r5")
    with Replica(server.host, server.port, path) as rep:
        rep.sync()
        seq = rep.seq
    # a fresh replica process on the same directory serves reads
    # before ever contacting the leader
    with Replica(server.host, server.port, path) as rep2:
        assert rep2.seq == seq
        assert rep2.query("_(v) <- item[3] = v.") == [(21,)]
        # and a subsequent sync is a no-op (already current)
        assert rep2.sync()["ingested"] is False


def test_follow_picks_up_new_checkpoints(leader):
    server, tmp = leader
    with Replica(server.host, server.port, os.path.join(tmp, "r6")) as rep:
        rep.follow(heartbeat_s=0.5)
        first = rep.seq
        with NetSession(server.host, server.port) as s:
            s.exec("^item[5] = 555.")
            s.checkpoint()
        deadline = time.time() + 10.0
        while rep.seq == first and time.time() < deadline:
            time.sleep(0.05)
        assert rep.seq > first
        assert rep.query("_(v) <- item[5] = v.") == [(555,)]
        rep.stop()


def test_unsynced_replica_refuses_reads(leader):
    server, tmp = leader
    with Replica(server.host, server.port, os.path.join(tmp, "r7")) as rep:
        with pytest.raises(ReplicaReadOnly):
            rep.rows("item")
