"""Transport fault injection: torn frames and vanished peers must end
in clean typed errors (and transparent retries for idempotent reads),
never hangs."""

import time

import pytest

from repro.net import NetSession, ReproServer
from repro.net.protocol import ConnectionLost
from repro.service import FaultInjector, ServiceConfig, TransactionService


@pytest.fixture()
def rig():
    faults = FaultInjector()
    service = TransactionService(config=ServiceConfig(max_pending=8))
    with ReproServer(service, faults=faults) as server:
        with NetSession(server.host, server.port, socket_timeout_s=2.0) as admin:
            admin.addblock("p(x) -> int(x).", name="b1")
            admin.load("p", [(1,), (2,)])
        yield server, faults
    service.close()


def test_truncated_response_retries_cleanly(rig):
    server, faults = rig
    # the server sends half the query's response frame, then closes:
    # a torn frame.  The client must detect it, reconnect, and re-issue
    # the (idempotent) read under the server's backoff policy.
    faults.script("net_send", "truncate", match="query")
    with NetSession(server.host, server.port, socket_timeout_s=2.0) as s:
        assert sorted(s.query("_(x) <- p(x).")) == [(1,), (2,)]
    assert ("net_send", "truncate", "query") in faults.fired


def test_dropped_request_retries_cleanly(rig):
    server, faults = rig
    # the server reads the request and silently discards it (a lost
    # message).  The client's socket timeout converts the silence into
    # a transport error; the idempotent read then reconnects and wins.
    faults.script("net_recv", "drop", match="query")
    with NetSession(server.host, server.port, socket_timeout_s=1.0) as s:
        started = time.perf_counter()
        assert sorted(s.query("_(x) <- p(x).")) == [(1,), (2,)]
        assert time.perf_counter() - started < 10.0
    assert ("net_recv", "drop", "query") in faults.fired


def test_torn_frame_mid_recv_aborts_connection_not_session(rig):
    server, faults = rig
    # the server treats the inbound frame as torn and aborts the
    # connection; the client reconnects for the next read.
    faults.script("net_recv", "truncate", match="query")
    with NetSession(server.host, server.port, socket_timeout_s=2.0) as s:
        assert sorted(s.query("_(x) <- p(x).")) == [(1,), (2,)]


def test_dropped_write_is_a_typed_error_not_a_hang(rig):
    server, faults = rig
    # the connection vanishes while an exec is in flight.  The commit
    # status is unknown, so the client must NOT silently retry — it
    # surfaces a typed ConnectionLost, promptly.
    faults.script("net_send", "drop", match="exec")
    with NetSession(server.host, server.port, socket_timeout_s=2.0) as s:
        started = time.perf_counter()
        with pytest.raises(ConnectionLost) as info:
            s.exec("+p(3).")
        assert time.perf_counter() - started < 10.0
        assert "commit status unknown" in str(info.value)
    assert ("net_send", "drop", "exec") in faults.fired


def test_client_survives_a_torn_exec_with_manual_retry(rig):
    server, faults = rig
    faults.script("net_send", "truncate", match="exec")
    with NetSession(server.host, server.port, socket_timeout_s=2.0) as s:
        with pytest.raises(ConnectionLost):
            s.exec("+p(4).")
        # the session object stays usable: the next verb reconnects
        rows = s.rows("p")
        # the torn exec may or may not have committed server-side
        # (the fault hit the *response*); both outcomes are visible
        assert (4,) in rows or sorted(rows) == [(1,), (2,)]
