"""The paper's §2.1 scenario, end to end.

"A user community made up of several hundred merchants, planners,
supply chain personnel, and store managers ... wants to analyze
historical sales and promotions data ... plan future promotions,
predict future sales, and optimize the fulfillment of the demand."

One test class per activity, all on one evolving workspace: reporting
views, concurrent workbook edits, live model evolution by a power user,
per-SKU sales prediction, and assortment optimization.
"""

import pytest

from repro import Workbook, Workspace
from repro.datasets.retail import load_retail, retail_workload
from repro.ml import ModelStore, run_predict_rules
from repro.solver import solve_workspace
from repro.txn import RepairScheduler


@pytest.fixture(scope="module")
def app():
    ws = Workspace()
    data = load_retail(ws, n_skus=6, n_stores=2, n_weeks=26, seed=11)
    ws.addblock(
        """
        skuRevenue[s] = u <- agg<<u = sum(z)>> sales[s, t, w] = n,
            price[s] = p, z = n * p.
        totalRevenue[] = u <- agg<<u = sum(v)>> skuRevenue[s] = v.
        promoWeeks[s] = u <- agg<<u = count(w)>> promo(s, w).
        """,
        name="reporting",
    )
    return ws, data


class TestAnalysisViews:
    def test_pivot_style_views(self, app):
        ws, data = app
        assert len(ws.rows("skuRevenue")) == 6
        [(total,)] = ws.rows("totalRevenue")
        manual = sum(
            n * dict(data["price"])[s] for (s, t, w, n) in data["sales"]
        )
        assert abs(total - manual) < 1e-6

    def test_views_maintained_under_edits(self, app):
        ws, _ = app
        [(before,)] = ws.rows("totalRevenue")
        sku = ws.rows("sku")[0][0]
        price = dict(ws.rows("price"))[sku]
        ws.exec(
            '+sales["{}", "store00", 99] = 10.0.'.format(sku)
        )
        [(after,)] = ws.rows("totalRevenue")
        assert abs(after - (before + 10.0 * price)) < 1e-6


class TestConcurrentPlanning:
    def test_two_planners_in_workbooks(self, app):
        ws, _ = app
        sku = ws.rows("sku")[0][0]
        first = Workbook(ws, name="promo-plan")
        second = Workbook(ws, name="price-plan")
        first.exec('+promo("{}", 98).'.format(sku))
        second.exec(
            '^price["{0}"] = x <- price@start["{0}"] = y, x = y * 1.1.'.format(sku)
        )
        # each sees only its own edits; main sees neither
        assert (sku, 98) in {tuple(r) for r in first.rows("promo")}
        assert (sku, 98) not in {tuple(r) for r in ws.rows("promo")}
        first.commit()
        second.commit()
        assert (sku, 98) in {tuple(r) for r in ws.rows("promo")}

    def test_small_transactions_via_repair(self, app):
        ws, _ = app
        skus = [s for (s,) in ws.rows("sku")][:4]
        batch = [
            '^price["{0}"] = x <- price@start["{0}"] = y, x = y + 0.01.'.format(s)
            for s in skus + skus  # deliberately conflicting pairs
        ]
        scheduler = RepairScheduler(ws)
        before = dict(ws.rows("price"))
        scheduler.run(batch)
        after = dict(ws.rows("price"))
        for sku in skus:
            assert abs(after[sku] - (before[sku] + 0.02)) < 1e-9
        assert scheduler.stats["repairs"] >= len(skus)


class TestSelfService:
    def test_power_user_evolves_model(self, app):
        ws, _ = app
        ws.addblock(
            "margin[s] = m <- price[s] = p, cost[s] = c, m = p - c.",
            name="margin-metric",
        )
        first = dict(ws.rows("margin"))
        ws.addblock(
            "margin[s] = m <- price[s] = p, cost[s] = c, m = (p - c) / p.",
            name="margin-metric",
        )
        second = dict(ws.rows("margin"))
        assert set(first) == set(second)
        assert all(0 < second[s] < 1 for s in second)
        ws.removeblock("margin-metric")


class TestPredictAndOptimize:
    def test_predict_demand(self, app):
        ws, _ = app
        ws.addblock(
            """
            demandModel[s, t] = m <- predict m = linear(v|f)
                sales[s, t, w] = v, feature[s, t, w, n] = f.
            """,
            name="predict",
        )
        run_predict_rules(ws)
        models = ws.rows("demandModel")
        assert len(models) == 12
        model = ModelStore.get(models[0][2])
        assert len(model.coef_) == 2  # promo + season features

    def test_optimize_fulfillment(self, app):
        ws, _ = app
        ws.addblock(
            """
            Product(p) -> .
            unitProfit[p] = v -> Product(p), float(v).
            unitSpace[p] = v -> Product(p), float(v).
            order[p] = v -> Product(p), float(v).
            capacity[] = v -> float(v).
            usedSpace[] = u <- agg<<u = sum(z)>> order[p] = x,
                unitSpace[p] = y, z = x * y.
            plannedProfit[] = u <- agg<<u = sum(z)>> order[p] = x,
                unitProfit[p] = y, z = x * y.
            Product(p) -> order[p] >= 0.
            Product(p) -> order[p] <= 100.
            usedSpace[] = u, capacity[] = v -> u <= v.
            lang:solve:variable(`order).
            lang:solve:max(`plannedProfit).
            """,
            name="fulfillment",
        )
        skus = [s for (s,) in ws.rows("sku")]
        prices = dict(ws.rows("price"))
        costs = dict(ws.rows("cost"))
        ws.load("Product", [(s,) for s in skus])
        ws.load("unitProfit", [(s, prices[s] - costs[s]) for s in skus])
        ws.load("unitSpace", dict(ws.rows("spacePerSku")).items())
        ws.load("capacity", [(150.0,)])
        result, _ = solve_workspace(ws)
        assert result.ok
        [(used,)] = ws.rows("usedSpace")
        assert used <= 150.0 + 1e-6
        orders = dict(ws.rows("order"))
        # the highest profit-per-space sku is ordered
        density = {s: (prices[s] - costs[s]) / dict(ws.rows("unitSpace"))[s]
                   for s in skus}
        best = max(density, key=density.get)
        assert orders[best] > 0
