"""benchmarks/compare.py: diffing two BENCH_<name>.json artifacts."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_compare():
    spec = importlib.util.spec_from_file_location(
        "bench_compare", REPO_ROOT / "benchmarks" / "compare.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def payload(means, counters):
    return {
        "benchmark": "bench_sample",
        "engine_stats": counters,
        "results": [
            {"test": name, "params": {}, "wall_time_s": {"mean": mean}}
            for name, mean in means.items()
        ],
    }


def write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


class TestCompare:
    def test_reports_wall_time_and_counter_deltas(self, tmp_path, capsys):
        compare = _load_compare()
        old = write(tmp_path, "old.json", payload(
            {"test_a": 1.0, "test_b": 2.0},
            {"plan_cache.hits": 10, "join.seeks": 100},
        ))
        new = write(tmp_path, "new.json", payload(
            {"test_a": 1.5, "test_b": 1.0},
            {"plan_cache.hits": 30, "join.seeks": 100},
        ))
        assert compare.main([old, new]) == 0
        out = capsys.readouterr().out
        assert "test_a" in out and "+50.0%" in out
        assert "test_b" in out and "-50.0%" in out
        assert "plan_cache.hits" in out and "(+20)" in out
        # unchanged counters are not listed
        assert "join.seeks" not in out

    def test_added_and_removed_tests(self, tmp_path, capsys):
        compare = _load_compare()
        old = write(tmp_path, "old.json", payload({"gone": 1.0}, {}))
        new = write(tmp_path, "new.json", payload({"fresh": 2.0}, {}))
        assert compare.main([old, new]) == 0
        out = capsys.readouterr().out
        assert "gone" in out and "removed" in out
        assert "fresh" in out and "added" in out

    def test_fail_above_gate(self, tmp_path, capsys):
        compare = _load_compare()
        old = write(tmp_path, "old.json", payload({"t": 1.0}, {}))
        new = write(tmp_path, "new.json", payload({"t": 1.2}, {}))
        assert compare.main([old, new, "--fail-above", "10"]) == 1
        assert compare.main([old, new, "--fail-above", "30"]) == 0

    def test_nested_snapshots_are_skipped(self, tmp_path, capsys):
        compare = _load_compare()
        counters = {"plan_cache": {"hits": 1}, "flat": 5}
        old = write(tmp_path, "old.json", payload({"t": 1.0}, counters))
        new = write(tmp_path, "new.json", payload({"t": 1.0}, {"flat": 9}))
        assert compare.main([old, new]) == 0
        out = capsys.readouterr().out
        assert "flat" in out

    def test_real_artifact_shape(self, tmp_path, capsys):
        """The checked-in BENCH files parse through the same path."""
        compare = _load_compare()
        results = sorted((REPO_ROOT / "benchmarks" / "results").glob("BENCH_*.json"))
        assert results, "no checked-in BENCH artifacts"
        sample = str(results[0])
        assert compare.main([sample, sample]) == 0
