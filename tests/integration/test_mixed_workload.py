"""The paper's thesis: one system, mixed workloads (§1, §2.1).

"It is important that the users of the system not be impacted
negatively as hundreds of these long running transactions are taking
place along with millions of smaller ones."  This test runs a scaled
mixed workload — OLTP-style writes, analytical views, what-if
workbooks, a program change, and an optimization — against ONE
workspace, checking consistency invariants throughout.
"""

import random

import pytest

from repro import ConstraintViolation, Workbook, Workspace
from repro.txn import RepairScheduler


@pytest.fixture
def app():
    ws = Workspace()
    ws.addblock(
        """
        item(i) -> .
        onHand[i] = v -> item(i), int(v).
        price[i] = p -> item(i), float(p).
        item(i) -> onHand[i] >= 0.
        stockValue[] = u <- agg<<u = sum(z)>> onHand[i] = v,
            price[i] = p, z = v * p.
        lowStock(i) <- onHand[i] = v, v < 3.
        nLow[] = u <- agg<<u = count(i)>> lowStock(i).
        """,
        name="core",
    )
    items = ["i{:03d}".format(k) for k in range(30)]
    # item(i) -> onHand[i] >= 0 is an inclusion dependency: items and
    # their stock must arrive in one atomic transaction
    lines = []
    for k, i in enumerate(items):
        lines.append('+item("{}").'.format(i))
        lines.append('+onHand["{}"] = 10.'.format(i))
        lines.append('+price["{}"] = {}.'.format(i, 2.0 + k * 0.1))
    ws.exec("\n".join(lines))
    return ws


def check_invariants(ws):
    on_hand = dict(ws.rows("onHand"))
    prices = dict(ws.rows("price"))
    expected_value = sum(on_hand[i] * prices[i] for i in on_hand)
    [(value,)] = ws.rows("stockValue")
    assert abs(value - expected_value) < 1e-6
    low = {i for (i,) in ws.rows("lowStock")}
    assert low == {i for i, v in on_hand.items() if v < 3}
    n_low = ws.rows("nLow")
    assert (n_low[0][0] if n_low else 0) == len(low)


class TestMixedWorkload:
    def test_interleaved_activities(self, app):
        ws = app
        rng = random.Random(8)
        items = [i for (i,) in ws.rows("item")]

        # 1) a stream of small OLTP transactions
        for _ in range(25):
            item = rng.choice(items)
            delta = rng.choice([-2, -1, 1, 2])
            try:
                ws.exec(
                    '^onHand["{0}"] = x <- onHand@start["{0}"] = y, '
                    "x = y + {1}.".format(item, delta)
                )
            except ConstraintViolation:
                pass  # would have gone negative: correctly rejected
            check_invariants(ws)

        # 2) a long-running planning workbook, concurrent with writes
        workbook = Workbook(ws, name="replenishment")
        workbook.exec(
            '^onHand["{0}"] = x <- onHand@start["{0}"] = y, '
            "x = y + 50.".format(items[0])
        )
        ws.exec(
            '^onHand["{0}"] = x <- onHand@start["{0}"] = y, '
            "x = y + 1.".format(items[1])
        )
        check_invariants(ws)  # main untouched by the workbook
        workbook.commit()
        check_invariants(ws)
        assert dict(ws.rows("onHand"))[items[0]] >= 50

        # 3) live programming mid-stream: add a view, keep writing
        ws.addblock(
            "valuable(i) <- onHand[i] = v, price[i] = p, v * p > 100.0.",
            name="analytics",
        )
        ws.exec(
            '^onHand["{0}"] = x <- onHand@start["{0}"] = y, x = y + 5.'.format(
                items[2]
            )
        )
        check_invariants(ws)
        on_hand = dict(ws.rows("onHand"))
        prices = dict(ws.rows("price"))
        assert {i for (i,) in ws.rows("valuable")} == {
            i for i in on_hand if on_hand[i] * prices[i] > 100.0
        }

        # 4) a conflicting batch through the repair scheduler
        batch = [
            '^onHand["{0}"] = x <- onHand@start["{0}"] = y, x = y - 1.'.format(
                rng.choice(items[:5])
            )
            for _ in range(8)
        ]
        RepairScheduler(ws).run(batch)
        check_invariants(ws)

        # 5) the analytical state survived everything
        assert len(ws.rows("onHand")) == len(items)

    def test_rejected_writes_never_leak_into_views(self, app):
        ws = app
        [(before,)] = ws.rows("stockValue")
        with pytest.raises(ConstraintViolation):
            ws.exec('^onHand["i000"] = 0 - 50 <- .')
        [(after,)] = ws.rows("stockValue")
        assert before == after
        check_invariants(ws)
