"""Integration: every inline example of the paper, end to end."""

import pytest

from repro import ConstraintViolation, Workspace
from repro.solver import solve_workspace


class TestSection2Examples:
    def test_profit_rule_both_syntaxes(self):
        """profit[sku] = z <- sellingPrice - buyingPrice (both forms)."""
        for source in (
            """
            profit[sku] = z <- sellingPrice[sku] = x, buyingPrice[sku] = y,
                z = x - y.
            """,
            "profit[sku] = sellingPrice[sku] - buyingPrice[sku] <- .",
        ):
            ws = Workspace()
            ws.addblock(
                """
                sellingPrice[s] = v -> string(s), float(v).
                buyingPrice[s] = v -> string(s), float(v).
                """,
                name="schema",
            )
            ws.addblock(source, name="profit")
            ws.load("sellingPrice", [("pop", 1.5)])
            ws.load("buyingPrice", [("pop", 1.0)])
            assert ws.rows("profit") == [("pop", 0.5)]

    def test_total_shelf_p2p_rule(self):
        ws = Workspace()
        ws.addblock(
            """
            Stock[p] = v -> string(p), float(v).
            spacePerProd[p] = v -> string(p), float(v).
            totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x,
                spacePerProd[p] = y, z = x * y.
            """,
            name="m",
        )
        ws.load("Stock", [("a", 2.0), ("b", 4.0)])
        ws.load("spacePerProd", [("a", 1.0), ("b", 0.5)])
        assert ws.rows("totalShelf") == [(4.0,)]

    def test_popsicle_discount_reactive_rule(self):
        """§2.2.1: discount popsicles when January sales were low and a
        promotion is being created."""
        ws = Workspace()
        ws.addblock(
            """
            price[p] = v -> string(p), float(v).
            sales[p, m] = v -> string(p), string(m), int(v).
            promo(p, m) -> string(p), string(m).
            """,
            name="schema",
        )
        ws.load("price", [("Popsicle", 1.0)])
        ws.load("sales", [("Popsicle", "2015-01", 40)])
        ws.exec(
            """
            ^price["Popsicle"] = 0.8 * x <- price@start["Popsicle"] = x,
                sales@start["Popsicle", "2015-01"] < 50,
                +promo("Popsicle", "2015-01").
            +promo("Popsicle", "2015-01").
            """
        )
        assert ws.rows("price") == [("Popsicle", 0.8)]
        assert ws.rows("promo") == [("Popsicle", "2015-01")]
        # without the promotion delta the discount does not fire
        ws2 = Workspace()
        ws2.addblock(
            """
            price[p] = v -> string(p), float(v).
            sales[p, m] = v -> string(p), string(m), int(v).
            promo(p, m) -> string(p), string(m).
            """,
            name="schema",
        )
        ws2.load("price", [("Popsicle", 1.0)])
        ws2.load("sales", [("Popsicle", "2015-01", 40)])
        ws2.exec(
            """
            ^price["Popsicle"] = 0.8 * x <- price@start["Popsicle"] = x,
                sales@start["Popsicle", "2015-01"] < 50,
                +promo("Popsicle", "2015-01").
            """
        )
        assert ws2.rows("price") == [("Popsicle", 1.0)]

    def test_sales_delta_fact(self):
        ws = Workspace()
        ws.addblock(
            "sales[p, m] = v -> string(p), string(m), int(v).", name="s"
        )
        ws.exec('+sales["Popsicle", "2015-01"] = 122.')
        assert ws.rows("sales") == [("Popsicle", "2015-01", 122)]

    def test_query_transaction_shape(self):
        """§2.2.2 query with the designated answer predicate ``_``."""
        ws = Workspace()
        ws.addblock(
            """
            week_sales[i, w] = v -> string(i), int(w), float(v).
            week_revenue[i, w] = v -> string(i), int(w), float(v).
            week_profit[i, w] = v -> string(i), int(w), float(v).
            """,
            name="s",
        )
        ws.load("week_sales", [("ice", 1, 10.0)])
        ws.load("week_revenue", [("ice", 1, 20.0)])
        ws.load("week_profit", [("ice", 1, 5.0)])
        rows = ws.query(
            """
            _(icecream, week, sales, revenue, profit) <-
                week_sales[icecream, week] = sales,
                week_revenue[icecream, week] = revenue,
                week_profit[icecream, week] = profit.
            """
        )
        assert rows == [("ice", 1, 10.0, 20.0, 5.0)]

    def test_sales_yr_addblock_removeblock(self):
        """§2.2.2 addblock --name salesAgg1 / removeblock salesAgg1."""
        ws = Workspace()
        ws.addblock(
            """
            Sales[sku, store, wk] = v -> string(sku), string(store),
                int(wk), float(v).
            year[wk] = y -> int(wk), int(y).
            """,
            name="schema",
        )
        ws.load("Sales", [("a", "s", 1, 5.0), ("a", "s", 53, 7.0)])
        ws.load("year", [(1, 2014), (53, 2015)])
        ws.addblock(
            """
            Sales_yr[sku, store, yr] = z <- agg<<z = sum(s)>>
                Sales[sku, store, wk] = s, year[wk] = yr.
            """,
            name="salesAgg1",
        )
        assert ws.rows("Sales_yr") == [
            ("a", "s", 2014, 5.0), ("a", "s", 2015, 7.0),
        ]
        ws.removeblock("salesAgg1")
        from repro import UnknownPredicate

        with pytest.raises(UnknownPredicate):
            ws.rows("Sales_yr")


class TestFigure2Complete:
    def test_full_program_with_solve(self):
        ws = Workspace()
        ws.addblock(
            """
            Product(p) -> .
            spacePerProd[p] = v -> Product(p), float(v).
            profitPerProd[p] = v -> Product(p), float(v).
            minStock[p] = v -> Product(p), float(v).
            maxStock[p] = v -> Product(p), float(v).
            maxShelf[] = v -> float[64](v).
            Stock[p] = v -> Product(p), float(v).
            totalShelf[] = v -> float(v).
            totalProfit[] = v -> float(v).
            totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x,
                spacePerProd[p] = y, z = x * y.
            totalProfit[] = u <- agg<<u = sum(z)>> Stock[p] = x,
                profitPerProd[p] = y, z = x * y.
            Product(p) -> Stock[p] >= minStock[p].
            Product(p) -> Stock[p] <= maxStock[p].
            totalShelf[] = u, maxShelf[] = v -> u <= v.
            lang:solve:variable(`Stock).
            lang:solve:max(`totalProfit).
            """,
            name="figure2",
        )
        ws.load("Product", [("w",), ("g",)])
        ws.load("spacePerProd", [("w", 2.0), ("g", 3.0)])
        ws.load("profitPerProd", [("w", 5.0), ("g", 7.0)])
        ws.load("minStock", [("w", 1.0), ("g", 1.0)])
        ws.load("maxStock", [("w", 20.0), ("g", 20.0)])
        ws.load("maxShelf", [(30.0,)])
        result, _ = solve_workspace(ws)
        assert result.ok
        stock = dict(ws.rows("Stock"))
        assert stock["w"] >= 1.0 - 1e-9 and stock["g"] >= 1.0 - 1e-9
        shelf = ws.rows("totalShelf")[0][0]
        assert shelf <= 30.0 + 1e-6
        # all constraints hold on the written-back solution; clearing
        # the solution and tightening the shelf makes the model
        # infeasible (minStock requires more space than the shelf has)
        ws.load("Stock", [], remove=ws.rows("Stock"))
        ws.load("maxShelf", [(4.0,)], remove=[(30.0,)])
        result2, _ = solve_workspace(ws, write_back=False)
        assert result2.status == "infeasible"

    def test_meta_engine_frame_rule_example(self):
        """§3.3's need_frame_rule meta-rule over installed blocks."""
        ws = Workspace()
        ws.addblock(
            """
            inv[s] = v -> string(s), int(v).
            req(s) -> string(s).
            +inv[s] = 1 <- req(s).
            """,
            name="reactive",
        )
        meta = ws.state.meta_state
        assert "inv" in meta.members("need_frame_rule")
