"""Dataset generators and the runnable example scripts."""

import pathlib
import subprocess
import sys

import pytest

from repro import Workspace
from repro.datasets import (
    alpha_transactions,
    erdos_renyi,
    grid_graph,
    powerlaw_graph,
    retail_workload,
)
from repro.datasets.retail import load_retail
from repro.datasets.txnload import item_name, setup_inventory

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


class TestGraphGenerators:
    def test_powerlaw_shape(self):
        edges = powerlaw_graph(300, edges_per_node=4, seed=1)
        assert edges == sorted(set(edges))
        assert all(a != b for a, b in edges)
        # symmetric social-graph edges
        edge_set = set(edges)
        assert all((b, a) in edge_set for a, b in edges)
        # heavy tail: max degree far above the median
        degree = {}
        for a, _ in edges:
            degree[a] = degree.get(a, 0) + 1
        degrees = sorted(degree.values())
        assert degrees[-1] > 4 * degrees[len(degrees) // 2]

    def test_powerlaw_deterministic(self):
        assert powerlaw_graph(100, seed=7) == powerlaw_graph(100, seed=7)
        assert powerlaw_graph(100, seed=7) != powerlaw_graph(100, seed=8)

    def test_erdos_renyi(self):
        edges = erdos_renyi(50, 200, seed=2)
        assert len(edges) == 200
        assert all(a != b for a, b in edges)
        symmetric = erdos_renyi(20, 30, seed=3, symmetric=True)
        edge_set = set(symmetric)
        assert all((b, a) in edge_set for a, b in symmetric)

    def test_grid_has_no_triangles(self):
        edges = set(grid_graph(5))
        by_src = {}
        for a, b in edges:
            by_src.setdefault(a, set()).add(b)
        for a, b in edges:
            assert not (by_src.get(b, set()) & by_src.get(a, set()) - {a, b})


class TestRetailWorkload:
    def test_schema_loads(self):
        ws = Workspace()
        data = load_retail(ws, n_skus=3, n_stores=2, n_weeks=4, seed=0)
        assert len(ws.rows("sku")) == 3
        assert len(ws.rows("sales")) == 3 * 2 * 4
        prices = dict(ws.rows("price"))
        costs = dict(ws.rows("cost"))
        assert all(costs[s] < prices[s] for s in prices)

    def test_promo_lift_visible(self):
        data = retail_workload(n_skus=1, n_stores=1, n_weeks=52, seed=4)
        promo_weeks = {w for _, w in data["promo"]}
        sales = {w: u for (_, _, w, u) in data["sales"]}
        lift = sum(sales[w] for w in promo_weeks) / len(promo_weeks)
        base = sum(u for w, u in sales.items() if w not in promo_weeks) / (
            52 - len(promo_weeks)
        )
        assert lift > 1.3 * base


class TestTxnWorkload:
    def test_alpha_footprint(self):
        import re

        sources = alpha_transactions(400, 20, alpha=2.0, seed=1)
        sizes = [len(re.findall(r"\^inventory", s)) for s in sources]
        mean = sum(sizes) / len(sizes)
        # expected footprint = alpha * sqrt(n) = 2 * 20 = 40
        assert 25 < mean < 55

    def test_setup_and_run(self):
        ws = Workspace()
        setup_inventory(ws, 10, initial=2)
        assert len(ws.rows("inventory")) == 10
        ws.exec(alpha_transactions(10, 1, alpha=1.0, seed=0)[0])
        values = {v for _, v in ws.rows("inventory")}
        assert values <= {1, 2}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
