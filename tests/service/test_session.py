"""Client sessions and the ``repro.connect`` entry point."""

import pytest

import repro
from repro import TxnResult, Workspace
from repro.runtime.errors import ReproError
from repro.service import ServiceConfig, TransactionService, connect


class TestConnect:
    def test_connect_owns_a_fresh_service(self):
        session = repro.connect()
        try:
            session.addblock("p(x) -> int(x).", name="schema")
            session.load("p", [(1,)])
            assert session.rows("p") == [(1,)]
        finally:
            session.close()
        # closing an owning session closes its service
        with pytest.raises(ReproError):
            session.service.exec("+p(2).")

    def test_connect_over_existing_workspace(self):
        ws = Workspace()
        ws.addblock('c[s] = v -> string(s), int(v).', name="schema")
        ws.load("c", [("k", 1)])
        with connect(ws) as session:
            session.exec('^c["k"] = x <- c@start["k"] = y, x = y + 1.')
        assert ws.rows("c") == [("k", 2)]

    def test_connect_config_kwargs(self):
        with connect(max_pending=2, mode="occ") as session:
            assert session.service.config.max_pending == 2
            assert session.service.config.mode == "occ"

    def test_connect_rejects_config_with_shared_service(self):
        with TransactionService() as service:
            with pytest.raises(TypeError):
                connect(service=service, max_pending=4)

    def test_shared_service_sessions(self):
        with TransactionService(config=ServiceConfig()) as service:
            service.addblock('c[s] = v -> string(s), int(v).', name="schema")
            service.load("c", [("k", 0)])
            one = connect(service=service, name="one")
            two = connect(service=service, name="two")
            one.exec('^c["k"] = x <- c@start["k"] = y, x = y + 1.')
            two.exec('^c["k"] = x <- c@start["k"] = y, x = y + 1.')
            assert service.rows("c") == [("k", 2)]
            # closing a non-owning session leaves the service running
            one.close()
            two.exec('^c["k"] = x <- c@start["k"] = y, x = y + 1.')
            two.close()


class TestSessionBehavior:
    def test_session_names_transactions(self):
        with connect(name="alice") as session:
            session.addblock('c[s] = v -> string(s), int(v).', name="schema")
            session.load("c", [("k", 0)])
            session.exec('^c["k"] = x <- c@start["k"] = y, x = y + 1.')
            history = session.service.commit_history()
            assert history and history[-1]["txn"] == "alice/txn-1"

    def test_closed_session_refuses_verbs(self):
        session = repro.connect()
        session.close()
        with pytest.raises(ReproError):
            session.query("_(x) <- p(x).")
        # idempotent close
        session.close()

    def test_verbs_return_txn_results(self):
        with repro.connect() as session:
            added = session.addblock("p(x) -> int(x).", name="schema")
            assert isinstance(added, TxnResult) and added.block == "schema"
            loaded = session.load("p", [(1,), (2,)])
            assert isinstance(loaded, TxnResult) and loaded.committed
            result = session.exec("+p(3).")
            assert isinstance(result, TxnResult) and "p" in result.deltas
            assert session.query("_(x) <- p(x).") == [(1,), (2,), (3,)]
            structured = session.query_result("_(x) <- p(x).")
            assert structured.rows == [(1,), (2,), (3,)]
            removed = session.removeblock("schema")
            assert removed.kind == "removeblock"

    def test_session_default_timeout_flows_to_service(self):
        with connect(timeout=30) as session:
            session.addblock("p(x) -> int(x).", name="schema")
            result = session.exec("+p(1).")
            assert result.committed
