"""Service-level durability: auto-checkpoint cadence, shutdown
checkpoints, restart recovery through ``repro.connect``, and the
checkpoint barrier's serialization with the write stream."""

import threading

import pytest

from repro.runtime.errors import ReproError
from repro.runtime.workspace import Workspace
from repro.service.config import ServiceConfig
from repro.service.service import TransactionService
from repro.service.session import connect
from repro.storage.pager import has_checkpoint, read_manifest

BLOCK = "counter[k] = v -> string(k), int(v).\n"
BUMP = '^counter["x"] = v <- counter@start["x"] = y, v = y + 1.'


def fresh_service(tmp_path, **kw):
    cfg = ServiceConfig(checkpoint_path=str(tmp_path), **kw)
    return TransactionService(config=cfg)


class TestShutdownCheckpoint:
    def test_close_writes_checkpoint(self, tmp_path):
        service = fresh_service(tmp_path)
        service.addblock(BLOCK, name="c")
        service.load("counter", [("x", 0)])
        assert not has_checkpoint(str(tmp_path))
        service.close()
        assert has_checkpoint(str(tmp_path))
        ws = Workspace.open(str(tmp_path))
        assert ws.rows("counter") == [("x", 0)]

    def test_shutdown_checkpoint_disabled(self, tmp_path):
        service = fresh_service(tmp_path, checkpoint_on_shutdown=False)
        service.addblock(BLOCK, name="c")
        service.close()
        assert not has_checkpoint(str(tmp_path))


class TestAutoCheckpoint:
    def test_every_n_commits(self, tmp_path):
        service = fresh_service(
            tmp_path, checkpoint_every_n_commits=3,
            checkpoint_on_shutdown=False)
        service.addblock(BLOCK, name="c")
        service.load("counter", [("x", 0)])
        for _ in range(4):
            service.exec(BUMP)
        service.close()
        # addblock+load+4 execs = 6 commits -> at least 2 checkpoints
        assert has_checkpoint(str(tmp_path))
        assert read_manifest(str(tmp_path))["seq"] >= 2
        stats = service.service_stats()
        assert stats["checkpoints"] >= 2

    def test_requires_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            ServiceConfig(checkpoint_every_n_commits=5)


class TestCheckpointBarrier:
    def test_explicit_checkpoint_serialized(self, tmp_path):
        service = fresh_service(tmp_path, checkpoint_on_shutdown=False)
        service.addblock(BLOCK, name="c")
        service.load("counter", [("x", 0)])
        result = service.checkpoint()
        assert result["seq"] == 1
        ws = Workspace.open(str(tmp_path))
        assert ws.rows("counter") == [("x", 0)]
        service.close()

    def test_checkpoint_without_path_rejected(self):
        service = TransactionService()
        with pytest.raises(ReproError, match="checkpoint_path"):
            service.checkpoint()
        service.close()

    def test_concurrent_writers_and_checkpoints(self, tmp_path):
        """Checkpoints interleaved with a concurrent write stream must
        neither lose commits nor corrupt the store."""
        service = fresh_service(tmp_path)
        service.addblock(BLOCK, name="c")
        service.load("counter", [("x", 0)])
        errors = []

        def writer():
            try:
                for _ in range(10):
                    service.exec(BUMP)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for _ in range(5):
            service.checkpoint()
        for t in threads:
            t.join()
        assert not errors
        service.close()
        ws = Workspace.open(str(tmp_path))
        assert ws.rows("counter") == [("x", 40)]


class TestRestartRecovery:
    def test_connect_recovers(self, tmp_path):
        with connect(checkpoint_path=str(tmp_path)) as session:
            session.addblock(BLOCK, name="c")
            session.load("counter", [("x", 0)])
            session.exec(BUMP)

        with connect(checkpoint_path=str(tmp_path)) as session:
            assert session.rows("counter") == [("x", 1)]
            session.exec(BUMP)
            assert session.rows("counter") == [("x", 2)]

        with connect(checkpoint_path=str(tmp_path)) as session:
            assert session.rows("counter") == [("x", 2)]

    def test_connect_without_checkpoint_starts_empty(self, tmp_path):
        with connect(checkpoint_path=str(tmp_path / "fresh")) as session:
            assert session.service.workspace.blocks() == []

    def test_explicit_workspace_wins_over_recovery(self, tmp_path):
        with connect(checkpoint_path=str(tmp_path)) as session:
            session.addblock(BLOCK, name="c")
        ws = Workspace()
        service = TransactionService(
            ws, config=ServiceConfig(
                checkpoint_path=str(tmp_path), checkpoint_on_shutdown=False))
        assert service.workspace is ws
        assert service.workspace.blocks() == []
        service.close()

    def test_session_checkpoint_passthrough(self, tmp_path):
        with connect(checkpoint_path=str(tmp_path)) as session:
            session.addblock(BLOCK, name="c")
            result = session.checkpoint()
            assert result["seq"] == 1
