"""Deterministic fault injection, admission control, and deadlines."""

import threading
import time

import pytest

from repro import Overloaded, TxnTimeout
from repro.service import (
    AdmissionController,
    FaultInjector,
    InjectedCrash,
    ServiceConfig,
    TransactionService,
)

COUNTER = 'counter[s] = v -> string(s), int(v).\n'
BUMP = '^counter["hits"] = x <- counter@start["hits"] = y, x = y + 1.'


def make_service(faults=None, **config):
    service = TransactionService(
        config=ServiceConfig(**config), faults=faults)
    service.addblock(COUNTER, name="schema")
    service.load("counter", [("hits", 0)])
    return service


class TestFaultInjector:
    def test_script_validates_points_and_actions(self):
        faults = FaultInjector()
        with pytest.raises(ValueError):
            faults.script("nowhere", "delay")
        with pytest.raises(ValueError):
            faults.script("commit", "explode")

    def test_scripts_replay_fifo_and_record(self):
        faults = FaultInjector()
        faults.script("execute", "delay", seconds=0.0, times=2)
        with make_service(faults=faults) as service:
            service.exec(BUMP)
            service.exec(BUMP)
            service.exec(BUMP)  # script exhausted: fires nothing
        assert [(point, action) for point, action, _ in faults.fired] == [
            ("execute", "delay"),
            ("execute", "delay"),
        ]
        assert faults.pending("execute") == 0

    def test_injected_conflict_is_retried(self):
        faults = FaultInjector()
        faults.script("commit", "conflict", times=1)
        with make_service(faults=faults, max_retries=3) as service:
            result = service.exec(BUMP)
            assert result.committed and result.attempts == 2
            stats = service.service_stats()
            assert stats["service.retries"] == 1
            assert service.rows("counter") == [("hits", 1)]

    def test_injected_crash_aborts_without_retry(self):
        faults = FaultInjector()
        faults.script("commit", "crash", times=1)
        with make_service(faults=faults, max_retries=3) as service:
            with pytest.raises(InjectedCrash):
                service.exec(BUMP)
            assert service.service_stats()["service.aborts"] == 1
            # head untouched, next transaction commits
            assert service.exec(BUMP).committed
            assert service.rows("counter") == [("hits", 1)]

    def test_match_restricts_to_named_txn(self):
        faults = FaultInjector()
        faults.script("commit", "crash", match="victim")
        with make_service(faults=faults) as service:
            assert service.exec(BUMP, name="innocent").committed
            with pytest.raises(InjectedCrash):
                service.exec(BUMP, name="victim")
            assert service.exec(BUMP, name="innocent-2").committed

    def test_block_controls_interleaving(self):
        """Holding the committer lets a test deterministically build a
        multi-writer group commit."""
        faults = FaultInjector()
        release = threading.Event()
        faults.script("commit", "block", event=release)
        with make_service(faults=faults, max_pending=8) as service:
            results = []

            def writer():
                results.append(service.exec(BUMP, timeout=10))

            threads = [threading.Thread(target=writer) for _ in range(3)]
            threads[0].start()
            # the committer drains the first writer alone, then blocks at
            # its commit point; the other two queue up behind it
            deadline = time.time() + 5
            while not faults.fired and time.time() < deadline:
                time.sleep(0.005)
            for t in threads[1:]:
                t.start()
            while service.service_stats()["queued"] < 2 and time.time() < deadline:
                time.sleep(0.005)
            release.set()
            for t in threads:
                t.join()
            assert len(results) == 3 and all(r.committed for r in results)
            assert service.rows("counter") == [("hits", 3)]
            # batch one: the held writer; batch two: the two that queued
            # up while it was held — a deterministic group commit
            assert service.service_stats()["service.batches"] == 2


class TestAdmissionControl:
    def test_overload_sheds_with_typed_error(self):
        controller = AdmissionController(max_pending=2, default_timeout_s=1.0)
        t1 = controller.admit(kind="exec")
        t2 = controller.admit(kind="exec")
        with pytest.raises(Overloaded) as info:
            controller.admit(kind="exec")
        assert info.value.limit == 2
        controller.release(t1)
        t3 = controller.admit(kind="exec")
        controller.release(t2)
        controller.release(t3)
        assert controller.depth == 0

    def test_service_rejects_beyond_window(self):
        faults = FaultInjector()
        hold = threading.Event()
        faults.script("commit", "block", event=hold)
        with make_service(faults=faults, max_pending=1) as service:
            started = threading.Event()
            holder_result = []

            def holder():
                started.set()
                holder_result.append(service.exec(BUMP, timeout=10))

            thread = threading.Thread(target=holder)
            thread.start()
            started.wait()
            deadline = time.time() + 5
            while service.service_stats()["in_flight"] < 1 and time.time() < deadline:
                time.sleep(0.005)
            with pytest.raises(Overloaded):
                service.exec(BUMP)
            assert service.service_stats()["service.overloads"] == 1
            hold.set()
            thread.join()
            assert holder_result and holder_result[0].committed

    def test_ticket_deadlines(self):
        controller = AdmissionController(max_pending=4, default_timeout_s=0.01)
        ticket = controller.admit(kind="exec")
        assert not ticket.expired()
        time.sleep(0.02)
        assert ticket.expired()
        assert ticket.remaining() == 0.0
        controller.release(ticket)

    def test_exec_timeout_raises_txn_timeout(self):
        faults = FaultInjector()
        faults.script("execute", "delay", seconds=0.05)
        with make_service(faults=faults, default_timeout_s=0.02) as service:
            with pytest.raises(TxnTimeout):
                service.exec(BUMP)
            assert service.service_stats()["service.timeouts"] >= 1
            # a roomier per-call deadline overrides the default
            assert service.exec(BUMP, timeout=5).committed


class TestBackoffDeterminism:
    def test_jitter_is_seeded(self):
        def run(seed):
            faults = FaultInjector()
            faults.script("commit", "conflict", times=2)
            with make_service(
                    faults=faults, jitter_seed=seed, max_retries=5) as service:
                result = service.exec(BUMP)
                return result.attempts

        assert run(7) == run(7) == 3
