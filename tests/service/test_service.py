"""The concurrent transaction service: scheduling, repair, group commit."""

import threading

import pytest

from repro import (
    ConflictError,
    ConstraintViolation,
    TxnResult,
    Workspace,
)
from repro.service import ServiceConfig, TransactionService

COUNTER = 'counter[s] = v -> string(s), int(v).\n'
BUMP = '^counter["hits"] = x <- counter@start["hits"] = y, x = y + 1.'


def make_service(**config):
    service = TransactionService(config=ServiceConfig(**config))
    service.addblock(COUNTER, name="schema")
    service.load("counter", [("hits", 0)])
    return service


class TestBasics:
    def test_exec_returns_txn_result(self):
        with make_service() as service:
            result = service.exec(BUMP)
            assert isinstance(result, TxnResult)
            assert result.committed and result.kind == "exec"
            assert result.attempts == 1
            assert service.rows("counter") == [("hits", 1)]

    def test_reads_are_lock_free_on_head_snapshots(self):
        with make_service() as service:
            service.exec(BUMP)
            assert service.query('_(v) <- counter["hits"] = v.') == [(1,)]
            result = service.query_result('_(v) <- counter["hits"] = v.')
            assert result.kind == "query" and result.rows == [(1,)]

    def test_ddl_barriers_serialize_with_writes(self):
        with make_service() as service:
            added = service.addblock(
                'doubled[s] = v -> string(s), int(v).\n'
                'doubled[s] = v <- counter[s] = c, v = c * 2.\n',
                name="view")
            assert added.kind == "addblock" and added.block == "view"
            service.exec(BUMP)
            assert service.rows("doubled") == [("hits", 2)]
            removed = service.removeblock("view")
            assert removed.kind == "removeblock"

    def test_service_over_existing_workspace(self):
        ws = Workspace()
        ws.addblock(COUNTER, name="schema")
        ws.load("counter", [("hits", 5)])
        with TransactionService(ws) as service:
            service.exec(BUMP)
        assert ws.rows("counter") == [("hits", 6)]

    def test_constraint_violation_aborts_cleanly(self):
        with make_service() as service:
            service.addblock('counter[s] = v -> v >= 0.', name="nonneg")
            with pytest.raises(ConstraintViolation):
                service.exec('^counter["hits"] = x <- '
                             'counter@start["hits"] = y, x = y - 1.')
            # head untouched, service still live
            assert service.rows("counter") == [("hits", 0)]
            assert service.exec(BUMP).committed

    def test_close_is_idempotent_and_drains(self):
        service = make_service()
        service.exec(BUMP)
        service.close()
        service.close()
        from repro.runtime.errors import ReproError

        with pytest.raises(ReproError):
            service.exec(BUMP)


class TestConcurrency:
    def test_conflicting_writers_all_commit_via_repair(self):
        with make_service(max_pending=16) as service:
            threads, errors = [], []

            def writer():
                try:
                    for _ in range(5):
                        service.exec(BUMP)
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)

            for _ in range(8):
                threads.append(threading.Thread(target=writer))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            # every increment survived: repair serialized all 40 bumps
            assert service.rows("counter") == [("hits", 40)]
            stats = service.service_stats()
            assert stats["service.commits"] == 40
            assert stats["committed"] == 40

    def test_commit_history_is_a_serializable_order(self):
        with make_service(max_pending=16) as service:
            def writer(n):
                for _ in range(n):
                    service.exec(BUMP)

            threads = [
                threading.Thread(target=writer, args=(4,)) for _ in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            history = service.commit_history()
            final = dict(service.rows("counter"))

        # replaying the history in commit order on a fresh workspace
        # must reproduce the same final state (serializability witness)
        replay = Workspace()
        replay.addblock(COUNTER, name="schema")
        replay.load("counter", [("hits", 0)])
        seqs = [entry["seq"] for entry in history]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        for entry in history:
            replay.exec(entry["source"])
        assert dict(replay.rows("counter")) == final

    def test_disjoint_writers_group_commit(self):
        with make_service(max_pending=16) as service:
            service.load("counter", [("w{}".format(i), 0) for i in range(4)])
            src = ('^counter["w{0}"] = x <- '
                   'counter@start["w{0}"] = y, x = y + 1.')

            def writer(i):
                for _ in range(5):
                    service.exec(src.format(i))

            threads = [
                threading.Thread(target=writer, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            rows = dict(service.rows("counter"))
            assert all(rows["w{}".format(i)] == 5 for i in range(4))
            stats = service.service_stats()
            # batching happened: fewer batches than commits
            assert stats["service.batches"] <= stats["service.commits"]


class TestOccMode:
    def test_occ_conflicts_retry_then_commit(self):
        with make_service(mode="occ", max_pending=16, max_retries=10) as service:
            threads = []

            def writer():
                for _ in range(3):
                    service.exec(BUMP)

            for _ in range(4):
                threads.append(threading.Thread(target=writer))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert service.rows("counter") == [("hits", 12)]
            stats = service.service_stats()
            # first-committer-wins: the losers must have retried
            assert stats.get("service.retries", 0) > 0
            assert stats.get("service.repair_merges", 0) == 0

    def test_occ_exhausted_retries_raise_conflict(self):
        from repro.service import FaultInjector

        faults = FaultInjector()
        # every commit attempt conflicts (2 attempts = 1 + max_retries)
        faults.script("commit", "conflict", times=2)
        service = TransactionService(
            config=ServiceConfig(mode="occ", max_retries=1), faults=faults)
        with service:
            service.addblock(COUNTER, name="schema")
            service.load("counter", [("hits", 0)])
            with pytest.raises(ConflictError):
                service.exec(BUMP)
            stats = service.service_stats()
            assert stats["service.aborts"] == 1
            assert stats["service.retries"] == 1


class TestGroupCommitFallback:
    def test_composite_violation_falls_back_to_serial(self):
        """Two txns that are individually fine but jointly violate a
        constraint: the group apply aborts, the serial fallback commits
        the first and aborts the second."""
        from repro.service import FaultInjector

        faults = FaultInjector()
        hold = threading.Event()
        # hold the committer until both writers are queued, forcing one group
        faults.script("commit", "block", times=1, event=hold)
        service = TransactionService(
            config=ServiceConfig(max_pending=8), faults=faults)
        with service:
            service.addblock(
                'stock[s] = v -> string(s), int(v).\n'
                'stock[s] = v -> v >= 0.\n', name="schema")
            service.load("stock", [("gadget", 1)])
            src = ('^stock["gadget"] = x <- '
                   'stock@start["gadget"] = y, x = y - 1.')
            outcomes = []

            def writer():
                try:
                    outcomes.append(service.exec(src, timeout=10).status)
                except ConstraintViolation:
                    outcomes.append("aborted")

            threads = [threading.Thread(target=writer) for _ in range(2)]
            for t in threads:
                t.start()
            # both queued behind the held committer, then release it
            import time

            deadline = time.time() + 5
            while service.service_stats()["queued"] < 2 and time.time() < deadline:
                time.sleep(0.005)
            hold.set()
            for t in threads:
                t.join()
            assert sorted(outcomes) == ["aborted", "committed"]
            assert service.rows("stock") == [("gadget", 0)]
            assert service.service_stats().get("service.batch_fallbacks", 0) >= 1


class TestStatsSurface:
    def test_service_stats_counters(self):
        with make_service() as service:
            service.exec(BUMP)
            service.query('_(v) <- counter["hits"] = v.')
            stats = service.service_stats()
            assert stats["service.admitted"] >= 1
            assert stats["service.commits"] == 1
            assert stats["service.queries"] == 1
            assert stats["in_flight"] == 0
            assert stats["queued"] == 0

    def test_result_carries_stats_and_span(self):
        with make_service() as service:
            result = service.exec(BUMP)
            assert isinstance(result.stats, dict)
            assert result.latency_s is not None


class TestEngineKnob:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(engine="vectorized")

    def test_engine_reaches_the_constructed_workspace(self):
        from repro.engine.columnar import resolve_backend

        with make_service(engine="columnar") as service:
            assert service.workspace._engine_backend == resolve_backend(
                "columnar"
            )
            service.exec(BUMP)
            assert service.rows("counter") == [("hits", 1)]

    def test_explicit_workspace_keeps_its_own_backend(self):
        workspace = Workspace(engine="pure")
        service = TransactionService(
            workspace, config=ServiceConfig(engine="columnar")
        )
        with service:
            assert workspace._engine_backend == "pure"
