"""Meta-engine tests: EDB/IDB inference, frame rules, revision sets."""

from repro import Workspace
from repro.logiql.compiler import compile_program
from repro.meta.metaengine import MetaEngine, block_meta_facts


class TestMetaFacts:
    def test_block_reflection(self):
        block = compile_program(
            """
            p(x) <- q(x), !r(x).
            s[] = u <- agg<<u = sum(v)>> p2[k] = v.
            +base(x) <- trigger(x).
            """
        )
        facts = block_meta_facts("blk", block)
        heads = {t[1] for t in facts["rule_head_pred"]}
        assert heads == {"p", "s"}
        assert {t[1] for t in facts["rule_body_negpred"]} == {"r"}
        assert len(facts["rule_is_agg"]) == 1
        assert {t[1] for t in facts["delta_head_base"]} == {"base"}
        names = {t[0] for t in facts["lang_predname"]}
        assert {"p", "q", "r", "s", "p2", "base", "trigger"} <= names

    def test_rule_ids_content_hashed(self):
        a = block_meta_facts("b", compile_program("p(x) <- q(x), x > 1."))
        b = block_meta_facts("b", compile_program("p(x) <- q(x), x > 2."))
        assert a["rule_in_block"] != b["rule_in_block"]


class TestMetaRules:
    def test_edb_idb_inference(self):
        engine = MetaEngine()
        state = engine.initial()
        block = compile_program("p(x) <- q(x). r(x) <- p(x).")
        state, _ = engine.update(state, "b1", block)
        assert state.members("lang_idb") == {"p", "r"}
        assert "q" in state.members("lang_edb")
        assert "p" not in state.members("lang_edb")

    def test_need_frame_rule(self):
        engine = MetaEngine()
        state = engine.initial()
        block = compile_program("+inv(x) <- req(x). -inv(x) <- drop(x).")
        state, _ = engine.update(state, "b1", block)
        assert state.members("need_frame_rule") == {"inv"}

    def test_dependency_closure(self):
        engine = MetaEngine()
        state = engine.initial()
        block = compile_program("b(x) <- a(x). c(x) <- b(x). d(x) <- c(x).")
        state, _ = engine.update(state, "views", block)
        tc = set(state.relation("depends_tc"))
        assert ("d", "a") in tc and ("c", "a") in tc

    def test_need_revision_on_change(self):
        engine = MetaEngine()
        state = engine.initial()
        state, _ = engine.update(
            state, "v1", compile_program("b(x) <- a(x). c(x) <- b(x).")
        )
        # change b's formula: c must be revised too
        state, revision = engine.update(
            state, "v1", compile_program("b(x) <- a(x), x > 0. c(x) <- b(x).")
        )
        assert {"b", "c"} <= revision

    def test_base_change_revision(self):
        engine = MetaEngine()
        state = engine.initial()
        state, _ = engine.update(
            state, "v1", compile_program("b(x) <- a(x). z(x) <- y(x).")
        )
        state, revision = engine.update(state, "unrelated",
                                        compile_program("w(q) <- v(q)."),
                                        changed_bases={"a"})
        assert "b" in revision
        assert "z" not in revision

    def test_diagnostics(self):
        engine = MetaEngine()
        state = engine.initial()
        block = compile_program(
            """
            tc(x, y) <- e(x, y).
            tc(x, z) <- tc(x, y), e(y, z).
            s[] = u <- agg<<u = sum(v)>> m[k] = v.
            """
        )
        state, _ = engine.update(state, "b", block)
        assert "tc" in state.members("recursive_pred")
        assert "s" in state.members("agg_pred")
        assert state.members("bad_agg_recursion") == set()
        assert "tc" in state.members("must_materialize")
        assert "s" in state.members("must_materialize")

    def test_remove_block_clears_facts(self):
        engine = MetaEngine()
        state = engine.initial()
        state, _ = engine.update(state, "b", compile_program("p(x) <- q(x)."))
        assert "p" in state.members("lang_idb")
        state, revision = engine.update(state, "b", None)
        assert "p" not in state.members("lang_idb")
        assert "p" in revision


class TestWorkspaceIntegration:
    def test_meta_tracks_workspace_program(self):
        ws = Workspace()
        ws.addblock("edge(x, y) -> int(x), int(y).", name="schema")
        ws.addblock("path(x, y) <- edge(x, y).", name="views")
        meta = ws.state.meta_state
        assert "path" in meta.members("lang_idb")
        assert "edge" in meta.members("lang_edb")
        assert "edge" in meta.members("sampling_site")
        ws.removeblock("views")
        meta = ws.state.meta_state
        assert "path" not in meta.members("lang_idb")

    def test_meta_matches_naive_dependents(self):
        """The meta-engine's revision set agrees with a direct
        dependency-closure computation."""
        ws = Workspace()
        ws.addblock(
            """
            a(x) -> int(x).
            b(x) <- a(x).
            c(x) <- b(x).
            d(x) <- a(x).
            """,
            name="p",
        )
        # editing b must revise {b, c} but not d: verify via behaviour
        old_d = ws.state.materialization.relations["d"]
        ws.addblock(
            """
            a(x) -> int(x).
            b(x) <- a(x), x > 0.
            c(x) <- b(x).
            d(x) <- a(x).
            """,
            name="p",
        )
        assert ws.state.materialization.relations["d"] is old_d
