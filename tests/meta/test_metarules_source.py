"""The meta-rules themselves: they are LogiQL, run on this engine."""

from repro.engine.evaluator import RuleSet
from repro.logiql.compiler import compile_program
from repro.meta.metarules import META_BASE_PREDS, META_RULES_SOURCE


class TestMetaRulesAreLogiQL:
    def test_source_compiles(self):
        block = compile_program(META_RULES_SOURCE)
        assert len(block.rules) >= 20  # the representative subset
        assert not block.reactive_rules
        assert not block.constraints

    def test_stratifies(self):
        block = compile_program(META_RULES_SOURCE)
        ruleset = RuleSet(block.rules)
        assert ruleset.strata  # no StratificationError

    def test_uses_negation_and_recursion(self):
        """The paper's two signature features of the meta-rules."""
        from repro.engine.ir import PredAtom

        block = compile_program(META_RULES_SOURCE)
        negated = [
            atom
            for rule in block.rules
            for atom in rule.body
            if isinstance(atom, PredAtom) and atom.negated
        ]
        assert negated  # lang_edb(p) <- lang_predname(p), !lang_idb(p).
        ruleset = RuleSet(block.rules)
        assert any(ruleset.recursive_flags)  # depends_tc / need_revision

    def test_derives_expected_meta_predicates(self):
        block = compile_program(META_RULES_SOURCE)
        heads = {rule.head_pred for rule in block.rules}
        expected = {
            "lang_idb", "lang_edb", "need_frame_rule", "depends",
            "depends_tc", "need_revision", "recursive_pred", "agg_pred",
            "bad_agg_recursion", "bad_neg_recursion", "multi_block_pred",
            "must_materialize", "may_unmaterialize", "sampling_site",
            "undefined_pred",
        }
        assert expected <= heads

    def test_base_preds_cover_rule_bodies(self):
        """Every body predicate is either a base meta-predicate or a
        derived one — the meta-program is closed."""
        from repro.engine.ir import PredAtom

        block = compile_program(META_RULES_SOURCE)
        heads = {rule.head_pred for rule in block.rules}
        for rule in block.rules:
            for atom in rule.body:
                if isinstance(atom, PredAtom):
                    assert atom.pred in heads or atom.pred in META_BASE_PREDS, (
                        atom.pred
                    )

    def test_edb_inference_matches_paper_example(self):
        """The paper's exact meta-rule:
        lang_edb(name) <- lang_predname(name), !lang_idb(name)."""
        from repro.engine.ir import PredAtom

        block = compile_program(META_RULES_SOURCE)
        [rule] = [r for r in block.rules if r.head_pred == "lang_edb"]
        preds = {(a.pred, a.negated) for a in rule.body
                 if isinstance(a, PredAtom)}
        assert preds == {("lang_predname", False), ("lang_idb", True)}
