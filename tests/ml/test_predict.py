"""predict P2P rules: learn and eval modes over workspaces."""

import random

import numpy as np
import pytest

from repro import Workspace
from repro.ml import ModelStore, run_predict_rules

SCHEMA = """
Sales[sku, store, wk] = v -> string(sku), string(store), int(wk), float(v).
Feature[sku, store, wk, n] = v -> string(sku), string(store), int(wk),
    string(n), float(v).
"""


def make_training_ws(coefs_by_sku, n_weeks=40, seed=1):
    ws = Workspace()
    ws.addblock(SCHEMA, name="schema")
    rng = random.Random(seed)
    sales, features = [], []
    for sku, (c1, c2, bias) in coefs_by_sku.items():
        for wk in range(n_weeks):
            x1, x2 = rng.random(), rng.random()
            sales.append((sku, "s1", wk, c1 * x1 + c2 * x2 + bias))
            features.append((sku, "s1", wk, "x1", x1))
            features.append((sku, "s1", wk, "x2", x2))
    ws.load("Sales", sales)
    ws.load("Feature", features)
    return ws


class TestLearning:
    def test_per_group_linear_models(self):
        ws = make_training_ws({"a": (2.0, 5.0, 1.0), "b": (-1.0, 3.0, 0.0)})
        ws.addblock(
            """
            SM[sku, store] = m <- predict m = linear(v|f)
                Sales[sku, store, wk] = v, Feature[sku, store, wk, n] = f.
            """,
            name="learn",
        )
        run_predict_rules(ws)
        models = {(s, t): h for s, t, h in ws.rows("SM")}
        assert set(models) == {("a", "s1"), ("b", "s1")}
        model_a = ModelStore.get(models[("a", "s1")])
        assert np.allclose(model_a.coef_, [2.0, 5.0], atol=1e-6)
        assert abs(model_a.intercept_ - 1.0) < 1e-6
        model_b = ModelStore.get(models[("b", "s1")])
        assert np.allclose(model_b.coef_, [-1.0, 3.0], atol=1e-6)

    def test_logistic_binarizes_continuous_targets(self):
        ws = make_training_ws({"a": (10.0, 0.0, 0.0)})
        ws.addblock(
            """
            SM[sku, store] = m <- predict m = logist(v|f)
                Sales[sku, store, wk] = v, Feature[sku, store, wk, n] = f.
            """,
            name="learn",
        )
        run_predict_rules(ws)
        handle = ws.rows("SM")[0][2]
        model = ModelStore.get(handle)
        # high x1 -> above-average sales
        assert model.predict_proba([[0.95, 0.5]])[0] > 0.5
        assert model.predict_proba([[0.05, 0.5]])[0] < 0.5

    def test_relearning_replaces_models(self):
        ws = make_training_ws({"a": (1.0, 0.0, 0.0)})
        ws.addblock(
            """
            SM[sku, store] = m <- predict m = linear(v|f)
                Sales[sku, store, wk] = v, Feature[sku, store, wk, n] = f.
            """,
            name="learn",
        )
        run_predict_rules(ws)
        first = ws.rows("SM")
        run_predict_rules(ws)
        second = ws.rows("SM")
        assert len(second) == 1
        assert first != second  # fresh handle per learning run


class TestEvaluation:
    def test_paper_shape_learn_then_eval(self):
        ws = make_training_ws({"a": (3.0, -2.0, 0.5)})
        ws.addblock(
            """
            SM[sku, store] = m <- predict m = linear(v|f)
                Sales[sku, store, wk] = v, Feature[sku, store, wk, n] = f.
            """,
            name="learn",
        )
        run_predict_rules(ws)
        # eval against a per-(sku,store) feature summary (paper §2.3.2)
        ws.addblock(
            """
            AvgFeature[sku, store, n] = v -> string(sku), string(store),
                string(n), float(v).
            SalesPred[sku, store] = v <- predict v = eval(m|f)
                SM[sku, store] = m, AvgFeature[sku, store, n] = f.
            """,
            name="eval",
        )
        ws.load("AvgFeature", [("a", "s1", "x1", 0.5), ("a", "s1", "x2", 0.5)])
        run_predict_rules(ws)
        [(sku, store, prediction)] = ws.rows("SalesPred")
        assert (sku, store) == ("a", "s1")
        assert abs(prediction - (3.0 * 0.5 - 2.0 * 0.5 + 0.5)) < 1e-6


class TestErrors:
    def test_unknown_fn(self):
        ws = make_training_ws({"a": (1.0, 0.0, 0.0)})
        ws.addblock(
            """
            SM[sku, store] = m <- predict m = mystery(v|f)
                Sales[sku, store, wk] = v, Feature[sku, store, wk, n] = f.
            """,
            name="learn",
        )
        from repro.ml.predict import PredictError

        with pytest.raises(PredictError):
            run_predict_rules(ws)
