"""Tests for the from-scratch ML library."""

import numpy as np
import pytest

from repro.ml import (
    GaussianKDE,
    GaussianNaiveBayes,
    KMeans,
    LinearRegression,
    LogisticRegression,
    PCA,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLinearRegression:
    def test_recovers_coefficients(self, rng):
        X = rng.normal(size=(300, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 3.0
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, [2, -1, 0.5], atol=1e-6)
        assert abs(model.intercept_ - 3.0) < 1e-6
        assert model.score(X, y) > 0.9999

    def test_1d_input(self):
        model = LinearRegression().fit([1.0, 2.0, 3.0], [2.0, 4.0, 6.0])
        assert abs(model.coef_[0] - 2.0) < 1e-6
        assert np.allclose(model.predict([4.0]), [8.0])

    def test_no_intercept(self, rng):
        X = rng.normal(size=(100, 2))
        y = X @ np.array([1.0, 2.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert np.allclose(model.coef_, [1, 2], atol=1e-6)

    def test_collinear_columns_stable(self, rng):
        x = rng.normal(size=100)
        X = np.column_stack([x, x])  # perfectly collinear
        y = 3 * x
        model = LinearRegression(ridge=1e-6).fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-3)


class TestLogisticRegression:
    def test_separable(self, rng):
        X = rng.normal(size=(400, 2))
        y = (X[:, 0] + 2 * X[:, 1] > 0).astype(float)
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.97

    def test_probabilities_calibrated_direction(self, rng):
        X = rng.normal(size=(200, 1))
        y = (X[:, 0] > 0).astype(float)
        model = LogisticRegression().fit(X, y)
        assert model.predict_proba([[3.0]])[0] > 0.9
        assert model.predict_proba([[-3.0]])[0] < 0.1

    def test_extreme_inputs_no_overflow(self):
        model = LogisticRegression().fit([[0.0], [1.0]], [0.0, 1.0])
        assert np.isfinite(model.predict_proba([[1e6], [-1e6]])).all()


class TestKMeans:
    def test_separated_clusters(self, rng):
        a = rng.normal(loc=(0, 0), scale=0.2, size=(40, 2))
        b = rng.normal(loc=(10, 10), scale=0.2, size=(40, 2))
        model = KMeans(2, seed=1).fit(np.vstack([a, b]))
        labels = model.predict(np.vstack([a, b]))
        assert len(set(labels[:40])) == 1
        assert len(set(labels[40:])) == 1
        assert labels[0] != labels[-1]

    def test_centers_near_truth(self, rng):
        points = np.vstack([
            rng.normal(loc=(0,), scale=0.1, size=(50, 1)),
            rng.normal(loc=(5,), scale=0.1, size=(50, 1)),
        ])
        model = KMeans(2, seed=2).fit(points)
        centers = sorted(model.centers_[:, 0])
        assert abs(centers[0] - 0.0) < 0.3
        assert abs(centers[1] - 5.0) < 0.3


class TestKDE:
    def test_peak_at_data(self, rng):
        model = GaussianKDE().fit(rng.normal(size=1000))
        densities = model.score_samples([0.0, 4.0])
        assert densities[0] > densities[1]
        assert abs(densities[0] - 0.3989) < 0.08  # N(0,1) mode density

    def test_explicit_bandwidth(self):
        model = GaussianKDE(bandwidth=0.5).fit([0.0, 1.0])
        assert model.score_samples([0.5])[0] > 0

    def test_multivariate(self, rng):
        model = GaussianKDE().fit(rng.normal(size=(300, 2)))
        inside, outside = model.score_samples([[0.0, 0.0], [5.0, 5.0]])
        assert inside > outside


class TestPCA:
    def test_dominant_direction(self, rng):
        t = np.linspace(0, 1, 200)
        X = np.column_stack([t, 2 * t + rng.normal(scale=1e-3, size=200)])
        model = PCA(1).fit(X)
        assert model.explained_variance_ratio_[0] > 0.999
        direction = model.components_[0]
        assert abs(abs(direction[1] / direction[0]) - 2.0) < 0.01

    def test_roundtrip(self, rng):
        X = rng.normal(size=(50, 3))
        model = PCA(3).fit(X)
        assert np.allclose(model.inverse_transform(model.transform(X)), X,
                           atol=1e-8)


class TestNaiveBayes:
    def test_classification(self, rng):
        a = rng.normal(loc=(0, 0), scale=0.5, size=(60, 2))
        b = rng.normal(loc=(4, 4), scale=0.5, size=(60, 2))
        X = np.vstack([a, b])
        y = np.array(["a"] * 60 + ["b"] * 60)
        model = GaussianNaiveBayes().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.98
        probabilities = model.predict_proba([[0, 0]])
        assert probabilities[0][list(model.classes_).index("a")] > 0.95

    def test_priors_reflected(self, rng):
        X = np.vstack([rng.normal(size=(90, 1)), rng.normal(size=(10, 1))])
        y = np.array([0] * 90 + [1] * 10)
        model = GaussianNaiveBayes().fit(X, y)
        # identical likelihoods -> prior dominates
        assert model.predict([[0.0]])[0] == 0
