"""Correction composition and circuit semantics (paper Figure 7)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.relation import Delta, Relation
from repro.txn.repair import compose_corrections


def apply_all(base, corrections):
    relation = base
    for pred, delta in corrections.items():
        assert pred == "r"
        relation = relation.apply(delta)
    return relation


class TestComposeCorrections:
    def test_disjoint_predicates_union(self):
        a = {"p": Delta.from_iters([(1,)], ())}
        b = {"q": Delta.from_iters([(2,)], ())}
        composed = compose_corrections(a, b)
        assert set(composed) == {"p", "q"}

    def test_same_predicate_sequenced(self):
        a = {"r": Delta.from_iters([(1,)], [(0,)])}
        b = {"r": Delta.from_iters([(2,)], [(1,)])}
        composed = compose_corrections(a, b)
        base = Relation.from_iter(1, [(0,)])
        sequential = base.apply(a["r"]).apply(b["r"])
        assert set(base.apply(composed["r"])) == set(sequential)

    def test_insert_then_delete_cancels(self):
        a = {"r": Delta.from_iters([(5,)], ())}
        b = {"r": Delta.from_iters((), [(5,)])}
        composed = compose_corrections(a, b)
        base = Relation.from_iter(1, [(1,)])
        assert set(base.apply(composed["r"])) == {(1,)}

    def test_delete_then_reinsert_survives(self):
        a = {"r": Delta.from_iters((), [(5,)])}
        b = {"r": Delta.from_iters([(5,)], ())}
        composed = compose_corrections(a, b)
        base = Relation.from_iter(1, [(5,)])
        assert set(base.apply(composed["r"])) == {(5,)}

    def test_associativity_on_application(self):
        rng = random.Random(4)
        base = Relation.from_iter(1, [(i,) for i in range(10)])
        deltas = []
        for _ in range(3):
            added = {(rng.randrange(20),) for _ in range(3)}
            removed = {(rng.randrange(20),) for _ in range(3)} - added
            deltas.append({"r": Delta.from_iters(added, removed)})
        left = compose_corrections(compose_corrections(deltas[0], deltas[1]),
                                   deltas[2])
        right = compose_corrections(deltas[0],
                                    compose_corrections(deltas[1], deltas[2]))
        assert set(base.apply(left["r"])) == set(base.apply(right["r"]))


tuples = st.sets(st.tuples(st.integers(0, 8)), max_size=5)


@settings(max_examples=80, deadline=None)
@given(tuples, tuples, tuples, tuples, tuples)
def test_property_composition_equals_sequential(base, a1, r1, a2, r2):
    relation = Relation.from_iter(1, base)
    d1 = {"r": Delta.from_iters(a1 - r1, r1)}
    d2 = {"r": Delta.from_iters(a2 - r2, r2)}
    sequential = relation.apply(d1["r"]).apply(d2["r"])
    composed = compose_corrections(d1, d2)
    assert set(relation.apply(composed["r"])) == set(sequential)
