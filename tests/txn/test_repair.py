"""Transaction repair: effects, sensitivities, serializability."""

import random

import pytest

from repro import Workspace
from repro.datasets.txnload import alpha_transactions, item_name, setup_inventory
from repro.txn.locking import LockingScheduler, lock_rows_of
from repro.txn.repair import PreparedTransaction, RepairScheduler, compose_corrections
from repro.storage.relation import Delta


def make_ws(n_items=20, initial=5):
    ws = Workspace()
    setup_inventory(ws, n_items, initial=initial)
    return ws


def decrement(item):
    return ('^inventory["{0}"] = x <- inventory@start["{0}"] = y, '
            "x = y - 1.".format(item))


class TestPreparedTransaction:
    def test_effects_recorded(self):
        ws = make_ws()
        txn = PreparedTransaction(decrement(item_name(0)))
        effects = txn.execute(ws.state)
        assert set(effects["inventory"].removed) == {(item_name(0), 5)}
        assert set(effects["inventory"].added) == {(item_name(0), 4)}

    def test_sensitivity_covers_read_row(self):
        ws = make_ws()
        txn = PreparedTransaction(decrement(item_name(3)))
        txn.execute(ws.state)
        index = txn.sensitivity()
        assert index.tuple_affects("inventory", (item_name(3), 5))
        assert not index.tuple_affects("inventory", (item_name(7), 5))

    def test_conflict_detection(self):
        ws = make_ws()
        a = PreparedTransaction(decrement(item_name(0)))
        b_same = PreparedTransaction(decrement(item_name(0)))
        b_other = PreparedTransaction(decrement(item_name(1)))
        a.execute(ws.state)
        b_same.execute(ws.state)
        b_other.execute(ws.state)
        assert b_same.conflicts_with(a.effects)
        assert not b_other.conflicts_with(a.effects)

    def test_repair_updates_effects(self):
        ws = make_ws()
        a = PreparedTransaction(decrement(item_name(0)))
        b = PreparedTransaction(decrement(item_name(0)))
        a.execute(ws.state)
        b.execute(ws.state)
        # both computed 5 -> 4; after correction b must compute 4 -> 3
        b.correct(a.effects)
        assert set(b.effects["inventory"].added) == {(item_name(0), 3)}
        assert b.repair_count == 1

    def test_repeated_corrections(self):
        ws = make_ws()
        txns = [PreparedTransaction(decrement(item_name(0))) for _ in range(4)]
        for txn in txns:
            txn.execute(ws.state)
        accumulated = {}
        for txn in txns:
            relevant = txn.relevant_corrections(accumulated)
            if relevant:
                txn.correct(relevant)
            accumulated = compose_corrections(accumulated, txn.effects)
        assert set(accumulated["inventory"].added) == {(item_name(0), 1)}

    def test_non_reactive_source_rejected(self):
        from repro.runtime.errors import TransactionAborted

        with pytest.raises(TransactionAborted):
            PreparedTransaction("view(x) <- base(x).")


class TestRepairScheduler:
    def test_serializable_equals_serial(self):
        for alpha in (0.5, 2.0, 6.0):
            batch = alpha_transactions(30, 8, alpha, seed=int(alpha * 10))
            repair_ws = make_ws(30)
            serial_ws = make_ws(30)
            scheduler = RepairScheduler(repair_ws)
            scheduler.run(batch)
            for source in batch:
                serial_ws.exec(source)
            assert repair_ws.rows("inventory") == serial_ws.rows("inventory")
            assert repair_ws.rows("place_order") == serial_ws.rows("place_order")

    def test_derived_views_maintained_on_commit(self):
        ws = make_ws(5, initial=1)
        batch = [decrement(item_name(0))]
        RepairScheduler(ws).run(batch)
        # item0 hit zero and is in auto_order -> place_order fires
        assert (item_name(0),) in ws.relation("place_order")

    def test_stats_counted(self):
        ws = make_ws(10)
        batch = [decrement(item_name(0)), decrement(item_name(0)),
                 decrement(item_name(5))]
        scheduler = RepairScheduler(ws)
        scheduler.run(batch)
        assert scheduler.stats["transactions"] == 3
        assert scheduler.stats["repairs"] == 1  # only the duplicate item

    def test_disjoint_batch_no_repairs(self):
        ws = make_ws(10)
        batch = [decrement(item_name(i)) for i in range(5)]
        scheduler = RepairScheduler(ws)
        scheduler.run(batch)
        assert scheduler.stats["repairs"] == 0
        assert dict(ws.rows("inventory"))[item_name(2)] == 4

    def test_no_commit_mode(self):
        ws = make_ws(5)
        scheduler = RepairScheduler(ws)
        scheduler.run([decrement(item_name(0))], commit=False)
        assert dict(ws.rows("inventory"))[item_name(0)] == 5


class TestLockingBaseline:
    def test_lock_rows(self):
        effects = {"inventory": Delta.from_iters([("a", 4)], [("a", 5)])}
        assert lock_rows_of(effects) == {("inventory", ("a",))}

    def test_conflict_counting(self):
        ws = make_ws(10)
        batch = [decrement(item_name(0)), decrement(item_name(0)),
                 decrement(item_name(1))]
        scheduler = LockingScheduler(ws)
        scheduler.run(batch)
        assert scheduler.stats["lock_conflicts"] == 1
        assert scheduler.stats["wait_edges"] == [(0, 1)]

    def test_birthday_paradox_shape(self):
        """Expected pairwise conflicts grow ~alpha^2 (paper §3.4)."""
        n_items, n_txns = 400, 12
        conflict_rates = []
        for alpha in (0.5, 2.0, 6.0):
            batch = alpha_transactions(n_items, n_txns, alpha, seed=7)
            ws = make_ws(n_items, initial=100)
            scheduler = LockingScheduler(ws)
            scheduler.run(batch)
            pairs = n_txns * (n_txns - 1) / 2
            conflict_rates.append(scheduler.stats["lock_conflicts"] / pairs)
        assert conflict_rates[0] < conflict_rates[1] < conflict_rates[2]
        assert conflict_rates[0] < 0.4
        assert conflict_rates[2] > 0.8
