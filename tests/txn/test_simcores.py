"""Multi-core scheduling simulator tests."""

from repro.txn.simcores import (
    makespan,
    simulate_locking,
    simulate_parallel,
    speedup_curve,
)


class TestMakespan:
    def test_single_core_sums(self):
        assert makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_enough_cores_takes_max(self):
        assert makespan([1.0, 2.0, 3.0], 3) == 3.0

    def test_lpt_greedy(self):
        # greedy LPT: 3,3 to separate cores, then 2,2,2 alternate -> 7
        # (the optimum is 6; LPT is within its usual 4/3 bound)
        assert makespan([3.0, 3.0, 2.0, 2.0, 2.0], 2) == 7.0
        assert makespan([3.0, 3.0, 2.0, 2.0, 2.0], 2) <= 6.0 * 4 / 3

    def test_empty(self):
        assert makespan([], 4) == 0.0


class TestSimulateParallel:
    def test_no_repairs_near_linear(self):
        costs = [1.0] * 16
        t1 = simulate_parallel(costs, [0.0] * 16, 1)
        t8 = simulate_parallel(costs, [0.0] * 16, 8)
        assert t1 / t8 == 8.0

    def test_repairs_bound_span(self):
        exec_costs = [1.0] * 8
        repair_costs = [0.5] * 8
        t_inf = simulate_parallel(exec_costs, repair_costs, 10**6)
        # span = max exec + top ceil(log2 8)=3 repairs
        assert abs(t_inf - (1.0 + 1.5)) < 1e-9

    def test_work_bound_dominates_low_cores(self):
        t2 = simulate_parallel([1.0] * 8, [1.0] * 8, 2)
        assert t2 == 8.0  # 16 units of work over 2 cores

    def test_empty(self):
        assert simulate_parallel([], [], 4) == 0.0


class TestSimulateLocking:
    def test_independent_txns_parallelize(self):
        t1 = simulate_locking([1.0] * 8, [], 1)
        t8 = simulate_locking([1.0] * 8, [], 8)
        assert t1 / t8 == 8.0

    def test_chain_serializes(self):
        edges = [(i, i + 1) for i in range(7)]
        t8 = simulate_locking([1.0] * 8, edges, 8)
        assert t8 == 8.0  # fully serialized regardless of cores

    def test_partial_conflicts(self):
        # two independent chains of 4: two cores suffice
        edges = [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]
        t = simulate_locking([1.0] * 8, edges, 8)
        assert t == 4.0


class TestSpeedupCurve:
    def test_monotone_for_repair(self):
        exec_costs = [1.0] * 12
        repair_costs = [0.1] * 12
        curve = speedup_curve(
            lambda c: simulate_parallel(exec_costs, repair_costs, c),
            [1, 2, 4, 8],
        )
        speeds = [s for _, s in curve]
        assert speeds[0] == 1.0
        assert all(b >= a - 1e-9 for a, b in zip(speeds, speeds[1:]))

    def test_repair_beats_locking_under_contention(self):
        """The paper's headline: with most pairs conflicting, locking
        stops scaling while repair keeps speeding up."""
        n = 16
        exec_costs = [1.0] * n
        # locking: a dense wait graph (everyone waits for txn 0..i-1)
        edges = [(i, j) for j in range(n) for i in range(j)]
        lock_speedup = simulate_locking(exec_costs, edges, 1) / simulate_locking(
            exec_costs, edges, 8
        )
        repair_speedup = simulate_parallel(exec_costs, [0.2] * n, 1) / (
            simulate_parallel(exec_costs, [0.2] * n, 8)
        )
        assert lock_speedup < 1.2
        assert repair_speedup > 4.0
