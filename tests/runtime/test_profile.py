"""Workspace.profile(): the end-to-end transaction trace surface.

The acceptance shape: a triangle-query transaction traced through
``workspace.profile()`` yields a span tree containing plan, join (with
seek/next counts), and IVM spans — and the counter deltas recorded by
the spans equal the workspace's ``engine_stats()`` totals over the same
window (both observe the identical bump stream through the thread's
scope stack).
"""

from repro import Workspace


def triangle_workspace():
    ws = Workspace()
    ws.addblock(
        "edge(x, y) -> int(x), int(y).\n"
        "tri(a, b, c) <- edge(a, b), edge(b, c), edge(a, c).\n"
    )
    return ws


def load_edges(ws, n=14):
    ws.load(
        "edge",
        [(a, b) for a in range(n) for b in range(n) if a < b and (a + b) % 3],
    )


class TestProfileSpanTree:
    def test_transaction_lifecycle_spans(self):
        ws = triangle_workspace()
        with ws.profile() as prof:
            load_edges(ws)
            ws.query("_(a, b, c) <- edge(a, b), edge(b, c), edge(a, c).")
        names = {s.name for s in prof.walk()}
        assert "txn.load" in names
        assert "txn.query" in names
        assert "compile" in names
        assert "plan" in names
        assert "join" in names
        assert "ivm.apply" in names
        assert "constraints.check" in names
        # the load commits through IVM and maintains the tri view
        load_root = prof.find("txn.load")
        assert load_root.find("commit") is not None
        assert load_root.find("ivm.maintain") is not None

    def test_join_spans_carry_movement_counts(self):
        ws = triangle_workspace()
        load_edges(ws)
        with ws.profile() as prof:
            rows = ws.query("_(a, b, c) <- edge(a, b), edge(b, c), edge(a, c).")
        assert rows  # non-trivial workload
        join = prof.find("join")
        assert join is not None
        assert join.attrs["rows"] == len(rows)
        root = prof.find("txn.query")
        if join.attrs.get("backend") == "ColumnarTrieJoin":
            # vectorized movements: batched seeks instead of opens/nexts
            assert join.attrs.get("vector_seeks", 0) > 0
            assert root.counters.get("join.vector_seeks", 0) == join.attrs[
                "vector_seeks"
            ]
        else:
            assert join.attrs.get("seeks", 0) + join.attrs.get("nexts", 0) > 0
            assert join.attrs.get("opens", 0) > 0
            # the same movements were bumped as join.* counters in-window
            assert root.counters.get("join.seeks", 0) == join.attrs.get("seeks", 0)
            assert root.counters.get("join.nexts", 0) == join.attrs.get("nexts", 0)

    def test_plan_span_records_cache_disposition(self):
        ws = triangle_workspace()
        load_edges(ws)
        query = "_(a, b, c) <- edge(a, b), edge(b, c), edge(a, c)."
        with ws.profile() as prof:
            ws.query(query)
            ws.query(query)
        plans = prof.find_all("plan")
        assert plans
        dispositions = {p.attrs["cache"] for p in plans}
        assert "hit" in dispositions  # second run reuses the cached plan

    def test_ivm_spans_record_delta_sizes(self):
        ws = triangle_workspace()
        load_edges(ws)
        with ws.profile() as prof:
            ws.exec("+edge(1, 2).")
        apply_span = prof.find("ivm.apply")
        assert apply_span is not None
        assert apply_span.attrs["base_tuples"] >= 1
        maintain = prof.find("ivm.maintain")
        assert maintain is not None and maintain.attrs["pred"] == "tri"

    def test_profile_counters_equal_engine_stats_window(self):
        ws = triangle_workspace()
        load_edges(ws)
        ws.reset_engine_stats()
        with ws.profile() as prof:
            ws.query("_(a, b, c) <- edge(a, b), edge(b, c), edge(a, c).")
            ws.exec("+edge(0, 3).")
        stats = ws.engine_stats()
        stats.pop("plan_cache", None)
        stats.pop("pool", None)
        stats.pop("columnar", None)  # derived summary, not a raw counter
        assert stats == prof.counters()
        assert stats.get("ivm.applies", 0) >= 1

    def test_untraced_transactions_record_nothing(self):
        ws = triangle_workspace()
        load_edges(ws)
        with ws.profile() as prof:
            pass  # nothing executed while collecting
        ws.query("_(a, b, c) <- edge(a, b), edge(b, c), edge(a, c).")
        assert prof.roots == []


class TestEngineStatsSurface:
    def test_histograms_record_transaction_timers(self):
        from repro import stats as global_stats

        ws = triangle_workspace()
        load_edges(ws)
        hists = global_stats.histograms()
        assert hists["txn.addblock.seconds"]["count"] >= 1
        assert hists["txn.load.seconds"]["count"] >= 1
        assert hists["txn.load.seconds"]["sum"] > 0.0
