"""Time travel, version DAGs, and failure injection at the workspace level."""

import pytest

from repro import ConstraintViolation, TransactionAborted, Workspace
from repro.engine.evaluator import FunctionalDependencyViolation


@pytest.fixture
def ws():
    workspace = Workspace()
    workspace.addblock(
        """
        n[] = v -> int(v).
        hist(x) -> int(x).
        doubled[] = u <- n[] = v, u = v * 2.
        """,
        name="m",
    )
    workspace.load("n", [(1,)])
    return workspace


class TestTimeTravel:
    def test_branch_any_past_version(self, ws):
        past = ws.version()
        ws.exec("^n[] = 2 <- .")
        ws.exec("^n[] = 3 <- .")
        assert ws.rows("n") == [(3,)]
        # branch the past version (paper T4: "we can branch any past
        # version of the database")
        ws._graph.branch_version(past, "past")
        ws.switch("past")
        assert ws.rows("n") == [(1,)]
        assert ws.rows("doubled") == [(2,)]
        ws.switch("main")
        assert ws.rows("n") == [(3,)]

    def test_version_dag_parents(self, ws):
        v1 = ws.version()
        ws.exec("^n[] = 2 <- .")
        v2 = ws.version()
        assert v2.parents == (v1,)
        ancestors = {v.id for v in v2.ancestors()}
        assert v1.id in ancestors

    def test_aborted_txn_leaves_no_version(self, ws):
        before = ws.version()
        with pytest.raises(TransactionAborted):
            ws.exec("+doubled[] = 9 <- .")  # write to derived
        assert ws.version() is before

    def test_queries_leave_no_version(self, ws):
        before = ws.version()
        ws.query("_(v) <- n[] = v.")
        assert ws.version() is before


class TestFailureInjection:
    def test_fd_violation_mid_transaction(self, ws):
        """Two reactive rules deriving conflicting values for one key
        abort atomically."""
        with pytest.raises((TransactionAborted, FunctionalDependencyViolation,
                            ConstraintViolation)):
            ws.exec("+n[] = 7 <- . +n[] = 8 <- .")
        # nothing leaked
        assert ws.rows("n") == [(1,)]
        assert ws.rows("doubled") == [(2,)]

    def test_unknown_predicate_write(self, ws):
        with pytest.raises(TransactionAborted):
            ws.load("no_such_pred_anywhere", [(1,)])

    def test_arity_mismatch(self, ws):
        with pytest.raises(TransactionAborted):
            ws.load("hist", [(1, 2)])

    def test_bad_syntax_leaves_state(self, ws):
        from repro.logiql.parser import ParseError

        before = ws.version()
        with pytest.raises(ParseError):
            ws.addblock("this is (not logiql")
        assert ws.version() is before

    def test_stratification_error_leaves_state(self, ws):
        from repro.engine.rules import StratificationError

        before = ws.version()
        with pytest.raises(StratificationError):
            ws.addblock(
                """
                p(x) <- hist(x), !q(x).
                q(x) <- hist(x), !p(x).
                """,
                name="bad",
            )
        assert ws.version() is before
        assert "bad" not in ws.blocks()

    def test_violating_block_not_installed(self, ws):
        with pytest.raises(ConstraintViolation):
            ws.addblock("n[] = v -> v >= 100.", name="impossible")
        assert "impossible" not in ws.blocks()
        # and the workspace still works
        ws.exec("^n[] = 5 <- .")
        assert ws.rows("doubled") == [(10,)]


class TestStateSharing:
    def test_branches_share_structure(self, ws):
        ws.load("hist", [(i,) for i in range(2000)])
        base_relation = ws.relation("hist")
        ws.create_branch("b")
        ws.switch("b")
        assert ws.relation("hist") is base_relation  # zero copying
        ws.exec("+hist(99999).")
        assert ws.relation("hist") is not base_relation
        # diffing the two versions is proportional to the change
        delta = base_relation.diff(ws.relation("hist"))
        assert set(delta.added) == {(99999,)}
        assert not delta.removed
