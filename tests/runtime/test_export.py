"""Export/import round-trips."""

import pytest

from repro import ConstraintViolation, Workspace
from repro.runtime.export import export_data, export_logic, import_data


@pytest.fixture
def ws():
    workspace = Workspace()
    workspace.addblock(
        """
        sku(s) -> .
        price[s] = p -> sku(s), float(p).
        flagged(s, b) -> sku(s), boolean(b).
        margin[s] = m <- price[s] = p, m = p * 0.3.
        """,
        name="m",
    )
    workspace.load("sku", [("a",), ("b",)])
    workspace.load("price", [("a", 1.5), ("b", 2.5)])
    workspace.load("flagged", [("a", True)])
    return workspace


class TestRoundTrip:
    def test_data_roundtrip(self, ws):
        text = export_data(ws)
        fresh = Workspace()
        fresh.addblock(
            """
            sku(s) -> .
            price[s] = p -> sku(s), float(p).
            flagged(s, b) -> sku(s), boolean(b).
            margin[s] = m <- price[s] = p, m = p * 0.3.
            """,
            name="m",
        )
        written = import_data(fresh, text)
        assert written == {"sku", "price", "flagged"}
        assert fresh.rows("price") == ws.rows("price")
        assert fresh.rows("flagged") == [("a", True)]
        # derived views recomputed from imported data
        assert fresh.rows("margin") == ws.rows("margin")

    def test_booleans_preserved_exactly(self, ws):
        text = export_data(ws, predicates={"flagged", "sku"})
        fresh = Workspace()
        fresh.addblock("sku(s) -> . flagged(s, b) -> sku(s), boolean(b).",
                       name="m")
        import_data(fresh, text)
        [(_, flag)] = fresh.rows("flagged")
        assert flag is True  # not 1

    def test_replace_mode(self, ws):
        text = export_data(ws)
        ws.exec('+sku("c"). +price["c"] = 9.0.')
        import_data(ws, text, replace=True)
        assert [s for (s,) in ws.rows("sku")] == ["a", "b"]

    def test_derived_not_exported(self, ws):
        import json

        payload = json.loads(export_data(ws))
        assert "margin" not in payload["data"]

    def test_import_is_constraint_checked(self, ws):
        bad = '{"version": 1, "data": {"price": [["ghost", 1.0]]}}'
        with pytest.raises(ConstraintViolation):
            import_data(ws, bad)

    def test_version_guard(self, ws):
        with pytest.raises(ValueError):
            import_data(ws, '{"version": 99, "data": {}}')

    def test_logic_summary(self, ws):
        summary = export_logic(ws)
        assert summary["blocks"] == ["m"]
        assert any("margin" in rule for rule in summary["rules"])
        assert any("price" in p for p in summary["predicates"])
