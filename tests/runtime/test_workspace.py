"""Workspace transactions: exec, query, addblock/removeblock, branches."""

import pytest

from repro import ConstraintViolation, TransactionAborted, UnknownPredicate, Workspace


@pytest.fixture
def retail():
    ws = Workspace()
    ws.addblock(
        """
        Product(p) -> .
        Stock[p] = v -> Product(p), float(v).
        spacePerProd[p] = v -> Product(p), float(v).
        totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x,
            spacePerProd[p] = y, z = x * y.
        """,
        name="core",
    )
    ws.load("Product", [("a",), ("b",)])
    ws.load("spacePerProd", [("a", 1.0), ("b", 2.0)])
    ws.load("Stock", [("a", 3.0), ("b", 4.0)])
    return ws


class TestExec:
    def test_functional_update(self, retail):
        retail.exec('^Stock["a"] = x <- Stock@start["a"] = y, x = y + 1.0.')
        assert dict(retail.rows("Stock"))["a"] == 4.0
        assert retail.rows("totalShelf") == [(12.0,)]

    def test_insert_and_delete(self, retail):
        retail.exec('+Product("c").')
        assert ("c",) in retail.relation("Product")
        retail.exec('-Product("c").')
        assert ("c",) not in retail.relation("Product")

    def test_conditional_reactive_rule(self, retail):
        retail.exec(
            '^Stock["a"] = 0.0 <- Stock@start["a"] = y, y > 2.0.'
        )
        assert dict(retail.rows("Stock"))["a"] == 0.0
        # condition now false: second run is a no-op
        result = retail.exec(
            '^Stock["a"] = 99.0 <- Stock@start["a"] = y, y > 2.0.'
        )
        assert not result.deltas
        assert dict(retail.rows("Stock"))["a"] == 0.0

    def test_write_to_derived_rejected(self, retail):
        with pytest.raises(TransactionAborted):
            retail.exec("+totalShelf[] = 5.0 <- .")

    def test_derivation_rule_in_exec_rejected(self, retail):
        with pytest.raises(TransactionAborted):
            retail.exec("v(p) <- Product(p).")

    def test_abort_leaves_state_untouched(self, retail):
        ws2 = Workspace()
        ws2.addblock("n[] = v -> int(v). n[] = v -> v >= 0.", name="t")
        ws2.load("n", [(5,)])
        with pytest.raises(ConstraintViolation):
            ws2.exec("^n[] = 0 - 1 <- .")
        assert ws2.rows("n") == [(5,)]

    def test_cascading_deltas(self, retail):
        # one exec rule writes +aux, another reads it
        ws = Workspace()
        ws.addblock("a(x) -> int(x). b(x) -> int(x).", name="d")
        ws.exec("+a(1). +b(x) <- +a(x).")
        assert ws.rows("a") == [(1,)] and ws.rows("b") == [(1,)]


class TestQuery:
    def test_simple_query(self, retail):
        rows = retail.query("_(p, v) <- Stock[p] = v, v > 3.5.")
        assert rows == [("b", 4.0)]

    def test_query_with_aux_view(self, retail):
        rows = retail.query(
            """
            aux[p] = z <- Stock[p] = v, spacePerProd[p] = s, z = v * s.
            _(p) <- aux[p] = z, z > 5.0.
            """
        )
        assert rows == [("b",)]

    def test_query_does_not_commit(self, retail):
        before = retail.version()
        retail.query("_(p) <- Product(p).")
        assert retail.version() is before

    def test_query_reads_derived(self, retail):
        rows = retail.query("_(u) <- totalShelf[] = u.")
        assert rows == [(11.0,)]

    def test_reactive_query_rejected(self, retail):
        with pytest.raises(TransactionAborted):
            retail.query("+Product(p) <- Product(p).")


class TestLiveProgramming:
    def test_addblock_materializes(self, retail):
        retail.addblock("double[] = v <- totalShelf[] = u, v = u * 2.0.",
                        name="dbl")
        assert retail.rows("double") == [(22.0,)]

    def test_incremental_addblock_reuses(self, retail):
        old_shelf = retail.state.materialization.relations["totalShelf"]
        retail.addblock("unrelated(x) <- Product(x).", name="u")
        new_shelf = retail.state.materialization.relations["totalShelf"]
        assert new_shelf is old_shelf  # carried over, not recomputed

    def test_formula_edit_revises(self, retail):
        retail.addblock("m[] = v <- totalShelf[] = u, v = u + 1.0.", name="m")
        assert retail.rows("m") == [(12.0,)]
        retail.addblock("m[] = v <- totalShelf[] = u, v = u + 2.0.", name="m")
        assert retail.rows("m") == [(13.0,)]

    def test_removeblock(self, retail):
        retail.addblock("x(p) <- Product(p).", name="x")
        retail.removeblock("x")
        with pytest.raises(UnknownPredicate):
            retail.rows("x")
        with pytest.raises(KeyError):
            retail.removeblock("x")

    def test_block_facts(self):
        ws = Workspace()
        ws.addblock('cost["w"] = 3.5 <- . cost["g"] = 4.5 <- .', name="costs")
        assert ws.rows("cost") == [("g", 4.5), ("w", 3.5)]
        ws.removeblock("costs")
        # the block's facts are retracted; the (now empty) base
        # predicate remains known
        assert ws.rows("cost") == []

    def test_addblock_chains_views(self, retail):
        retail.addblock("a[] = v <- totalShelf[] = u, v = u + 1.0.", name="a")
        retail.addblock("b[] = v <- a[] = u, v = u * 10.0.", name="b")
        assert retail.rows("b") == [(120.0,)]
        # editing the middle block revises downstream only
        retail.exec('^Stock["a"] = 4.0 <- .')
        assert retail.rows("b") == [(130.0,)]


class TestBranching:
    def test_branch_isolation(self, retail):
        retail.create_branch("scenario")
        retail.switch("scenario")
        retail.exec('^Stock["a"] = 100.0 <- .')
        assert retail.rows("totalShelf") == [(108.0,)]
        retail.switch("main")
        assert retail.rows("totalShelf") == [(11.0,)]

    def test_branch_sees_program_changes_independently(self, retail):
        retail.create_branch("dev")
        retail.switch("dev")
        retail.addblock("devview(p) <- Product(p).", name="dev-only")
        assert retail.rows("devview")
        retail.switch("main")
        with pytest.raises(UnknownPredicate):
            retail.rows("devview")

    def test_delete_branch(self, retail):
        retail.create_branch("tmp")
        retail.delete_branch("tmp")
        assert "tmp" not in retail.branches()

    def test_switch_unknown_branch(self, retail):
        with pytest.raises(KeyError):
            retail.switch("nope")


class TestConstraintEnforcement:
    def test_entity_membership(self, retail):
        with pytest.raises(ConstraintViolation):
            retail.load("Stock", [("ghost", 1.0)])

    def test_type_check(self, retail):
        with pytest.raises(ConstraintViolation):
            retail.load("Stock", [("a", "not-a-float")])

    def test_inclusion_dependency(self):
        ws = Workspace()
        ws.addblock(
            """
            Product(p) -> .
            Stock[p] = v -> Product(p), float(v).
            Product(p) -> Stock[p] = _.
            """,
            name="t",
        )
        with pytest.raises(ConstraintViolation):
            ws.load("Product", [("a",)])  # a has no stock yet
        # loading both atomically is fine: two execs vs one
        ws.exec('+Product("a"). +Stock["a"] = 1.0.')
        assert ws.rows("Stock") == [("a", 1.0)]

    def test_addblock_checks_existing_data(self):
        ws = Workspace()
        ws.addblock("n[] = v -> int(v).", name="d")
        ws.load("n", [(-5,)])
        with pytest.raises(ConstraintViolation):
            ws.addblock("n[] = v -> v >= 0.", name="guard")
