"""REPL smoke tests (scripted sessions)."""

import io

from repro.repl import Repl, _complete


def session(*lines):
    out = io.StringIO()
    repl = Repl(out=out)
    for line in lines:
        alive = repl.handle(line)
        if not alive:
            break
    return out.getvalue(), repl


class TestRepl:
    def test_addblock_and_print(self):
        output, _ = session(
            "edge(x, y) -> int(x), int(y).",
            "exec +edge(1, 2). +edge(2, 3).",
            "print edge",
        )
        assert "added block" in output
        assert "1, 2" in output and "2, 3" in output

    def test_query(self):
        output, _ = session(
            "edge(x, y) -> int(x), int(y).",
            "exec +edge(1, 2).",
            "query _(y) <- edge(1, y).",
        )
        assert "2" in output.splitlines()[-1]

    def test_views_maintained(self):
        output, _ = session(
            "n[] = v -> int(v). d[] = u <- n[] = v, u = v * 2.",
            "exec +n[] = 21.",
            "print d",
        )
        assert "42" in output

    def test_constraint_abort_keeps_session(self):
        output, repl = session(
            "n[] = v -> int(v). n[] = v -> v >= 0.",
            "exec +n[] = 0 - 5.",
            "exec +n[] = 5.",
            "print n",
        )
        assert "ABORTED" in output
        assert repl.workspace.rows("n") == [(5,)]

    def test_branches(self):
        output, repl = session(
            "n[] = v -> int(v).",
            "exec +n[] = 1.",
            "branch scenario",
            "exec ^n[] = 2 <- .",
            "switch main",
            "print n",
        )
        assert repl.workspace.rows("n") == [(1,)]

    def test_meta_inspection(self):
        output, _ = session(
            "p(x) <- q(x).",
            "meta lang_idb",
        )
        assert "'p'" in output

    def test_blocks_listing(self):
        output, _ = session("p(x) -> int(x).", "blocks")
        assert "block-" in output

    def test_error_recovers(self):
        output, repl = session("this is not logiql", "print nothing")
        assert "ERROR" in output

    def test_quit(self):
        out = io.StringIO()
        repl = Repl(out=out)
        assert repl.handle("quit") is False

    def test_solve_command(self):
        output, _ = session(
            """
            Item(i) -> .
            amount[i] = v -> Item(i), float(v).
            total[] = u <- agg<<u = sum(v)>> amount[i] = v.
            Item(i) -> amount[i] >= 0.
            Item(i) -> amount[i] <= 3.
            lang:solve:variable(`amount).
            lang:solve:max(`total).
            """,
            "exec +Item(\"x\").",
            "solve",
        )
        assert "optimal" in output


class TestObservabilityCommands:
    def test_stats_emits_json(self):
        output, _ = session(
            "edge(x, y) -> int(x), int(y).",
            "exec +edge(1, 2).",
            ":stats",
        )
        import json

        blob = output[output.index("{"):]
        stats = json.loads(blob[: blob.rindex("}") + 1])
        assert "plan_cache" in stats

    def test_stats_prom_emits_exposition_text(self):
        output, _ = session(
            "edge(x, y) -> int(x), int(y).",
            "exec +edge(1, 2).",
            ":stats prom",
        )
        assert "# TYPE" in output
        assert "repro_" in output

    def test_profile_wraps_any_command(self):
        output, _ = session(
            "edge(x, y) -> int(x), int(y). tri(a, b, c) <- "
            "edge(a, b), edge(b, c), edge(a, c).",
            "exec +edge(1, 2). +edge(2, 3). +edge(1, 3).",
            ":profile query _(a, b, c) <- edge(a, b), edge(b, c), edge(a, c).",
        )
        assert "txn.query" in output
        assert "join" in output
        assert "1, 2, 3" in output  # the profiled command still ran

    def test_profile_without_argument_prints_usage(self):
        output, _ = session(":profile")
        assert "usage" in output

    def test_profile_quit_propagates(self):
        import io

        repl = Repl(out=io.StringIO())
        assert repl.handle(":profile quit") is False


class TestLineCompletion:
    def test_clause_needs_dot(self):
        assert not _complete("p(x) <- q(x)")
        assert _complete("p(x) <- q(x).")

    def test_commands_complete_immediately(self):
        assert _complete("print foo")
        assert _complete("quit")

    def test_observability_commands_complete(self):
        assert _complete(":stats")
        assert _complete(":stats prom")
        assert not _complete(":profile")
        assert _complete(":profile print edge")
        assert not _complete(":profile query _(x) <- edge(1, x)")
        assert _complete(":profile query _(x) <- edge(1, x).")
