"""Snapshot of the public API surface.

These tests pin the names exported from ``repro`` / ``repro.service``,
the :class:`TxnResult` field set, and the error taxonomy, so accidental
surface changes fail loudly instead of breaking clients."""

import dataclasses
import warnings

import pytest

import repro
from repro import (
    ConflictError,
    ConstraintViolation,
    Overloaded,
    ReproError,
    TransactionAborted,
    TxnResult,
    TxnTimeout,
    UnknownPredicate,
    Workspace,
)


class TestExports:
    def test_top_level_all(self):
        assert set(repro.__all__) == {
            "Workspace",
            "Workbook",
            "connect",
            "TxnResult",
            "ReproError",
            "TransactionAborted",
            "ConstraintViolation",
            "ConflictError",
            "TxnTimeout",
            "Overloaded",
            "UnknownPredicate",
            "__version__",
        }

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_service_exports(self):
        import repro.service as service

        assert set(service.__all__) == {
            "TransactionService",
            "ServiceConfig",
            "Session",
            "connect",
            "AdmissionController",
            "Ticket",
            "FaultInjector",
            "InjectedCrash",
        }
        for name in service.__all__:
            assert getattr(service, name) is not None

    def test_connect_is_the_session_entry_point(self):
        session = repro.connect()
        try:
            assert type(session).__name__ == "Session"
        finally:
            session.close()


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(TransactionAborted, ReproError)
        assert issubclass(ConstraintViolation, TransactionAborted)
        assert issubclass(ConflictError, TransactionAborted)
        assert issubclass(TxnTimeout, TransactionAborted)
        assert issubclass(Overloaded, ReproError)
        assert issubclass(UnknownPredicate, ReproError)

    def test_compat_mixins(self):
        # pre-0.2 client code caught stdlib types; keep that working
        assert issubclass(TransactionAborted, RuntimeError)
        assert issubclass(Overloaded, RuntimeError)
        assert issubclass(UnknownPredicate, KeyError)

    def test_payloads(self):
        assert ConflictError("c", preds=["p"]).preds == ["p"]
        assert TxnTimeout("t", deadline_s=1.5).deadline_s == 1.5
        error = Overloaded("o", depth=9, limit=8)
        assert (error.depth, error.limit) == (9, 8)


class TestTxnResult:
    def test_field_snapshot(self):
        fields = {f.name for f in dataclasses.fields(TxnResult)}
        assert fields == {
            "status",
            "kind",
            "deltas",
            "rows",
            "stats",
            "span_id",
            "block",
            "attempts",
            "repairs",
            "latency_s",
        }

    def test_workspace_verbs_return_results(self):
        ws = Workspace()
        added = ws.addblock("p(x) -> int(x).", name="b1")
        assert isinstance(added, TxnResult)
        assert added.kind == "addblock" and added.block == "b1"
        loaded = ws.load("p", [(1,)])
        assert isinstance(loaded, TxnResult) and loaded.committed
        result = ws.exec("+p(2).")
        assert isinstance(result, TxnResult)
        assert result.kind == "exec" and result.status == "committed"
        assert "p" in result.deltas
        assert result.changed_predicates() == ["p"]
        assert result.latency_s is not None and result.latency_s >= 0

    def test_query_result(self):
        ws = Workspace()
        ws.addblock("p(x) -> int(x).", name="b1")
        ws.load("p", [(1,), (2,)])
        result = ws.query_result("_(x) <- p(x).")
        assert isinstance(result, TxnResult)
        assert result.kind == "query"
        assert sorted(result.rows) == [(1,), (2,)]
        # plain query still returns bare rows
        assert sorted(ws.query("_(x) <- p(x).")) == [(1,), (2,)]

    def test_legacy_dict_shape_warns(self):
        ws = Workspace()
        ws.addblock("p(x) -> int(x).", name="b1")
        result = ws.exec("+p(1).")
        with pytest.warns(DeprecationWarning):
            assert "p" in result
        with pytest.warns(DeprecationWarning):
            assert len(result) == 1
        with pytest.warns(DeprecationWarning):
            assert list(result) == ["p"]
        with pytest.warns(DeprecationWarning):
            assert result["p"] is result.deltas["p"]

    def test_legacy_block_name_shape_warns(self):
        ws = Workspace()
        added = ws.addblock("p(x) -> int(x).", name="b7")
        with pytest.warns(DeprecationWarning):
            assert added == "b7"
        assert str(added) == "b7"
        # removeblock still accepts the result object (old name-string flow)
        removed = ws.removeblock(added)
        assert removed.kind == "removeblock" and removed.block == "b7"

    def test_to_dict(self):
        ws = Workspace()
        ws.addblock("p(x) -> int(x).", name="b1")
        result = ws.exec("+p(1).")
        snapshot = result.to_dict()
        assert snapshot["status"] == "committed"
        assert snapshot["kind"] == "exec"
        assert "p" in snapshot["deltas"]


class TestKeywordOnlyConstructors:
    def test_workspace_flags_are_keyword_only(self):
        with pytest.raises(TypeError):
            Workspace(True)

    def test_evaluator_flags_are_keyword_only(self):
        from repro.engine.evaluator import Evaluator, RuleSet

        with pytest.raises(TypeError):
            Evaluator(RuleSet([]), None)

    def test_service_flags_are_keyword_only(self):
        from repro.service import ServiceConfig, TransactionService

        with pytest.raises(TypeError):
            TransactionService(None, ServiceConfig())

    def test_service_config_rejects_unknown_mode(self):
        from repro.service import ServiceConfig

        with pytest.raises(ValueError):
            ServiceConfig(mode="hope")
