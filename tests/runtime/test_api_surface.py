"""Snapshot of the public API surface.

These tests pin the names exported from ``repro`` / ``repro.service``,
the :class:`TxnResult` field set, and the error taxonomy, so accidental
surface changes fail loudly instead of breaking clients."""

import dataclasses
import warnings

import pytest

import repro
from repro import (
    ConflictError,
    ConstraintViolation,
    Overloaded,
    ReproError,
    TransactionAborted,
    TxnResult,
    TxnTimeout,
    UnknownPredicate,
    Workspace,
)


class TestExports:
    def test_top_level_all(self):
        assert set(repro.__all__) == {
            "Workspace",
            "Workbook",
            "connect",
            "TxnResult",
            "ReproError",
            "TransactionAborted",
            "ConstraintViolation",
            "ConflictError",
            "TxnTimeout",
            "Overloaded",
            "UnknownPredicate",
            "__version__",
        }

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_service_exports(self):
        import repro.service as service

        assert set(service.__all__) == {
            "TransactionService",
            "ServiceConfig",
            "Session",
            "connect",
            "AdmissionController",
            "Ticket",
            "FaultInjector",
            "InjectedCrash",
        }
        for name in service.__all__:
            assert getattr(service, name) is not None

    def test_connect_is_the_session_entry_point(self):
        session = repro.connect()
        try:
            assert type(session).__name__ == "Session"
        finally:
            session.close()


class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(TransactionAborted, ReproError)
        assert issubclass(ConstraintViolation, TransactionAborted)
        assert issubclass(ConflictError, TransactionAborted)
        assert issubclass(TxnTimeout, TransactionAborted)
        assert issubclass(Overloaded, ReproError)
        assert issubclass(UnknownPredicate, ReproError)

    def test_compat_mixins(self):
        # pre-0.2 client code caught stdlib types; keep that working
        assert issubclass(TransactionAborted, RuntimeError)
        assert issubclass(Overloaded, RuntimeError)
        assert issubclass(UnknownPredicate, KeyError)

    def test_payloads(self):
        assert ConflictError("c", preds=["p"]).preds == ["p"]
        assert TxnTimeout("t", deadline_s=1.5).deadline_s == 1.5
        error = Overloaded("o", depth=9, limit=8)
        assert (error.depth, error.limit) == (9, 8)


class TestTxnResult:
    def test_field_snapshot(self):
        fields = {f.name for f in dataclasses.fields(TxnResult)}
        assert fields == {
            "status",
            "kind",
            "deltas",
            "rows",
            "stats",
            "span_id",
            "block",
            "attempts",
            "repairs",
            "latency_s",
        }

    def test_workspace_verbs_return_results(self):
        ws = Workspace()
        added = ws.addblock("p(x) -> int(x).", name="b1")
        assert isinstance(added, TxnResult)
        assert added.kind == "addblock" and added.block == "b1"
        loaded = ws.load("p", [(1,)])
        assert isinstance(loaded, TxnResult) and loaded.committed
        result = ws.exec("+p(2).")
        assert isinstance(result, TxnResult)
        assert result.kind == "exec" and result.status == "committed"
        assert "p" in result.deltas
        assert result.changed_predicates() == ["p"]
        assert result.latency_s is not None and result.latency_s >= 0

    def test_query_result(self):
        ws = Workspace()
        ws.addblock("p(x) -> int(x).", name="b1")
        ws.load("p", [(1,), (2,)])
        result = ws.query_result("_(x) <- p(x).")
        assert isinstance(result, TxnResult)
        assert result.kind == "query"
        assert sorted(result.rows) == [(1,), (2,)]
        # plain query still returns bare rows
        assert sorted(ws.query("_(x) <- p(x).")) == [(1,), (2,)]

    def test_legacy_dict_shape_warns(self):
        ws = Workspace()
        ws.addblock("p(x) -> int(x).", name="b1")
        result = ws.exec("+p(1).")
        with pytest.warns(DeprecationWarning):
            assert "p" in result
        with pytest.warns(DeprecationWarning):
            assert len(result) == 1
        with pytest.warns(DeprecationWarning):
            assert list(result) == ["p"]
        with pytest.warns(DeprecationWarning):
            assert result["p"] is result.deltas["p"]

    def test_legacy_block_name_shape_warns(self):
        ws = Workspace()
        added = ws.addblock("p(x) -> int(x).", name="b7")
        with pytest.warns(DeprecationWarning):
            assert added == "b7"
        assert str(added) == "b7"
        # removeblock still accepts the result object (old name-string flow)
        removed = ws.removeblock(added)
        assert removed.kind == "removeblock" and removed.block == "b7"

    def test_to_dict(self):
        ws = Workspace()
        ws.addblock("p(x) -> int(x).", name="b1")
        result = ws.exec("+p(1).")
        snapshot = result.to_dict()
        assert snapshot["status"] == "committed"
        assert snapshot["kind"] == "exec"
        assert "p" in snapshot["deltas"]


class TestNetSessionSurface:
    """The network session mirrors the local session: same verbs, same
    result shapes, so code written against one runs against the other."""

    SESSION_VERBS = (
        "exec", "query", "query_result", "addblock", "removeblock",
        "load", "rows", "checkpoint", "close", "__enter__", "__exit__",
    )

    def test_net_exports(self):
        import repro.net as net

        assert set(net.__all__) == {
            "DEFAULT_PORT",
            "PROTOCOL_VERSION",
            "ClusterSession",
            "ConnectionLost",
            "LeaderUnavailable",
            "NetError",
            "NetSession",
            "ProtocolError",
            "Replica",
            "ReplicaReadOnly",
            "ReproServer",
            "StaleRead",
            "connect",
        }
        for name in net.__all__:
            assert getattr(net, name) is not None

    def test_every_transport_has_every_session_verb(self):
        from repro.net import ClusterSession, NetSession
        from repro.service.session import Session

        for verb in self.SESSION_VERBS:
            assert callable(getattr(Session, verb)), verb
            assert callable(getattr(NetSession, verb)), verb
            assert callable(getattr(ClusterSession, verb)), verb

    def test_every_transport_tracks_a_watermark(self):
        # the session-consistency anchor is part of the surface: all
        # three transports expose the highest observed commit watermark
        from repro.net import ClusterSession

        with repro.connect() as session:
            assert session.watermark == 0
            session.addblock("p(x) -> int(x).")
            assert session.watermark > 0  # local writes advance it
        with ClusterSession(["127.0.0.1:7411"]) as cluster:
            assert cluster.watermark == 0  # nothing observed yet

    def test_net_errors_are_repro_errors(self):
        from repro.net import (
            ConnectionLost,
            LeaderUnavailable,
            NetError,
            ProtocolError,
            ReplicaReadOnly,
            StaleRead,
        )

        assert issubclass(NetError, ReproError)
        assert issubclass(ProtocolError, NetError)
        assert issubclass(ReplicaReadOnly, NetError)
        assert issubclass(ConnectionLost, NetError)
        assert issubclass(ConnectionLost, ConnectionError)
        assert issubclass(StaleRead, NetError)
        assert issubclass(LeaderUnavailable, NetError)

    def test_same_shapes_against_a_live_server(self):
        import repro.net
        from repro.service import TransactionService

        service = TransactionService()
        server = service.serve()
        local = repro.connect()
        try:
            remote = repro.connect(
                "tcp://{}:{}".format(server.host, server.port))
            for session in (local, remote):
                added = session.addblock("p(x) -> int(x).", name="b1")
                assert isinstance(added, TxnResult)
                assert added.kind == "addblock" and added.block == "b1"
                loaded = session.load("p", [(1,)])
                assert isinstance(loaded, TxnResult) and loaded.committed
                result = session.exec("+p(2).")
                assert isinstance(result, TxnResult)
                assert result.kind == "exec" and result.status == "committed"
                assert result.changed_predicates() == ["p"]
                assert sorted(result.deltas["p"].added) == [(2,)]
                assert result.latency_s is not None and result.latency_s >= 0
                qr = session.query_result("_(x) <- p(x).")
                assert isinstance(qr, TxnResult) and qr.kind == "query"
                assert sorted(qr.rows) == [(1,), (2,)]
                assert sorted(session.query("_(x) <- p(x).")) == [(1,), (2,)]
                assert sorted(session.rows("p")) == [(1,), (2,)]
                removed = session.removeblock("b1")
                assert removed.kind == "removeblock" and removed.block == "b1"
                session.close()
        finally:
            local.close()
            server.stop()
            service.close()


class TestUnifiedConnect:
    """``repro.connect`` is the one entry point for every transport:
    a workspace path, ``tcp://host:port``, or ``cluster://a,b,c`` —
    with the consistency keyword honored by all of them."""

    def test_no_target_is_a_local_session(self):
        with repro.connect() as session:
            assert type(session).__name__ == "Session"
            assert session.consistency == "session"

    def test_path_target_is_a_durable_local_session(self, tmp_path):
        path = str(tmp_path / "db")
        with repro.connect(path) as session:
            assert type(session).__name__ == "Session"
            assert session.service.config.checkpoint_path == path
            session.addblock("p(x) -> int(x).")
            session.load("p", [(7,)])
            session.checkpoint()
        # the path *is* the database: reconnecting recovers it
        with repro.connect(path) as session:
            assert session.rows("p") == [(7,)]

    def test_tcp_target_is_a_net_session(self):
        from repro.net import NetSession
        from repro.service import TransactionService

        service = TransactionService()
        server = service.serve()
        try:
            url = "tcp://{}:{}".format(server.host, server.port)
            with repro.connect(url, consistency="eventual") as session:
                assert isinstance(session, NetSession)
                assert session.consistency == "eventual"
                assert session.server_role == "leader"
        finally:
            server.stop()
            service.close()

    def test_cluster_target_is_a_cluster_session(self):
        from repro.net import ClusterSession

        # membership is lazy: no sockets open until the first verb
        url = "cluster://127.0.0.1:7411,127.0.0.1:7412,127.0.0.1:7413"
        with repro.connect(url) as session:
            assert isinstance(session, ClusterSession)
            assert session.endpoints() == [
                "127.0.0.1:7411", "127.0.0.1:7412", "127.0.0.1:7413"]
            assert session.consistency == "session"

    def test_consistency_is_validated_up_front(self):
        with pytest.raises(ValueError):
            repro.connect(consistency="serializable-ish")
        with pytest.raises(ValueError):
            repro.connect("cluster://127.0.0.1:7411", consistency="nope")

    def test_old_net_connect_still_works_but_warns(self):
        import repro.net
        from repro.net import NetSession
        from repro.service import TransactionService

        service = TransactionService()
        server = service.serve()
        try:
            with pytest.warns(DeprecationWarning, match="repro.connect"):
                session = repro.net.connect(server.host, server.port)
            assert isinstance(session, NetSession)
            session.close()
        finally:
            server.stop()
            service.close()


class TestKeywordOnlyConstructors:
    def test_workspace_flags_are_keyword_only(self):
        with pytest.raises(TypeError):
            Workspace(True)

    def test_evaluator_flags_are_keyword_only(self):
        from repro.engine.evaluator import Evaluator, RuleSet

        with pytest.raises(TypeError):
            Evaluator(RuleSet([]), None)

    def test_service_flags_are_keyword_only(self):
        from repro.service import ServiceConfig, TransactionService

        with pytest.raises(TypeError):
            TransactionService(None, ServiceConfig())

    def test_service_config_rejects_unknown_mode(self):
        from repro.service import ServiceConfig

        with pytest.raises(ValueError):
            ServiceConfig(mode="hope")
