"""Per-workspace engine_stats(): reset round-trips and scope isolation."""

import threading

from repro import Workspace
from repro import stats as global_stats

SCHEMA = (
    "edge(x, y) -> int(x), int(y).\n"
    "path(x, y) <- edge(x, y).\n"
    "path(x, z) <- path(x, y), edge(y, z).\n"
)

EDGES = [(i, i + 1) for i in range(30)] + [(i, i + 5) for i in range(20)]


def run_workload(ws):
    ws.load("edge", EDGES)
    ws.query("_(x, y) <- path(x, y), edge(y, x).")
    ws.exec("+edge(100, 101).")


def scalar(counters):
    return {k: v for k, v in counters.items() if isinstance(v, (int, float))}


class TestResetRoundTrip:
    def test_reset_zeroes_the_window(self):
        ws = Workspace()
        ws.addblock(SCHEMA)
        run_workload(ws)
        assert scalar(ws.engine_stats())  # something was counted
        ws.reset_engine_stats()
        assert scalar(ws.engine_stats()) == {}

    def test_window_resumes_after_reset(self):
        ws = Workspace()
        ws.addblock(SCHEMA)
        ws.load("edge", EDGES)
        ws.reset_engine_stats()
        ws.exec("+edge(200, 201).")
        window = scalar(ws.engine_stats())
        assert window.get("ivm.applies", 0) == 1
        # a second reset opens another clean window
        ws.reset_engine_stats()
        assert scalar(ws.engine_stats()) == {}

    def test_global_counters_unaffected_by_workspace_reset(self):
        ws = Workspace()
        ws.addblock(SCHEMA)
        run_workload(ws)
        before = global_stats.get("ivm.applies")
        ws.reset_engine_stats()
        assert global_stats.get("ivm.applies") == before


class TestWorkspaceIsolation:
    def test_two_workspaces_do_not_cross_contaminate(self):
        """Two workspaces running identical workloads concurrently on
        separate threads must each report exactly their own work."""
        results = {}
        errors = []
        barrier = threading.Barrier(2)

        def worker(name):
            try:
                ws = Workspace()
                ws.addblock(SCHEMA)
                barrier.wait(timeout=30)
                run_workload(ws)
                ws.reset_engine_stats()
                run_workload(ws)
                results[name] = scalar(ws.engine_stats())
            except Exception as error:  # surface in the main thread
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # identical workloads -> identical deltas; contamination would
        # double some counters on whichever thread ran second
        assert results["a"] == results["b"]
        assert results["a"].get("ivm.applies", 0) == 2

    def test_sequential_workspaces_count_independently(self):
        ws1 = Workspace()
        ws1.addblock(SCHEMA)
        run_workload(ws1)
        first = scalar(ws1.engine_stats())
        ws2 = Workspace()
        ws2.addblock(SCHEMA)
        run_workload(ws2)
        # ws2's activity must not have leaked into ws1's window
        assert scalar(ws1.engine_stats()) == first


class TestStatsScope:
    def test_scope_routes_external_engine_work(self):
        ws = Workspace()
        ws.addblock(SCHEMA)
        ws.reset_engine_stats()
        with ws.stats_scope():
            global_stats.bump("stats_scope.test_probe")
        assert ws.engine_stats().get("stats_scope.test_probe") == 1

    def test_scope_is_reentrant(self):
        ws = Workspace()
        with ws.stats_scope():
            with ws.stats_scope():
                global_stats.bump("stats_scope.reentrant_probe")
        assert ws.engine_stats().get("stats_scope.reentrant_probe") == 1
