"""Workbook (what-if branch) tests."""

import pytest

from repro import TransactionAborted, Workbook, Workspace


@pytest.fixture
def ws():
    workspace = Workspace()
    workspace.addblock(
        """
        inventory[s] = v -> string(s), int(v).
        low(s) <- inventory[s] = v, v < 2.
        """,
        name="inv",
    )
    workspace.load("inventory", [("a", 5), ("b", 1)])
    return workspace


class TestWorkbookLifecycle:
    def test_isolation(self, ws):
        workbook = Workbook(ws, name="plan")
        workbook.exec('^inventory["a"] = 100 <- .')
        assert dict(workbook.rows("inventory"))["a"] == 100
        assert dict(ws.rows("inventory"))["a"] == 5
        workbook.discard()

    def test_commit_merges(self, ws):
        workbook = Workbook(ws)
        workbook.exec('^inventory["a"] = 7 <- .')
        deltas = workbook.commit()
        assert dict(ws.rows("inventory"))["a"] == 7
        assert "inventory" in deltas
        assert workbook.name not in ws.branches()

    def test_discard_drops_changes(self, ws):
        workbook = Workbook(ws)
        workbook.exec('^inventory["a"] = 9 <- .')
        workbook.discard()
        assert dict(ws.rows("inventory"))["a"] == 5
        assert workbook.name not in ws.branches()

    def test_changes_proportional(self, ws):
        workbook = Workbook(ws)
        workbook.exec('^inventory["b"] = 3 <- .')
        changes = workbook.changes()
        assert set(changes) == {"inventory"}
        assert set(changes["inventory"].added) == {("b", 3)}
        assert set(changes["inventory"].removed) == {("b", 1)}
        workbook.discard()

    def test_derived_views_inside_workbook(self, ws):
        workbook = Workbook(ws)
        assert workbook.rows("low") == [("b",)]
        workbook.exec('^inventory["b"] = 10 <- .')
        assert workbook.rows("low") == []
        workbook.discard()
        assert ws.rows("low") == [("b",)]

    def test_context_manager_commits(self, ws):
        with Workbook(ws) as workbook:
            workbook.exec('^inventory["a"] = 42 <- .')
        assert dict(ws.rows("inventory"))["a"] == 42

    def test_context_manager_discards_on_error(self, ws):
        with pytest.raises(RuntimeError):
            with Workbook(ws) as workbook:
                workbook.exec('^inventory["a"] = 42 <- .')
                raise RuntimeError("boom")
        assert dict(ws.rows("inventory"))["a"] == 5

    def test_closed_workbook_rejects_use(self, ws):
        workbook = Workbook(ws)
        workbook.discard()
        with pytest.raises(TransactionAborted):
            workbook.exec('^inventory["a"] = 1 <- .')

    def test_scope_enforced(self, ws):
        ws.addblock("notes[s] = t -> string(s), string(t).", name="notes")
        workbook = Workbook(ws, scope={"inventory"})
        with pytest.raises(TransactionAborted):
            workbook.load("notes", [("a", "hello")])
        workbook.discard()

    def test_query_inside_workbook(self, ws):
        workbook = Workbook(ws)
        workbook.exec('^inventory["a"] = 0 <- .')
        rows = workbook.query("_(s) <- inventory[s] = v, v = 0.")
        assert rows == [("a",)]
        workbook.discard()

    def test_concurrent_workbooks(self, ws):
        first = Workbook(ws, name="w1")
        second = Workbook(ws, name="w2")
        first.exec('^inventory["a"] = 11 <- .')
        second.exec('^inventory["b"] = 22 <- .')
        first.commit()
        second.commit()
        inventory = dict(ws.rows("inventory"))
        assert inventory == {"a": 11, "b": 22}
