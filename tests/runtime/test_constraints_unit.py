"""Unit tests for the constraint checker machinery."""

import pytest

from repro.engine import ir
from repro.logiql.compiler import Constraint, compile_program
from repro.runtime.constraints import CompiledConstraint, ConstraintChecker
from repro.storage.relation import Relation


def constraint_of(source):
    block = compile_program(source)
    [constraint] = block.constraints
    return constraint


class TestCompiledConstraint:
    def test_inclusion_dependency(self):
        constraint = constraint_of("Product(p) -> Stock[p] = _.")
        compiled = CompiledConstraint(constraint)
        relations = {
            "Product": Relation.from_iter(1, [("a",), ("b",)]),
            "Stock": Relation.from_iter(2, [("a", 1.0)]),
        }
        violations = compiled.check(relations)
        assert violations == [{"p": "b"}]

    def test_comparison_rhs(self):
        constraint = constraint_of("n[] = v -> v >= 0.")
        compiled = CompiledConstraint(constraint)
        assert compiled.check({"n": Relation.from_iter(1, [(5,)])}) == []
        violations = compiled.check({"n": Relation.from_iter(1, [(-1,)])})
        assert violations == [{"v": -1}]

    def test_functional_terms_both_sides(self):
        constraint = constraint_of("Product(p) -> Stock[p] >= minStock[p].")
        compiled = CompiledConstraint(constraint)
        relations = {
            "Product": Relation.from_iter(1, [("a",), ("b",)]),
            "Stock": Relation.from_iter(2, [("a", 5.0), ("b", 1.0)]),
            "minStock": Relation.from_iter(2, [("a", 2.0), ("b", 2.0)]),
        }
        violations = compiled.check(relations)
        assert violations == [{"p": "b"}]

    def test_missing_predicates_default_empty(self):
        constraint = constraint_of("Product(p) -> Stock[p] = _.")
        compiled = CompiledConstraint(constraint)
        assert compiled.check({}) == []  # empty Product: vacuously holds

    def test_violation_limit(self):
        constraint = constraint_of("n(v) -> v >= 0.")
        compiled = CompiledConstraint(constraint)
        relation = Relation.from_iter(1, [(-i,) for i in range(1, 30)])
        assert len(compiled.check({"n": relation}, limit=10)) == 10

    def test_numeric_tolerance_on_rhs(self):
        constraint = constraint_of("total[] = u, cap[] = v -> u <= v.")
        compiled = CompiledConstraint(constraint)
        relations = {
            "total": Relation.from_iter(1, [(100.0 + 1e-9,)]),
            "cap": Relation.from_iter(1, [(100.0,)]),
        }
        assert compiled.check(relations) == []
        relations["total"] = Relation.from_iter(1, [(100.1,)])
        assert compiled.check(relations)

    def test_type_checks(self):
        constraint = constraint_of("f[k] = v -> int(k), float(v).")
        compiled = CompiledConstraint(constraint)
        good = {"f": Relation.from_iter(2, [(1, 2.5)])}
        assert compiled.check(good) == []
        bad = {"f": Relation.from_iter(2, [(1.5, 2.5)])}
        assert compiled.check(bad)


class TestConstraintChecker:
    def make_checker(self):
        block = compile_program(
            """
            n[] = v -> int(v).
            n[] = v -> v >= 0.
            m[] = v -> int(v).
            m[] = v -> v >= 10.
            1.0 : m[] = v -> v >= 100.
            """
        )
        return ConstraintChecker(block.constraints)

    def test_soft_constraints_skipped(self):
        checker = self.make_checker()
        relations = {
            "n": Relation.from_iter(1, [(1,)]),
            "m": Relation.from_iter(1, [(50,)]),  # violates only the soft one
        }
        assert checker.check(relations) == []

    def test_changed_preds_filter(self):
        checker = self.make_checker()
        relations = {
            "n": Relation.from_iter(1, [(-1,)]),  # violated
            "m": Relation.from_iter(1, [(50,)]),
        }
        assert checker.check(relations, changed_preds={"m"}) == []
        assert checker.check(relations, changed_preds={"n"})
        assert checker.check(relations)

    def test_exempt_preds(self):
        checker = self.make_checker()
        relations = {
            "n": Relation.from_iter(1, [(-1,)]),
            "m": Relation.from_iter(1, [(50,)]),
        }
        assert checker.check(relations, exempt_preds={"n"}) == []
