"""Language-level property tests: declarativity and order-independence.

Paper T1: "The semantics of a LogiQL program is largely independent of
the order in which elements of the program appear."  These tests check
that clause order, body-atom order, and block partitioning do not
change the materialized state.
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Workspace

SCHEMA = """
e(x, y) -> int(x), int(y).
v(x) -> int(x).
"""

RULES = [
    "tri(a, b, c) <- e(a, b), e(b, c), e(a, c).",
    "deg[x] = u <- agg<<u = count(y)>> e(x, y).",
    "isolated(x) <- v(x), !e(x, w).",
    "tc(x, y) <- e(x, y).",
    "tc(x, z) <- tc(x, y), e(y, z).",
]

EDGES = [(1, 2), (2, 3), (1, 3), (3, 4), (4, 1)]
NODES = [(i,) for i in range(1, 7)]


def materialize(rule_order, body_shuffle_seed=None):
    rules = list(rule_order)
    if body_shuffle_seed is not None:
        rng = random.Random(body_shuffle_seed)

        def shuffle_body(rule):
            head, _, body = rule.partition("<-")
            if "agg<<" in rule or not body.strip(" ."):
                return rule
            atoms = [a.strip() for a in body.strip(" .").split("),")]
            atoms = [a if a.endswith(")") else a + ")" for a in atoms]
            rng.shuffle(atoms)
            return head + "<- " + ", ".join(atoms) + "."

        rules = [shuffle_body(r) for r in rules]
    ws = Workspace()
    ws.addblock(SCHEMA, name="schema")
    ws.addblock("\n".join(rules), name="rules")
    ws.load("e", EDGES)
    ws.load("v", NODES)
    return {
        pred: tuple(ws.rows(pred))
        for pred in ("tri", "deg", "isolated", "tc")
    }


BASELINE = materialize(RULES)


class TestOrderIndependence:
    def test_clause_order_irrelevant(self):
        for permutation in itertools.islice(
            itertools.permutations(RULES), 0, 24, 5
        ):
            assert materialize(permutation) == BASELINE

    def test_body_atom_order_irrelevant(self):
        for seed in range(5):
            assert materialize(RULES, body_shuffle_seed=seed) == BASELINE

    def test_block_partitioning_irrelevant(self):
        ws = Workspace()
        ws.addblock(SCHEMA, name="schema")
        for index, rule in enumerate(RULES):
            # tc's two rules must land together (one block per predicate
            # definition); everything else goes in its own block
            if index == 3:
                ws.addblock(RULES[3] + "\n" + RULES[4], name="tc")
            elif index == 4:
                continue
            else:
                ws.addblock(rule, name="rule-{}".format(index))
        ws.load("e", EDGES)
        ws.load("v", NODES)
        state = {
            pred: tuple(ws.rows(pred))
            for pred in ("tri", "deg", "isolated", "tc")
        }
        assert state == BASELINE

    def test_data_before_or_after_logic(self):
        ws = Workspace()
        ws.addblock(SCHEMA, name="schema")
        ws.load("e", EDGES)
        ws.load("v", NODES)
        ws.addblock("\n".join(RULES), name="rules")  # logic after data
        state = {
            pred: tuple(ws.rows(pred))
            for pred in ("tri", "deg", "isolated", "tc")
        }
        assert state == BASELINE


@settings(max_examples=25, deadline=None)
@given(st.permutations(RULES))
def test_any_clause_permutation(permutation):
    assert materialize(list(permutation)) == BASELINE


@settings(max_examples=20, deadline=None)
@given(
    st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12),
)
def test_exec_insert_order_irrelevant(edges):
    edges = sorted(edges)
    one_shot = Workspace()
    one_shot.addblock(SCHEMA + RULES[0], name="p")
    one_shot.load("e", edges)
    stepwise = Workspace()
    stepwise.addblock(SCHEMA + RULES[0], name="p")
    shuffled = list(edges)
    random.Random(1).shuffle(shuffled)
    for a, b in shuffled:
        stepwise.exec("+e({}, {}).".format(a, b))
    assert one_shot.rows("tri") == stepwise.rows("tri")
    assert one_shot.relation("e") == stepwise.relation("e")
    # versions reached by different routes have equal structural hashes
    assert (one_shot.relation("e").structural_hash()
            == stepwise.relation("e").structural_hash())
