"""Compiler tests: AST → engine IR lowering."""

import pytest

from repro.engine import ir
from repro.logiql.compiler import CompileError, compile_program
from repro.storage.datum import PrimitiveType
from repro.storage.schema import EntityType


class TestRuleLowering:
    def test_plain_rule(self):
        block = compile_program("p(x, y) <- q(x, z), r(z, y).")
        [rule] = block.rules
        assert rule.head_pred == "p"
        assert [a.pred for a in rule.body] == ["q", "r"]

    def test_functional_term_desugaring(self):
        block = compile_program(
            "profit[s] = sellingPrice[s] - buyingPrice[s] <- ."
        )
        [rule] = block.rules
        preds = [a.pred for a in rule.body if isinstance(a, ir.PredAtom)]
        assert set(preds) == {"sellingPrice", "buyingPrice"}
        assigns = [a for a in rule.body if isinstance(a, ir.AssignAtom)]
        assert len(assigns) == 1
        assert rule.n_keys == 1

    def test_unbound_equality_becomes_assignment(self):
        block = compile_program("p[x] = z <- q[x] = a, z = a * 2.")
        [rule] = block.rules
        assigns = [a for a in rule.body if isinstance(a, ir.AssignAtom)]
        assert len(assigns) == 1 and assigns[0].var == "z"

    def test_bound_equality_stays_comparison(self):
        block = compile_program("p(x, y) <- q(x), q(y), x = y.")
        [rule] = block.rules
        compares = [a for a in rule.body if isinstance(a, ir.CompareAtom)]
        assert len(compares) == 1

    def test_aggregation(self):
        block = compile_program(
            "t[] = u <- agg<<u = sum(z)>> s[p] = x, z = x * 2."
        )
        [rule] = block.rules
        assert rule.agg.fn == "sum"
        assert rule.n_keys == 0

    def test_agg_value_expression_gets_assign(self):
        block = compile_program("t[] = u <- agg<<u = sum(x * 2)>> s[p] = x.")
        [rule] = block.rules
        assert rule.agg.fn == "sum"
        assigns = [a for a in rule.body if isinstance(a, ir.AssignAtom)]
        assert len(assigns) == 1

    def test_wildcards_become_fresh_vars(self):
        block = compile_program("p(x) <- q(x, _), q(x, _).")
        [rule] = block.rules
        names = set()
        for atom in rule.body:
            names |= {a.name for a in atom.args if isinstance(a, ir.Var)}
        assert len(names) == 3  # x plus two distinct wildcards


class TestReactiveLowering:
    def test_plus_head(self):
        block = compile_program("+r(x) <- s(x).")
        [rule] = block.reactive_rules
        assert rule.head_pred == "+r"
        # plain body references read the @start state inside exec logic
        assert rule.body[0].pred == "s@start"

    def test_caret_expansion(self):
        block = compile_program(
            '^price["P"] = x <- price@start["P"] = y, x = y - 1.'
        )
        heads = sorted(r.head_pred for r in block.reactive_rules)
        assert heads == ["+price", "-price"]
        minus = [r for r in block.reactive_rules if r.head_pred == "-price"][0]
        # the -rule looks up the old value via @start
        start_atoms = [
            a for a in minus.body
            if isinstance(a, ir.PredAtom) and a.pred == "price@start"
        ]
        assert start_atoms

    def test_caret_on_relational_rejected(self):
        with pytest.raises(CompileError):
            compile_program("^r(x) <- s(x).")

    def test_explicit_delta_body_atoms(self):
        block = compile_program("+a(x) <- +b(x).")
        [rule] = block.reactive_rules
        assert rule.body[0].pred == "+b"


class TestDeclarations:
    def test_functional_declaration(self):
        block = compile_program("Stock[p] = v -> Product(p), float(v).")
        [decl] = block.decls
        assert decl.name == "Stock"
        assert decl.is_functional and decl.n_keys == 1
        assert decl.arg_types == (EntityType("Product"), PrimitiveType.FLOAT)

    def test_entity_declaration(self):
        block = compile_program("Product(p) -> .")
        assert block.entities == [EntityType("Product")]

    def test_relational_declaration(self):
        block = compile_program("edge(x, y) -> int(x), int(y).")
        [decl] = block.decls
        assert not decl.is_functional
        assert decl.arg_types == (PrimitiveType.INT, PrimitiveType.INT)

    def test_declaration_is_also_constraint(self):
        block = compile_program("Stock[p] = v -> Product(p), float(v).")
        assert len(block.constraints) == 1
        [constraint] = block.constraints
        assert constraint.type_checks


class TestConstraints:
    def test_comparison_constraint(self):
        block = compile_program("t[] = u, m[] = v -> u <= v.")
        [constraint] = block.constraints
        assert len(constraint.lhs) == 2
        assert isinstance(constraint.rhs[0], ir.CompareAtom)

    def test_functional_terms_in_rhs(self):
        block = compile_program("Product(p) -> Stock[p] >= minStock[p].")
        [constraint] = block.constraints
        rhs_preds = {
            a.pred for a in constraint.rhs if isinstance(a, ir.PredAtom)
        }
        assert rhs_preds == {"Stock", "minStock"}

    def test_soft_constraint(self):
        block = compile_program("1.5 : Customer(c) -> Purchase(c).")
        [constraint] = block.constraints
        assert constraint.is_soft and constraint.weight == 1.5


class TestSpecialRules:
    def test_directives(self):
        block = compile_program(
            "lang:solve:variable(`Stock). lang:solve:max(`totalProfit)."
        )
        assert [d.name for d in block.directives] == [
            "lang:solve:variable", "lang:solve:max",
        ]

    def test_predict(self):
        block = compile_program(
            "SM[s] = m <- predict m = logist(v|f) A[s, w] = v, B[s, n] = f."
        )
        [rule] = block.predict_rules
        assert rule.fn == "logist"
        assert rule.target_var == "v" and rule.feature_var == "f"

    def test_prob_rule(self):
        block = compile_program("Promo[p] = Flip[0.1] <- Item(p).")
        [rule] = block.prob_rules
        assert rule.head_pred == "Promo"
        assert rule.param_expr == ir.Const(0.1)

    def test_flip_outside_head_rejected(self):
        with pytest.raises(CompileError):
            compile_program("p(x) <- q(x, Flip[0.5]).")

    def test_pred_application_as_term_rejected(self):
        with pytest.raises(CompileError):
            compile_program("p[x] = v <- q(x), v = r(x) + 1.")
