"""Parser tests: every clause form of §2.2, including paper examples."""

import pytest

from repro.logiql import ast
from repro.logiql.parser import ParseError, parse_clause, parse_program


class TestRules:
    def test_plain_rule(self):
        clause = parse_clause("p(x, y) <- q(x, z), r(z, y).")
        assert isinstance(clause, ast.RuleClause)
        assert clause.head == ast.RelAtom("p", [ast.VarT("x"), ast.VarT("y")])
        assert len(clause.body) == 2

    def test_functional_heads(self):
        clause = parse_clause("profit[sku] = z <- sellingPrice[sku] = x, "
                              "buyingPrice[sku] = y, z = x - y.")
        assert isinstance(clause.head, ast.FuncAtom)
        assert clause.head.pred == "profit"
        assert clause.head.keys == (ast.VarT("sku"),)

    def test_abbreviated_functional_syntax(self):
        clause = parse_clause(
            "profit[sku] = sellingPrice[sku] - buyingPrice[sku] <- ."
        )
        value = clause.head.value
        assert isinstance(value, ast.Arith) and value.op == "-"
        assert isinstance(value.left, ast.FuncTerm)

    def test_fact(self):
        clause = parse_clause('city("Melbourne").')
        assert isinstance(clause, ast.RuleClause)
        assert clause.body == ()

    def test_empty_body_rule(self):
        clause = parse_clause("p(1) <- .")
        assert clause.body == ()

    def test_aggregation(self):
        clause = parse_clause(
            "totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x, "
            "spacePerProd[p] = y, z = x * y."
        )
        assert clause.agg == ast.AggClause("u", "sum", ast.VarT("z"))
        assert len(clause.body) == 3

    def test_plus_equals_sugar(self):
        clause = parse_clause("totalShelf[] += Stock[p] * spacePerProd[p].")
        assert clause.agg is not None and clause.agg.fn == "sum"
        assert isinstance(clause.agg.value, ast.Arith)

    def test_unknown_agg_rejected(self):
        with pytest.raises(ParseError):
            parse_clause("x[] = u <- agg<<u = median(z)>> p(z).")

    def test_predict_rule(self):
        clause = parse_clause(
            "SM[sku, store] = m <- predict m = logist(v|f) "
            "Sales[sku, store, wk] = v, Feature[sku, store, n] = f."
        )
        assert clause.predict == ast.PredictClause(
            "m", "logist", ast.VarT("v"), ast.VarT("f")
        )

    def test_flip_head(self):
        clause = parse_clause("Promotion[p] = Flip[0.01] <- .")
        assert isinstance(clause.head.value, ast.FlipT)
        assert clause.head.value.param == ast.NumT(0.01)


class TestReactiveRules:
    def test_delta_fact(self):
        clause = parse_clause('+sales["Popsicle", "2015-01"] = 122.')
        assert clause.head.delta == "+"
        assert clause.head.keys == (ast.StrT("Popsicle"), ast.StrT("2015-01"))

    def test_paper_discount_rule(self):
        clause = parse_clause(
            '^price["Popsicle"] = 0.8 * x <- price@start["Popsicle"] = x, '
            'sales@start["Popsicle", "2015-01"] < 50, '
            '+promo("Popsicle", "2015-01").'
        )
        assert clause.head.delta == "^"
        at_start = [a for a in clause.body
                    if getattr(a, "at_start", False)]
        assert len(at_start) >= 1
        plus_atoms = [a for a in clause.body
                      if getattr(a, "delta", None) == "+"]
        assert len(plus_atoms) == 1

    def test_minus_delta(self):
        clause = parse_clause("-R(x) <- S(x).")
        assert clause.head.delta == "-"


class TestConstraints:
    def test_type_declaration(self):
        clause = parse_clause("spacePerProd[p] = v -> Product(p), float(v).")
        assert isinstance(clause, ast.ConstraintClause)
        assert isinstance(clause.rhs[1], ast.TypeAtom)

    def test_sized_type(self):
        clause = parse_clause("maxShelf[] = v -> float[64](v).")
        assert isinstance(clause.rhs[0], ast.TypeAtom)
        assert clause.rhs[0].type_name == "float"

    def test_entity_declaration(self):
        clause = parse_clause("Product(p) -> .")
        assert isinstance(clause, ast.ConstraintClause)
        assert clause.rhs == ()

    def test_inclusion_dependency(self):
        clause = parse_clause("Product(p) -> Stock[p] = _.")
        assert isinstance(clause.rhs[0], ast.FuncAtom)
        assert isinstance(clause.rhs[0].value, ast.Wildcard)

    def test_comparison_constraint(self):
        clause = parse_clause("totalShelf[] = u, maxShelf[] = v -> u <= v.")
        assert len(clause.lhs) == 2
        assert isinstance(clause.rhs[0], ast.Comparison)

    def test_functional_terms_in_constraints(self):
        clause = parse_clause("Product(p) -> Stock[p] >= minStock[p].")
        comparison = clause.rhs[0]
        assert isinstance(comparison.left, ast.FuncTerm)
        assert isinstance(comparison.right, ast.FuncTerm)

    def test_soft_constraint_weight(self):
        clause = parse_clause("2.5 : Customer(c), Promoted(p) -> Purchase(c, p).")
        assert clause.weight == 2.5

    def test_weight_on_rule_rejected(self):
        with pytest.raises(ParseError):
            parse_clause("1.0 : p(x) <- q(x).")


class TestDirectivesAndMisc:
    def test_solve_directives(self):
        clause = parse_clause("lang:solve:variable(`Stock).")
        assert isinstance(clause, ast.DirectiveClause)
        assert clause.name == "lang:solve:variable"
        assert clause.args == (ast.PredRef("Stock"),)

    def test_negation(self):
        clause = parse_clause("lang_edb(n) <- lang_predname(n), !lang_idb(n).")
        assert clause.body[1].negated

    def test_wildcards(self):
        clause = parse_clause("p(x) <- q(x, _).")
        assert isinstance(clause.body[0].terms[1], ast.Wildcard)

    def test_unary_minus(self):
        clause = parse_clause("p(x) <- q(x, y), y > -5.")
        comparison = clause.body[1]
        assert comparison.right == ast.NumT(-5)

    def test_arith_precedence(self):
        clause = parse_clause("f[x] = v <- g[x] = a, v = a + 2 * 3.")
        # find the v = ... comparison
        comparison = clause.body[1]
        assert isinstance(comparison.right, ast.Arith)
        assert comparison.right.op == "+"
        assert comparison.right.right.op == "*"

    def test_parenthesized(self):
        clause = parse_clause("f[x] = v <- g[x] = a, v = (a + 2) * 3.")
        comparison = clause.body[1]
        assert comparison.right.op == "*"

    def test_builtin_calls(self):
        clause = parse_clause("f[x] = v <- g[x] = a, v = abs(a).")
        comparison = clause.body[1]
        assert isinstance(comparison.right, ast.CallT)

    def test_program_parse(self):
        program = parse_program("a(x) -> int(x). b(x) <- a(x). c(1).")
        assert len(program.clauses) == 3

    def test_errors_carry_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("p(x <- q(x).")
        assert "line 1" in str(excinfo.value)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_clause("p(x) <- q(x). extra")

    def test_figure2_parses_fully(self):
        program = parse_program("""
        spacePerProd[p] = v -> Product(p), float(v).
        profitPerProd[p] = v -> Product(p), float(v).
        minStock[p] = v -> Product(p), float(v).
        maxStock[p] = v -> Product(p), float(v).
        maxShelf[] = v -> float[64](v).
        Stock[p] = v -> Product(p), float(v).
        totalShelf[] = v -> float(v).
        totalProfit[] = v -> float(v).
        totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x,
            spacePerProd[p] = y, z = x * y.
        totalProfit[] = u <- agg<<u = sum(z)>> Stock[p] = x,
            profitPerProd[p] = y, z = x * y.
        Product(p) -> Stock[p] >= minStock[p].
        Product(p) -> Stock[p] <= maxStock[p].
        totalShelf[] = u, maxShelf[] = v -> u <= v.
        """)
        assert len(program.clauses) == 13
