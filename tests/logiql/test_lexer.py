"""Tokenizer tests."""

import pytest

from repro.logiql.lexer import ParseError, Token, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)][:-1]


class TestBasics:
    def test_idents_and_punct(self):
        assert kinds("foo(x, y).") == [
            "IDENT", "LPAREN", "IDENT", "COMMA", "IDENT", "RPAREN", "DOT",
        ]

    def test_numbers(self):
        assert values("1 23 4.5 1e3 2.5e-2") == [1, 23, 4.5, 1000.0, 0.025]
        assert [type(v) for v in values("1 1.0")] == [int, float]

    def test_clause_dot_not_decimal(self):
        tokens = values("f(x) = 2.")
        assert tokens[-1] == "."
        assert tokens[-2] == 2

    def test_strings_with_escapes(self):
        assert values('"hello" "a\\"b" "x\\ny"') == ["hello", 'a"b', "x\ny"]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"abc')

    def test_booleans(self):
        tokens = tokenize("true false")
        assert tokens[0].kind == "BOOL" and tokens[0].value is True
        assert tokens[1].value is False

    def test_arrows_and_compounds(self):
        assert kinds("<- -> <= >= != << >> +=") == [
            "LARROW", "RARROW", "LE", "GE", "NE", "LSHIFT", "RSHIFT", "PLUSEQ",
        ]

    def test_namespaced_identifiers(self):
        assert values("lang:solve:variable")[0] == "lang:solve:variable"

    def test_colon_after_number_not_glued(self):
        assert kinds("2.0 : foo") == ["NUMBER", "COLON", "IDENT"]

    def test_comments(self):
        assert kinds("a // comment\n b") == ["IDENT", "IDENT"]
        assert kinds("a /* multi\nline */ b") == ["IDENT", "IDENT"]
        with pytest.raises(ParseError):
            tokenize("/* unterminated")

    def test_delta_and_at(self):
        assert kinds("+R(x) -R(x) ^R(x) R@start(x)")[:3] == [
            "PLUS", "IDENT", "LPAREN",
        ]
        assert "AT" in kinds("R@start(x)")

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("a # b")
        assert "line 1" in str(excinfo.value)

    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_backquote(self):
        assert kinds("`Stock") == ["BACKQUOTE", "IDENT"]
