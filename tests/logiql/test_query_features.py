"""LogiQL query-level feature coverage through the workspace API."""

import pytest

from repro import TransactionAborted, Workspace


@pytest.fixture
def graph():
    ws = Workspace()
    ws.addblock(
        """
        e(x, y) -> int(x), int(y).
        label[x] = s -> int(x), string(s).
        """,
        name="g",
    )
    ws.load("e", [(1, 2), (2, 3), (3, 1), (1, 3), (4, 4)])
    ws.load("label", [(1, "a"), (2, "b"), (3, "c"), (4, "d")])
    return ws


class TestQueryShapes:
    def test_joins_and_filters(self, graph):
        rows = graph.query("_(x, z) <- e(x, y), e(y, z), x < z.")
        expected = {(x, z) for (x, y) in graph.rows("e")
                    for (y2, z) in graph.rows("e") if y == y2 and x < z}
        assert set(rows) == expected

    def test_self_loops(self, graph):
        assert graph.query("_(x) <- e(x, x).") == [(4,)]

    def test_negation_in_query(self, graph):
        rows = graph.query("_(x) <- label[x] = s, !e(x, w).")
        assert rows == []  # every labelled node has an out-edge
        graph.exec('+label[9] = "z".')
        assert graph.query("_(x) <- label[x] = s, !e(x, w).") == [(9,)]

    def test_arithmetic_and_builtins(self, graph):
        rows = graph.query(
            "_(x, d) <- e(x, y), d = abs(x - y), d > 1."
        )
        assert set(rows) == {(1, 2), (3, 2)}

    def test_string_join(self, graph):
        rows = graph.query(
            '_(s1, s2) <- e(x, y), label[x] = s1, label[y] = s2, s1 < s2.'
        )
        assert ("a", "b") in set(rows)

    def test_recursive_query(self, graph):
        rows = graph.query(
            """
            reach(x, y) <- e(x, y).
            reach(x, z) <- reach(x, y), e(y, z).
            _(y) <- reach(1, y).
            """
        )
        assert set(rows) == {(1,), (2,), (3,)}

    def test_aggregate_query(self, graph):
        rows = graph.query(
            """
            deg[x] = u <- agg<<u = count(y)>> e(x, y).
            _(x, u) <- deg[x] = u, u >= 2.
            """
        )
        assert set(rows) == {(1, 2)}

    def test_constants_in_query(self, graph):
        assert graph.query("_(y) <- e(1, y).") == [(2,), (3,)]
        assert graph.query('_(x) <- label[x] = "c".') == [(3,)]

    def test_answer_predicate_selection(self, graph):
        rows = graph.query(
            "hops(x, y) <- e(x, y).", answer="hops"
        )
        assert len(rows) == 5

    def test_empty_result(self, graph):
        assert graph.query("_(x) <- e(x, y), x > 100.") == []

    def test_unknown_body_pred_defaults_empty(self, graph):
        assert graph.query("_(x) <- never_written(x).") == []

    def test_cartesian_query(self, graph):
        rows = graph.query("_(x, y) <- e(x, x), label[y] = s.")
        assert len(rows) == 4  # 1 self-loop × 4 labels
