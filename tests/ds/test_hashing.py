"""Tests for the deterministic hash functions, including the CPython
hash(-1) == hash(-2) pitfall that motivated them."""

import math
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds.hashing import combine_hashes, splitmix64, stable_hash


class TestKnownPitfalls:
    def test_minus_one_minus_two(self):
        # builtin hash(-1) == hash(-2) == -2; ours must differ
        assert hash(-1) == hash(-2)  # the CPython quirk is real
        assert stable_hash(-1) != stable_hash(-2)
        assert stable_hash(-1.0) != stable_hash(-2.0)
        assert stable_hash((-1,)) != stable_hash((-2,))
        assert stable_hash(("x", -1)) != stable_hash(("x", -2))

    def test_type_tags_separate_domains(self):
        assert stable_hash(0) != stable_hash(False)
        assert stable_hash(1) != stable_hash(True)
        assert stable_hash(0) != stable_hash(None)
        assert stable_hash(()) != stable_hash(0)

    def test_int_float_distinct(self):
        # within a typed column this never mixes; the hash still keeps
        # the domains apart deliberately
        assert stable_hash(1) != stable_hash(1.0)

    def test_big_integers(self):
        assert stable_hash(2**100) != stable_hash(2**100 + 2**64)
        assert stable_hash(2**64) != stable_hash(0)


class TestFloatEdgeCases:
    """NaN ≠ NaN would silently break unique representation (an
    inserted fact becomes unfindable); -0.0 == 0.0 but differs in bits,
    so equal keys must canonicalize to one hash."""

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            stable_hash(float("nan"))

    def test_nan_rejected_inside_tuples(self):
        with pytest.raises(ValueError, match="NaN"):
            stable_hash((1, float("nan")))

    def test_nan_rejected_at_insert(self):
        from repro.ds.pset import PSet

        with pytest.raises(ValueError, match="NaN"):
            PSet.EMPTY.add((1, math.nan))

    def test_nan_rejected_by_relation_load(self):
        from repro.storage.relation import Relation

        with pytest.raises(ValueError, match="NaN"):
            Relation.from_iter(1, [(math.nan,)])

    def test_negative_zero_canonicalized(self):
        assert -0.0 == 0.0  # equal keys...
        assert stable_hash(-0.0) == stable_hash(0.0)  # ...must hash equal
        assert stable_hash((-0.0, 1)) == stable_hash((0.0, 1))

    def test_negative_zero_one_tree_slot(self):
        from repro.ds.pset import PSet

        s = PSet.from_iter([(0.0,)]).add((-0.0,))
        assert len(s) == 1
        assert (0.0,) in s and (-0.0,) in s

    def test_infinities_still_hash(self):
        assert stable_hash(math.inf) != stable_hash(-math.inf)


class TestCrossProcessDeterminism:
    def test_hashes_survive_interpreter_restart(self):
        # durable checkpoints restore treaps in a different process;
        # priorities (= stable_hash of keys) must come out identical
        # even for strings, whose builtin hash is per-process salted
        values = [("alpha", 1), ("beta", -2.5), (b"raw", None), ("", ())]
        script = (
            "from repro.ds.hashing import stable_hash\n"
            "print([stable_hash(v) for v in {!r}])".format(values)
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        assert out == repr([stable_hash(v) for v in values])


class TestDeterminism:
    def test_repeatable(self):
        for value in (42, "hello", (1, "a", 2.5), None, True, -7.25):
            assert stable_hash(value) == stable_hash(value)

    def test_tuple_order_sensitive(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_tuple_length_sensitive(self):
        assert stable_hash((1,)) != stable_hash((1, 1))

    def test_nested_tuples(self):
        assert stable_hash(((1, 2), 3)) != stable_hash((1, (2, 3)))

    def test_combine_order_sensitive(self):
        assert combine_hashes(1, 2) != combine_hashes(2, 1)
        assert combine_hashes(1, 2, 3) != combine_hashes(1, 2)

    def test_splitmix_range(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64


@settings(max_examples=200, deadline=None)
@given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
def test_no_small_int_collisions(a, b):
    if a != b:
        assert stable_hash(a) != stable_hash(b)


@settings(max_examples=100, deadline=None)
@given(
    st.tuples(st.integers(-100, 100), st.floats(allow_nan=False, width=32)),
    st.tuples(st.integers(-100, 100), st.floats(allow_nan=False, width=32)),
)
def test_tuple_hash_injective_in_practice(a, b):
    if a != b:
        assert stable_hash(a) != stable_hash(b)
