"""Property tests for the linear-iterator contract (paper §3.2).

``next()`` visits values in ascending order; ``seek(v)`` lands at the
least upper bound of ``v``; interleavings match a reference model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds.pset import PSet

elements = st.sets(st.integers(-100, 100), min_size=0, max_size=40)
operations = st.lists(
    st.one_of(
        st.just(("next", None)),
        st.tuples(st.just("seek"), st.integers(-100, 120)),
    ),
    max_size=30,
)


class _ModelCursor:
    """Reference implementation over a plain sorted list."""

    def __init__(self, values):
        self.values = sorted(values)
        self.position = 0

    def at_end(self):
        return self.position >= len(self.values)

    def key(self):
        return self.values[self.position]

    def next(self):
        self.position += 1

    def seek(self, value):
        while self.position < len(self.values) and self.values[self.position] < value:
            self.position += 1


@settings(max_examples=150, deadline=None)
@given(elements, operations)
def test_cursor_matches_model(values, script):
    cursor = PSet.from_iter(values).cursor()
    model = _ModelCursor(values)
    assert cursor.at_end() == model.at_end()
    for op, argument in script:
        if model.at_end():
            break
        if op == "next":
            cursor.next()
            model.next()
        else:
            # the contract requires forward-only seeks
            if argument < model.key():
                continue
            cursor.seek(argument)
            model.seek(argument)
        assert cursor.at_end() == model.at_end()
        if not model.at_end():
            assert cursor.key() == model.key()


@settings(max_examples=100, deadline=None)
@given(elements)
def test_full_scan_is_sorted(values):
    cursor = PSet.from_iter(values).cursor()
    seen = []
    while not cursor.at_end():
        seen.append(cursor.key())
        cursor.next()
    assert seen == sorted(values)


@settings(max_examples=100, deadline=None)
@given(elements, st.integers(-120, 120))
def test_seek_is_least_upper_bound(values, target):
    cursor = PSet.from_iter(values).cursor()
    if cursor.at_end() or target < cursor.key():
        # forward-only: only seek from the very start when legal
        if not cursor.at_end() and target < cursor.key():
            return
    cursor.seek(target)
    candidates = [v for v in values if v >= target]
    if candidates:
        assert cursor.key() == min(candidates)
    else:
        assert cursor.at_end()
