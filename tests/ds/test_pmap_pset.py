"""Tests for the persistent map/set wrappers and structural diffing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds import PMap, PSet, diff_pmap, diff_pset
from repro.ds.treap import MISSING


class TestPMap:
    def test_empty(self):
        assert len(PMap.EMPTY) == 0
        assert not PMap.EMPTY
        assert PMap.EMPTY.get(1) is None
        with pytest.raises(KeyError):
            PMap.EMPTY[1]

    def test_set_get_remove(self):
        m = PMap().set("a", 1).set("b", 2)
        assert m["a"] == 1 and m["b"] == 2
        assert "a" in m and "z" not in m
        m2 = m.remove("a")
        assert "a" not in m2 and "a" in m

    def test_iteration_order(self):
        m = PMap.from_dict({3: "c", 1: "a", 2: "b"})
        assert list(m.keys()) == [1, 2, 3]
        assert list(m.values()) == ["a", "b", "c"]
        assert list(m.items()) == [(1, "a"), (2, "b"), (3, "c")]

    def test_items_from(self):
        m = PMap.from_dict({k: k for k in range(10)})
        assert [k for k, _ in m.items_from(7)] == [7, 8, 9]

    def test_first_last_kth(self):
        m = PMap.from_dict({5: "e", 1: "a"})
        assert m.first() == (1, "a")
        assert m.last() == (5, "e")
        assert m.kth(1) == (5, "e")

    def test_update_and_combine(self):
        a = PMap.from_dict({1: 1, 2: 2})
        b = PMap.from_dict({2: 20, 3: 30})
        assert dict(a.update(b).items()) == {1: 1, 2: 20, 3: 30}
        summed = a.update(b, combine=lambda x, y: x + y)
        assert dict(summed.items()) == {1: 1, 2: 22, 3: 30}

    def test_equality_is_structural(self):
        a = PMap.from_dict({1: "x", 2: "y"})
        b = PMap.from_items([(2, "y"), (1, "x")])
        assert a == b
        assert hash(a) == hash(b)
        assert a != b.set(1, "z")

    def test_from_sorted_items(self):
        m = PMap.from_sorted_items((i, i * i) for i in range(100))
        assert len(m) == 100
        assert m[9] == 81

    def test_intersect_subtract(self):
        a = PMap.from_dict({1: "a", 2: "a", 3: "a"})
        b = PMap.from_dict({2: "b", 3: "b", 4: "b"})
        assert dict(a.intersect(b).items()) == {2: "a", 3: "a"}
        assert dict(a.subtract(b).items()) == {1: "a"}


class TestPSet:
    def test_basics(self):
        s = PSet.from_iter([3, 1, 2, 2])
        assert len(s) == 3
        assert list(s) == [1, 2, 3]
        assert 2 in s and 9 not in s

    def test_add_remove_persistent(self):
        s = PSet.from_iter([1])
        s2 = s.add(2)
        assert list(s) == [1] and list(s2) == [1, 2]
        assert s2.remove(9) is s2

    def test_operators(self):
        a = PSet.from_iter(range(0, 10, 2))
        b = PSet.from_iter(range(0, 10, 3))
        assert set(a | b) == {0, 2, 3, 4, 6, 8, 9}
        assert set(a & b) == {0, 6}
        assert set(a - b) == {2, 4, 8}

    def test_rank_kth_iter_from(self):
        s = PSet.from_sorted(range(0, 100, 10))
        assert s.rank(35) == 4
        assert s.kth(3) == 30
        assert list(s.iter_from(55)) == [60, 70, 80, 90]
        assert s.first() == 0 and s.last() == 90

    def test_cursor(self):
        s = PSet.from_iter([2, 4, 5, 8, 10])
        cursor = s.cursor()
        cursor.seek(6)
        assert cursor.key() == 8


class TestDiffHelpers:
    def test_diff_pmap(self):
        old = PMap.from_dict({1: "a", 2: "b", 3: "c"})
        new = old.remove(1).set(2, "B").set(4, "d")
        delta = diff_pmap(old, new)
        assert delta.inserted == {4: "d"}
        assert delta.deleted == {1: "a"}
        assert delta.updated == {2: ("b", "B")}
        assert len(delta) == 3 and bool(delta)

    def test_diff_pmap_empty(self):
        m = PMap.from_dict({1: 1})
        assert not diff_pmap(m, m)

    def test_diff_pset(self):
        old = PSet.from_iter([1, 2, 3])
        new = old.remove(1).add(9)
        delta = diff_pset(old, new)
        assert delta.inserted == {9}
        assert delta.deleted == {1}


@settings(max_examples=60, deadline=None)
@given(
    st.dictionaries(st.integers(-20, 20), st.text(max_size=3), max_size=30),
    st.dictionaries(st.integers(-20, 20), st.text(max_size=3), max_size=30),
)
def test_diff_pmap_reconstructs(before, after):
    old = PMap.from_dict(before)
    new = PMap.from_dict(after)
    delta = diff_pmap(old, new)
    rebuilt = dict(before)
    for key in delta.deleted:
        del rebuilt[key]
    rebuilt.update(delta.inserted)
    for key, (_, value) in delta.updated.items():
        rebuilt[key] = value
    assert rebuilt == after
