"""Unit and property tests for the deterministic treap core."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ds import treap
from repro.ds.treap import MISSING, Cursor


def build(pairs):
    root = None
    for key, value in pairs:
        root = treap.insert(root, key, value)
    return root


class TestBasicOperations:
    def test_empty(self):
        assert treap.size(None) == 0
        assert treap.get(None, 1) is MISSING
        assert list(treap.items(None)) == []

    def test_insert_get(self):
        root = build([(2, "b"), (1, "a"), (3, "c")])
        assert treap.size(root) == 3
        assert treap.get(root, 1) == "a"
        assert treap.get(root, 2) == "b"
        assert treap.get(root, 3) == "c"
        assert treap.get(root, 4) is MISSING

    def test_insert_replaces_value(self):
        root = build([(1, "a")])
        root = treap.insert(root, 1, "z")
        assert treap.size(root) == 1
        assert treap.get(root, 1) == "z"

    def test_insert_same_value_returns_same_node(self):
        root = build([(1, "a"), (2, "b")])
        again = treap.insert(root, 1, "a")
        assert again is root

    def test_remove(self):
        root = build([(1, "a"), (2, "b"), (3, "c")])
        root = treap.remove(root, 2)
        assert treap.size(root) == 2
        assert treap.get(root, 2) is MISSING
        assert treap.get(root, 1) == "a"

    def test_remove_absent_is_noop(self):
        root = build([(1, "a")])
        assert treap.remove(root, 9) is root
        assert treap.remove(None, 9) is None

    def test_items_sorted(self):
        keys = random.Random(0).sample(range(1000), 200)
        root = build([(k, k) for k in keys])
        assert [k for k, _ in treap.items(root)] == sorted(keys)

    def test_items_from(self):
        root = build([(k, None) for k in range(0, 100, 10)])
        assert [k for k, _ in treap.items_from(root, 35)] == [40, 50, 60, 70, 80, 90]
        assert [k for k, _ in treap.items_from(root, 0)] == list(range(0, 100, 10))
        assert list(treap.items_from(root, 91)) == []

    def test_first_last_kth_rank(self):
        root = build([(k, -k) for k in (5, 1, 9, 3)])
        assert treap.first(root) == (1, -1)
        assert treap.last(root) == (9, -9)
        assert treap.kth(root, 0) == (1, -1)
        assert treap.kth(root, 2) == (5, -5)
        assert treap.rank(root, 5) == 2
        assert treap.rank(root, 6) == 3
        with pytest.raises(IndexError):
            treap.kth(root, 4)


class TestPersistence:
    def test_insert_does_not_mutate(self):
        root = build([(1, "a"), (2, "b")])
        snapshot = list(treap.items(root))
        treap.insert(root, 3, "c")
        treap.remove(root, 1)
        assert list(treap.items(root)) == snapshot

    def test_structure_sharing(self):
        root = build([(k, k) for k in range(100)])
        updated = treap.insert(root, 100, 100)
        # the new version reuses most of the old nodes
        old_nodes = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node is not None:
                old_nodes.add(id(node))
                stack.extend((node.left, node.right))
        shared = 0
        stack = [updated]
        while stack:
            node = stack.pop()
            if node is not None:
                if id(node) in old_nodes:
                    shared += 1
                stack.extend((node.left, node.right))
        assert shared > 80


class TestUniqueRepresentation:
    def test_insertion_order_invariance(self):
        pairs = [(k, str(k)) for k in range(64)]
        a = build(pairs)
        shuffled = list(pairs)
        random.Random(7).shuffle(shuffled)
        b = build(shuffled)
        assert treap.equal(a, b)
        assert treap.tree_hash(a) == treap.tree_hash(b)
        assert _structure(a) == _structure(b)

    def test_bulk_load_matches_insertion(self):
        pairs = [(k, k * 2) for k in range(257)]
        a = build(pairs)
        b = treap.from_sorted_items(pairs)
        assert _structure(a) == _structure(b)

    def test_delete_reinsert_roundtrip(self):
        pairs = [(k, k) for k in range(50)]
        a = build(pairs)
        b = treap.remove(a, 25)
        b = treap.insert(b, 25, 25)
        assert treap.equal(a, b)
        assert _structure(a) == _structure(b)

    def test_from_sorted_rejects_unsorted(self):
        with pytest.raises(ValueError):
            treap.from_sorted_items([(2, None), (1, None)])


def _structure(node):
    if node is None:
        return None
    return (node.key, node.value, _structure(node.left), _structure(node.right))


class TestSetAlgebra:
    def test_union_values_right_biased(self):
        a = build([(1, "a1"), (2, "a2")])
        b = build([(2, "b2"), (3, "b3")])
        union = treap.union(a, b)
        assert dict(treap.items(union)) == {1: "a1", 2: "b2", 3: "b3"}

    def test_union_combine(self):
        a = build([(1, 10), (2, 20)])
        b = build([(2, 2), (3, 3)])
        union = treap.union(a, b, combine=lambda x, y: x + y)
        assert dict(treap.items(union)) == {1: 10, 2: 22, 3: 3}

    def test_intersection_difference(self):
        a = build([(k, "a") for k in range(0, 20, 2)])
        b = build([(k, "b") for k in range(0, 20, 3)])
        inter = treap.intersection(a, b)
        assert [k for k, _ in treap.items(inter)] == [0, 6, 12, 18]
        assert all(v == "a" for _, v in treap.items(inter))
        diff = treap.difference(a, b)
        assert [k for k, _ in treap.items(diff)] == [2, 4, 8, 10, 14, 16]

    def test_algebra_with_empty(self):
        a = build([(1, None)])
        assert treap.union(a, None) is a
        assert treap.union(None, a) is a
        assert treap.intersection(a, None) is None
        assert treap.difference(a, None) is a
        assert treap.difference(None, a) is None


class TestCursor:
    def test_full_scan(self):
        root = build([(k, None) for k in range(10)])
        cursor = Cursor(root)
        seen = []
        while not cursor.at_end():
            seen.append(cursor.key())
            cursor.next()
        assert seen == list(range(10))

    def test_seek_landing(self):
        root = build([(k, None) for k in (0, 1, 3, 4, 5, 6, 7, 8, 9, 11)])
        cursor = Cursor(root)
        cursor.seek(2)
        assert cursor.key() == 3
        cursor.seek(8)
        assert cursor.key() == 8
        cursor.seek(10)
        assert cursor.key() == 11
        cursor.seek(12)
        assert cursor.at_end()

    def test_empty_cursor(self):
        cursor = Cursor(None)
        assert cursor.at_end()


class TestDiff:
    def test_diff_basics(self):
        a = build([(1, "x"), (2, "y"), (3, "z")])
        b = treap.insert(treap.remove(a, 1), 4, "w")
        b = treap.insert(b, 2, "Y")
        changes = {key: (old, new) for key, old, new in treap.diff(a, b)}
        assert changes == {
            1: ("x", MISSING),
            2: ("y", "Y"),
            4: (MISSING, "w"),
        }

    def test_diff_identical_is_empty(self):
        a = build([(k, k) for k in range(50)])
        assert list(treap.diff(a, a)) == []
        b = build([(k, k) for k in range(50)])
        assert list(treap.diff(a, b)) == []

    def test_diff_from_empty(self):
        a = build([(1, "a")])
        assert list(treap.diff(None, a)) == [(1, MISSING, "a")]
        assert list(treap.diff(a, None)) == [(1, "a", MISSING)]


# -- property-based tests ---------------------------------------------------

keys = st.integers(min_value=-50, max_value=50)
ops = st.lists(
    st.tuples(st.sampled_from(["insert", "remove"]), keys, st.integers()),
    max_size=120,
)


@settings(max_examples=120, deadline=None)
@given(ops)
def test_matches_dict_semantics(operations):
    root = None
    reference = {}
    for op, key, value in operations:
        if op == "insert":
            root = treap.insert(root, key, value)
            reference[key] = value
        else:
            root = treap.remove(root, key)
            reference.pop(key, None)
        assert treap.size(root) == len(reference)
    assert dict(treap.items(root)) == reference


@settings(max_examples=80, deadline=None)
@given(st.lists(keys, max_size=60), st.lists(keys, max_size=60))
def test_set_algebra_laws(left, right):
    a = build([(k, None) for k in set(left)])
    b = build([(k, None) for k in set(right)])
    union_keys = {k for k, _ in treap.items(treap.union(a, b))}
    inter_keys = {k for k, _ in treap.items(treap.intersection(a, b))}
    diff_keys = {k for k, _ in treap.items(treap.difference(a, b))}
    assert union_keys == set(left) | set(right)
    assert inter_keys == set(left) & set(right)
    assert diff_keys == set(left) - set(right)
    # canonical form: results equal freshly built treaps
    assert treap.equal(
        treap.union(a, b), build([(k, None) for k in union_keys])
    )


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(keys, st.integers()), max_size=50), ops)
def test_diff_patch_roundtrip(initial, operations):
    a = build(dict(initial).items())
    b = a
    for op, key, value in operations:
        b = treap.insert(b, key, value) if op == "insert" else treap.remove(b, key)
    patched = a
    for key, old, new in treap.diff(a, b):
        if new is MISSING:
            patched = treap.remove(patched, key)
        else:
            patched = treap.insert(patched, key, new)
    assert treap.equal(patched, b)
    assert dict(treap.items(patched)) == dict(treap.items(b))
