"""Tests for the version DAG and O(1) branching."""

import time

import pytest

from repro.ds import PMap, Version, VersionGraph


class TestVersion:
    def test_branch_shares_state(self):
        state = PMap.from_dict({i: i for i in range(1000)})
        v1 = Version(state)
        v2 = v1.branch()
        assert v2.state is v1.state
        assert v2.parents == (v1,)

    def test_commit_creates_child(self):
        v1 = Version(PMap.from_dict({1: "a"}))
        v2 = v1.commit(v1.state.set(2, "b"))
        assert v2.parents == (v1,)
        assert dict(v1.state.items()) == {1: "a"}
        assert dict(v2.state.items()) == {1: "a", 2: "b"}

    def test_merge_has_two_parents(self):
        v1 = Version(PMap.EMPTY)
        a = v1.commit(PMap.from_dict({1: 1}))
        b = v1.commit(PMap.from_dict({2: 2}))
        merged = a.merge(b, a.state.update(b.state))
        assert set(merged.parents) == {a, b}
        assert dict(merged.state.items()) == {1: 1, 2: 2}

    def test_ancestors_dag(self):
        v1 = Version(PMap.EMPTY)
        a = v1.commit(PMap.EMPTY)
        b = v1.commit(PMap.EMPTY)
        merged = a.merge(b, PMap.EMPTY)
        ids = {v.id for v in merged.ancestors()}
        assert ids == {v1.id, a.id, b.id, merged.id}

    def test_branching_is_fast(self):
        # the paper measures 80k branches/core/sec for a C++ engine;
        # the requirement here is only that branching does not scale
        # with the state size (it is O(1) pointer copying)
        state = PMap.from_sorted_items((i, i) for i in range(100000))
        version = Version(state)
        started = time.perf_counter()
        for _ in range(1000):
            version.branch()
        per_branch = (time.perf_counter() - started) / 1000
        assert per_branch < 1e-4  # far below any copy of 100k entries


class TestVersionGraph:
    def test_initial_head(self):
        graph = VersionGraph("state0")
        assert graph.head().state == "state0"
        assert graph.branches() == ["main"]

    def test_branch_advance_isolation(self):
        graph = VersionGraph(PMap.from_dict({1: "a"}))
        graph.branch("main", "feature")
        graph.advance("feature", graph.head("feature").state.set(2, "b"))
        assert dict(graph.head("main").state.items()) == {1: "a"}
        assert dict(graph.head("feature").state.items()) == {1: "a", 2: "b"}

    def test_duplicate_branch_rejected(self):
        graph = VersionGraph(None)
        graph.branch("main", "x")
        with pytest.raises(ValueError):
            graph.branch("main", "x")

    def test_delete_branch(self):
        graph = VersionGraph(None)
        graph.branch("main", "x")
        graph.delete_branch("x")
        assert "x" not in graph
        with pytest.raises(ValueError):
            graph.delete_branch("main")

    def test_time_travel(self):
        graph = VersionGraph(PMap.from_dict({1: "v1"}))
        old_head = graph.head("main")
        graph.advance("main", PMap.from_dict({1: "v2"}))
        graph.branch_version(old_head, "past")
        assert dict(graph.head("past").state.items()) == {1: "v1"}

    def test_move_head(self):
        graph = VersionGraph("a")
        v = graph.head("main")
        graph.advance("main", "b")
        graph.move_head("main", v)
        assert graph.head("main").state == "a"
