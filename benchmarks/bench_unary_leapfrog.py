"""E1 — unary leapfrog join throughput (paper §3.2, Figure 3 machinery).

Measures the k-way sorted-set intersection at the heart of LFTJ: cost
scales with the smallest set and the skip distances, not the total
input size (the amortized O(1 + log(N/m)) contract).
"""

import pytest

from repro.ds.pset import PSet
from repro.engine.leapfrog import LeapfrogJoin
from conftest import pedantic, sizes


def build_sets(n, k, stride):
    """k sets of n elements; every stride-th element is shared."""
    shared = set(range(0, n * stride, stride))
    sets = []
    for index in range(k):
        extra = {stride * j + index + 1 for j in range(n)}
        sets.append(PSet.from_iter(shared | extra))
    return sets


def run_intersection(sets):
    join = LeapfrogJoin([s.cursor() for s in sets])
    count = 0
    while not join.at_end():
        count += 1
        join.next()
    return count


@pytest.mark.parametrize("k", [2, 3, 5])
def test_unary_leapfrog_width(benchmark, k):
    sets = build_sets(sizes(3000, 300), k, stride=7)
    count = pedantic(benchmark, run_intersection, sets)
    benchmark.extra_info.update(k=k, matches=count)


@pytest.mark.parametrize("stride", [2, 16, 128])
def test_unary_leapfrog_selectivity(benchmark, stride):
    """Sparser intersections leapfrog further per step: work tracks the
    output + skip count, not the input size."""
    sets = build_sets(sizes(2000, 300), 3, stride)
    count = pedantic(benchmark, run_intersection, sets)
    benchmark.extra_info.update(stride=stride, matches=count)


def test_unary_leapfrog_skewed_sizes(benchmark):
    """A tiny set intersected with a huge one: cost follows the tiny
    side (each probe is one O(log N) seek)."""
    small = PSet.from_sorted(range(0, 1000, 10))
    big = PSet.from_sorted(range(sizes(1000000, 20000)))
    count = pedantic(benchmark, run_intersection, [small, big])
    assert count == 100
