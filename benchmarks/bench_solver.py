"""E8 — prescriptive analytics: grounding + solving + incremental
re-solve (paper §2.3.1).

"The grounding logic incrementally maintains the input to the solver,
making it possible for the system to incrementally (re)solve only those
parts of the problem that are impacted by changes to the input."
"""

import time

import pytest

from repro import Workspace
from repro.solver import SolveSession
from conftest import pedantic, sizes

MODEL = """
Product(p) -> .
spacePerProd[p] = v -> Product(p), float(v).
profitPerProd[p] = v -> Product(p), float(v).
maxShelf[] = v -> float(v).
Stock[p] = v -> Product(p), float(v).
totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x, spacePerProd[p] = y,
    z = x * y.
totalProfit[] = u <- agg<<u = sum(z)>> Stock[p] = x, profitPerProd[p] = y,
    z = x * y.
Product(p) -> Stock[p] >= 0.
Product(p) -> Stock[p] <= 50.
totalShelf[] = u, maxShelf[] = v -> u <= v.
lang:solve:variable(`Stock).
lang:solve:max(`totalProfit).
"""


def build(n_products):
    ws = Workspace()
    ws.addblock(MODEL, name="model")
    names = ["p{:03d}".format(i) for i in range(n_products)]
    ws.load("Product", [(n,) for n in names])
    ws.load("spacePerProd", [(n, 1.0 + (i % 7) * 0.5)
                             for i, n in enumerate(names)])
    ws.load("profitPerProd", [(n, 2.0 + (i % 11) * 0.7)
                              for i, n in enumerate(names)])
    ws.load("maxShelf", [(float(10 * n_products),)])
    return ws


@pytest.mark.parametrize("n_products", sizes([10, 30, 60], [5, 10]))
def test_ground_and_solve(benchmark, n_products):
    ws = build(n_products)

    def solve():
        session = SolveSession(ws)
        result, _ = session.solve(write_back=False)
        assert result.ok
        return result

    result = pedantic(benchmark, solve, rounds=2)
    benchmark.extra_info.update(n_products=n_products,
                                objective=result.objective)


def test_incremental_resolve_shape(benchmark):
    """Re-solving after one data edit reuses cached ground rows for
    untouched constraints."""
    ws = build(sizes(40, 10))
    session = SolveSession(ws)
    session.solve(write_back=False)
    started = time.perf_counter()
    session2 = SolveSession(ws)
    session2.solve(write_back=False)
    cold = time.perf_counter() - started
    ws.load("maxShelf", [(500.0,)], remove=list(ws.relation("maxShelf")))
    started = time.perf_counter()
    result, _ = session.solve(changed_preds={"maxShelf", "totalShelf"},
                              write_back=False)
    warm = time.perf_counter() - started
    assert result.ok
    print("\nsolver: cold ground+solve {:.3f}s, incremental re-solve "
          "{:.3f}s".format(cold, warm))
    benchmark.extra_info.update(cold=cold, warm=warm)

    def resolve():
        return session.solve(changed_preds={"maxShelf"}, write_back=False)

    pedantic(benchmark, resolve, rounds=3)


def test_write_back_roundtrip(benchmark):
    """Solve + populate the variable predicate through the full
    constraint-checked transaction path."""
    ws = build(sizes(20, 8))
    session = SolveSession(ws)

    def solve_and_write():
        result, _ = session.solve()
        assert result.ok

    pedantic(benchmark, solve_and_write, rounds=2)
