"""Horizontally sharded workspaces: aggregate commit+query scaling of a
3-shard fleet over a single shard on a co-partitioned workload.

One artifact, ``BENCH_shard.json``:

* **shard scaling** — the workload is literal-key order transactions
  (one write + one keyed lookup per op), each co-partitioned on the
  order key, so the coordinator routes every op to exactly one shard.
  The baseline holds the whole EDB on one shard; the fleet hash-splits
  it across three.  On a one-core box three in-process shards just
  timeslice the GIL, so the fleet estimate is the *isolated sum* (the
  bench_fleet convention): each shard's op rate is measured by driving
  only the keys it owns — through the coordinator, so routing and
  classification costs are charged — and the rates are added, which is
  what N cores give an N-shard fleet.  Each shard also carries only
  ~1/N of the rows, so per-op work drops with fleet size exactly as
  §3.2's domain partitioning promises.  On a >= 4-core box the real
  concurrent aggregate is measured too (three threads, each its own
  coordinator over the shared shard services).  The gate asserts the
  3-shard fleet sustains >= 2x the single-shard baseline.
"""

import os
import threading
import time

import pytest

from repro.shard import ShardedWorkspace
from conftest import SMOKE, pedantic, sizes

N_SHARDS = 3
N_ORDERS = sizes(240, 24)
ITEMS_PER_ORDER = sizes(6, 2)
OPS = sizes(120, 12)
SCALING_GATE = 2.0

SCHEMA = (
    "order(o, c) -> int(o), string(c).\n"
    "lineitem(o, l, q) -> int(o), int(l), int(q).\n"
)
PARTITION = {"order": 0, "lineitem": 0}


def build(n_shards):
    fleet = ShardedWorkspace.local(n_shards, dict(PARTITION))
    fleet.addblock(SCHEMA, name="schema")
    fleet.load("order", [
        (o, "c{}".format(o % 7)) for o in range(N_ORDERS)])
    fleet.load("lineitem", [
        (o, o * ITEMS_PER_ORDER + j, (o + j) % 17)
        for o in range(N_ORDERS) for j in range(ITEMS_PER_ORDER)])
    return fleet


def keys_of_shard(fleet, index):
    """The order keys the fleet places on shard ``index``."""
    return [o for o in range(N_ORDERS)
            if fleet.shard_map.shard_of_key(o) == index]


def drive_ops(fleet, keys, ops):
    """``ops`` co-partitioned transactions (1 literal-key write + 1
    keyed lookup each) through the coordinator; returns ops/s."""
    started = time.perf_counter()
    for n in range(ops):
        key = keys[n % len(keys)]
        fleet.exec('+lineitem({0}, {1}, 1).'.format(key, 100000 + n))
        fleet.query(
            "q(l, v) <- lineitem({}, l, v).".format(key))
    elapsed = time.perf_counter() - started
    return ops / elapsed if elapsed else 0.0


def run_shard_scaling():
    baseline_fleet = build(1)
    try:
        # warm, then measure: every key "owns" shard 0 in a 1-shard map
        drive_ops(baseline_fleet, list(range(N_ORDERS)), 2)
        baseline = drive_ops(baseline_fleet, list(range(N_ORDERS)), OPS)
    finally:
        baseline_fleet.close()

    fleet = build(N_SHARDS)
    try:
        per_shard = []
        for index in range(N_SHARDS):
            keys = keys_of_shard(fleet, index)
            drive_ops(fleet, keys, 2)
            per_shard.append(drive_ops(fleet, keys, OPS))
        aggregate = sum(per_shard)
        outcome = {
            "baseline_ops": baseline,
            "per_shard_ops": per_shard,
            "aggregate_ops": aggregate,
            "scaling": aggregate / baseline if baseline else 0.0,
            "estimator": "isolated-sum",
        }
        if (os.cpu_count() or 1) >= 4:
            # enough cores to timeslice honestly: three coordinators
            # (one per thread, each one-thread-at-a-time by contract)
            # over the SAME shard services, each thread driving the
            # keys one shard owns
            backends = [fleet._pool.backend(i) for i in range(N_SHARDS)]
            counts = [0] * N_SHARDS
            stop = threading.Event()

            def worker(index):
                side = ShardedWorkspace(
                    backends, fleet.shard_map, owns_backends=False)
                side._blocks = dict(fleet._blocks)
                side._analysis = fleet._analysis
                keys = keys_of_shard(fleet, index)
                n = 0
                try:
                    while not stop.is_set():
                        key = keys[n % len(keys)]
                        side.exec('+lineitem({0}, {1}, 1).'.format(
                            key, 200000 + index * 100000 + n))
                        side.query(
                            "q(l, v) <- lineitem({}, l, v).".format(key))
                        counts[index] += 1
                        n += 1
                finally:
                    side.close()

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(N_SHARDS)]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            time.sleep(0.25 if SMOKE else 1.5)
            stop.set()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            outcome["concurrent_ops"] = sum(counts) / elapsed
        return outcome
    finally:
        fleet.close()


def test_shard_commit_query_scaling(benchmark):
    outcome = pedantic(benchmark, run_shard_scaling, rounds=1)
    benchmark.extra_info.update(
        shards=N_SHARDS,
        orders=N_ORDERS,
        ops=OPS,
        estimator=outcome["estimator"],
        baseline_ops=round(outcome["baseline_ops"], 1),
        per_shard_ops=[round(q, 1) for q in outcome["per_shard_ops"]],
        aggregate_ops=round(outcome["aggregate_ops"], 1),
        scaling_vs_single=round(outcome["scaling"], 3),
        concurrent_ops=round(outcome.get("concurrent_ops", 0.0), 1),
        scaling_gate=SCALING_GATE,
    )
    # the tentpole's promise: three shards beat one on a co-partitioned
    # commit+query workload
    assert outcome["scaling"] >= SCALING_GATE, outcome
