"""Shared helpers for the benchmark suite.

Each module regenerates one paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md).  Benchmarks assert the *shape* of the paper's results
(who wins, scaling exponents, crossovers), not absolute numbers: the
substrate here is a pure-Python engine, not the authors' C++ testbed.

Every run additionally emits one machine-readable result file per
benchmark module — ``benchmarks/results/BENCH_<name>.json`` holding the
workload parameters, wall times, and engine counters — so the perf
trajectory can be tracked across PRs.

``BENCH_SMOKE=1`` shrinks every workload to tiny sizes (CI smoke mode:
catch crashes on the perf path, don't measure).
"""

import json
import os
import platform
from pathlib import Path

from repro import obs
from repro import stats as engine_stats

#: Smoke mode: tiny inputs, one round — crash detection, not measurement.
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: result-file aliases: module stem (minus ``bench_``) -> BENCH_<name>
RESULT_ALIASES = {"service_throughput": "service", "net_throughput": "net"}


def sizes(full, smoke):
    """Pick the workload size list for the current mode."""
    return smoke if SMOKE else full


def pedantic(benchmark, fn, *args, rounds=3, **kwargs):
    """Run a benchmark with a fixed small round count (the workloads
    are big enough that calibration noise is irrelevant)."""
    if SMOKE:
        rounds = 1
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=rounds,
                              iterations=1, warmup_rounds=0)


def _numpy_version():
    try:
        import numpy
    except ImportError:
        return None
    return numpy.__version__


def _engine_backend():
    from repro.engine.columnar import resolve_backend

    return resolve_backend()


def _json_safe(value):
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _bench_entry(bench):
    stats = getattr(bench, "stats", None)
    timing = {}
    if stats is not None:
        for field in ("min", "max", "mean", "stddev", "rounds"):
            timing[field] = _json_safe(getattr(stats, field, None))
    return {
        "test": bench.name,
        "params": _json_safe(getattr(bench, "params", None) or {}),
        "wall_time_s": timing,
        "extra_info": _json_safe(dict(getattr(bench, "extra_info", {}) or {})),
    }


def pytest_sessionstart(session):
    engine_stats.reset()
    obs.reset_span_totals()


def pytest_sessionfinish(session, exitstatus):
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    by_module = {}
    for bench in bench_session.benchmarks:
        module = Path(bench.fullname.split("::")[0]).stem
        by_module.setdefault(module, []).append(_bench_entry(bench))
    RESULTS_DIR.mkdir(exist_ok=True)
    counters = engine_stats.snapshot()
    histograms = engine_stats.histograms()
    trace = obs.span_totals()
    for module, entries in sorted(by_module.items()):
        name = module[len("bench_"):] if module.startswith("bench_") else module
        name = RESULT_ALIASES.get(name, name)
        payload = {
            "benchmark": module,
            "smoke": SMOKE,
            "python": platform.python_version(),
            "numpy": _numpy_version(),
            "engine_backend": _engine_backend(),
            "cpu_count": os.cpu_count(),
            "engine_stats": counters,
            "histograms": histograms,
            "trace": trace,
            "results": entries,
        }
        path = RESULTS_DIR / "BENCH_{}.json".format(name)
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
