"""Shared helpers for the benchmark suite.

Each module regenerates one paper artifact (see DESIGN.md §4 and
EXPERIMENTS.md).  Benchmarks assert the *shape* of the paper's results
(who wins, scaling exponents, crossovers), not absolute numbers: the
substrate here is a pure-Python engine, not the authors' C++ testbed.
"""

import pytest


def pedantic(benchmark, fn, *args, rounds=3, **kwargs):
    """Run a benchmark with a fixed small round count (the workloads
    are big enough that calibration noise is irrelevant)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=rounds,
                              iterations=1, warmup_rounds=0)
