"""Service throughput: committed transactions/sec vs concurrent writers.

The concurrent transaction service schedules writers on O(1) branch
snapshots and merge-commits them in groups (one IVM pass + one
constraint check per batch).  Per-commit costs are dominated by the
fixed part — constraint checking walks the constrained relation — so
group commit should *increase* committed-txn throughput with writer
count even under the GIL.  The gate below asserts the acceptance
criterion: >= 2x throughput at 8 low-conflict writers vs. 1 writer,
on an identical dataset.

Emits ``BENCH_service.json`` (see conftest's module alias) with
commits/sec, batch counts, and abort/retry rates per writer count.
"""

import threading
import time

import pytest

from repro.service import ServiceConfig, TransactionService
from conftest import SMOKE, pedantic, sizes

TOTAL_TXNS = sizes(240, 16)
ITEMS = sizes(32, 8)
WRITER_COUNTS = [1, 2, 8]

INVENTORY = ("inventory[s] = v -> string(s), int(v).\n"
             "inventory[s] = v -> v >= 0.\n")

#: best observed run per writer count, for the scaling gate below
BEST = {}


def run_soak(writers):
    """Drive ``TOTAL_TXNS`` low-conflict decrements through ``writers``
    concurrent sessions over one fixed-size inventory."""
    txns = TOTAL_TXNS // writers
    service = TransactionService(
        config=ServiceConfig(max_pending=writers * 2))
    with service:
        service.addblock(INVENTORY, name="schema")
        pool = ["item-{}".format(i) for i in range(ITEMS)]
        service.load("inventory", [(item, txns + 1) for item in pool])
        errors = []

        def writer(index):
            session = service.session(name="writer-{}".format(index))
            owned = pool[index::writers]
            for k in range(txns):
                item = owned[k % len(owned)]
                try:
                    session.exec(
                        '^inventory["{0}"] = x <- '
                        'inventory@start["{0}"] = y, x = y - 1.'.format(item))
                except Exception as exc:  # pragma: no cover - gate fails below
                    errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(writers)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stats = service.service_stats()

    commits = stats.get("service.commits", 0)
    outcome = {
        "writers": writers,
        "elapsed_s": elapsed,
        "commits": commits,
        "commits_per_s": commits / elapsed if elapsed else 0.0,
        "batches": stats.get("service.batches", 0),
        "retries": stats.get("service.retries", 0),
        "aborts": stats.get("service.aborts", 0),
        "repair_merges": stats.get("service.repair_merges", 0),
        "errors": len(errors),
    }
    best = BEST.get(writers)
    if best is None or outcome["commits_per_s"] > best["commits_per_s"]:
        BEST[writers] = outcome
    return outcome


@pytest.mark.parametrize("writers", WRITER_COUNTS)
def test_service_throughput(benchmark, writers):
    outcome = pedantic(benchmark, run_soak, writers, rounds=2)
    assert outcome["errors"] == 0
    assert outcome["commits"] == (TOTAL_TXNS // writers) * writers
    txns = outcome["commits"]
    benchmark.extra_info.update(
        writers=writers,
        commits_per_s=round(outcome["commits_per_s"], 1),
        batches=outcome["batches"],
        mean_batch_size=round(txns / outcome["batches"], 2)
        if outcome["batches"] else 0,
        retry_rate=round(outcome["retries"] / txns, 4),
        abort_rate=round(outcome["aborts"] / txns, 4),
        repair_merges=outcome["repair_merges"],
    )


@pytest.mark.skipif(SMOKE, reason="smoke mode checks crashes, not scaling")
def test_group_commit_scaling_gate():
    """Acceptance gate: 8 low-conflict writers commit >= 2x the
    transactions/sec of a single writer on the same dataset."""
    assert 1 in BEST and 8 in BEST, "throughput benchmarks did not run"
    single = BEST[1]["commits_per_s"]
    eight = BEST[8]["commits_per_s"]
    ratio = eight / single if single else 0.0
    print("\nservice throughput: 1 writer {:.1f}/s, 8 writers {:.1f}/s "
          "({:.2f}x)".format(single, eight, ratio))
    assert ratio >= 2.0, (
        "group commit failed to scale: {:.1f} -> {:.1f} commits/s "
        "({:.2f}x < 2x)".format(single, eight, ratio))
