"""Network overhead: TCP sessions vs in-process sessions, and replica
cold vs delta sync.

Three artifacts, all in ``BENCH_net.json``:

* **commit throughput** — the inventory soak driven through in-process
  sessions and through ``repro.net`` TCP sessions against the same
  service; ``extra_info`` reports commits/s for both and the TCP/local
  ratio (the wire tax on the write path).
* **query latency** — p50/p99 of a point query over TCP vs in-process
  (per-request framing + loopback round trip vs a function call).
* **replica sync** — records fetched by a cold sync of an N-tuple
  workspace vs by a delta sync after a one-tuple change; structural
  sharing should make the delta O(log n), and the gate below asserts
  a >= 10x gap (cold moves the tree, delta moves a spine).
"""

import os
import threading
import time

import pytest

from repro.net import NetSession, Replica
from repro.service import ServiceConfig, TransactionService
from repro import stats as engine_stats
from conftest import SMOKE, pedantic, sizes

TOTAL_TXNS = sizes(160, 16)
WRITERS = 4
ITEMS = sizes(32, 8)
QUERY_REPS = sizes(300, 20)
REPLICA_N = sizes(2000, 64)

INVENTORY = ("inventory[s] = v -> string(s), int(v).\n"
             "inventory[s] = v -> v >= 0.\n")


def _drive_writers(make_session, pool, txns):
    errors = []

    def writer(index):
        session = make_session(index)
        owned = pool[index::WRITERS]
        for k in range(txns):
            item = owned[k % len(owned)]
            try:
                session.exec(
                    '^inventory["{0}"] = x <- '
                    'inventory@start["{0}"] = y, x = y - 1.'.format(item))
            except Exception as exc:  # pragma: no cover - asserted below
                errors.append(exc)
        session.close()

    threads = [threading.Thread(target=writer, args=(w,))
               for w in range(WRITERS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - started, errors


def run_commits(transport):
    """The soak through one transport; returns commits/s."""
    txns = TOTAL_TXNS // WRITERS
    service = TransactionService(
        config=ServiceConfig(max_pending=WRITERS * 2))
    server = service.serve() if transport == "tcp" else None
    try:
        service.addblock(INVENTORY, name="schema")
        pool = ["item-{}".format(i) for i in range(ITEMS)]
        service.load("inventory", [(item, txns + 1) for item in pool])
        if transport == "tcp":
            make_session = lambda i: NetSession(
                server.host, server.port, name="bench-writer-{}".format(i))
        else:
            make_session = lambda i: service.session(
                name="bench-writer-{}".format(i))
        elapsed, errors = _drive_writers(make_session, pool, txns)
        commits = txns * WRITERS
        return {
            "transport": transport,
            "elapsed_s": elapsed,
            "commits": commits,
            "commits_per_s": commits / elapsed if elapsed else 0.0,
            "errors": len(errors),
        }
    finally:
        if server is not None:
            server.stop()
        service.close()


COMMITS = {}


@pytest.mark.parametrize("transport", ["local", "tcp"])
def test_commit_throughput(benchmark, transport):
    outcome = pedantic(benchmark, run_commits, transport, rounds=2)
    assert outcome["errors"] == 0
    COMMITS[transport] = outcome
    extra = {
        "transport": transport,
        "commits_per_s": round(outcome["commits_per_s"], 1),
    }
    if "local" in COMMITS and "tcp" in COMMITS:
        local = COMMITS["local"]["commits_per_s"]
        tcp = COMMITS["tcp"]["commits_per_s"]
        extra["tcp_vs_local"] = round(tcp / local, 3) if local else 0.0
    benchmark.extra_info.update(**extra)


def run_query_latency(transport):
    """Point-query latencies; returns (p50, p99) seconds."""
    service = TransactionService()
    server = service.serve() if transport == "tcp" else None
    try:
        service.addblock("p(x) -> int(x).", name="b1")
        service.load("p", [(i,) for i in range(100)])
        if transport == "tcp":
            session = NetSession(server.host, server.port)
        else:
            session = service.session()
        latencies = []
        for _ in range(QUERY_REPS):
            started = time.perf_counter()
            rows = session.query("_(x) <- p(x), x = 7.")
            latencies.append(time.perf_counter() - started)
            assert rows == [(7,)]
        session.close()
        latencies.sort()
        return {
            "transport": transport,
            "p50_us": latencies[len(latencies) // 2] * 1e6,
            "p99_us": latencies[int(len(latencies) * 0.99)] * 1e6,
        }
    finally:
        if server is not None:
            server.stop()
        service.close()


@pytest.mark.parametrize("transport", ["local", "tcp"])
def test_query_latency(benchmark, transport):
    outcome = pedantic(benchmark, run_query_latency, transport, rounds=2)
    benchmark.extra_info.update(
        transport=transport,
        query_p50_us=round(outcome["p50_us"], 1),
        query_p99_us=round(outcome["p99_us"], 1),
    )


def run_replica_sync(tmp_base):
    """Cold-sync an N-tuple workspace, then delta-sync a one-tuple
    change; returns both fetched-record counts."""
    leader_dir = os.path.join(tmp_base, "leader")
    replica_dir = os.path.join(tmp_base, "replica")
    service = TransactionService(
        config=ServiceConfig(checkpoint_path=leader_dir))
    server = service.serve()
    try:
        service.addblock("item[k] = v -> int(k), int(v).", name="items")
        service.load("item", [(i, i) for i in range(REPLICA_N)])
        service.checkpoint()
        replica = Replica(server.host, server.port, replica_dir)
        cold_sink = {}
        with engine_stats.scope(cold_sink):
            replica.sync()
        service.exec("^item[3] = 999999.")
        service.checkpoint()
        delta_sink = {}
        with engine_stats.scope(delta_sink):
            replica.sync()
        assert replica.query("_(v) <- item[3] = v.") == [(999999,)]
        replica.close()
        return {
            "n": REPLICA_N,
            "cold_records": cold_sink.get("pager.sync.fetched_records", 0),
            "delta_records": delta_sink.get("pager.sync.fetched_records", 0),
        }
    finally:
        server.stop()
        service.close()


def test_replica_sync_records(benchmark, tmp_path_factory):
    def run():
        return run_replica_sync(str(tmp_path_factory.mktemp("net-bench")))

    outcome = pedantic(benchmark, run, rounds=1)
    benchmark.extra_info.update(
        replica_n=outcome["n"],
        cold_sync_records=outcome["cold_records"],
        delta_sync_records=outcome["delta_records"],
    )
    assert outcome["delta_records"] > 0
    if not SMOKE:
        # the Merkle walk's point: a one-tuple change ships a spine,
        # not a tree
        assert outcome["delta_records"] * 10 <= outcome["cold_records"], outcome
