"""E4 — branch throughput (paper §1.1 T4).

Paper claim: "Each transaction starts by branching a version of the
database in O(1) time (a few nanoseconds — we have measured 80,000
branches per core per second)."  That number is for a C++ engine;
the property reproduced here is that branching cost is O(1) —
independent of workspace size — and comfortably above the paper's
throughput figure even in Python.
"""

import time

import pytest

from repro.datasets.retail import load_retail
from repro.ds import PMap, Version
from repro import Workspace
from conftest import SMOKE, pedantic, sizes


def branch_many(version, count):
    for _ in range(count):
        version.branch()


@pytest.mark.parametrize("state_size", sizes([100, 10000, 1000000], [100, 10000]))
def test_branch_cost_independent_of_size(benchmark, state_size):
    state = PMap.from_sorted_items((i, i) for i in range(state_size))
    version = Version(state)
    pedantic(benchmark, branch_many, version, 1000, rounds=5)
    benchmark.extra_info["state_size"] = state_size


@pytest.mark.skipif(SMOKE, reason="smoke mode checks crashes, not throughput")
def test_branch_throughput_vs_paper(benchmark):
    """Measure branches/second and compare against the paper's 80k."""
    state = PMap.from_sorted_items((i, i) for i in range(100000))
    version = Version(state)
    n = 20000
    started = time.perf_counter()
    branch_many(version, n)
    elapsed = time.perf_counter() - started
    throughput = n / elapsed
    print("\nbranches/sec: {:,.0f} (paper's C++ figure: 80,000)".format(
        throughput))
    assert throughput > 80000, "O(1) branching should beat 80k/s even in Python"
    benchmark.extra_info["branches_per_second"] = throughput
    pedantic(benchmark, branch_many, version, 1000, rounds=3)


def test_full_workspace_branch(benchmark):
    """Branching an entire loaded workspace (logic + data + views)."""
    ws = Workspace()
    load_retail(ws, n_skus=8, n_stores=2, n_weeks=sizes(26, 6), seed=0)
    ws.addblock(
        "rev[s] = u <- agg<<u = sum(z)>> sales[s, t, w] = n, price[s] = p, "
        "z = n * p.",
        name="views",
    )
    counter = [0]

    def make_branch():
        name = "b{}".format(counter[0])
        counter[0] += 1
        ws.create_branch(name)
        ws.delete_branch(name)

    pedantic(benchmark, make_branch, rounds=200)
