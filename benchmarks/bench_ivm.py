"""E5 — incremental maintenance cost vs change size (paper §3.2, T3).

Paper claims: maintenance work is "proportional to the trace edit
distance between the before and after computations", improving
"significantly on the classical count and DRed algorithms".

Measured here on the triangle view over a power-law graph:

* IVM cost scales with the delta size, not the database size
  (single-tuple maintenance is orders of magnitude below recompute);
* the sensitivity short-circuit makes irrelevant updates nearly free;
* the counting engine beats whole-program DRed, which beats naive
  recomputation.
"""

import time

import pytest

from repro.datasets.graphs import powerlaw_graph
from repro.engine.dred import DRedEngine
from repro.engine.evaluator import Evaluator, RuleSet
from repro.engine.ir import PredAtom, Var
from repro.engine.ivm import IncrementalEngine
from repro.engine.rules import AggSpec, Rule
from repro.storage.relation import Delta, Relation
from conftest import SMOKE, pedantic, sizes

RULES = [
    Rule("tri", [Var("a"), Var("b"), Var("c")],
         [PredAtom("E", [Var("a"), Var("b")]),
          PredAtom("E", [Var("b"), Var("c")]),
          PredAtom("E", [Var("a"), Var("c")])]),
    Rule("outdeg", [Var("x"), Var("u")],
         [PredAtom("E", [Var("x"), Var("y")])],
         agg=AggSpec("count", "u", "y"), n_keys=1),
]

EDGES = powerlaw_graph(sizes(600, 80), edges_per_node=5, seed=3)
BASE = Relation.from_iter(2, EDGES)
RULESET = RuleSet(RULES)


def fresh_materialization():
    engine = IncrementalEngine(RULESET)
    return engine, engine.initialize({"E": BASE})


_shared = fresh_materialization()


def delta_of(k):
    removed = EDGES[: k // 2]
    added = [(10000 + i, i) for i in range(k - k // 2)]
    return Delta.from_iters(added, removed)


@pytest.mark.parametrize("k", sizes([1, 8, 64, 512], [1, 8]))
def test_ivm_cost_tracks_delta_size(benchmark, k):
    engine, mat = _shared

    def maintain():
        new_mat, _ = engine.apply(mat, {"E": delta_of(k)})
        return new_mat

    pedantic(benchmark, maintain, rounds=3)
    benchmark.extra_info["delta_size"] = k


def test_full_recompute_baseline(benchmark):
    def recompute():
        relation = BASE.apply(delta_of(1))
        return Evaluator(RULESET).evaluate({"E": relation})

    pedantic(benchmark, recompute, rounds=3)


def test_dred_single_tuple(benchmark):
    dred = DRedEngine(RULESET)
    relations = dred.initialize({"E": BASE})

    def maintain():
        return dred.apply(relations, {"E": delta_of(1)})

    pedantic(benchmark, maintain, rounds=3)


def test_sensitivity_short_circuit(benchmark):
    """Deltas on a predicate no rule reads are nearly free."""
    rules = RULES + [Rule("other", [Var("x")], [PredAtom("F", [Var("x")])])]
    engine = IncrementalEngine(RuleSet(rules))
    mat = engine.initialize({"E": BASE, "F": Relation.empty(1)})
    delta = {"F": Delta.from_iters([(1,)], ())}

    def maintain():
        new_mat, _ = engine.apply(mat, delta)
        return new_mat

    pedantic(benchmark, maintain, rounds=5)


@pytest.mark.skipif(SMOKE, reason="smoke mode checks crashes, not shape")
def test_ivm_shape(benchmark):
    """The proportionality claim, asserted: single-tuple IVM must be
    >=20x cheaper than recomputation, and cost grows with delta size."""
    engine, mat = _shared
    times = {}
    for k in (1, 64):
        started = time.perf_counter()
        engine.apply(mat, {"E": delta_of(k)})
        times[k] = time.perf_counter() - started
    started = time.perf_counter()
    Evaluator(RULESET).evaluate({"E": BASE.apply(delta_of(1))})
    recompute = time.perf_counter() - started
    print("\nIVM: delta=1 {:.4f}s  delta=64 {:.4f}s  recompute {:.4f}s".format(
        times[1], times[64], recompute))
    assert recompute > 20 * times[1], (times, recompute)
    assert times[64] > times[1]
    benchmark.extra_info.update(
        ivm_1=times[1], ivm_64=times[64], recompute=recompute
    )
    pedantic(benchmark, lambda: engine.apply(mat, {"E": delta_of(1)}), rounds=2)
