"""E7 — live programming: incremental program update vs full rebuild
(paper §3.3).

"Changes to application code must be quickly compiled and hot-swapped
in ... and the effects of those changes must be efficiently computed in
an incremental fashion."  A typical application has thousands of rules;
editing one view must not recompute the rest.

Measured: addblock/removeblock of one view into a workspace with many
installed views over non-trivial data, vs rebuilding the whole
workspace from scratch.
"""

import time

import pytest

from repro import Workspace
from repro.datasets.retail import load_retail
from conftest import SMOKE, pedantic, sizes

N_VIEWS = sizes(40, 6)


def view_source(index):
    return (
        "view{0}[s] = u <- agg<<u = sum(z)>> sales[s, t, w] = n, "
        "price[s] = p, z = n * p + {0}.0.".format(index)
    )


def build_app():
    ws = Workspace()
    load_retail(ws, n_skus=6, n_stores=2, n_weeks=sizes(13, 4), seed=1)
    for index in range(N_VIEWS):
        ws.addblock(view_source(index), name="view-{}".format(index))
    return ws


_app = build_app()


def hot_swap_one_view():
    _app.addblock(view_source(0) + " // edited", name="view-0")


def add_remove_view():
    _app.addblock("tmp(s) <- sku(s).", name="tmp-view")
    _app.removeblock("tmp-view")


def full_rebuild():
    build_app()


def test_hot_swap_single_view(benchmark):
    pedantic(benchmark, hot_swap_one_view, rounds=3)


def test_add_remove_view(benchmark):
    pedantic(benchmark, add_remove_view, rounds=3)


def test_full_rebuild_baseline(benchmark):
    pedantic(benchmark, full_rebuild, rounds=2)


@pytest.mark.skipif(SMOKE, reason="smoke mode checks crashes, not shape")
def test_live_programming_shape(benchmark):
    """The claim, asserted: swapping one view in an app with dozens of
    views costs a small fraction of rebuilding the application."""
    started = time.perf_counter()
    hot_swap_one_view()
    swap_time = time.perf_counter() - started
    started = time.perf_counter()
    full_rebuild()
    rebuild_time = time.perf_counter() - started
    print("\nhot-swap one of {} views: {:.3f}s; full rebuild: {:.3f}s "
          "({:.0f}x)".format(N_VIEWS, swap_time, rebuild_time,
                             rebuild_time / swap_time))
    assert rebuild_time > 5 * swap_time
    benchmark.extra_info.update(swap=swap_time, rebuild=rebuild_time)
    pedantic(benchmark, hot_swap_one_view, rounds=1)
