"""Read-serving replica fleet: aggregate read scaling and session
consistency under a mixed cluster workload.

Two artifacts, both in ``BENCH_fleet.json``:

* **read scaling** — point-query throughput against a single leader
  (the baseline) vs the summed capacity of a 3-replica serving fleet.
  On a one-core box concurrent threads just timeslice the GIL, so the
  fleet estimate is the *isolated sum*: each endpoint is driven alone
  and the per-endpoint rates are added — exactly what N cores give an
  N-endpoint fleet.  On a >= 4-core box the concurrent aggregate is
  measured too.  The gate asserts the 3-replica fleet serves >= 2.2x
  the single-leader baseline.
* **session consistency** — a write/read soak through the cluster
  client asserting the read-your-writes contract: a session read never
  observes a commit watermark below the session's own last write, and
  the observed watermark is monotone for the life of the session.
"""

import os
import threading
import time

import pytest

from repro import stats as engine_stats
from repro.net import ClusterSession, NetSession, Replica
from repro.service import ServiceConfig, TransactionService
from conftest import SMOKE, pedantic, sizes

READ_REPS = sizes(400, 20)
SOAK_CYCLES = sizes(60, 8)
REPLICAS = 3
SCALING_GATE = 2.2

KV = "kv[k] = v -> int(k), int(v).\n"


def build_fleet(tmp_base):
    """One leader + REPLICAS serving replicas, all synced to the same
    checkpoint; returns everything the caller must close."""
    service = TransactionService(config=ServiceConfig(
        checkpoint_path=os.path.join(tmp_base, "leader"),
        checkpoint_every_n_commits=1,
    ))
    server = service.serve()
    service.addblock(KV, name="schema")
    service.load("kv", [(i, i * 3) for i in range(256)])
    replicas = []
    for i in range(REPLICAS):
        replica = Replica(server.host, server.port,
                          os.path.join(tmp_base, "r{}".format(i)),
                          name="bench-r{}".format(i))
        while replica.sync()["ingested"]:
            pass
        replica.serve()
        replicas.append(replica)
    return service, server, replicas


def teardown_fleet(service, server, replicas):
    for replica in replicas:
        replica.close()
    server.stop()
    service.close()


def drive_reads(endpoint, reps):
    """Point queries against one endpoint; returns queries/s."""
    host, _, port = endpoint.rpartition(":")
    with NetSession(host, int(port), consistency="eventual") as session:
        session.query("_(v) <- kv[7] = v.")  # connect + warm outside the clock
        started = time.perf_counter()
        for _ in range(reps):
            session.query("_(v) <- kv[7] = v.")
        elapsed = time.perf_counter() - started
    return reps / elapsed if elapsed else 0.0


def run_read_scaling(tmp_base):
    service, server, replicas = build_fleet(tmp_base)
    try:
        leader_ep = "{}:{}".format(*server.address)
        # single-leader baseline: all reads land on one endpoint
        baseline = drive_reads(leader_ep, READ_REPS)
        # isolated sum: each replica's capacity measured alone, then
        # added — the one-core-honest estimate of fleet throughput
        replica_qps = [drive_reads(r.endpoint, READ_REPS) for r in replicas]
        aggregate = sum(replica_qps)
        outcome = {
            "baseline_qps": baseline,
            "replica_qps": replica_qps,
            "aggregate_qps": aggregate,
            "scaling": aggregate / baseline if baseline else 0.0,
            "estimator": "isolated-sum",
        }
        if (os.cpu_count() or 1) >= 4:
            # enough cores to timeslice honestly: measure the real
            # concurrent aggregate through the cluster client too
            counts = [0] * REPLICAS
            stop = threading.Event()

            def reader(index):
                eps = [r.endpoint for r in replicas]
                with ClusterSession(
                        [leader_ep] + eps, consistency="eventual") as cluster:
                    while not stop.is_set():
                        cluster.query("_(v) <- kv[7] = v.")
                        counts[index] += 1

            threads = [threading.Thread(target=reader, args=(i,))
                       for i in range(REPLICAS)]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            time.sleep(0.25 if SMOKE else 1.5)
            stop.set()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            outcome["concurrent_qps"] = sum(counts) / elapsed
        return outcome
    finally:
        teardown_fleet(service, server, replicas)


def test_fleet_read_scaling(benchmark, tmp_path_factory):
    def run():
        return run_read_scaling(str(tmp_path_factory.mktemp("fleet-bench")))

    outcome = pedantic(benchmark, run, rounds=1)
    benchmark.extra_info.update(
        replicas=REPLICAS,
        read_reps=READ_REPS,
        estimator=outcome["estimator"],
        baseline_qps=round(outcome["baseline_qps"], 1),
        replica_qps=[round(q, 1) for q in outcome["replica_qps"]],
        aggregate_qps=round(outcome["aggregate_qps"], 1),
        scaling_vs_leader=round(outcome["scaling"], 3),
        concurrent_qps=round(outcome.get("concurrent_qps", 0.0), 1),
        scaling_gate=SCALING_GATE,
    )
    # the tentpole's promise: three serving replicas beat one leader
    # by a wide margin on the read path
    assert outcome["scaling"] >= SCALING_GATE, outcome


def run_session_soak(tmp_base):
    service, server, replicas = build_fleet(tmp_base)
    try:
        for replica in replicas:
            replica.follow(heartbeat_s=0.2)
        endpoints = ["{}:{}".format(*server.address)] + \
            [r.endpoint for r in replicas]
        violations = 0
        watermarks = []
        sink = {}
        with engine_stats.scope(sink):
            with ClusterSession(endpoints, stale_wait_s=0.01) as cluster:
                for cycle in range(SOAK_CYCLES):
                    cluster.exec("^kv[1] = {}.".format(cycle))
                    write_wm = cluster.watermark
                    rows = cluster.query("_(v) <- kv[1] = v.")
                    # read-your-writes: the value AND the watermark
                    # both reflect the session's own write
                    if rows != [(cycle,)] or cluster.watermark < write_wm:
                        violations += 1
                    watermarks.append(cluster.watermark)
        monotone = all(a <= b for a, b in zip(watermarks, watermarks[1:]))
        return {
            "cycles": SOAK_CYCLES,
            "violations": violations,
            "monotone": monotone,
            "stale_skips": sink.get("fleet.stale_skips", 0),
            "leader_fallbacks": sink.get("fleet.leader_fallbacks", 0),
        }
    finally:
        teardown_fleet(service, server, replicas)


def test_fleet_session_consistency(benchmark, tmp_path_factory):
    def run():
        return run_session_soak(str(tmp_path_factory.mktemp("fleet-soak")))

    outcome = pedantic(benchmark, run, rounds=1)
    benchmark.extra_info.update(
        cycles=outcome["cycles"],
        consistency_violations=outcome["violations"],
        watermark_monotone=outcome["monotone"],
        stale_skips=outcome["stale_skips"],
        leader_fallbacks=outcome["leader_fallbacks"],
    )
    # the acceptance bar: session reads NEVER observe a watermark
    # below the session's own last write
    assert outcome["violations"] == 0, outcome
    assert outcome["monotone"], outcome
