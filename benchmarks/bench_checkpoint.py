"""E8 — durable checkpoint cost: incremental vs full rewrite.

The pager's claim (DESIGN.md §7): because treaps are uniquely
represented and content-addressed, a re-checkpoint prices at the
*delta*, not the database.  An unchanged workspace re-checkpoints with
zero node writes; a single-tuple update rewrites only the O(log n)
root path plus the touched derived state, orders of magnitude below
the initial full write.

Measured here on a workspace with a base relation, a filter view, and
an aggregation, so the checkpoint carries relations, support counts,
and aggregate group state.
"""

import os
import shutil
import time

import pytest

from repro.runtime.workspace import Workspace
from conftest import SMOKE, pedantic, sizes

BLOCK = """
item[k] = v -> int(k), int(v).
big(k) <- item[k] = v, v > 5.
total[] = u <- agg<<u = sum(v)>> item[k] = v.
"""

N = sizes(3000, 100)


def build_workspace():
    ws = Workspace()
    ws.addblock(BLOCK, name="items")
    ws.load("item", [(i, i % 10) for i in range(N)])
    return ws


def test_full_checkpoint(benchmark, tmp_path):
    """Cost of writing the whole workspace into an empty store."""
    ws = build_workspace()
    counter = [0]

    def full():
        counter[0] += 1
        path = str(tmp_path / "cp{}".format(counter[0]))
        return ws.checkpoint(path)

    result = pedantic(benchmark, full, rounds=3)
    benchmark.extra_info["rows"] = N
    benchmark.extra_info["nodes_written"] = result["nodes_written"]
    assert result["nodes_written"] > 0


def test_incremental_checkpoint(benchmark, tmp_path):
    """Cost of re-checkpointing after a single-tuple update."""
    ws = build_workspace()
    path = str(tmp_path / "cp")
    ws.checkpoint(path)
    key = [N]

    def delta_then_checkpoint():
        key[0] += 1
        ws.load("item", [(key[0], 3)])
        return ws.checkpoint(path)

    result = pedantic(benchmark, delta_then_checkpoint, rounds=3)
    benchmark.extra_info["rows"] = N
    benchmark.extra_info["nodes_written"] = result["nodes_written"]


def test_restore(benchmark, tmp_path):
    """Cost of ``Workspace.open`` — decode, no re-derivation."""
    ws = build_workspace()
    path = str(tmp_path / "cp")
    ws.checkpoint(path)

    result = pedantic(benchmark, Workspace.open, path, rounds=3)
    assert result.rows("total") == ws.rows("total")
    benchmark.extra_info["rows"] = N


@pytest.mark.skipif(SMOKE, reason="smoke mode checks crashes, not shape")
def test_incremental_shape(benchmark, tmp_path):
    """The structural-sharing gate, asserted on node-write counters:

    * an unchanged workspace re-checkpoints with **zero** writes;
    * a single-tuple delta writes < 10% of the initial node count
      (the root path and touched derived state, not the database);
    * the incremental write is also faster than a full rewrite.
    """
    ws = build_workspace()
    path = str(tmp_path / "cp")

    started = time.perf_counter()
    first = ws.checkpoint(path)
    full_time = time.perf_counter() - started

    unchanged = ws.checkpoint(path)
    assert unchanged["nodes_written"] == 0, unchanged
    assert unchanged["bytes_written"] == 0, unchanged

    ws.load("item", [(N + 1, 3)])
    started = time.perf_counter()
    delta = ws.checkpoint(path)
    delta_time = time.perf_counter() - started

    assert 0 < delta["nodes_written"] < first["nodes_written"] / 10, (
        first, delta)
    assert delta_time < full_time, (full_time, delta_time)

    print("\ncheckpoint: full {} nodes {:.4f}s  delta {} nodes {:.4f}s".format(
        first["nodes_written"], full_time,
        delta["nodes_written"], delta_time))
    benchmark.extra_info.update(
        full_nodes=first["nodes_written"], delta_nodes=delta["nodes_written"],
        full_s=full_time, delta_s=delta_time,
    )
    pedantic(benchmark, ws.checkpoint, path, rounds=2)
