"""E3 — Figure 5: the 3-clique query vs edge count.

Paper: "Running time of the 3-clique query on (increasingly larger
subsets of) the LiveJournal graph dataset using LogicBlox 4.1.4,
Virtuoso 7, PostgreSQL 9.3.4, Neo4j 2.1.5, MonetDB, System HC, and
RedShift" — LFTJ stays 1-2 orders of magnitude ahead of the binary-plan
systems, and the gap widens with graph size.

Substitution (DESIGN.md): LiveJournal is replaced by synthetic
hub-skewed graphs (:func:`hub_graph` — the celebrity-hub degree skew
that makes the 3-clique query hard, taken to its extreme) plus a
power-law series; the comparison systems are replaced by binary
hash-join and sort-merge-join plans implemented in this repo, whose
materialized open wedges are exactly the failure mode the paper's
companion study [32] identifies.

Shape asserted: LFTJ scales near-linearly in |E| while the binary plans
scale with the Θ(|E|²/n) wedge count — the ratio widens with size.
"""

import os
import time

import pytest

from repro.datasets.graphs import hub_graph, powerlaw_graph
from repro.engine.baseline_joins import hash_join_query, merge_join_query
from repro.engine.ir import PredAtom, Var
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.parallel import ParallelConfig, ParallelLeapfrogTrieJoin
from repro.engine.planner import build_plan
from repro.engine.pool import JoinWorkerPool
from repro.storage.relation import Relation

from conftest import SMOKE, pedantic, sizes

HUB_SIZES = sizes([250, 500, 1000, 2000], [80, 160])
POWERLAW_SIZES = sizes([120, 500, 1000], [80, 160])

ATOMS = [
    PredAtom("E", [Var("a"), Var("b")]),
    PredAtom("E", [Var("b"), Var("c")]),
    PredAtom("E", [Var("a"), Var("c")]),
]
PLAN = build_plan(ATOMS, var_order=["a", "b", "c"])

_cache = {}


def graph(kind, n_nodes):
    key = (kind, n_nodes)
    if key not in _cache:
        if kind == "hub":
            edges = hub_graph(n_nodes, seed=42)
        else:
            edges = powerlaw_graph(n_nodes, edges_per_node=5, seed=42)
        relation = Relation.from_iter(2, edges)
        relation.flat((0, 1))  # pre-materialize the array backend
        _cache[key] = (relation, len(edges))
    return _cache[key]


def run_lftj(relation):
    return sum(
        1 for _ in LeapfrogTrieJoin(PLAN, {"E": relation}, prefer_array=True).run()
    )


@pytest.mark.parametrize("n_nodes", HUB_SIZES)
def test_fig5_hub_lftj(benchmark, n_nodes):
    relation, n_edges = graph("hub", n_nodes)
    count = pedantic(benchmark, run_lftj, relation)
    benchmark.extra_info.update(edges=n_edges, triangles=count)


@pytest.mark.parametrize("n_nodes", HUB_SIZES)
def test_fig5_hub_hash_join(benchmark, n_nodes):
    relation, n_edges = graph("hub", n_nodes)
    stats = {}
    rounds = 1 if n_nodes >= 1000 else 2
    pedantic(benchmark, hash_join_query, ATOMS, {"E": relation},
             ["a", "b", "c"], stats, rounds=rounds)
    benchmark.extra_info.update(
        edges=n_edges, intermediate_rows=stats["intermediate_rows"]
    )


@pytest.mark.parametrize("n_nodes", HUB_SIZES[:3])
def test_fig5_hub_merge_join(benchmark, n_nodes):
    relation, n_edges = graph("hub", n_nodes)
    rounds = 1 if n_nodes >= 1000 else 2
    pedantic(benchmark, merge_join_query, ATOMS, {"E": relation},
             ["a", "b", "c"], rounds=rounds)
    benchmark.extra_info["edges"] = n_edges


@pytest.mark.parametrize("n_nodes", POWERLAW_SIZES)
def test_fig5_powerlaw_lftj(benchmark, n_nodes):
    relation, n_edges = graph("powerlaw", n_nodes)
    count = pedantic(benchmark, run_lftj, relation)
    benchmark.extra_info.update(edges=n_edges, triangles=count)


@pytest.mark.parametrize("n_nodes", POWERLAW_SIZES)
def test_fig5_powerlaw_hash_join(benchmark, n_nodes):
    relation, n_edges = graph("powerlaw", n_nodes)
    pedantic(benchmark, hash_join_query, ATOMS, {"E": relation},
             ["a", "b", "c"])
    benchmark.extra_info["edges"] = n_edges


def test_fig5_parallel_vs_serial(benchmark):
    """Domain-partitioned parallel LFTJ on the largest hub graph:
    bit-identical rows; serial/parallel wall times land in the JSON
    artifact (speedup is hardware-dependent — 1 worker on this CI box
    means none; the partitioning itself is what is asserted here)."""
    relation, n_edges = graph("hub", HUB_SIZES[-1])
    pool = JoinWorkerPool()
    try:
        cfg = ParallelConfig(force=True, pool=pool)

        def run_parallel():
            run_stats = {}
            rows = list(
                ParallelLeapfrogTrieJoin(
                    PLAN, {"E": relation}, config=cfg, stats=run_stats
                ).run()
            )
            return rows, run_stats

        run_parallel()  # warm the pool and the marshalled env
        started = time.perf_counter()
        serial_rows = list(
            LeapfrogTrieJoin(PLAN, {"E": relation}, prefer_array=True).run()
        )
        serial_time = time.perf_counter() - started
        started = time.perf_counter()
        parallel_rows, run_stats = run_parallel()
        parallel_time = time.perf_counter() - started
        assert parallel_rows == serial_rows  # bit-identical, order included
        benchmark.extra_info.update(
            edges=n_edges,
            triangles=len(serial_rows),
            serial_s=serial_time,
            parallel_s=parallel_time,
            speedup=serial_time / parallel_time,
            shards=run_stats.get("shards", 0),
            workers=pool.max_workers,
            cpu_count=os.cpu_count(),
        )
        pedantic(benchmark, lambda: run_parallel()[0], rounds=1)
    finally:
        pool.shutdown()


def _backend_times(kind, n_nodes):
    """(pure_s, columnar_s, order, rows, n_edges) on one graph, rows
    asserted bit-identical, both backends warmed before timing."""
    from repro.engine.columnar import make_join
    from repro.engine.optimizer import SamplingOptimizer
    from repro.engine.rules import Rule

    relation, n_edges = graph(kind, n_nodes)
    env = {"E": relation}
    rule = Rule("t", [Var("a"), Var("b"), Var("c")], ATOMS)
    order = SamplingOptimizer()(rule, env) or ("a", "b", "c")
    plan = build_plan(ATOMS, var_order=list(order))

    def run_pure():
        return list(LeapfrogTrieJoin(plan, env, prefer_array=True).run())

    def run_columnar():
        return list(make_join(plan, env, backend="columnar").run())

    pure_rows = run_pure()  # warm the flat arrays
    assert run_columnar() == pure_rows  # warm the encoded setup

    def best_of(fn, rounds=2):
        best = None
        for _ in range(rounds):
            started = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best

    return best_of(run_pure), best_of(run_columnar), order, pure_rows, n_edges


def test_fig5_columnar_vs_pure(benchmark):
    """Columnar vs pure LFTJ on the largest power-law graph: rows must
    be bit-identical and the batched backend must win by >=5x (the CI
    gate reads the ``pure_s``/``columnar_s`` fields).  The largest hub
    graph is also measured and recorded *ungated*: its celebrity-hub
    skew is the adversarial case where pure LFTJ's adaptive leapfrogging
    sidesteps the wedge blowup that batched expand-then-probe must wade
    through, so the vectorized win shrinks there by design (see
    DESIGN.md, "Engine backends")."""
    from repro.engine.columnar import make_join  # noqa: F401 - import gate
    from repro.storage.columnar import HAVE_NUMPY

    if not HAVE_NUMPY:
        pytest.skip("numpy not available")
    import numpy

    pure_time, columnar_time, order, rows, n_edges = _backend_times(
        "powerlaw", POWERLAW_SIZES[-1]
    )
    speedup = pure_time / columnar_time
    hub_pure, hub_columnar, _, _, hub_edges = _backend_times(
        "hub", HUB_SIZES[-1]
    )
    benchmark.extra_info.update(
        backend="columnar",
        numpy_version=numpy.__version__,
        var_order=list(order),
        edges=n_edges,
        triangles=len(rows),
        pure_s=pure_time,
        columnar_s=columnar_time,
        speedup=speedup,
        hub_edges=hub_edges,
        hub_pure_s=hub_pure,
        hub_columnar_s=hub_columnar,
        hub_speedup=hub_pure / hub_columnar,
    )
    if not SMOKE:
        assert speedup >= 5.0, (
            "columnar LFTJ must be >=5x the pure backend at full size, "
            "got {:.1f}x".format(speedup)
        )

    def run_columnar_again():
        relation, _ = graph("powerlaw", POWERLAW_SIZES[-1])
        plan = build_plan(ATOMS, var_order=list(order))
        return list(make_join(plan, {"E": relation}, backend="columnar").run())

    pedantic(benchmark, run_columnar_again, rounds=1)


@pytest.mark.skipif(SMOKE, reason="smoke mode checks crashes, not shape")
def test_fig5_shape(benchmark):
    """The paper's headline shape, asserted: on skewed graphs LFTJ wins
    outright and its advantage grows with |E|."""
    print("\nFigure 5 series (hub-skewed graphs):")
    print("  edges   lftj_s   hash_s   ratio   intermediates  triangles")
    ratios = []
    for n_nodes in HUB_SIZES:
        relation, n_edges = graph("hub", n_nodes)
        started = time.perf_counter()
        count = run_lftj(relation)
        lftj_time = time.perf_counter() - started
        stats = {}
        started = time.perf_counter()
        result = hash_join_query(ATOMS, {"E": relation}, ["a", "b", "c"], stats)
        hash_time = time.perf_counter() - started
        assert len(result) == count
        ratio = hash_time / lftj_time
        ratios.append(ratio)
        print("  %6d  %6.3f  %7.3f  %5.1fx  %13d  %9d" % (
            n_edges, lftj_time, hash_time, ratio,
            stats["intermediate_rows"], count))
    assert ratios[-1] > 2.0, "LFTJ must win clearly at the largest size"
    assert ratios[-1] > 2 * ratios[0], "the gap must widen with |E|"
    benchmark.extra_info["ratios"] = ratios
    pedantic(benchmark, run_lftj, graph("hub", 250)[0], rounds=1)
