"""E6 — transaction repair vs row-level locking (paper §3.4).

The paper's analysis: with n items and per-item touch probability
α·n^(−1/2), two transactions share α² items in expectation (birthday
paradox).  "Row-level locking is a bottleneck when α >= 1 ... Even for
α = 1, parallel speedup is sharply limited; and for α = 10 almost no
parallel speedup is possible.  Transaction repair allows us to achieve
near-linear parallel speedup in the number of cores, even for high
values of α such as α = 10."

Method (DESIGN.md substitution): execution and repair costs are
measured for real on this engine, single-threaded; the wall-clock on c
cores comes from the deterministic schedulers in
:mod:`repro.txn.simcores` (Brent bound for the repair circuit;
wait-for replay for strict 2PL).
"""

import pytest

from repro import Workspace
from repro.datasets.txnload import alpha_transactions, setup_inventory
from repro.txn import (
    LockingScheduler,
    RepairScheduler,
    simulate_locking,
    simulate_parallel,
)
from conftest import SMOKE, pedantic, sizes

N_ITEMS = sizes(120, 40)
N_TXNS = sizes(12, 4)
CORES = [1, 2, 4, 8, 16]


def build_workspace():
    ws = Workspace()
    setup_inventory(ws, N_ITEMS, initial=50)
    return ws


def run_repair(alpha):
    batch = alpha_transactions(N_ITEMS, N_TXNS, alpha, seed=int(alpha * 100))
    ws = build_workspace()
    scheduler = RepairScheduler(ws)
    prepared = scheduler.run(batch)
    return scheduler, prepared


def run_locking(alpha):
    batch = alpha_transactions(N_ITEMS, N_TXNS, alpha, seed=int(alpha * 100))
    ws = build_workspace()
    scheduler = LockingScheduler(ws)
    scheduler.run(batch)
    return scheduler


@pytest.mark.parametrize("alpha", [0.1, 1.0, 10.0])
def test_repair_batch(benchmark, alpha):
    scheduler, _ = pedantic(benchmark, run_repair, alpha, rounds=2)
    benchmark.extra_info.update(
        alpha=alpha,
        conflicts=scheduler.stats["conflicts"],
        repairs=scheduler.stats["repairs"],
    )


@pytest.mark.parametrize("alpha", [0.1, 1.0, 10.0])
def test_locking_batch(benchmark, alpha):
    scheduler = pedantic(benchmark, run_locking, alpha, rounds=2)
    benchmark.extra_info.update(
        alpha=alpha, lock_conflicts=scheduler.stats["lock_conflicts"]
    )


@pytest.mark.skipif(SMOKE, reason="smoke mode checks crashes, not shape")
def test_speedup_curves(benchmark):
    """The paper's speedup-vs-cores contrast across α."""
    print("\nspeedup at 16 cores (repair vs locking), measured costs:")
    print("  alpha  conflicts  repair@16  locking@16")
    final = {}
    for alpha in (0.1, 1.0, 10.0):
        scheduler, prepared = run_repair(alpha)
        exec_costs = [t.execute_seconds for t in prepared]
        repair_costs = [t.repair_seconds for t in prepared]
        locking = run_locking(alpha)
        repair_speedup = simulate_parallel(exec_costs, repair_costs, 1) / (
            simulate_parallel(exec_costs, repair_costs, 16)
        )
        lock_base = simulate_locking(
            locking.stats["exec_seconds"], locking.stats["wait_edges"], 1
        )
        lock_speedup = lock_base / simulate_locking(
            locking.stats["exec_seconds"], locking.stats["wait_edges"], 16
        )
        final[alpha] = (repair_speedup, lock_speedup)
        print("  %5.1f  %9d  %9.2f  %10.2f" % (
            alpha, scheduler.stats["conflicts"], repair_speedup, lock_speedup))
    # shapes from the paper: locking collapses as alpha grows;
    # repair keeps scaling even at alpha = 10
    assert final[0.1][1] > 2.0, "locking should scale at alpha = 0.1"
    assert final[10.0][1] < 2.0, "locking should collapse at alpha = 10"
    assert final[10.0][0] > final[10.0][1], "repair must beat locking at alpha=10"
    assert final[1.0][0] > 1.5
    benchmark.extra_info["speedups"] = {str(k): v for k, v in final.items()}
    pedantic(benchmark, run_repair, 0.1, rounds=1)


def test_serializability_spotcheck(benchmark):
    """Both schedulers commit identical states (full serializability)."""
    def check():
        batch = alpha_transactions(N_ITEMS, 6, 4.0, seed=5)
        a, b = build_workspace(), build_workspace()
        RepairScheduler(a).run(batch)
        LockingScheduler(b).run(batch)
        assert a.rows("inventory") == b.rows("inventory")
        assert a.rows("place_order") == b.rows("place_order")

    pedantic(benchmark, check, rounds=2)
