"""E9 — worst-case optimality sanity (paper §3.2, [31, 42]).

"LFTJ is a worst-case optimal join algorithm ... the running time of
the algorithm is bounded by the worst-case cardinality of the query
result (modulo logarithmic factors)."  For the triangle query the AGM
bound is |E|^{3/2}: LFTJ's search steps must scale no worse than that,
even on instances engineered to blow up binary plans.
"""

import math
import os
import time

import pytest

from repro.datasets.graphs import hub_graph, powerlaw_graph
from repro.engine.ir import PredAtom, Var
from repro.engine.lftj import LeapfrogTrieJoin
from repro.engine.parallel import ParallelConfig, ParallelLeapfrogTrieJoin
from repro.engine.planner import build_plan
from repro.engine.pool import JoinWorkerPool
from repro.storage.relation import Relation
from conftest import SMOKE, pedantic, sizes

ATOMS = [
    PredAtom("E", [Var("a"), Var("b")]),
    PredAtom("E", [Var("b"), Var("c")]),
    PredAtom("E", [Var("a"), Var("c")]),
]
PLAN = build_plan(ATOMS, var_order=["a", "b", "c"])


def steps_for(edges):
    relation = Relation.from_iter(2, edges)
    relation.flat((0, 1))
    stats = {}
    executor = LeapfrogTrieJoin(PLAN, {"E": relation}, prefer_array=True,
                                stats=stats)
    count = sum(1 for _ in executor.run())
    return stats["steps"], count


@pytest.mark.parametrize("n_nodes", sizes([200, 400, 800], [100, 200]))
def test_wco_powerlaw(benchmark, n_nodes):
    edges = powerlaw_graph(n_nodes, edges_per_node=5, seed=1)
    steps, count = pedantic(benchmark, steps_for, edges)
    agm = len(edges) ** 1.5
    assert steps <= 4 * agm + 10 * len(edges)
    benchmark.extra_info.update(edges=len(edges), steps=steps,
                                agm_bound=agm, triangles=count)


@pytest.mark.parametrize("n_nodes", sizes([500, 1000, 2000], [200, 400]))
def test_wco_hub(benchmark, n_nodes):
    """Hub instances have Θ(n²) wedges but few triangles: LFTJ's steps
    must track the output + |E|, far below the wedge count."""
    edges = hub_graph(n_nodes, seed=1)
    steps, count = pedantic(benchmark, steps_for, edges)
    wedges_estimate = (n_nodes - 1) ** 2
    assert steps < wedges_estimate / 4, (steps, wedges_estimate)
    benchmark.extra_info.update(edges=len(edges), steps=steps,
                                triangles=count)


def test_wco_parallel_vs_serial(benchmark):
    """Sharded LFTJ preserves the worst-case-optimal step budget: the
    merged shard step counters stay within the AGM bound and the output
    is bit-identical; serial/parallel wall times land in the JSON."""
    edges = powerlaw_graph(sizes(800, 200), edges_per_node=5, seed=1)
    relation = Relation.from_iter(2, edges)
    relation.flat((0, 1))
    pool = JoinWorkerPool()
    try:
        cfg = ParallelConfig(force=True, pool=pool)

        def run_parallel():
            run_stats = {}
            rows = list(
                ParallelLeapfrogTrieJoin(
                    PLAN, {"E": relation}, config=cfg, stats=run_stats
                ).run()
            )
            return rows, run_stats

        run_parallel()  # warm the pool and the marshalled env
        started = time.perf_counter()
        serial_rows = list(
            LeapfrogTrieJoin(PLAN, {"E": relation}, prefer_array=True).run()
        )
        serial_time = time.perf_counter() - started
        started = time.perf_counter()
        parallel_rows, run_stats = run_parallel()
        parallel_time = time.perf_counter() - started
        assert parallel_rows == serial_rows
        agm = len(edges) ** 1.5
        assert run_stats["steps"] <= 4 * agm + 10 * len(edges)
        benchmark.extra_info.update(
            edges=len(edges),
            triangles=len(serial_rows),
            steps=run_stats["steps"],
            shards=run_stats.get("shards", 0),
            serial_s=serial_time,
            parallel_s=parallel_time,
            speedup=serial_time / parallel_time,
            workers=pool.max_workers,
            cpu_count=os.cpu_count(),
        )
        pedantic(benchmark, lambda: run_parallel()[0], rounds=1)
    finally:
        pool.shutdown()


def test_wco_columnar_vs_pure(benchmark):
    """Columnar (vectorized numpy) LFTJ vs the pure backend on the
    largest power-law instance: bit-identical rows, enumeration order
    included, and the wall-time ratio is the artifact headline.  The
    variable order is the sampling optimizer's pick, recorded alongside
    (``compare.py --require-speedup`` gates on these fields in CI)."""
    from repro.engine.columnar import make_join
    from repro.engine.optimizer import SamplingOptimizer
    from repro.engine.rules import Rule
    from repro.storage.columnar import HAVE_NUMPY

    if not HAVE_NUMPY:
        pytest.skip("numpy not available")
    import numpy

    n_nodes = sizes(1600, 200)
    edges = powerlaw_graph(n_nodes, edges_per_node=5, seed=1)
    relation = Relation.from_iter(2, edges)
    env = {"E": relation}
    rule = Rule("t", [Var("a"), Var("b"), Var("c")], ATOMS)
    order = SamplingOptimizer()(rule, env) or ("a", "b", "c")
    plan = build_plan(ATOMS, var_order=list(order))

    def run_pure():
        return list(LeapfrogTrieJoin(plan, env, prefer_array=True).run())

    def run_columnar():
        return list(make_join(plan, env, backend="columnar").run())

    pure_rows = run_pure()  # also warms the flat arrays
    columnar_rows = run_columnar()  # also warms the encoded setup
    assert columnar_rows == pure_rows

    def best_of(fn, rounds=2):
        best = None
        for _ in range(rounds):
            started = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best

    pure_time = best_of(run_pure)
    columnar_time = best_of(run_columnar)
    speedup = pure_time / columnar_time
    benchmark.extra_info.update(
        backend="columnar",
        numpy_version=numpy.__version__,
        var_order=list(order),
        edges=len(edges),
        triangles=len(pure_rows),
        pure_s=pure_time,
        columnar_s=columnar_time,
        speedup=speedup,
    )
    if not SMOKE:
        assert speedup >= 5.0, (
            "columnar LFTJ must be >=5x the pure backend at full size, "
            "got {:.1f}x".format(speedup)
        )
    pedantic(benchmark, run_columnar, rounds=1)


@pytest.mark.skipif(SMOKE, reason="smoke mode checks crashes, not shape")
def test_wco_scaling_exponent(benchmark):
    """Fitted exponent of steps vs |E| stays <= 1.5 on power-law data."""
    points = []
    for n_nodes in (200, 400, 800, 1600):
        edges = powerlaw_graph(n_nodes, edges_per_node=5, seed=1)
        steps, _ = steps_for(edges)
        points.append((len(edges), steps))
    (e1, s1), (e2, s2) = points[0], points[-1]
    exponent = math.log(s2 / s1) / math.log(e2 / e1)
    print("\nLFTJ steps-vs-edges exponent: {:.2f} (AGM allows 1.5)".format(
        exponent))
    assert exponent <= 1.6
    benchmark.extra_info["exponent"] = exponent
    pedantic(benchmark, steps_for, powerlaw_graph(200, 5, seed=1), rounds=1)
