"""Diff two ``BENCH_<name>.json`` result files.

Usage::

    python benchmarks/compare.py benchmarks/results/BENCH_wco.json /tmp/BENCH_wco.json

Prints, per benchmark test, the old/new mean wall time and the relative
change, followed by the engine counter deltas and the histogram
quantile shifts (p50/p90/p99 per recorded distribution) — so a perf PR
can show in one screen both *how much* a workload moved and *why*
(plan-cache hits gained, seeks avoided, latency tail widened).

Exit status is 0 unless ``--fail-above PCT`` is given and some test's
mean wall time regressed by more than ``PCT`` percent.

Single-artifact mode::

    python benchmarks/compare.py --require-speedup 5 benchmarks/results/BENCH_wco.json

scans one result file for backend comparison entries (``extra_info``
carrying ``pure_s``/``columnar_s``) and exits 1 unless the best
recorded columnar-vs-pure speedup reaches the given factor — the CI
gate for the vectorized engine backend.
"""

import argparse
import json
import sys


def _load(path):
    with open(path) as fh:
        return json.load(fh)


def _mean_by_test(payload):
    means = {}
    for entry in payload.get("results", ()):
        mean = (entry.get("wall_time_s") or {}).get("mean")
        if mean is not None:
            means[entry["test"]] = mean
    return means


def _flat_counters(payload):
    """The scalar engine counters (nested snapshots like ``plan_cache``
    and per-key histogram dicts are skipped — they are not deltas)."""
    flat = {}
    for key, value in (payload.get("engine_stats") or {}).items():
        if isinstance(value, (int, float)):
            flat[key] = value
    return flat


def compare(old_payload, new_payload, out=sys.stdout):
    """Render the diff; returns the worst wall-time regression in %."""
    old_means = _mean_by_test(old_payload)
    new_means = _mean_by_test(new_payload)
    worst = 0.0
    print("== wall time (mean per round) ==", file=out)
    for test in sorted(set(old_means) | set(new_means)):
        old = old_means.get(test)
        new = new_means.get(test)
        if old is None or new is None:
            status = "added" if old is None else "removed"
            known = new if old is None else old
            print("  {:<60} {:>10.4f}s  ({})".format(test, known, status),
                  file=out)
            continue
        change = (new - old) / old * 100.0 if old else 0.0
        worst = max(worst, change)
        print("  {:<60} {:>10.4f}s -> {:>10.4f}s  {:>+7.1f}%".format(
            test, old, new, change), file=out)
    old_counters = _flat_counters(old_payload)
    new_counters = _flat_counters(new_payload)
    keys = sorted(set(old_counters) | set(new_counters))
    if keys:
        print("== engine counters ==", file=out)
        for key in keys:
            old = old_counters.get(key, 0)
            new = new_counters.get(key, 0)
            if old == new:
                continue
            print("  {:<40} {:>14} -> {:>14}  ({:+})".format(
                key, old, new, new - old), file=out)
    _compare_quantiles(old_payload, new_payload, out)
    return worst


def _quantile_rows(payload):
    """``{histogram name: {quantile label: value}}`` for artifacts that
    recorded histogram quantiles (older artifacts simply lack them)."""
    rows = {}
    for name, entry in (payload.get("histograms") or {}).items():
        if not isinstance(entry, dict):
            continue
        quantiles = {label: value for label, value in entry.items()
                     if label.startswith("p") and
                     isinstance(value, (int, float))}
        if quantiles:
            rows[name] = quantiles
    return rows


def _compare_quantiles(old_payload, new_payload, out=sys.stdout):
    """Diff per-histogram p50/p90/p99 between two artifacts."""
    old_rows = _quantile_rows(old_payload)
    new_rows = _quantile_rows(new_payload)
    names = sorted(set(old_rows) | set(new_rows))
    if not names:
        return
    print("== histogram quantiles ==", file=out)
    for name in names:
        old = old_rows.get(name)
        new = new_rows.get(name)
        if old is None or new is None:
            print("  {:<40} ({})".format(
                name, "added" if old is None else "removed"), file=out)
            continue
        cells = []
        for label in sorted(set(old) | set(new),
                            key=lambda lbl: float(lbl[1:])):
            before, after = old.get(label), new.get(label)
            if before is None or after is None:
                continue
            change = (after - before) / before * 100.0 if before else 0.0
            cells.append("{} {:.4g}->{:.4g} ({:+.0f}%)".format(
                label, before, after, change))
        print("  {:<40} {}".format(name, "  ".join(cells)), file=out)


def check_speedup(payload, required, out=sys.stdout):
    """Scan backend comparison entries; returns the best speedup found
    (``None`` when the artifact has no such entries)."""
    best = None
    for entry in payload.get("results", ()):
        extra = entry.get("extra_info") or {}
        pure = extra.get("pure_s")
        fast = extra.get("columnar_s")
        if not pure or not fast:
            continue
        speedup = pure / fast
        print("  {:<60} {:>6.1f}x  (pure {:.4f}s -> columnar {:.4f}s)".format(
            entry["test"], speedup, pure, fast), file=out)
        best = speedup if best is None else max(best, speedup)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_<name>.json")
    parser.add_argument(
        "new", nargs="?", default=None,
        help="candidate BENCH_<name>.json (omit for --require-speedup "
             "single-artifact mode)",
    )
    parser.add_argument(
        "--fail-above", type=float, default=None, metavar="PCT",
        help="exit 1 if any test's mean wall time regressed more than PCT%%",
    )
    parser.add_argument(
        "--require-speedup", type=float, default=None, metavar="N",
        help="exit 1 unless a backend comparison entry in the (new, or "
             "only) artifact records a columnar-vs-pure speedup >= N",
    )
    args = parser.parse_args(argv)
    if args.new is None and args.require_speedup is None:
        parser.error("two artifacts are required unless --require-speedup "
                     "is given")
    worst = 0.0
    if args.new is not None:
        worst = compare(_load(args.old), _load(args.new))
    if args.require_speedup is not None:
        payload = _load(args.new if args.new is not None else args.old)
        print("== columnar vs pure ==")
        best = check_speedup(payload, args.require_speedup)
        if best is None:
            print("FAIL: no backend comparison entries "
                  "(extra_info.pure_s/columnar_s) in artifact",
                  file=sys.stderr)
            return 1
        if best < args.require_speedup:
            print("FAIL: best speedup {:.1f}x below required {:.1f}x".format(
                best, args.require_speedup), file=sys.stderr)
            return 1
    if args.fail_above is not None and worst > args.fail_above:
        print("FAIL: worst regression {:+.1f}% exceeds {:.1f}%".format(
            worst, args.fail_above), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
