"""Diff two ``BENCH_<name>.json`` result files.

Usage::

    python benchmarks/compare.py benchmarks/results/BENCH_wco.json /tmp/BENCH_wco.json

Prints, per benchmark test, the old/new mean wall time and the relative
change, followed by the engine counter deltas — so a perf PR can show
in one screen both *how much* a workload moved and *why* (plan-cache
hits gained, seeks avoided, joins sharded).

Exit status is 0 unless ``--fail-above PCT`` is given and some test's
mean wall time regressed by more than ``PCT`` percent.
"""

import argparse
import json
import sys


def _load(path):
    with open(path) as fh:
        return json.load(fh)


def _mean_by_test(payload):
    means = {}
    for entry in payload.get("results", ()):
        mean = (entry.get("wall_time_s") or {}).get("mean")
        if mean is not None:
            means[entry["test"]] = mean
    return means


def _flat_counters(payload):
    """The scalar engine counters (nested snapshots like ``plan_cache``
    and per-key histogram dicts are skipped — they are not deltas)."""
    flat = {}
    for key, value in (payload.get("engine_stats") or {}).items():
        if isinstance(value, (int, float)):
            flat[key] = value
    return flat


def compare(old_payload, new_payload, out=sys.stdout):
    """Render the diff; returns the worst wall-time regression in %."""
    old_means = _mean_by_test(old_payload)
    new_means = _mean_by_test(new_payload)
    worst = 0.0
    print("== wall time (mean per round) ==", file=out)
    for test in sorted(set(old_means) | set(new_means)):
        old = old_means.get(test)
        new = new_means.get(test)
        if old is None or new is None:
            status = "added" if old is None else "removed"
            known = new if old is None else old
            print("  {:<60} {:>10.4f}s  ({})".format(test, known, status),
                  file=out)
            continue
        change = (new - old) / old * 100.0 if old else 0.0
        worst = max(worst, change)
        print("  {:<60} {:>10.4f}s -> {:>10.4f}s  {:>+7.1f}%".format(
            test, old, new, change), file=out)
    old_counters = _flat_counters(old_payload)
    new_counters = _flat_counters(new_payload)
    keys = sorted(set(old_counters) | set(new_counters))
    if keys:
        print("== engine counters ==", file=out)
        for key in keys:
            old = old_counters.get(key, 0)
            new = new_counters.get(key, 0)
            if old == new:
                continue
            print("  {:<40} {:>14} -> {:>14}  ({:+})".format(
                key, old, new, new - old), file=out)
    return worst


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_<name>.json")
    parser.add_argument("new", help="candidate BENCH_<name>.json")
    parser.add_argument(
        "--fail-above", type=float, default=None, metavar="PCT",
        help="exit 1 if any test's mean wall time regressed more than PCT%%",
    )
    args = parser.parse_args(argv)
    worst = compare(_load(args.old), _load(args.new))
    if args.fail_above is not None and worst > args.fail_above:
        print("FAIL: worst regression {:+.1f}% exceeds {:.1f}%".format(
            worst, args.fail_above), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
