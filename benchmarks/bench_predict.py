"""E10 — predictive analytics throughput (paper §2.3.2).

predict P2P rules learning one model per (sku, store) group and
evaluating them — the paper's built-in machine learning pathway.
"""

import pytest

from repro import Workspace
from repro.datasets.retail import load_retail
from repro.ml import run_predict_rules
from conftest import SMOKE, pedantic, sizes

LEARN = """
SM[s, t] = m <- predict m = linear(v|f)
    sales[s, t, w] = v, feature[s, t, w, n] = f.
"""


def build(n_skus, n_weeks):
    ws = Workspace()
    load_retail(ws, n_skus=n_skus, n_stores=2, n_weeks=n_weeks, seed=2)
    ws.addblock(LEARN, name="learn")
    return ws


@pytest.mark.parametrize("n_skus", sizes([4, 8, 16], [2, 4]))
def test_learn_models_per_group(benchmark, n_skus):
    ws = build(n_skus, n_weeks=26)
    pedantic(benchmark, run_predict_rules, ws, rounds=2)
    assert len(ws.rows("SM")) == n_skus * 2
    benchmark.extra_info["models"] = n_skus * 2


def test_learn_scaling_in_history(benchmark):
    ws = build(6, n_weeks=sizes(52, 8))
    pedantic(benchmark, run_predict_rules, ws, rounds=2)


@pytest.mark.skipif(SMOKE, reason="smoke mode checks crashes, not accuracy")
def test_models_predict_reasonably(benchmark):
    """Learned per-group models fit the synthetic demand structure
    (promo lift + seasonality) with decent in-sample accuracy."""
    import numpy as np

    from repro.ml import ModelStore

    ws = build(4, n_weeks=52)
    run_predict_rules(ws)
    features = {}
    for (s, t, w, name, value) in ws.rows("feature"):
        features.setdefault((s, t, w), {})[name] = value
    sales = {(s, t, w): u for (s, t, w, u) in ws.rows("sales")}
    r2s = []
    for sku, store, handle in ws.rows("SM"):
        model = ModelStore.get(handle)
        X, y = [], []
        for (s, t, w), mapping in features.items():
            if (s, t) != (sku, store):
                continue
            X.append([mapping["promo"], mapping["season"]])
            y.append(sales[(s, t, w)])
        predictions = model.predict(np.array(X))
        y = np.array(y)
        residual = float(((y - predictions) ** 2).sum())
        total = float(((y - y.mean()) ** 2).sum())
        r2s.append(1 - residual / total)
    mean_r2 = sum(r2s) / len(r2s)
    print("\nmean in-sample R^2 across {} models: {:.3f}".format(
        len(r2s), mean_r2))
    assert mean_r2 > 0.5
    benchmark.extra_info["mean_r2"] = mean_r2
    pedantic(benchmark, run_predict_rules, build(2, 13), rounds=1)
