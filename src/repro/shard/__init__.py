"""Horizontally sharded workspaces with distributed LFTJ.

EDB relations are hash-partitioned by a deterministic key column
(:func:`repro.ds.hashing.stable_hash`, so placement is identical across
processes and ``PYTHONHASHSEED`` values) across N ``repro.net`` shard
servers.  A :class:`ShardedWorkspace` coordinator fragments loads,
pushes co-partitioned programs shard-local, recombines scatter results
(dedup/merge for rows, aggregate group-state folding for aggregates),
and drives cross-shard commits through the transaction-repair circuit
(each shard prepares a branch diff; the coordinator composes
corrections and commits — no classic two-phase commit).

Entry points::

    import repro

    ws = repro.connect("shards://h1:7411,h2:7412,h3:7413",
                       partition={"ballot": 0})

or, in-process (tests, oracles)::

    from repro.shard import ShardedWorkspace

    ws = ShardedWorkspace.local(3, partition={"ballot": 0})
"""

from repro.shard.coordinator import ShardedWorkspace, ShardError, ShardCommitError
from repro.shard.executors import ShardExecutorPool
from repro.shard.shardmap import ShardMap

__all__ = [
    "ShardedWorkspace",
    "ShardError",
    "ShardCommitError",
    "ShardExecutorPool",
    "ShardMap",
]
