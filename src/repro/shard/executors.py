"""Remote shard executors: the fan-out layer of :mod:`repro.shard`.

A :class:`ShardExecutorPool` fronts one verb call per shard with the
same futures discipline :class:`~repro.engine.pool.JoinWorkerPool`
uses for in-process domain shards: submit one task per shard, get the
futures back in shard order, consume results as they land.  Backends
are duck-typed — an in-process
:class:`~repro.service.TransactionService` and a
:class:`~repro.net.client.NetSession` expose the same verb surface, so
``ShardedWorkspace.local(...)`` (tests, single-machine scale-up) and
``repro.connect("shards://...")`` (separate server processes) run the
identical coordinator code path.

Per-verb concurrency is one in-flight call per shard: the coordinator
fans a wave out, folds the results, then fans out the next wave.  Like
the sessions it wraps, a pool (and the coordinator above it) is a
one-thread-at-a-time object.
"""

import concurrent.futures

from repro import stats as _stats


class ShardExecutorPool:
    """One worker thread per shard, reused across waves."""

    def __init__(self, backends, *, name="shards"):
        backends = list(backends)
        if not backends:
            raise ValueError("ShardExecutorPool needs at least one backend")
        self._backends = backends
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=len(backends),
            thread_name_prefix="repro-{}".format(name))
        self._closed = False

    @property
    def n_shards(self):
        return len(self._backends)

    def backend(self, index):
        return self._backends[index]

    def submit(self, index, verb, *args, **kwargs):
        """One verb call against one shard; returns its future."""
        self._check_open()
        backend = self._backends[index]
        _stats.bump("shard.calls")
        return self._executor.submit(getattr(backend, verb), *args, **kwargs)

    def broadcast(self, verb, *args, **kwargs):
        """The same call against every shard; futures in shard order."""
        self._check_open()
        _stats.bump("shard.fanouts")
        return [self.submit(i, verb, *args, **kwargs)
                for i in range(len(self._backends))]

    def map(self, verb, per_shard_args):
        """``verb`` against every shard with per-shard positional args
        (``per_shard_args[i]`` is the tuple for shard ``i``); futures
        in shard order."""
        self._check_open()
        _stats.bump("shard.fanouts")
        return [self.submit(i, verb, *args)
                for i, args in enumerate(per_shard_args)]

    @staticmethod
    def gather(futures):
        """Results of ``futures`` in order.  Waits for *all* of them
        before raising, so no shard call is left running when the
        caller starts error handling; re-raises the first failure."""
        done = [None] * len(futures)
        first_error = None
        for index, future in enumerate(futures):
            try:
                done[index] = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return done

    def close(self):
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)

    def _check_open(self):
        if self._closed:
            raise RuntimeError("shard executor pool is closed")

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
