"""The shard map: deterministic hash placement of EDB rows.

A :class:`ShardMap` is the cluster's partitioning manifest: the shard
count, the partition spec (``{pred: key_column}``), and optionally the
shard endpoints.  Placement is ``stable_hash(row[key_column]) % n`` —
:func:`repro.ds.hashing.stable_hash` is type-tagged and process-
independent (strings hash through blake2b), so every coordinator,
shard, and restarted process agrees on row ownership regardless of
``PYTHONHASHSEED``.  Re-fragmenting the same rows to the same N is a
bit-identical no-op, which is what makes shard-local results safe to
recombine against a single-process oracle.
"""

from repro.ds.hashing import stable_hash

MANIFEST_VERSION = 1


class ShardMap:
    """Placement manifest for one sharded workspace.

    ``partition`` maps each partitioned base predicate to the column
    its rows are hashed on; predicates absent from the spec are
    *replicated* (present in full on every shard).
    """

    __slots__ = ("n_shards", "partition", "endpoints")

    def __init__(self, n_shards, partition=None, endpoints=None):
        n_shards = int(n_shards)
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1, got {}".format(n_shards))
        self.n_shards = n_shards
        self.partition = {}
        for pred, col in (partition or {}).items():
            col = int(col)
            if col < 0:
                raise ValueError(
                    "partition column for {} must be >= 0, got {}".format(
                        pred, col))
            self.partition[pred] = col
        self.endpoints = list(endpoints) if endpoints else []
        if self.endpoints and len(self.endpoints) != self.n_shards:
            raise ValueError(
                "{} endpoints for {} shards".format(
                    len(self.endpoints), self.n_shards))

    # -- placement -------------------------------------------------------------

    def is_partitioned(self, pred):
        return pred in self.partition

    def key_col(self, pred):
        """The hashed column of a partitioned predicate (or ``None``)."""
        return self.partition.get(pred)

    def shard_of_key(self, key):
        """The shard owning a partition-key value."""
        return stable_hash(key) % self.n_shards

    def shard_of(self, pred, row):
        """The shard owning ``row`` of ``pred`` (``None`` if replicated)."""
        col = self.partition.get(pred)
        if col is None:
            return None
        if col >= len(row):
            raise ValueError(
                "row {!r} of {} is narrower than partition column {}".format(
                    row, pred, col))
        return stable_hash(row[col]) % self.n_shards

    def fragment(self, pred, rows):
        """Split ``rows`` of a partitioned predicate into per-shard
        fragments; returns a list of ``n_shards`` row lists, each in the
        input's order (fragmenting is order- and content-deterministic,
        so re-sharding the same rows is a no-op)."""
        col = self.partition.get(pred)
        if col is None:
            raise ValueError("{} is not partitioned".format(pred))
        fragments = [[] for _ in range(self.n_shards)]
        for row in rows:
            fragments[stable_hash(row[col]) % self.n_shards].append(row)
        return fragments

    def split_delta(self, pred, delta):
        """Fragment one :class:`~repro.storage.relation.Delta` of a
        partitioned predicate; returns ``{shard_index: Delta}`` with
        empty shards omitted."""
        from repro.storage.relation import Delta

        col = self.partition[pred]
        added = [[] for _ in range(self.n_shards)]
        removed = [[] for _ in range(self.n_shards)]
        for row in delta.added:
            added[stable_hash(row[col]) % self.n_shards].append(row)
        for row in delta.removed:
            removed[stable_hash(row[col]) % self.n_shards].append(row)
        out = {}
        for index in range(self.n_shards):
            if added[index] or removed[index]:
                out[index] = Delta.from_iters(added[index], removed[index])
        return out

    # -- manifest --------------------------------------------------------------

    def manifest(self):
        """The wire/JSON form of this map (advertised over HELLO)."""
        return {
            "version": MANIFEST_VERSION,
            "n_shards": self.n_shards,
            "partition": dict(self.partition),
            "endpoints": list(self.endpoints),
        }

    @classmethod
    def from_manifest(cls, record):
        if record.get("version") != MANIFEST_VERSION:
            raise ValueError(
                "unsupported shard manifest version {!r}".format(
                    record.get("version")))
        return cls(
            record["n_shards"],
            partition=record.get("partition"),
            endpoints=record.get("endpoints"),
        )

    def __eq__(self, other):
        return (
            isinstance(other, ShardMap)
            and self.n_shards == other.n_shards
            and self.partition == other.partition
            and self.endpoints == other.endpoints
        )

    def __repr__(self):
        return "ShardMap(n={}, partition={})".format(
            self.n_shards, self.partition)
