"""The shard coordinator: one workspace facade over N hash shards.

A :class:`ShardedWorkspace` presents the ordinary workspace verb
surface (``addblock`` / ``load`` / ``exec`` / ``query`` / ``rows``)
over a fleet of shard backends, each holding one hash fragment of the
partitioned EDB predicates (placement per :class:`ShardMap`) plus a
full copy of everything replicated.  The coordinator holds **no
data** — only the installed program and its co-partition
classification (:func:`repro.engine.planner.classify_rules`):

* **addblock** classifies the combined program first and *refuses*
  rules that are not shard-local-exact for the partition spec (the
  classification names the reason), then installs the block on every
  shard; a partial installation is rolled back.
* **load** fragments partitioned predicates by ``stable_hash`` key and
  broadcasts replicated ones.
* **query** is planned by placement: co-partitioned answers run
  shard-local and recombine coordinator-side (union for keyed and
  scattered answers, per-group fold for sum/count/min/max partials);
  literal-key programs route to the single owning shard; everything
  else falls back to *gather* — fetch the global EDB extensions and
  evaluate on a scratch workspace (always exact, never fast).
* **exec** routes literal-key co-partitioned writes to the owning
  shard as a plain transaction; anything else runs the **cross-shard
  commit circuit** — the transaction-repair composition of Figure 7(b)
  stretched across processes, not classic 2PC:

  1. every shard executes the transaction against its own head
     snapshot (``shard_prepare``) and splits its effects into owned
     and *foreign* rows;
  2. the coordinator redistributes foreign rows to their owners and
     composes sibling corrections left-to-right — each shard's
     corrections are the others' replicated writes (excluding deltas
     identical to its own: the same logical write derived from
     replicated inputs on two shards is *one* write) plus the foreign
     rows it now owns — repairing incrementally (``shard_repair``)
     until no shard learns anything new;
  3. the final composed per-shard deltas commit in shard order
     (``shard_commit``).  A shard that raced a local commit refuses to
     diverge and raises ``ConflictError`` — the coordinator aborts and
     re-runs the whole circuit from fresh snapshots.  A failure after
     a partial commit is compensated by applying inverse deltas to the
     already-committed shards (``shard_apply``).

For co-partitioned programs the result is bit-identical to a single
process executing the same verbs (the equivalence suite's gate); for
programs with interacting cross-shard writes it is the serializable
left-to-right composition of the per-shard derivations.

Backends are duck-typed: in-process
:class:`~repro.service.TransactionService` objects
(:meth:`ShardedWorkspace.local`) and
:class:`~repro.net.client.NetSession` connections
(``repro.connect("shards://h1:p1,h2:p2,...")``) drive the identical
code path.  Like sessions, one coordinator serves one thread at a
time.

Caveat: float sums fold in shard order, which may differ bitwise from
single-process accumulation order; integer workloads recombine
bit-identically.
"""

import itertools
import operator
import time

from repro import obs as _obs
from repro import stats as _stats
from repro.engine.ir import Const, PredAtom
from repro.engine.planner import (
    KEY_PARTIAL_AGG,
    KEY_REPLICATED,
    base_pred,
    classify_rules,
)
from repro.logiql.compiler import compile_program
from repro.runtime.errors import ConflictError, ReproError
from repro.runtime.result import TxnResult
from repro.shard.executors import ShardExecutorPool
from repro.shard.shardmap import ShardMap
from repro.storage.relation import Delta

_block_counter = itertools.count(1)

#: per-shard aggregate partials the coordinator can fold back into the
#: global value.  ``avg`` is deliberately absent: a mean is not
#: recoverable from per-shard means, so avg heads that lose the
#: partition variable are refused at addblock and gathered in queries.
RECOMBINABLE_AGGS = {
    "sum": operator.add,
    "count": operator.add,
    "min": min,
    "max": max,
}

#: repair passes before the coordinator declares the circuit divergent
_MAX_REPAIR_PASSES = 4


class ShardError(ReproError):
    """A program or write cannot be placed on this shard map."""


class ShardCommitError(ShardError):
    """A cross-shard commit failed *and* compensation of the already
    committed shards failed: the fleet needs operator attention."""


def _union_rows(row_lists):
    merged = set()
    for rows in row_lists:
        merged.update(tuple(row) for row in rows)
    return sorted(merged)


class ShardedWorkspace:
    """Coordinator over ``n`` hash shards (see module docstring)."""

    def __init__(self, backends, shard_map, *, owns_backends=False,
                 max_retries=3, verify=True):
        backends = list(backends)
        if not isinstance(shard_map, ShardMap):
            raise TypeError("shard_map must be a ShardMap")
        if len(backends) != shard_map.n_shards:
            raise ValueError(
                "{} backends for a {}-shard map".format(
                    len(backends), shard_map.n_shards))
        self.shard_map = shard_map
        self._pool = ShardExecutorPool(backends)
        self._owns_backends = owns_backends
        self._max_retries = max_retries
        self._closed = False
        # the compiled program (no data!): block name -> (source, rules)
        self._blocks = {}
        self._analysis = classify_rules([], shard_map.partition)
        # base predicates known to hold data (partition spec + loads +
        # reactive write targets) — what the gather path must fetch
        self._edb_preds = set(shard_map.partition)
        if verify:
            self._verify_members()

    # -- construction ----------------------------------------------------------

    @classmethod
    def local(cls, n_shards, partition=None, *, max_retries=3,
              **config_kwargs):
        """Spin up ``n_shards`` in-process
        :class:`~repro.service.TransactionService` shards (each with
        its shard identity configured) — single-machine scale-up and
        the test/benchmark harness."""
        from repro.service import ServiceConfig, TransactionService

        backends = [
            TransactionService(config=ServiceConfig(
                shard_index=index, shard_count=n_shards, **config_kwargs))
            for index in range(n_shards)
        ]
        return cls(backends, ShardMap(n_shards, partition),
                   owns_backends=True, max_retries=max_retries)

    @classmethod
    def connect(cls, endpoints, partition=None, *, max_retries=3,
                **client_kwargs):
        """Connect to shard server processes at ``endpoints`` (a list
        of ``host:port``, index == shard index).  Each server's HELLO
        shard advertisement is checked against its position."""
        from repro.net.client import NetSession

        endpoints = [str(e).strip() for e in endpoints if str(e).strip()]
        backends = []
        try:
            for endpoint in endpoints:
                host, _, port = endpoint.rpartition(":")
                backends.append(
                    NetSession(host, int(port), **client_kwargs))
        except BaseException:
            for backend in backends:
                backend.close()
            raise
        return cls(
            backends,
            ShardMap(len(endpoints), partition, endpoints=endpoints),
            owns_backends=True, max_retries=max_retries)

    def _verify_members(self):
        """Every backend that advertises a shard identity must agree
        with its slot in the map — catching a mis-ordered endpoint list
        before a single row is routed."""
        for index in range(self.shard_map.n_shards):
            advert = None
            backend = self._pool.backend(index)
            shard = getattr(backend, "server_shard", None)
            if shard is not None:
                advert = (shard.get("index"), shard.get("count"))
            else:
                identity = getattr(backend, "shard_identity", None)
                if callable(identity):
                    advert = identity()
            if advert is None:
                continue
            if advert != (index, self.shard_map.n_shards):
                raise ShardError(
                    "backend {} advertises shard {}/{} but the map "
                    "places it at {}/{}".format(
                        index, advert[0], advert[1], index,
                        self.shard_map.n_shards))

    # -- program management ----------------------------------------------------

    def _installed_rules(self):
        rules = []
        for _, block_rules in self._blocks.values():
            rules.extend(block_rules)
        return rules

    def _classify(self, rules):
        """Classification plus the coordinator-side placement checks
        the per-rule transfer function cannot do (it does not know N):
        literal partition keys must co-reside on one shard."""
        analysis = classify_rules(rules, self.shard_map.partition)
        broken = list(analysis.broken)
        for rule in rules:
            anchor = analysis.anchors.get(id(rule))
            if anchor is None or anchor.kind != "const":
                continue
            owners = {self.shard_map.shard_of_key(c) for c in anchor.consts}
            if len(owners) > 1:
                broken.append((
                    rule,
                    "literal partition keys {} land on different "
                    "shards".format(list(anchor.consts))))
        return analysis, broken

    def addblock(self, source, name=None, *, timeout=None):
        """Install a block on every shard — after proving the combined
        program shard-local-exact for the partition spec."""
        self._check_open()
        if name is None:
            name = "shard-block-{}".format(next(_block_counter))
        block = compile_program(source)
        rules = list(block.rules) + list(block.reactive_rules)
        candidate = self._installed_rules() + rules
        analysis, broken = self._classify(candidate)
        if broken:
            reasons = "; ".join(
                "{}: {}".format(base_pred(rule.head_pred), reason)
                for rule, reason in broken[:3])
            raise ShardError(
                "block is not shard-local-exact for this partition "
                "spec ({})".format(reasons))
        for pred, cls in analysis.classes.items():
            if (cls.kind == KEY_PARTIAL_AGG
                    and cls.fn not in RECOMBINABLE_AGGS):
                raise ShardError(
                    "aggregate {}({}) cannot be recombined from "
                    "per-shard partials; keep the partition variable in "
                    "its group keys".format(cls.fn, pred))
        with _obs.span("shard.addblock", block=name,
                       shards=self.shard_map.n_shards):
            futures = self._pool.broadcast(
                "addblock", source, name=name)
            results, failed = self._collect(futures)
            if failed:
                # roll the block back off the shards that took it
                for index, result in enumerate(results):
                    if result is not None:
                        self._swallow(index, "removeblock", name)
                raise failed[0][1]
        self._blocks[name] = (source, rules)
        self._analysis = analysis
        self._note_edb_preds(rules)
        _stats.bump("shard.addblocks")
        return results[0]

    def removeblock(self, name, *, timeout=None):
        """Remove a block from every shard."""
        self._check_open()
        if isinstance(name, TxnResult):
            name = name.block
        if name not in self._blocks:
            raise KeyError("no such block: {}".format(name))
        with _obs.span("shard.removeblock", block=name):
            results, failed = self._collect(
                self._pool.broadcast("removeblock", name))
            if failed:
                raise failed[0][1]
        del self._blocks[name]
        self._analysis, _ = self._classify(self._installed_rules())
        return results[0]

    def blocks(self):
        """Installed block names (insertion order)."""
        return list(self._blocks)

    def _note_edb_preds(self, rules):
        derived = {base_pred(r.head_pred) for r in rules}
        derived.update(
            base_pred(r.head_pred) for _, rs in self._blocks.values()
            for r in rs)
        for rule in rules:
            for atom in rule.body:
                if isinstance(atom, PredAtom):
                    pred = base_pred(atom.pred)
                    if pred not in derived:
                        self._edb_preds.add(pred)

    # -- data ------------------------------------------------------------------

    def load(self, pred, tuples, remove=(), *, timeout=None):
        """Bulk load: partitioned predicates ship only each shard's
        fragment; replicated predicates broadcast in full."""
        self._check_open()
        tuples = [tuple(t) for t in tuples]
        remove = [tuple(t) for t in remove]
        self._edb_preds.add(pred)
        with _obs.span("shard.load", pred=pred, rows=len(tuples)):
            if self.shard_map.is_partitioned(pred):
                _stats.bump("shard.fragmented_loads")
                added = self.shard_map.fragment(pred, tuples)
                removed = self.shard_map.fragment(pred, remove)
                futures, targets = [], []
                for index in range(self.shard_map.n_shards):
                    if added[index] or removed[index]:
                        targets.append(index)
                        futures.append(self._pool.submit(
                            index, "load", pred, added[index],
                            removed[index]))
            else:
                _stats.bump("shard.replicated_loads")
                targets = list(range(self.shard_map.n_shards))
                futures = self._pool.broadcast("load", pred, tuples, remove)
            results, failed = self._collect(futures)
            if failed:
                # best-effort compensation: un-load the shards that
                # committed their fragment, then surface the failure
                for position, result in enumerate(results):
                    if result is None:
                        continue
                    index = targets[position]
                    for pname, delta in result.deltas.items():
                        self._swallow(
                            index, "load", pname,
                            sorted(delta.removed), sorted(delta.added))
                raise failed[0][1]
        return TxnResult(
            status="committed", kind="load",
            deltas={pred: Delta.from_iters(tuples, remove)})

    def rows(self, pred):
        """The predicate's *global* extension, recombined by placement:
        replicated from shard 0, partitioned/keyed/scattered as the
        deduplicated shard union, aggregate partials folded."""
        self._check_open()
        cls = self._class_of(pred)
        if cls.kind == KEY_REPLICATED and not self.shard_map.is_partitioned(pred):
            return [tuple(r) for r in self._pool.backend(0).rows(pred)]
        row_lists, failed = self._collect(self._pool.broadcast("rows", pred))
        if failed:
            raise failed[0][1]
        if cls.kind == KEY_PARTIAL_AGG:
            return self._recombine(cls.fn, row_lists)
        return _union_rows(row_lists)

    def _class_of(self, pred):
        pred = base_pred(pred)
        if self.shard_map.is_partitioned(pred):
            from repro.engine.planner import PredClass, KEY_KEYED

            return PredClass(KEY_KEYED, col=self.shard_map.key_col(pred))
        return self._analysis.class_of(pred)

    def _recombine(self, fn, row_lists):
        fold = RECOMBINABLE_AGGS[fn]
        groups = {}
        for rows in row_lists:
            for row in rows:
                row = tuple(row)
                key, value = row[:-1], row[-1]
                if key in groups:
                    groups[key] = fold(groups[key], value)
                else:
                    groups[key] = value
        _stats.bump("shard.recombined_groups", len(groups))
        return sorted(key + (value,) for key, value in groups.items())

    # -- queries ---------------------------------------------------------------

    def query(self, source, answer=None):
        """Evaluate a query program against the sharded fleet; returns
        the answer predicate's sorted global rows."""
        self._check_open()
        _stats.bump("shard.queries")
        block = compile_program(source)
        if block.reactive_rules:
            raise ShardError("queries cannot contain reactive rules")
        qrules = list(block.rules)
        if not qrules:
            return []
        analysis = classify_rules(
            qrules, self.shard_map.partition,
            seed_classes=self._analysis.classes)
        answer_pred = answer or (
            "_" if any(r.head_pred == "_" for r in qrules)
            else qrules[-1].head_pred)
        cls = analysis.class_of(answer_pred)
        _, broken = self._classify_query(qrules, analysis)
        gatherable = bool(broken) or (
            cls.kind == KEY_PARTIAL_AGG and cls.fn not in RECOMBINABLE_AGGS)
        with _obs.span("shard.query", answer=answer_pred,
                       placement=cls.kind) as span_:
            if gatherable:
                if span_ is not None:
                    span_.attrs["mode"] = "gather"
                return self._query_gather(source, answer, qrules)
            owner = self._const_owner(qrules, analysis)
            if owner is not None:
                _stats.bump("shard.single_shard_queries")
                if span_ is not None:
                    span_.attrs["mode"] = "route"
                return [tuple(r) for r in self._pool.backend(owner).query(
                    source, answer=answer)]
            if cls.kind == KEY_REPLICATED:
                if span_ is not None:
                    span_.attrs["mode"] = "route"
                return [tuple(r) for r in self._pool.backend(0).query(
                    source, answer=answer)]
            _stats.bump("shard.scatter_queries")
            if span_ is not None:
                span_.attrs["mode"] = "scatter"
            row_lists, failed = self._collect(
                self._pool.broadcast("query", source, answer=answer))
            if failed:
                raise failed[0][1]
            if cls.kind == KEY_PARTIAL_AGG:
                return self._recombine(cls.fn, row_lists)
            return _union_rows(row_lists)

    def _classify_query(self, qrules, analysis):
        broken = list(analysis.broken)
        for rule in qrules:
            anchor = analysis.anchors.get(id(rule))
            if anchor is not None and anchor.kind == "const":
                owners = {
                    self.shard_map.shard_of_key(c) for c in anchor.consts}
                if len(owners) > 1:
                    broken.append((rule, "literal keys cross shards"))
        return analysis, broken

    def _const_owner(self, rules, analysis):
        """The single shard owning every literal partition key of the
        program, or ``None`` when the program is not all-literal."""
        owners = set()
        for rule in rules:
            anchor = analysis.anchors.get(id(rule))
            if anchor is None or anchor.kind != "const":
                return None
            owners.update(
                self.shard_map.shard_of_key(c) for c in anchor.consts)
        if len(owners) == 1:
            return next(iter(owners))
        return None

    def _query_gather(self, source, answer, qrules):
        """The always-exact fallback: fetch global EDB extensions,
        rebuild on a scratch workspace, evaluate locally."""
        from repro.runtime.workspace import Workspace

        _stats.bump("shard.gather_queries")
        scratch = Workspace()
        for name, (block_source, _) in self._blocks.items():
            scratch.addblock(block_source, name=name)
        derived = {base_pred(r.head_pred) for r in qrules}
        derived.update(
            base_pred(r.head_pred) for _, rs in self._blocks.values()
            for r in rs)
        wanted = set(self._edb_preds)
        for rule in qrules:
            for atom in rule.body:
                if isinstance(atom, PredAtom):
                    pred = base_pred(atom.pred)
                    if pred not in derived:
                        wanted.add(pred)
        for pred in sorted(wanted):
            try:
                extension = self.rows(pred)
            except ReproError:
                continue  # declared nowhere / never written
            if extension:
                scratch.load(pred, extension)
        return scratch.query(source, answer)

    # -- writes ----------------------------------------------------------------

    def exec(self, source, *, timeout=None):
        """Run a reactive write transaction across the fleet."""
        self._check_open()
        block = compile_program(source)
        owner = self._single_shard_owner(block)
        if owner is not None:
            _stats.bump("shard.single_shard_execs")
            with _obs.span("shard.exec", mode="single", shard=owner):
                result = self._pool.backend(owner).exec(
                    source, timeout=timeout)
            self._note_edb_preds(block.reactive_rules)
            return result
        result = self._exec_circuit(source, timeout)
        self._note_edb_preds(
            list(block.reactive_rules) + list(block.rules))
        return result

    def _single_shard_owner(self, block):
        """The one shard a literal-key co-partitioned write program can
        run on as a plain transaction — every write lands on rows the
        shard owns and every read is owned or replicated.  ``None``
        when the program needs the circuit."""
        if block.rules or not block.reactive_rules:
            return None
        partition = self.shard_map.partition
        owners = set()
        for rule in block.reactive_rules:
            col = partition.get(base_pred(rule.head_pred))
            if col is None or col >= len(rule.head_args):
                return None  # replicated (or malformed) write target
            head_key = rule.head_args[col]
            if not isinstance(head_key, Const):
                return None
            owners.add(self.shard_map.shard_of_key(head_key.value))
            for atom in rule.body:
                if not isinstance(atom, PredAtom):
                    continue
                bcol = partition.get(base_pred(atom.pred))
                if bcol is None:
                    if self._class_of(atom.pred).kind != KEY_REPLICATED:
                        return None
                    continue
                if bcol >= len(atom.args):
                    return None
                term = atom.args[bcol]
                if not isinstance(term, Const):
                    return None
                owners.add(self.shard_map.shard_of_key(term.value))
        if len(owners) == 1:
            return next(iter(owners))
        return None

    def _exec_circuit(self, source, timeout):
        started = time.perf_counter()
        attempts = 0
        while True:
            attempts += 1
            try:
                result = self._run_circuit(source, timeout)
            except ConflictError:
                # a shard raced a local commit mid-circuit; everything
                # was aborted/compensated — re-run from fresh snapshots
                if attempts > self._max_retries:
                    raise
                _stats.bump("shard.circuit_retries")
                continue
            result.attempts = attempts
            result.latency_s = time.perf_counter() - started
            return result

    def _run_circuit(self, source, timeout):
        n = self.shard_map.n_shards
        partition = dict(self.shard_map.partition)
        with _obs.span("shard.exec", mode="circuit", shards=n) as span_:
            prepared = self._prepare_all(source, partition, timeout)
            _stats.bump("shard.circuits")
            try:
                own = {i: dict(p["effects"]) for i, p in prepared.items()}
                incoming = self._redistribute(
                    {i: p["foreign"] for i, p in prepared.items()})
                repairs = self._repair_circuit(
                    prepared, own, incoming, partition)
                final = self._compose_final(own, incoming)
            except BaseException:
                self._abort_tokens(prepared)
                raise
            if span_ is not None:
                span_.attrs["repairs"] = repairs
            deltas = self._commit_all(prepared, final, timeout)
            _stats.bump("shard.circuit_commits")
            return TxnResult(
                status="committed", kind="exec", deltas=deltas,
                repairs=repairs)

    def _prepare_all(self, source, partition, timeout):
        n = self.shard_map.n_shards
        futures = [
            self._pool.submit(
                index, "shard_prepare", source, partition=partition,
                shard_index=index, shard_count=n, timeout=timeout)
            for index in range(n)
        ]
        results, failed = self._collect(futures)
        if failed:
            prepared = {
                i: r for i, r in enumerate(results) if r is not None}
            self._abort_tokens(prepared)
            raise failed[0][1]
        return dict(enumerate(results))

    def _redistribute(self, foreign):
        """Foreign rows (written by one shard, owned by another) routed
        to their owners; returns per-shard ``{pred: (added, removed)}``
        row sets."""
        incoming = {i: {} for i in range(self.shard_map.n_shards)}
        moved = 0
        for index, effects in foreign.items():
            for pred, delta in effects.items():
                for owner, part in self.shard_map.split_delta(
                        pred, delta).items():
                    added, removed = incoming[owner].setdefault(
                        pred, (set(), set()))
                    added.update(part.added)
                    removed.update(part.removed)
                    moved += len(part)
        if moved:
            _stats.bump("shard.redistributed_rows", moved)
        return incoming

    def _corrections_for(self, index, own, incoming):
        """Everything shard ``index`` must learn from its siblings:
        their replicated-predicate writes (minus deltas identical to
        its own — one logical write) plus the redistributed rows it now
        owns.  Returned as ``{pred: (added_set, removed_set)}``."""
        partition = self.shard_map.partition
        totals = {}
        mine = own[index]
        for other, effects in own.items():
            if other == index:
                continue
            for pred, delta in effects.items():
                if pred in partition:
                    continue  # partitioned rows travel via redistribute
                added, removed = totals.setdefault(pred, (set(), set()))
                added.update(delta.added)
                removed.update(delta.removed)
        for pred, (added, removed) in totals.items():
            conflict = added & removed
            if conflict:
                raise ShardError(
                    "shards disagree on replicated {}: {} both added "
                    "and removed".format(pred, sorted(conflict)[:3]))
            own_delta = mine.get(pred)
            if own_delta is not None:
                added.difference_update(own_delta.added)
                removed.difference_update(own_delta.removed)
        for pred, (added, removed) in incoming[index].items():
            tadded, tremoved = totals.setdefault(pred, (set(), set()))
            tadded.update(added)
            tremoved.update(removed)
        return {
            pred: pair for pred, pair in totals.items()
            if pair[0] or pair[1]
        }

    def _repair_circuit(self, prepared, own, incoming, partition):
        """Left-to-right repair until no shard learns anything new
        (Figure 7(b) composed across processes).  Mutates ``own`` and
        ``incoming`` in place; returns the repair count."""
        n = self.shard_map.n_shards
        delivered = {i: {} for i in range(n)}
        repairs = 0
        for _ in range(_MAX_REPAIR_PASSES):
            changed = False
            for index in range(n):
                totals = self._corrections_for(index, own, incoming)
                fresh = {}
                for pred, (added, removed) in totals.items():
                    seen_added, seen_removed = delivered[index].setdefault(
                        pred, (set(), set()))
                    new_added = added - seen_added
                    new_removed = removed - seen_removed
                    if new_added or new_removed:
                        fresh[pred] = Delta.from_iters(
                            sorted(new_added), sorted(new_removed))
                        seen_added.update(new_added)
                        seen_removed.update(new_removed)
                if not fresh:
                    continue
                changed = True
                repairs += 1
                _stats.bump("shard.repaired_members")
                reply = self._pool.backend(index).shard_repair(
                    prepared[index]["token"], fresh,
                    partition=partition, shard_index=index, shard_count=n)
                own[index] = dict(reply["effects"])
                for pred, delta in reply["foreign"].items():
                    for owner, part in self.shard_map.split_delta(
                            pred, delta).items():
                        added, removed = incoming[owner].setdefault(
                            pred, (set(), set()))
                        added.update(part.added)
                        removed.update(part.removed)
            if not changed:
                return repairs
        raise ShardError(
            "cross-shard repair did not converge after {} passes "
            "(mutually amplifying writes?)".format(_MAX_REPAIR_PASSES))

    def _compose_final(self, own, incoming):
        """The per-shard commit deltas: replicated writes are the
        deduplicated union across shards (identical on every shard);
        partitioned writes are each shard's owned rows plus what was
        redistributed to it."""
        partition = self.shard_map.partition
        replicated = {}
        for effects in own.values():
            for pred, delta in effects.items():
                if pred in partition:
                    continue
                added, removed = replicated.setdefault(pred, (set(), set()))
                added.update(delta.added)
                removed.update(delta.removed)
        for pred, (added, removed) in replicated.items():
            conflict = added & removed
            if conflict:
                raise ShardError(
                    "shards disagree on replicated {}: {} both added "
                    "and removed".format(pred, sorted(conflict)[:3]))
        final = {}
        for index in range(self.shard_map.n_shards):
            deltas = {}
            for pred, (added, removed) in replicated.items():
                if added or removed:
                    deltas[pred] = Delta.from_iters(
                        sorted(added), sorted(removed))
            owned = {}
            for pred, delta in own[index].items():
                if pred in partition:
                    owned[pred] = (set(delta.added), set(delta.removed))
            for pred, (added, removed) in incoming[index].items():
                oadded, oremoved = owned.setdefault(pred, (set(), set()))
                oadded.update(added)
                oremoved.update(removed)
            for pred, (added, removed) in owned.items():
                conflict = added & removed
                if conflict:
                    raise ShardError(
                        "conflicting add/remove of {} rows {}".format(
                            pred, sorted(conflict)[:3]))
                if added or removed:
                    deltas[pred] = Delta.from_iters(
                        sorted(added), sorted(removed))
            final[index] = deltas
        return final

    def _commit_all(self, prepared, final, timeout):
        """Commit shard by shard in ascending order; compensate the
        committed prefix if a later shard fails."""
        committed = []
        combined = {}
        try:
            for index in sorted(prepared):
                token = prepared.pop(index)["token"]
                deltas = final[index]
                self._pool.backend(index).shard_commit(
                    token, deltas, timeout=timeout)
                committed.append((index, deltas))
        except BaseException as exc:
            self._abort_tokens(prepared)
            self._compensate(committed, exc)
            raise
        partition = self.shard_map.partition
        for index, deltas in committed:
            for pred, delta in deltas.items():
                if pred in partition:
                    if pred in combined:
                        combined[pred] = Delta(
                            combined[pred].added | delta.added,
                            combined[pred].removed | delta.removed)
                    else:
                        combined[pred] = delta
                else:
                    combined.setdefault(pred, delta)  # identical everywhere
        return combined

    def _compensate(self, committed, cause):
        if not committed:
            return
        _stats.bump("shard.compensations")
        failures = []
        for index, deltas in committed:
            inverse = {
                pred: delta.inverse() for pred, delta in deltas.items()}
            try:
                self._pool.backend(index).shard_apply(inverse)
            except BaseException as exc:  # noqa: BLE001 - reported below
                failures.append((index, exc))
        if failures:
            raise ShardCommitError(
                "cross-shard commit failed on {} and compensation of "
                "already-committed shards {} also failed — the fleet "
                "is inconsistent".format(
                    cause.__class__.__name__,
                    sorted(index for index, _ in failures))) from cause

    def _abort_tokens(self, prepared):
        for index, entry in list(prepared.items()):
            self._swallow(index, "shard_abort", entry["token"])
        prepared.clear()

    # -- introspection / lifecycle ---------------------------------------------

    def manifest(self):
        """The shard map manifest (wire/JSON form)."""
        return self.shard_map.manifest()

    def status(self):
        """Coordinator + per-member status."""
        members, failed = self._collect(self._pool.broadcast("status"))
        return {
            "role": "coordinator",
            "shards": self.shard_map.n_shards,
            "map": self.manifest(),
            "blocks": list(self._blocks),
            "members": [
                member if member is not None else {"error": str(error)}
                for member, (_, error) in itertools.zip_longest(
                    members, failed, fillvalue=(None, None))
            ] if failed else members,
        }

    def _collect(self, futures):
        """Wait for every future; returns ``(results, failed)`` where
        ``results[i]`` is ``None`` for a failed slot and ``failed`` is
        ``[(slot, exception), ...]``."""
        results = [None] * len(futures)
        failed = []
        for index, future in enumerate(futures):
            try:
                results[index] = future.result()
            except BaseException as exc:  # noqa: BLE001 - reported upward
                failed.append((index, exc))
        return results, failed

    def _swallow(self, index, verb, *args):
        try:
            self._pool.submit(index, verb, *args).result()
        except BaseException:  # noqa: BLE001 - best-effort cleanup
            pass

    def close(self):
        if self._closed:
            return
        self._closed = True
        if self._owns_backends:
            for index in range(self.shard_map.n_shards):
                try:
                    self._pool.backend(index).close()
                except BaseException:  # noqa: BLE001 - shutdown path
                    pass
        self._pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _check_open(self):
        if self._closed:
            raise ReproError("sharded workspace is closed")

    def __repr__(self):
        return "ShardedWorkspace(n={}, partition={}, blocks={})".format(
            self.shard_map.n_shards, dict(self.shard_map.partition),
            len(self._blocks))
