"""The meta-rules, written in LogiQL itself (paper §3.3).

The paper: "the meta-engine uses meta-rules to declaratively describe
the LogiQL code as collections of meta-facts and their relationships
... There are currently about 200 meta-rules".  This reproduction
implements a representative subset covering the mechanisms the paper
spells out — EDB/IDB inference (the ``lang_edb`` example), frame-rule
bookkeeping (the ``need_frame_rule`` example), the execution-graph
dependency closure that tells the engine proper which derived
predicates to revise, and a handful of code invariants (aggregate or
negation through recursion, multi-block definitions, sampling-rule
sites).

The meta-rules are compiled and evaluated by this very engine, and the
meta-fact collections are maintained incrementally under
addblock/removeblock exactly like any other materialized views.
"""

META_RULES_SOURCE = """
// ---- EDB/IDB inference (the paper's first example meta-rule) ----
lang_idb(p) <- rule_head_pred(r, p).
lang_edb(p) <- lang_predname(p), !lang_idb(p).

// ---- frame rules (the paper's second example meta-rule) ----
// a base predicate needs a frame rule when some rule head writes its
// delta predicates
need_frame_rule(p) <- delta_head_base(r, p).

// ---- the execution graph: predicates are nodes, rules are edges ----
depends(p, q) <- rule_head_pred(r, p), rule_body_pred(r, q).
depends(p, q) <- rule_head_pred(r, p), rule_body_negpred(r, q).
negdep(p, q) <- rule_head_pred(r, p), rule_body_negpred(r, q).
depends_tc(p, q) <- depends(p, q).
depends_tc(p, q) <- depends_tc(p, x), depends(x, q).

// ---- revision propagation: which views must the engine revise? ----
dirty(p) <- changed_rule(r), rule_head_pred(r, p).
dirty(p) <- changed_base(p).
need_revision(p) <- dirty(p).
need_revision(p) <- need_revision(q), depends(p, q).

// ---- code invariants and diagnostics ----
recursive_pred(p) <- depends_tc(p, p).
agg_pred(p) <- rule_head_pred(r, p), rule_is_agg(r).
bad_agg_recursion(p) <- agg_pred(p), recursive_pred(p).
bad_neg_recursion(p) <- negdep(p, q), depends_tc(q, p).
bad_neg_recursion(p) <- negdep(p, p).
defined_in_block(p, b) <- rule_in_block(b, r), rule_head_pred(r, p).
multi_block_pred(p) <- defined_in_block(p, b1), defined_in_block(p, b2), b1 != b2.
undefined_pred(p) <- rule_body_pred(r, p), !lang_predname(p).

// ---- materialization policy (paper §2.2.1: derived predicates
// default to materialized, but may be left unmaterialized when the
// derivation uses no aggregation or recursion) ----
must_materialize(p) <- agg_pred(p).
must_materialize(p) <- recursive_pred(p).
may_unmaterialize(p) <- lang_idb(p), !must_materialize(p).

// ---- optimizer support: on-the-fly creation of sampling rules ----
sampling_site(p) <- rule_body_pred(r, p), lang_edb(p).
"""

# The base meta-predicates populated from compiled blocks:
META_BASE_PREDS = {
    "lang_predname": 1,  # every predicate name mentioned anywhere
    "rule_in_block": 2,  # (block, rule-id)
    "rule_head_pred": 2,  # (rule-id, head predicate)
    "rule_body_pred": 2,  # (rule-id, positive body predicate)
    "rule_body_negpred": 2,  # (rule-id, negated body predicate)
    "rule_is_agg": 1,  # (rule-id)
    "delta_head_base": 2,  # (rule-id, base predicate of a +/- head)
    "declared_pred": 1,  # explicitly declared predicates
    "changed_rule": 1,  # transient: rules added/removed this update
    "changed_base": 1,  # transient: base predicates changed this update
}
