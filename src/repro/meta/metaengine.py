"""The meta-engine proper (paper §3.3, Figure 6).

"While the engine proper deals with maintenance of the derived
predicates for a given program, the meta-engine maintains the program
under code updates and informs the engine proper which derived
predicates should be revised."

Implementation: the user program is reflected into *meta-facts*
(``rule_head_pred``, ``rule_body_pred``, ...); the meta-rules of
:mod:`repro.meta.metarules` — themselves LogiQL, compiled and evaluated
by this system's own engine — derive the execution graph, EDB/IDB
classification, frame-rule needs, revision sets, and code invariants.
``addblock``/``removeblock`` turn into deltas on the meta-facts, and
the same incremental view maintenance that serves user data maintains
the meta-level state.
"""

from repro import obs
from repro import stats as global_stats
from repro.ds.hashing import stable_hash
from repro.engine.evaluator import RuleSet
from repro.engine.ir import PredAtom
from repro.engine.ivm import IncrementalEngine
from repro.logiql.compiler import compile_program
from repro.meta.metarules import META_BASE_PREDS, META_RULES_SOURCE
from repro.storage.relation import Delta, Relation

_meta_block = compile_program(META_RULES_SOURCE)
_META_RULESET = RuleSet(_meta_block.rules)


def block_meta_facts(block_name, block):
    """The meta-facts contributed by one compiled block."""
    facts = {pred: set() for pred in META_BASE_PREDS}

    def note_pred(name):
        facts["lang_predname"].add((name,))

    all_rules = list(block.rules) + list(block.reactive_rules)
    for index, rule in enumerate(all_rules):
        # content-hashed rule id: editing a formula (even without
        # changing the predicates involved) must register as a change
        rid = "{}#{}:{:08x}".format(
            block_name, index, stable_hash(repr(rule)) & 0xFFFFFFFF
        )
        facts["rule_in_block"].add((block_name, rid))
        head = rule.head_pred
        if head and head[0] in "+-":
            facts["delta_head_base"].add((rid, head[1:]))
            note_pred(head[1:])
        else:
            facts["rule_head_pred"].add((rid, head))
            note_pred(head)
        if rule.agg is not None:
            facts["rule_is_agg"].add((rid,))
        for atom in rule.body:
            if not isinstance(atom, PredAtom):
                continue
            name = atom.pred
            base = name
            if base.endswith("@start"):
                base = base[: -len("@start")]
            if base and base[0] in "+-":
                base = base[1:]
            note_pred(base)
            if atom.negated:
                facts["rule_body_negpred"].add((rid, name))
            else:
                facts["rule_body_pred"].add((rid, name))
    for decl in block.decls:
        facts["declared_pred"].add((decl.name,))
        note_pred(decl.name)
    for constraint in block.constraints:
        for atom in constraint.lhs + constraint.rhs:
            if isinstance(atom, PredAtom) and not atom.pred.startswith("@"):
                note_pred(atom.pred)
    return facts


class MetaState:
    """Immutable snapshot of the meta-level materialization."""

    __slots__ = ("materialization", "block_facts")

    def __init__(self, materialization, block_facts):
        self.materialization = materialization
        self.block_facts = block_facts  # block name -> fact dict

    def relation(self, name):
        """A derived or base meta-relation."""
        return self.materialization.relations.get(name, Relation.empty(1))

    def rows(self, name):
        """Rows of a meta-relation, sorted."""
        return sorted(self.relation(name))

    def members(self, name):
        """First column of a meta-relation as a set (for unary views)."""
        return {t[0] for t in self.relation(name)}


class MetaEngine:
    """Maintains the meta-level materialization under program changes."""

    def __init__(self):
        self.engine = IncrementalEngine(_META_RULESET)

    def initial(self):
        """Meta-state of the empty program."""
        bases = {
            pred: Relation.empty(arity) for pred, arity in META_BASE_PREDS.items()
        }
        return MetaState(self.engine.initialize(bases), {})

    def _facts_delta(self, old_facts, new_facts):
        deltas = {}
        for pred in META_BASE_PREDS:
            before = old_facts.get(pred, set())
            after = new_facts.get(pred, set())
            if before != after:
                deltas[pred] = Delta.from_iters(after - before, before - after)
        return deltas

    def update(self, meta_state, block_name, block, changed_bases=()):
        """Apply an addblock/removeblock (``block`` may be ``None`` for
        removal); returns ``(new_meta_state, need_revision)``.

        ``need_revision`` is the set of predicates the engine proper
        must re-materialize — the paper's "informs the engine proper
        which derived predicates have to be maintained as result of the
        program change".
        """
        with obs.span(
            "meta.update", block=block_name, removed=block is None
        ) as span_:
            result = self._update(meta_state, block_name, block, changed_bases)
            if span_ is not None:
                span_.attrs["need_revision"] = len(result[1])
            return result

    def _update(self, meta_state, block_name, block, changed_bases):
        global_stats.bump("meta.updates")
        old_facts = meta_state.block_facts.get(block_name, {})
        new_facts = block_meta_facts(block_name, block) if block is not None else {}
        deltas = self._facts_delta(old_facts, new_facts)

        # transient change markers for the revision meta-rules
        changed_rules = set()
        for pred in ("rule_in_block",):
            delta = deltas.get(pred)
            if delta:
                changed_rules |= {t[1] for t in delta.added}
                changed_rules |= {t[1] for t in delta.removed}
        # a rule whose facts changed in any way counts as changed
        for pred in ("rule_head_pred", "rule_body_pred", "rule_body_negpred"):
            delta = deltas.get(pred)
            if delta:
                changed_rules |= {t[0] for t in delta.added}
                changed_rules |= {t[0] for t in delta.removed}
        markers = {
            "changed_rule": Delta.from_iters(
                {(rid,) for rid in changed_rules}, ()
            )
        }
        if changed_bases:
            markers["changed_base"] = Delta.from_iters(
                {(name,) for name in changed_bases}, ()
            )

        # mark first and read against the OLD facts (removed rules'
        # heads need revision too), then apply the block's fact deltas
        # and read again (added rules' heads), then clear the markers
        mat, _ = self.engine.apply(meta_state.materialization, markers)
        need_revision = {t[0] for t in mat.relations.get("need_revision", ())}
        mat, _ = self.engine.apply(mat, deltas)
        need_revision |= {t[0] for t in mat.relations.get("need_revision", ())}

        clear = {}
        marker = mat.relations.get("changed_rule")
        if marker is not None and len(marker):
            clear["changed_rule"] = Delta.from_iters((), set(marker))
        marker = mat.relations.get("changed_base")
        if marker is not None and len(marker):
            clear["changed_base"] = Delta.from_iters((), set(marker))
        if clear:
            mat, _ = self.engine.apply(mat, clear)

        block_facts = dict(meta_state.block_facts)
        if block is None:
            block_facts.pop(block_name, None)
        else:
            block_facts[block_name] = new_facts
        return MetaState(mat, block_facts), need_revision
