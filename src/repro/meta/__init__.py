"""The meta-engine: live programming support (paper §3.3)."""

from repro.meta.metaengine import MetaEngine, META_RULES_SOURCE

__all__ = ["MetaEngine", "META_RULES_SOURCE"]
