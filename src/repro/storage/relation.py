"""Persistent relations: immutable sets of tuples under set semantics.

A relation version is a persistent treap of tuples in lexicographic
order (the paper's "persistent B-tree-like data structures" for paged
data, §3.1).  Updates produce new versions sharing structure; diffing
two versions costs time proportional to their edit distance.

Secondary indexes are column permutations of the tuple set (paper §3.2:
"a secondary index is required on one of the two predicates").  They are
cached per relation version and maintained *incrementally* when a delta
is applied, so a small write to a large indexed relation stays cheap.
"""

import random

from repro import stats
from repro.ds import treap
from repro.ds.pset import PSet
from repro.ds.treap import MISSING


class Delta:
    """A set of insertions and deletions against one relation.

    ``added`` and ``removed`` are disjoint :class:`PSet` s of tuples; a
    delta is the paper's ``+R`` / ``-R`` pair (§2.2.1).
    """

    __slots__ = ("added", "removed")

    def __init__(self, added=None, removed=None):
        self.added = added if added is not None else PSet.EMPTY
        self.removed = removed if removed is not None else PSet.EMPTY

    @classmethod
    def from_iters(cls, added=(), removed=()):
        """Build a delta from plain iterables of tuples."""
        return cls(PSet.from_iter(added), PSet.from_iter(removed))

    def __bool__(self):
        return bool(self.added) or bool(self.removed)

    def __len__(self):
        return len(self.added) + len(self.removed)

    def inverse(self):
        """The delta undoing this one."""
        return Delta(self.removed, self.added)

    def then(self, later):
        """Compose: apply ``self`` first, ``later`` second."""
        added = (self.added - later.removed) | later.added
        removed = (self.removed - later.added) | later.removed
        return Delta(added, removed)

    def normalized(self, base):
        """Restrict to changes that actually alter ``base``.

        A tuple in both ``added`` and ``removed`` resolves to "added"
        (``apply`` removes first, then adds); insertions of present
        tuples and deletions of absent tuples are dropped, so the
        result is exactly the edit set.
        """
        removed = self.removed - self.added
        added = PSet.from_iter(t for t in self.added if t not in base)
        removed = PSet.from_iter(t for t in removed if t in base)
        return Delta(added, removed)

    def map_tuples(self, fn):
        """A delta with ``fn`` applied to every tuple."""
        return Delta.from_iters(
            (fn(t) for t in self.added), (fn(t) for t in self.removed)
        )

    def __repr__(self):
        return "Delta(+{}, -{})".format(len(self.added), len(self.removed))


def _permute(tup, perm):
    return tuple(tup[i] for i in perm)


def _invert_perm(perm):
    inverse = [0] * len(perm)
    for position, source in enumerate(perm):
        inverse[source] = position
    return tuple(inverse)


def _merge_sorted(rows, added, removed):
    """``rows`` minus ``removed`` merged with sorted ``added`` (one linear
    pass; removal wins first, re-insertion via ``added`` wins last, which
    matches ``(tuples - removed) | added``)."""
    out = []
    position = 0
    count = len(added)
    for row in rows:
        while position < count and added[position] < row:
            out.append(added[position])
            position += 1
        if position < count and added[position] == row:
            out.append(row)
            position += 1
            continue
        if row in removed:
            continue
        out.append(row)
    out.extend(added[position:])
    return out


class Relation:
    """One immutable version of a predicate's extension."""

    __slots__ = ("arity", "_tuples", "_indexes", "_flat", "_columnar")

    def __init__(self, arity, tuples=None, indexes=None, flats=None):
        self.arity = arity
        self._tuples = tuples if tuples is not None else PSet.EMPTY
        # perm (tuple) -> PSet of permuted tuples; identity perm excluded
        self._indexes = indexes if indexes is not None else {}
        # perm (tuple) -> list of permuted tuples, sorted; lazy cache
        self._flat = flats if flats is not None else {}
        # perm (tuple) -> ColumnarLayout | ColumnarUnsupported; lazy
        # cache for the vectorized backend (per version, like _flat;
        # rebuilt from the promoted flat array after a delta)
        self._columnar = {}

    @classmethod
    def empty(cls, arity):
        """The empty relation of the given arity."""
        return cls(arity)

    @classmethod
    def from_iter(cls, arity, tuples):
        """Build from an iterable of tuples (deduplicated, validated)."""
        materialized = sorted({tuple(t) for t in tuples})
        for t in materialized:
            if len(t) != arity:
                raise ValueError(
                    "tuple {!r} has arity {}, expected {}".format(t, len(t), arity)
                )
        return cls(arity, PSet.from_sorted(materialized))

    # -- queries ---------------------------------------------------------

    def __len__(self):
        return len(self._tuples)

    def __bool__(self):
        return bool(self._tuples)

    def __contains__(self, tup):
        return tuple(tup) in self._tuples

    def __iter__(self):
        return iter(self._tuples)

    def tuples(self):
        """The underlying persistent tuple set."""
        return self._tuples

    def iter_prefix(self, prefix):
        """Iterate tuples starting with ``prefix`` (a tuple of values)."""
        prefix = tuple(prefix)
        depth = len(prefix)
        for tup in self._tuples.iter_from(prefix):
            if tup[:depth] != prefix:
                break
            yield tup

    def lookup(self, keys, default=MISSING):
        """Functional access: the value for key tuple ``keys``.

        For a functional predicate ``R[k...] = v`` returns ``v`` (the
        last attribute of the unique tuple extending ``keys``) or
        ``default``.
        """
        for tup in self.iter_prefix(tuple(keys)):
            return tup[-1]
        return default

    def sample(self, count, seed=0):
        """Up to ``count`` tuples sampled without replacement.

        Used by the sampling-based optimizer (paper §3.2: "small
        representative samples of predicates are maintained").
        """
        size = len(self)
        if size == 0:
            return []
        rng = random.Random(seed)
        if count >= size:
            return list(self)
        picks = rng.sample(range(size), count)
        root = self._tuples._root
        return [treap.kth(root, i)[0] for i in sorted(picks)]

    def structural_hash(self):
        """Memoized content hash (O(1) version equality)."""
        return self._tuples.structural_hash()

    def __eq__(self, other):
        if not isinstance(other, Relation):
            return NotImplemented
        return self.arity == other.arity and self._tuples == other._tuples

    def __ne__(self, other):
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __hash__(self):
        return hash((self.arity, self._tuples.structural_hash()))

    # -- persistent updates ----------------------------------------------

    def insert(self, tup):
        """New version including ``tup``."""
        tup = tuple(tup)
        if len(tup) != self.arity:
            raise ValueError("arity mismatch: {!r}".format(tup))
        return self.apply(Delta(PSet.from_iter([tup])))

    def remove(self, tup):
        """New version excluding ``tup``."""
        return self.apply(Delta(removed=PSet.from_iter([tuple(tup)])))

    def apply(self, delta):
        """Apply a :class:`Delta`, maintaining cached secondary indexes
        incrementally (treap indexes at O(|delta| log n); flat arrays by
        a linear merge, never a re-sort), so the new version starts with
        every cache of its parent already warm."""
        if not delta:
            return self
        tuples = (self._tuples - delta.removed) | delta.added
        if tuples == self._tuples:
            return self
        identity = tuple(range(self.arity))
        indexes = {}
        flats = {}
        for perm, index in self._indexes.items():
            permuted = delta.map_tuples(lambda t, p=perm: _permute(t, p))
            indexes[perm] = (index - permuted.removed) | permuted.added
            stats.bump("relation.index_promotions")
        for perm, rows in self._flat.items():
            # promoting a huge edit through a linear merge would cost
            # more than a lazy rebuild; drop the cache instead
            if len(delta) * 4 > len(rows) + 16:
                continue
            if perm == identity:
                added = sorted(delta.added)
                removed = set(delta.removed)
            else:
                added = sorted(_permute(t, perm) for t in delta.added)
                removed = {_permute(t, perm) for t in delta.removed}
            flats[perm] = _merge_sorted(rows, added, removed)
            stats.bump("relation.flat_promotions")
        return Relation(self.arity, tuples, indexes, flats)

    def diff(self, new):
        """The :class:`Delta` turning this version into ``new``.

        Prunes shared subtrees, so related versions diff in time
        proportional to their edit distance.
        """
        added, removed = [], []
        for element, in_old, in_new in self._tuples.diff(new._tuples):
            if in_new and not in_old:
                added.append(element)
            elif in_old and not in_new:
                removed.append(element)
        return Delta.from_iters(added, removed)

    def union(self, other):
        """Set union of two same-arity relations.

        Routed through :meth:`apply` so the receiver's warm indexes and
        arrays are promoted into the result instead of starting cold;
        a no-op union returns ``self`` unchanged."""
        if not other:
            return self
        if not self:
            return other
        return self.apply(Delta(added=other._tuples))

    def intersect(self, other):
        """Set intersection."""
        return Relation(self.arity, self._tuples & other._tuples)

    def subtract(self, other):
        """Set difference (cache-promoting, like :meth:`union`)."""
        if not other or not self:
            return self
        return self.apply(Delta(removed=other._tuples))

    def project(self, columns):
        """Projection onto the given column positions (set semantics)."""
        columns = tuple(columns)
        return Relation.from_iter(
            len(columns), (_permute(t, columns) for t in self._tuples)
        )

    # -- index & iteration backends ----------------------------------------

    def index_root(self, perm):
        """Treap root of the tuple set permuted by ``perm`` (cached).

        ``perm`` is a tuple of source column positions; the identity
        permutation returns the primary storage.
        """
        perm = tuple(perm)
        if perm == tuple(range(self.arity)):
            return self._tuples._root
        index = self._indexes.get(perm)
        if index is None:
            stats.bump("relation.index_misses")
            index = PSet.from_sorted(sorted(_permute(t, perm) for t in self._tuples))
            self._indexes[perm] = index
        else:
            stats.bump("relation.index_hits")
        return index._root

    def flat(self, perm):
        """Sorted list of tuples permuted by ``perm`` (cached).

        The array backend for trie iterators: bisect-based seeks are
        several times faster than treap descents in CPython.  Only
        worth materializing for relations that will be scanned a lot
        (the evaluator requests it for full, non-incremental runs).
        """
        perm = tuple(perm)
        cached = self._flat.get(perm)
        if cached is None:
            stats.bump("relation.flat_misses")
            if perm == tuple(range(self.arity)):
                cached = list(self._tuples)
            else:
                cached = sorted(_permute(t, perm) for t in self._tuples)
            self._flat[perm] = cached
        else:
            stats.bump("relation.flat_hits")
        return cached

    def has_flat(self, perm):
        """True when the array backend is already materialized."""
        return tuple(perm) in self._flat

    def columnar(self, perm):
        """Column-encoded layout of the tuples permuted by ``perm``
        (cached per version, like :meth:`flat`).

        Raises :class:`~repro.storage.columnar.ColumnarUnsupported`
        when the values do not dictionary-encode (or numpy is absent);
        the failure itself is cached so repeated probes stay cheap.
        """
        from repro.storage.columnar import ColumnarLayout, ColumnarUnsupported

        perm = tuple(perm)
        cached = self._columnar.get(perm)
        if cached is None:
            stats.bump("relation.columnar_misses")
            try:
                cached = ColumnarLayout(self.flat(perm), self.arity)
            except ColumnarUnsupported as exc:
                cached = exc
            self._columnar[perm] = cached
        else:
            stats.bump("relation.columnar_hits")
        if isinstance(cached, ColumnarUnsupported):
            raise cached
        return cached

    def __repr__(self):
        preview = ", ".join(repr(t) for t in list(self._tuples)[:3])
        suffix = ", ..." if len(self) > 3 else ""
        return "Relation(arity={}, n={}, [{}{}])".format(
            self.arity, len(self), preview, suffix
        )
