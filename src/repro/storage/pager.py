"""Durable workspace checkpoints with structural sharing (paper §3).

The paper's purely functional storage makes durability almost free of
machinery: because treap nodes are immutable and uniquely represented,
persisting a workspace is writing the nodes that are not yet on disk
and atomically swapping a root pointer — no write-ahead log, no redo
recovery.  This module is that subsystem:

* **Content-addressed node store** — every treap node is encoded with a
  deterministic binary codec and stored under the blake2b-128 digest of
  its encoding (a Merkle address: the encoding embeds the children's
  addresses).  Structurally shared subtrees therefore serialize to the
  *same* record and are written exactly once, no matter how many
  relations, branches, or historical versions reference them.  Records
  live in append-only ``nodes-NNNNNN.pack`` files.

* **Incremental checkpoints** — a checkpoint walks each root and prunes
  the walk at every node already known to the store (an in-memory
  ``id(node) → address`` memo catches survivors from the previous
  checkpoint; the on-disk index catches everything else).  Work is
  proportional to the diff since the last checkpoint, mirroring the
  version-DAG diffing of §3.

* **Atomic manifest** — after the new pack is fsynced, a manifest
  naming the root address of every predicate (plus support counts,
  aggregation state, sensitivity indices, meta-facts, and the version
  DAG skeleton) is written to a temp file, fsynced, and atomically
  renamed over ``MANIFEST.json``.  A crash at *any* point leaves the
  previous manifest — and therefore the previous checkpoint — intact;
  an orphaned partial pack is simply never referenced.

Restore (``Workspace.open``) decodes the node records back into treap
nodes — priorities and memoized hashes are recomputed and must agree
with the stored addresses, which both verifies integrity and depends on
:func:`repro.ds.hashing.stable_hash` being process-independent — and
rebuilds relations, support counts, aggregation groups, and sensitivity
recorders directly.  No derived predicate is re-derived from base data;
only the program artifacts (compiled blocks) and the program-sized
meta-materialization are rebuilt, deterministically, from block sources.
"""

import io
import json
import os
import struct
from hashlib import blake2b

from repro import obs as _obs
from repro import stats as _stats
from repro.ds import treap
from repro.ds.hashing import stable_hash
from repro.ds.pmap import PMap
from repro.ds.pset import PSet
from repro.storage.datum import BOTTOM, TOP

MANIFEST_NAME = "MANIFEST.json"
FORMAT_VERSION = 1

_ADDR_BYTES = 16

# -- deterministic value codec ----------------------------------------------
#
# Tag-prefixed binary encoding of the value universe that appears inside
# persistent structures: datum values (None/bool/int/float/str/bytes and
# tuples thereof), support counts (int), aggregation states, and the
# sensitivity sentinels BOTTOM/TOP.  Encoding is canonical (one byte
# string per value), which is what makes content addresses stable.

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_TUPLE = 0x07
_T_LIST = 0x08
_T_DICT = 0x09
_T_BOTTOM = 0x0A
_T_TOP = 0x0B
_T_SUM_STATE = 0x0C
_T_MULTISET_STATE = 0x0D


def _write_varint(out, value):
    """Unsigned LEB128."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(buf):
    result = 0
    shift = 0
    while True:
        byte = buf.read(1)[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7


def _encode_into(out, value):
    if value is None:
        out.write(bytes((_T_NONE,)))
    elif value is True:
        out.write(bytes((_T_TRUE,)))
    elif value is False:
        out.write(bytes((_T_FALSE,)))
    elif isinstance(value, int):
        out.write(bytes((_T_INT,)))
        # zigzag maps ..., -2, -1, 0, 1, ... to 3, 1, 0, 2, ... so the
        # varint stays short for small magnitudes of either sign
        zigzag = (value << 1) if value >= 0 else ((-value << 1) - 1)
        _write_varint(out, zigzag)
    elif isinstance(value, float):
        out.write(bytes((_T_FLOAT,)))
        out.write(struct.pack("<d", value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.write(bytes((_T_STR,)))
        _write_varint(out, len(data))
        out.write(data)
    elif isinstance(value, bytes):
        out.write(bytes((_T_BYTES,)))
        _write_varint(out, len(value))
        out.write(value)
    elif isinstance(value, tuple):
        out.write(bytes((_T_TUPLE,)))
        _write_varint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, list):
        out.write(bytes((_T_LIST,)))
        _write_varint(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        # sorted by encoded key so dict encodings are canonical even for
        # keys that are not mutually orderable
        items = sorted(
            ((encode_value(k), v) for k, v in value.items()),
            key=lambda kv: kv[0],
        )
        out.write(bytes((_T_DICT,)))
        _write_varint(out, len(items))
        for key_bytes, item in items:
            out.write(key_bytes)
            _encode_into(out, item)
    elif value is BOTTOM:
        out.write(bytes((_T_BOTTOM,)))
    elif value is TOP:
        out.write(bytes((_T_TOP,)))
    else:
        from repro.engine.aggregates import MultisetState, SumState

        if isinstance(value, SumState):
            out.write(bytes((_T_SUM_STATE,)))
            _encode_into(out, value.total)
            _write_varint(out, value.count)
        elif isinstance(value, MultisetState):
            out.write(bytes((_T_MULTISET_STATE,)))
            _write_varint(out, value.count)
            items = list(value.values.items())  # ascending, deterministic
            _write_varint(out, len(items))
            for item, multiplicity in items:
                _encode_into(out, item)
                _write_varint(out, multiplicity)
        else:
            raise TypeError(
                "cannot durably encode {!r} (type {})".format(
                    value, type(value).__name__
                )
            )


def encode_value(value):
    """Canonical byte encoding of one value."""
    out = io.BytesIO()
    _encode_into(out, value)
    return out.getvalue()


def _decode_from(buf):
    tag = buf.read(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        zigzag = _read_varint(buf)
        return (zigzag >> 1) ^ -(zigzag & 1)
    if tag == _T_FLOAT:
        return struct.unpack("<d", buf.read(8))[0]
    if tag == _T_STR:
        length = _read_varint(buf)
        return buf.read(length).decode("utf-8")
    if tag == _T_BYTES:
        length = _read_varint(buf)
        return buf.read(length)
    if tag == _T_TUPLE:
        length = _read_varint(buf)
        return tuple(_decode_from(buf) for _ in range(length))
    if tag == _T_LIST:
        length = _read_varint(buf)
        return [_decode_from(buf) for _ in range(length)]
    if tag == _T_DICT:
        length = _read_varint(buf)
        result = {}
        for _ in range(length):
            key = _decode_from(buf)
            result[key] = _decode_from(buf)
        return result
    if tag == _T_BOTTOM:
        return BOTTOM
    if tag == _T_TOP:
        return TOP
    if tag == _T_SUM_STATE:
        from repro.engine.aggregates import SumState

        total = _decode_from(buf)
        count = _read_varint(buf)
        return SumState(total, count)
    if tag == _T_MULTISET_STATE:
        from repro.engine.aggregates import MultisetState

        count = _read_varint(buf)
        length = _read_varint(buf)
        values = PMap.from_sorted_items(
            (_decode_from(buf), _read_varint(buf)) for _ in range(length)
        )
        return MultisetState(values, count)
    raise ValueError("corrupt record: unknown tag 0x{:02x}".format(tag))


def decode_value(data):
    """Decode one value from its canonical encoding."""
    return _decode_from(io.BytesIO(data))


def _addr_of(payload):
    return blake2b(payload, digest_size=_ADDR_BYTES).digest()


def _encode_node(key, value, left_addr, right_addr):
    """One treap node record: child addresses (Merkle) + key + value."""
    out = io.BytesIO()
    flags = (1 if left_addr else 0) | (2 if right_addr else 0)
    out.write(bytes((flags,)))
    if left_addr:
        out.write(left_addr)
    if right_addr:
        out.write(right_addr)
    _encode_into(out, key)
    _encode_into(out, value)
    return out.getvalue()


# -- the on-disk node store --------------------------------------------------


class _PackWriter:
    """Accumulates one checkpoint attempt's new records and memo
    entries.  Everything here is staged: nothing becomes visible to
    later checkpoints until the manifest swap commits the attempt."""

    __slots__ = ("pending", "memo", "bytes_written")

    def __init__(self):
        self.pending = {}  # addr -> payload, insertion (= post) order
        self.memo = {}  # id(node) -> (node ref, addr), this attempt
        self.bytes_written = 0

    def add(self, addr, payload):
        self.pending[addr] = payload
        self.bytes_written += len(payload) + _ADDR_BYTES + 4


class NodeStore:
    """Content-addressed records across the checkpoint's pack files.

    The index maps an address to ``(pack_name, offset, length)``; pack
    payloads are read lazily and cached per pack.  Only packs named in
    the committed manifest are trusted — a partial pack left by a crash
    is invisible (and its name is reused by the next checkpoint).
    """

    def __init__(self, directory):
        self.directory = directory
        self._index = {}
        self._pack_bytes = {}
        self._loaded_packs = []

    def load_packs(self, pack_names):
        """Index the records of the manifest's committed packs."""
        for name in pack_names:
            if name in self._loaded_packs:
                continue
            path = os.path.join(self.directory, name)
            with open(path, "rb") as fh:
                offset = 0
                while True:
                    header = fh.read(_ADDR_BYTES + 4)
                    if not header:
                        break
                    if len(header) < _ADDR_BYTES + 4:
                        raise ValueError(
                            "corrupt pack {}: truncated header".format(name)
                        )
                    addr = header[:_ADDR_BYTES]
                    (length,) = struct.unpack(
                        "<I", header[_ADDR_BYTES:_ADDR_BYTES + 4]
                    )
                    payload_offset = offset + _ADDR_BYTES + 4
                    fh.seek(length, os.SEEK_CUR)
                    self._index[addr] = (name, payload_offset, length)
                    offset = payload_offset + length
            self._loaded_packs.append(name)

    def __contains__(self, addr):
        return addr in self._index

    def __len__(self):
        return len(self._index)

    def addresses(self):
        """The set of record addresses this store holds (for replica
        delta-sync: a follower fetches only addresses it lacks)."""
        return frozenset(self._index)

    def get(self, addr):
        """The payload stored at ``addr`` (digest-verified)."""
        name, offset, length = self._index[addr]
        blob = self._pack_bytes.get(name)
        if blob is None:
            with open(os.path.join(self.directory, name), "rb") as fh:
                blob = fh.read()
            self._pack_bytes[name] = blob
        payload = blob[offset:offset + length]
        if _addr_of(payload) != addr:
            raise ValueError(
                "corrupt record in {} at offset {}: digest mismatch".format(
                    name, offset
                )
            )
        return payload

    def drop_payload_cache(self):
        """Release cached pack bytes (kept only for restore speed)."""
        self._pack_bytes.clear()

    def write_pack(self, name, writer):
        """Write and fsync one pack; returns the record locations.

        Deliberately does NOT index the records yet: until the manifest
        referencing this pack is atomically committed, these records
        must stay invisible — a crashed checkpoint followed by a retry
        would otherwise prune its walk against nodes that only live in
        an unreferenced orphan pack.  Call :meth:`commit_pack` after
        the manifest swap.
        """
        path = os.path.join(self.directory, name)
        offset = 0
        locations = {}
        with open(path, "wb") as fh:
            for addr, payload in writer.pending.items():
                fh.write(addr)
                fh.write(struct.pack("<I", len(payload)))
                locations[addr] = (name, offset + _ADDR_BYTES + 4, len(payload))
                fh.write(payload)
                offset += _ADDR_BYTES + 4 + len(payload)
            fh.flush()
            os.fsync(fh.fileno())
        return locations

    def commit_pack(self, name, locations):
        """Make a written pack's records visible (manifest committed)."""
        self._index.update(locations)
        self._loaded_packs.append(name)


def _fsync_dir(path):
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# -- checkpoint / restore ----------------------------------------------------


class CheckpointStore:
    """One durable checkpoint directory: node packs + atomic manifest.

    Holds the write-side memo (``id(node) → address``) that makes
    repeated checkpoints of the same workspace incremental: any node
    that survived from the previous checkpoint — which, by structural
    sharing, is almost all of them — prunes its whole subtree from the
    walk.  Restored nodes are registered in the memo too, so the first
    checkpoint after a restart is just as incremental.
    """

    def __init__(self, path):
        self.path = path
        self.store = NodeStore(path)
        self._memo = {}  # id(node) -> (node ref, addr)
        self._manifest = None
        os.makedirs(path, exist_ok=True)
        manifest = read_manifest(path)
        if manifest is not None:
            self.store.load_packs(manifest["packs"])
            self._manifest = manifest

    # -- write side ----------------------------------------------------------

    def _write_tree(self, node, writer):
        """Post-order walk writing unseen nodes; returns the root address."""
        if node is None:
            return b""
        memo_hit = self._memo.get(id(node)) or writer.memo.get(id(node))
        if memo_hit is not None:
            _stats.bump("pager.nodes_pruned")
            return memo_hit[1]
        left = self._write_tree(node.left, writer)
        right = self._write_tree(node.right, writer)
        payload = _encode_node(node.key, node.value, left, right)
        addr = _addr_of(payload)
        if addr in self.store or addr in writer.pending:
            _stats.bump("pager.nodes_skipped")
        else:
            writer.add(addr, payload)
            _stats.bump("pager.nodes_written")
        writer.memo[id(node)] = (node, addr)
        return addr

    def _write_blob(self, payload, writer):
        """A content-addressed non-tree record (sensitivity data)."""
        addr = _addr_of(payload)
        if addr in self.store or addr in writer.pending:
            _stats.bump("pager.nodes_skipped")
        else:
            writer.add(addr, payload)
            _stats.bump("pager.nodes_written")
        return addr

    def _relation_ref(self, relation, writer):
        return [relation.arity, self._write_tree(relation.tuples()._root, writer).hex()]

    def _state_record(self, state, writer):
        """Serialize one :class:`WorkspaceState` into a manifest record."""
        record = {}
        record["blocks"] = {}
        for name, block in state.artifacts.blocks.items():
            if block.source is None:
                raise ValueError(
                    "block {!r} was compiled from an AST, not source text; "
                    "only source-installed blocks are checkpointable".format(name)
                )
            record["blocks"][name] = block.source
        record["base"] = {
            pred: self._relation_ref(rel, writer)
            for pred, rel in state.base_relations.items()
        }
        mat = state.materialization
        record["relations"] = {
            pred: self._relation_ref(rel, writer)
            for pred, rel in sorted(mat.relations.items())
        }
        record["pred_states"] = {
            pred: {
                "kind": pstate.kind,
                "agg_fn": pstate.agg_fn,
                "counts": self._write_tree(pstate.counts._root, writer).hex(),
                "groups": self._write_tree(pstate.groups._root, writer).hex(),
            }
            for pred, pstate in sorted(mat.states.items())
        }
        record["recorders"] = {
            str(index): self._write_blob(
                encode_value(_recorder_payload(recorder)), writer
            ).hex()
            for index, recorder in sorted(mat.rule_recorders.items())
        }
        meta = state.meta_state
        record["meta_facts"] = (
            {
                block: {
                    pred: sorted(list(t) for t in tuples)
                    for pred, tuples in facts.items()
                    if tuples
                }
                for block, facts in meta.block_facts.items()
            }
            if meta is not None
            else None
        )
        return record

    def checkpoint(self, workspace, *, fault_fire=None, watermark=None):
        """Write one durable checkpoint of ``workspace``.

        ``watermark`` — the commit watermark (highest committed
        transaction sequence number) the checkpointed state reflects;
        recorded in the manifest so replicas serving this checkpoint
        can stamp responses with it and a restarted service resumes
        its sequence from it.

        Returns the counter dict (nodes written/skipped/pruned, bytes,
        manifest sequence number).  Crash-safe: the previous manifest
        stays valid until the new one is atomically renamed in.
        """
        with _obs.span("checkpoint", path=self.path) as span_:
            result = self._checkpoint_locked(workspace, fault_fire, watermark)
            if span_ is not None:
                span_.attrs.update(result)
        return result

    def _checkpoint_locked(self, workspace, fault_fire, watermark=None):
        previous = self._manifest
        seq = (previous["seq"] + 1) if previous else 1
        packs = list(previous["packs"]) if previous else []
        pack_name = "nodes-{:06d}.pack".format(seq)

        writer = _PackWriter()
        graph = workspace._graph
        heads = graph.heads()
        versions = {}
        for head in heads.values():
            for version in head.ancestors():
                versions[version.id] = version
        head_ids = {version.id for version in heads.values()}
        states = {}
        for vid in sorted(head_ids):
            states[str(vid)] = self._state_record(versions[vid].state, writer)

        locations = None
        if writer.pending:
            locations = self.store.write_pack(pack_name, writer)
            _fsync_dir(self.path)
            packs.append(pack_name)
        _stats.bump("pager.bytes_written", writer.bytes_written)

        if fault_fire is not None:
            # the crash-safety window: pack durable, manifest not yet
            # swapped — a crash here must leave the previous checkpoint
            # fully intact (and the in-memory index/memo unstained, so
            # a retry re-walks and re-writes the orphaned records)
            fault_fire("checkpoint")

        manifest = {
            "format": FORMAT_VERSION,
            "seq": seq,
            "watermark": int(watermark) if watermark is not None else (
                previous.get("watermark", 0) if previous else 0),
            "packs": packs,
            "root_name": graph.root_name,
            "current_branch": workspace.branch,
            "branches": {name: version.id for name, version in heads.items()},
            "versions": [
                {
                    "id": version.id,
                    "parents": [parent.id for parent in version.parents],
                    "label": version.label,
                }
                for version in sorted(versions.values(), key=lambda v: v.id)
            ],
            "states": states,
        }
        tmp_path = os.path.join(self.path, MANIFEST_NAME + ".tmp")
        with open(tmp_path, "w") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, os.path.join(self.path, MANIFEST_NAME))
        _fsync_dir(self.path)
        # the attempt is durable — only now do its records and memo
        # entries become visible to future walks
        if locations is not None:
            self.store.commit_pack(pack_name, locations)
        self._memo.update(writer.memo)
        self._manifest = manifest
        _stats.bump("pager.checkpoints")
        return {
            "seq": seq,
            "nodes_written": len(writer.pending),
            "bytes_written": writer.bytes_written,
            "store_nodes": len(self.store),
        }

    # -- replica ingest ------------------------------------------------------

    @property
    def manifest(self):
        """The committed manifest dict, or ``None`` before the first
        checkpoint/ingest."""
        return self._manifest

    @property
    def seq(self):
        """Sequence number of the committed checkpoint (``None`` when
        the directory holds no checkpoint yet)."""
        return self._manifest["seq"] if self._manifest else None

    @property
    def watermark(self):
        """Commit watermark recorded in the committed checkpoint —
        the highest transaction sequence number the checkpointed state
        reflects (0 for pre-watermark checkpoints, ``None`` when the
        directory holds no checkpoint yet)."""
        if self._manifest is None:
            return None
        return self._manifest.get("watermark", 0)

    def known(self, addr):
        """True when ``addr`` is already resident in the local store."""
        return addr in self.store

    def ingest(self, manifest, records):
        """Adopt a leader's checkpoint: write the fetched ``records``
        (``{addr: payload}`` — only the addresses this store lacked)
        into a local pack, then commit a local manifest.

        The manifest is the leader's except for ``packs``, which must
        name *local* pack files; everything else (states, versions,
        branches, seq) transfers verbatim because records are content
        addressed — the same addresses resolve on either side.  The
        staged-commit protocol matches :meth:`checkpoint`: pack fsync →
        dir fsync → atomic manifest replace, so a replica crash
        mid-sync leaves its previous checkpoint intact.
        """
        for addr, payload in records.items():
            if _addr_of(payload) != addr:
                raise ValueError(
                    "sync record digest mismatch for {}".format(addr.hex()))
        previous = self._manifest
        packs = list(previous["packs"]) if previous else []
        pack_name = "sync-{:06d}.pack".format(manifest["seq"])
        locations = None
        if records:
            writer = _PackWriter()
            for addr, payload in records.items():
                writer.add(addr, payload)
            locations = self.store.write_pack(pack_name, writer)
            _fsync_dir(self.path)
            packs.append(pack_name)
            _stats.bump("pager.sync.records_ingested", len(records))
            _stats.bump("pager.sync.bytes_ingested", writer.bytes_written)
        local_manifest = dict(manifest)
        local_manifest["packs"] = packs
        tmp_path = os.path.join(self.path, MANIFEST_NAME + ".tmp")
        with open(tmp_path, "w") as fh:
            json.dump(local_manifest, fh, indent=1, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, os.path.join(self.path, MANIFEST_NAME))
        _fsync_dir(self.path)
        if locations is not None:
            self.store.commit_pack(pack_name, locations)
        self._manifest = local_manifest
        _stats.bump("pager.sync.ingests")
        return {
            "seq": local_manifest["seq"],
            "records_ingested": len(records),
            "packs": len(packs),
        }

    # -- read side -----------------------------------------------------------

    def _load_tree(self, addr_hex, node_cache):
        if not addr_hex:
            return None
        addr = bytes.fromhex(addr_hex) if isinstance(addr_hex, str) else addr_hex
        cached = node_cache.get(addr)
        if cached is not None:
            return cached
        payload = self.store.get(addr)
        buf = io.BytesIO(payload)
        flags = buf.read(1)[0]
        left_addr = buf.read(_ADDR_BYTES) if flags & 1 else b""
        right_addr = buf.read(_ADDR_BYTES) if flags & 2 else b""
        key = _decode_from(buf)
        value = _decode_from(buf)
        left = self._load_tree(left_addr, node_cache)
        right = self._load_tree(right_addr, node_cache)
        node = treap.Node(key, value, stable_hash(key), left, right)
        node_cache[addr] = node
        self._memo[id(node)] = (node, addr)
        _stats.bump("pager.nodes_read")
        return node

    def _restore_state(self, record, plan_cache, parallel, caches,
                       engine_backend=None):
        from repro.engine.evaluator import PredicateState
        from repro.engine.ivm import Materialization
        from repro.logiql.compiler import compile_program
        from repro.meta.metaengine import MetaEngine, MetaState
        from repro.meta.metarules import META_BASE_PREDS
        from repro.runtime.state import ProgramArtifacts, WorkspaceState
        from repro.storage.relation import Relation

        node_cache, relation_cache, artifact_cache = caches

        blocks_key = tuple(sorted(record["blocks"].items()))
        artifacts = artifact_cache.get(blocks_key)
        if artifacts is None:
            blocks = PMap.from_dict(
                {
                    name: compile_program(source)
                    for name, source in record["blocks"].items()
                }
            )
            artifacts = ProgramArtifacts(blocks, plan_cache, parallel,
                                         engine_backend)
            artifact_cache[blocks_key] = artifacts

        def load_relation(ref):
            arity, addr_hex = ref
            key = (arity, addr_hex)
            relation = relation_cache.get(key)
            if relation is None:
                root = self._load_tree(addr_hex, node_cache)
                relation = Relation(arity, PSet(root))
                relation_cache[key] = relation
            return relation

        base_relations = PMap.from_dict(
            {pred: load_relation(ref) for pred, ref in record["base"].items()}
        )
        relations = {
            pred: load_relation(ref)
            for pred, ref in record["relations"].items()
        }
        states = {}
        for pred, entry in record["pred_states"].items():
            states[pred] = PredicateState(
                entry["kind"],
                counts=PMap(self._load_tree(entry["counts"], node_cache)),
                groups=PMap(self._load_tree(entry["groups"], node_cache)),
                agg_fn=entry["agg_fn"],
            )
        recorders = {
            int(index): _recorder_from_payload(
                decode_value(self.store.get(bytes.fromhex(addr_hex)))
            )
            for index, addr_hex in record["recorders"].items()
        }
        materialization = Materialization(relations, states, recorders)

        meta_state = None
        if record.get("meta_facts") is not None:
            # the manifest omits empty fact sets; block_meta_facts
            # always produces every base predicate, so re-expand
            block_facts = {
                block: {
                    pred: {tuple(t) for t in facts.get(pred, ())}
                    for pred in META_BASE_PREDS
                }
                for block, facts in record["meta_facts"].items()
            }
            bases = {pred: set() for pred in META_BASE_PREDS}
            for facts in block_facts.values():
                for pred, tuples in facts.items():
                    bases[pred] |= tuples
            meta_mat = MetaEngine().engine.initialize(
                {
                    pred: Relation.from_iter(META_BASE_PREDS[pred], tuples)
                    for pred, tuples in bases.items()
                }
            )
            meta_state = MetaState(meta_mat, block_facts)

        return WorkspaceState(artifacts, base_relations, materialization, meta_state)

    def restore_into(self, workspace):
        """Point ``workspace`` at this store's committed checkpoint."""
        from repro.ds.versions import Version, VersionGraph, ensure_version_counter

        manifest = self._manifest
        if manifest is None:
            raise FileNotFoundError(
                "no checkpoint manifest in {}".format(self.path)
            )
        with _obs.span("restore", path=self.path):
            caches = ({}, {}, {})
            states = {
                int(vid): self._restore_state(
                    record, workspace._plan_cache, workspace._parallel, caches,
                    workspace._engine_backend,
                )
                for vid, record in manifest["states"].items()
            }
            versions = {}
            for entry in manifest["versions"]:
                versions[entry["id"]] = Version.restore(
                    entry["id"],
                    states.get(entry["id"]),
                    tuple(versions[pid] for pid in entry["parents"]),
                    entry["label"],
                )
            ensure_version_counter(max(versions) if versions else 0)
            heads = {
                name: versions[vid]
                for name, vid in manifest["branches"].items()
            }
            workspace._graph = VersionGraph.restore(heads, manifest["root_name"])
            branch = manifest.get("current_branch", manifest["root_name"])
            workspace.branch = branch if branch in heads else manifest["root_name"]
            self.store.drop_payload_cache()
        _stats.bump("pager.restores")
        return workspace


# -- replica sync surface -----------------------------------------------------
#
# A read replica (repro.net.replica) ships checkpoints over the wire by
# Merkle walk: starting from the manifest's root addresses it fetches
# only records missing from its local store, discovering children from
# the fetched node payloads.  These helpers expose exactly the address
# structure that walk needs, without decoding node keys/values.


def node_children(payload):
    """``(left_addr, right_addr)`` of one encoded treap node record
    (``b""`` for an absent child).  Only the Merkle header is parsed."""
    flags = payload[0]
    offset = 1
    left = b""
    right = b""
    if flags & 1:
        left = payload[offset:offset + _ADDR_BYTES]
        offset += _ADDR_BYTES
    if flags & 2:
        right = payload[offset:offset + _ADDR_BYTES]
    return left, right


def manifest_addresses(manifest):
    """``(tree_roots, blobs)`` referenced by a checkpoint manifest.

    ``tree_roots`` are treap roots (walk them via :func:`node_children`);
    ``blobs`` are flat content-addressed records (sensitivity recorders)
    fetched whole.  Both are sets of raw 16-byte addresses.
    """
    tree_roots = set()
    blobs = set()

    def add_tree(addr_hex):
        if addr_hex:
            tree_roots.add(bytes.fromhex(addr_hex))

    for record in manifest.get("states", {}).values():
        for ref in record.get("base", {}).values():
            add_tree(ref[1])
        for ref in record.get("relations", {}).values():
            add_tree(ref[1])
        for entry in record.get("pred_states", {}).values():
            add_tree(entry["counts"])
            add_tree(entry["groups"])
        for addr_hex in record.get("recorders", {}).values():
            if addr_hex:
                blobs.add(bytes.fromhex(addr_hex))
    return tree_roots, blobs


def _recorder_payload(recorder):
    """Sensitivity recorder → codec-friendly nested structure."""
    return [
        [pred, perm, [
            [level, [
                [context, intervals]
                for context, intervals in sorted(
                    contexts.items(), key=lambda kv: encode_value(kv[0])
                )
            ]]
            for level, contexts in sorted(levels.items())
        ]]
        for (pred, perm), levels in sorted(
            recorder._data.items(), key=lambda kv: (kv[0][0], kv[0][1])
        )
    ]


def _recorder_from_payload(payload):
    from repro.engine.sensitivity import SensitivityRecorder

    recorder = SensitivityRecorder()
    for pred, perm, levels in payload:
        level_map = recorder._data.setdefault((pred, perm), {})
        for level, contexts in levels:
            context_map = level_map.setdefault(level, {})
            for context, intervals in contexts:
                context_map[context] = [tuple(iv) for iv in intervals]
    return recorder


def read_manifest(path):
    """The committed manifest of a checkpoint directory, or ``None``."""
    manifest_path = os.path.join(path, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        return None
    with open(manifest_path) as fh:
        manifest = json.load(fh)
    if manifest.get("format") != FORMAT_VERSION:
        raise ValueError(
            "unsupported checkpoint format {} in {}".format(
                manifest.get("format"), manifest_path
            )
        )
    return manifest


def has_checkpoint(path):
    """True when ``path`` holds a committed checkpoint manifest."""
    return os.path.exists(os.path.join(path, MANIFEST_NAME))
