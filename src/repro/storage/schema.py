"""6NF predicate schemas (paper §2.2.1, theme T2).

A predicate is either relational ``R(x1, ..., xn)`` or functional
``R[x1, ..., xn-1] = xn`` (at most one non-key attribute — sixth normal
form).  Predicates are base (EDB) or derived (IDB); when the user does
not declare the kind it is inferred from usage by the meta-engine
(§3.3's ``lang_edb`` meta-rule).
"""

import enum

from repro.storage.datum import PrimitiveType


class PredicateKind(enum.Enum):
    """Base (extensional) vs derived (intensional) predicates."""

    BASE = "base"
    DERIVED = "derived"


class EntityType:
    """A user-defined entity type with an explicit population.

    The population is the set of entity values (e.g. product names);
    declaring ``Product(p)`` as an entity type makes ``Product`` a unary
    base predicate holding the population.
    """

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, EntityType) and other.name == self.name

    def __hash__(self):
        return hash(("entity", self.name))

    def __repr__(self):
        return "EntityType({})".format(self.name)


class PredicateDecl:
    """Declaration of one predicate: name, argument types, kind, shape."""

    __slots__ = ("name", "arg_types", "n_keys", "kind", "is_functional")

    def __init__(self, name, arg_types, n_keys=None, kind=None, is_functional=False):
        self.name = name
        self.arg_types = tuple(arg_types)
        self.is_functional = is_functional
        if n_keys is None:
            n_keys = len(self.arg_types) - 1 if is_functional else len(self.arg_types)
        self.n_keys = n_keys
        self.kind = kind

    @property
    def arity(self):
        """Total number of attributes (keys plus value)."""
        return len(self.arg_types)

    def with_kind(self, kind):
        """A copy of this declaration with the predicate kind fixed."""
        return PredicateDecl(self.name, self.arg_types, self.n_keys, kind, self.is_functional)

    def with_types(self, arg_types):
        """A copy of this declaration with refined argument types."""
        return PredicateDecl(self.name, arg_types, self.n_keys, self.kind, self.is_functional)

    def __eq__(self, other):
        return (
            isinstance(other, PredicateDecl)
            and other.name == self.name
            and other.arg_types == self.arg_types
            and other.n_keys == self.n_keys
            and other.kind == self.kind
            and other.is_functional == self.is_functional
        )

    def __hash__(self):
        return hash((self.name, self.arg_types, self.n_keys, self.kind, self.is_functional))

    def __repr__(self):
        if self.is_functional:
            keys = ", ".join(str(t) for t in self.arg_types[: self.n_keys])
            return "{}[{}] = {}".format(self.name, keys, self.arg_types[-1])
        return "{}({})".format(self.name, ", ".join(str(t) for t in self.arg_types))


class Schema:
    """An immutable catalogue of predicate and entity declarations."""

    __slots__ = ("_predicates", "_entities")

    def __init__(self, predicates=None, entities=None):
        self._predicates = dict(predicates or {})
        self._entities = dict(entities or {})

    def declare(self, decl):
        """Return a new schema including ``decl`` (replaces same name)."""
        predicates = dict(self._predicates)
        predicates[decl.name] = decl
        return Schema(predicates, self._entities)

    def declare_entity(self, entity_type):
        """Return a new schema including an entity type."""
        entities = dict(self._entities)
        entities[entity_type.name] = entity_type
        return Schema(self._predicates, entities)

    def drop(self, name):
        """Return a new schema without predicate ``name``."""
        predicates = dict(self._predicates)
        predicates.pop(name, None)
        return Schema(predicates, self._entities)

    def get(self, name):
        """The declaration for ``name``, or ``None``."""
        return self._predicates.get(name)

    def entity(self, name):
        """The entity type ``name``, or ``None``."""
        return self._entities.get(name)

    def is_entity(self, name):
        """True iff ``name`` is a declared entity type."""
        return name in self._entities

    def predicates(self):
        """All declarations, sorted by predicate name."""
        return [self._predicates[name] for name in sorted(self._predicates)]

    def __contains__(self, name):
        return name in self._predicates

    def __len__(self):
        return len(self._predicates)

    def __repr__(self):
        return "Schema({} predicates, {} entities)".format(
            len(self._predicates), len(self._entities)
        )


# convenience aliases used throughout tests and examples
INT = PrimitiveType.INT
FLOAT = PrimitiveType.FLOAT
DECIMAL = PrimitiveType.DECIMAL
STRING = PrimitiveType.STRING
BOOLEAN = PrimitiveType.BOOLEAN
DATE = PrimitiveType.DATE
