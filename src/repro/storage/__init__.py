"""Storage layer: the value model, 6NF schemas, and persistent relations."""

from repro.storage.datum import BOTTOM, TOP, PrimitiveType, infer_type
from repro.storage.schema import PredicateDecl, PredicateKind, Schema
from repro.storage.relation import Delta, Relation

__all__ = [
    "BOTTOM",
    "TOP",
    "PrimitiveType",
    "infer_type",
    "PredicateDecl",
    "PredicateKind",
    "Schema",
    "Delta",
    "Relation",
]
