"""The LogiQL value model.

LogiQL attributes have either a primitive type (int, float, decimal,
string, boolean, date) or a user-defined entity type (paper §2.2.1).
Values are plain Python objects; within one predicate column every value
has the same type, so tuple comparison is always well defined.

Entity values are represented by the member values of their population
(typically strings, e.g. ``"Popsicle"`` for a ``Product`` entity): the
paper's examples address entities directly by such identifiers, and this
keeps the 6NF schema style without a separate surrogate-id indirection.

``BOTTOM`` and ``TOP`` are order sentinels comparing below/above every
value of every type; iterators use them to build seek keys for tuple
prefixes (e.g. "the first tuple strictly after prefix ``(a, b)``" is the
lower bound of ``(a, b, TOP)``).
"""

import datetime
import enum
from decimal import Decimal


class _Bottom:
    """Sentinel ordered strictly below every other value."""

    __slots__ = ()

    def __lt__(self, other):
        return other is not self

    def __le__(self, other):
        return True

    def __gt__(self, other):
        return False

    def __ge__(self, other):
        return other is self

    def __eq__(self, other):
        return other is self

    def __hash__(self):
        return 0x5E11B07

    def __repr__(self):
        return "-inf"


class _Top:
    """Sentinel ordered strictly above every other value."""

    __slots__ = ()

    def __lt__(self, other):
        return False

    def __le__(self, other):
        return other is self

    def __gt__(self, other):
        return other is not self

    def __ge__(self, other):
        return True

    def __eq__(self, other):
        return other is self

    def __hash__(self):
        return 0x70AC1D

    def __repr__(self):
        return "+inf"


BOTTOM = _Bottom()
TOP = _Top()


class PrimitiveType(enum.Enum):
    """LogiQL primitive attribute types."""

    INT = "int"
    FLOAT = "float"
    DECIMAL = "decimal"
    STRING = "string"
    BOOLEAN = "boolean"
    DATE = "date"

    def __repr__(self):
        return "PrimitiveType.{}".format(self.name)


_PYTHON_TO_PRIMITIVE = (
    (bool, PrimitiveType.BOOLEAN),  # bool before int: bool is an int subtype
    (int, PrimitiveType.INT),
    (float, PrimitiveType.FLOAT),
    (Decimal, PrimitiveType.DECIMAL),
    (str, PrimitiveType.STRING),
    (datetime.date, PrimitiveType.DATE),
)


def infer_type(value):
    """The :class:`PrimitiveType` of a Python value, or ``None``."""
    for python_type, primitive in _PYTHON_TO_PRIMITIVE:
        if isinstance(value, python_type):
            return primitive
    return None


def check_type(value, expected):
    """True iff ``value`` belongs to primitive type ``expected``.

    Ints are accepted where floats or decimals are expected (LogiQL
    performs this widening implicitly in arithmetic contexts).
    """
    actual = infer_type(value)
    if actual is expected:
        return True
    if expected in (PrimitiveType.FLOAT, PrimitiveType.DECIMAL):
        return actual is PrimitiveType.INT
    return False


def type_from_name(name):
    """Parse a primitive type name (``int``, ``float[64]``, ...)."""
    base = name.split("[", 1)[0]
    for primitive in PrimitiveType:
        if primitive.value == base:
            return primitive
    return None
