"""Columnar (dictionary-encoded) relation storage for vectorized LFTJ.

The flat-array promotion path in :mod:`repro.storage.relation` already
materializes each permutation of a relation as one sorted list of
tuples.  This module takes the next step for the raw-speed engine
backend: each *column* of that sorted list is dictionary-encoded into a
contiguous ``numpy`` ``int64`` array of codes, where the per-column
dictionary (the *domain*) is the sorted list of distinct values.

The encoding is **order-preserving per column**: ``code(u) < code(v)``
iff ``u < v``.  Lexicographic order of the code rows therefore equals
lexicographic order of the value rows, so every structure the pure
backends derive from sorted tuples (trie levels, run boundaries, seek
targets) has an exact integer twin that ``numpy`` can batch-process.

Canonicalization follows the :func:`repro.ds.hashing.canonical_key`
rules exactly — ``-0.0`` collapses into ``0.0`` and NaN is rejected —
so the columnar and pure backends sort, compare, and hash identically.

Values that do not encode (mutually incomparable or unhashable column
contents) raise :class:`ColumnarUnsupported`; callers fall back to the
pure-Python iterator backends.  ``numpy`` itself is imported lazily and
its absence is reported the same way, so the pure path never needs it.
"""

from repro import stats
from repro.ds.hashing import canonical_key

try:  # gate the accelerator dependency: absence means "pure path only"
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via HAVE_NUMPY gate
    _np = None

HAVE_NUMPY = _np is not None


class ColumnarUnsupported(TypeError):
    """The relation's values cannot be dictionary-encoded.

    Raised for columns whose values are mutually incomparable or
    unhashable, and when numpy is unavailable.  The engine treats it as
    "use the pure-Python backend", never as an error.
    """


def encode_column(values):
    """Dictionary-encode one column of datums.

    Returns ``(codes, domain)``: ``codes`` is an ``int64`` array with
    ``codes[i] == domain.index(values[i])`` and ``domain`` the sorted
    list of distinct *canonical* values (original Python objects, never
    numpy scalars, so decoded tuples are interchangeable with pure-path
    tuples under both ``==`` and ``stable_hash``).
    """
    if _np is None:
        raise ColumnarUnsupported("numpy is not available")
    try:
        domain = sorted({canonical_key(v) for v in values})
    except ValueError:
        raise  # NaN rejection is a data error, not an encoding gap
    except TypeError as exc:
        raise ColumnarUnsupported(
            "column values do not dictionary-encode: {}".format(exc)
        )
    index = {value: code for code, value in enumerate(domain)}
    codes = _np.fromiter(
        (index[canonical_key(v)] for v in values), _np.int64, count=len(values)
    )
    return codes, domain


class ColumnarLayout:
    """One permutation of one relation version, column-encoded.

    ``codes[j]`` is the ``int64`` code array of column ``j`` over the
    permuted, lexicographically sorted tuple list; ``domains[j]`` is
    that column's sorted dictionary.  Row ``i`` of the underlying flat
    array decodes to ``tuple(domains[j][codes[j][i]] for j)``.
    """

    __slots__ = ("arity", "n_rows", "codes", "domains")

    def __init__(self, rows, arity):
        self.arity = arity
        self.n_rows = len(rows)
        self.codes = []
        self.domains = []
        for position in range(arity):
            codes, domain = encode_column([row[position] for row in rows])
            self.codes.append(codes)
            self.domains.append(domain)

    def run_starts(self, depth, lo=0, hi=None):
        """Row indices (within ``[lo, hi)``) starting a run of equal
        ``depth+1``-column prefixes — the node boundaries of the trie
        level at ``depth``.  Vectorized: one ``!=`` pass per column.
        """
        if hi is None:
            hi = self.n_rows
        count = hi - lo
        if count <= 0:
            return _np.empty(0, _np.int64)
        change = _np.zeros(count, dtype=bool)
        change[0] = True
        for position in range(depth + 1):
            column = self.codes[position][lo:hi]
            change[1:] |= column[1:] != column[:-1]
        return _np.flatnonzero(change).astype(_np.int64) + lo
