"""Checkpoint-shipping read replicas — first-class serving endpoints.

A :class:`Replica` follows a leader server's durable checkpoints and
serves read-only queries from its own local copy of the workspace.
The shipping protocol is a *Merkle delta sync* over the pager's
content-addressed record store:

1. The follower fetches the leader's committed checkpoint manifest
   (``sync_manifest``).  A manifest names the treap *roots* of every
   relation/index plus a handful of flat blobs — all 16-byte
   blake2b addresses of immutable records.
2. Starting from those roots, the follower walks the trees top-down,
   fetching **only addresses it does not already hold**
   (``sync_records``, batched).  Children are discovered from the
   fetched node payloads themselves (:func:`~repro.storage.pager.node_children`);
   a locally-known address prunes its entire subtree, because content
   addressing makes "same address" mean "same subtree".
3. The fetched records are ingested into the local
   :class:`~repro.storage.pager.CheckpointStore` with the same staged
   commit protocol as a local checkpoint (pack fsync → dir fsync →
   atomic manifest replace), and the workspace is rebuilt from it.

Because checkpoints share structure (persistent treaps), a one-tuple
change on the leader perturbs only the spine above that tuple —
O(log n) nodes — and step 2 fetches exactly those: a warm replica's
delta sync transfers O(log n) records, not O(n).  The test suite
asserts this on the ``pager.sync.fetched_records`` counter.

**Read-serving.**  :meth:`Replica.serve` runs the *same* TCP server
surface as the leader (:class:`~repro.net.server.ReproServer` over a
:class:`_ReplicaService` facade): read verbs answer from the synced
checkpoint and every response is stamped with its **commit
watermark** — the sequence number of the last leader write that
checkpoint reflects — while write verbs are refused with a typed
:class:`~repro.net.protocol.ReplicaReadOnly` naming the leader.  A
cluster client (:mod:`repro.net.cluster`) can therefore fan reads out
across the fleet and enforce session consistency from the stamps
alone.

**Following.**  :meth:`Replica.follow` no longer sleeps on a fixed
interval: it parks one long-poll ``watch`` round-trip on the leader,
which returns the moment a newer checkpoint commits (change
notification) or at the heartbeat deadline (liveness proof).  A leader
that stops answering for ``leader_timeout_s`` triggers **election**:
every replica probes the configured ``peers``, and the most-caught-up
one — highest watermark, ties broken by smallest endpoint string, so
every prober picks the same winner — is promoted to a full
write-serving :class:`~repro.service.TransactionService` recovered
from its local checkpoint.  Losers re-point their follow loop at the
new leader.

    from repro.net import Replica

    replica = Replica("leader-host", 7411, "/var/lib/repro/replica")
    replica.sync()                  # one cold/delta sync
    replica.serve(port=7412)        # read-serving TCP endpoint
    replica.follow()                # watch-driven following + failover
    print(replica.query("_(s, v) <- inventory[s] = v."))
    replica.close()

``python -m repro.net.replica --leader HOST:PORT --path DIR --port N``
runs a standalone serving replica until SIGTERM.
"""

import threading
import time
import warnings

from repro import stats as _stats
from repro import obs as _obs
from repro.net.client import NetSession
from repro.net.protocol import DEFAULT_PORT, ReplicaReadOnly, WRITE_VERBS
from repro.runtime.errors import ReproError
from repro.runtime.workspace import Workspace
from repro.storage.pager import (
    CheckpointStore,
    manifest_addresses,
    node_children,
)

#: how many addresses one sync_records request carries
_FETCH_BATCH = 256


class Replica:
    """A read-serving follower of one leader's checkpoint stream."""

    def __init__(self, host="127.0.0.1", port=DEFAULT_PORT, path=None, *,
                 name=None, peers=(), config=None, max_staleness_s=None,
                 **client_kwargs):
        if path is None:
            raise ValueError("Replica needs a local checkpoint directory")
        self.host = host
        self.port = port
        self.path = path
        self.name = name or "replica@{}:{}".format(host, port)
        #: ``"host:port"`` serving endpoints of the *other* fleet
        #: members — the electorate probed when the leader goes dark
        self.peers = [str(p) for p in peers if p]
        #: this replica's own serving endpoint (set by :meth:`serve`)
        self.endpoint = None
        self._client_kwargs = client_kwargs
        self._client = None
        self._store = CheckpointStore(path)
        self._workspace = None
        self._watermark = 0
        self._lock = threading.Lock()
        self._sync_cond = threading.Condition()
        self._poller = None
        self._stop = threading.Event()
        self._closed = False
        self._seq = None
        self._server = None
        self._facade = None
        self._config = config
        self._promoted = None
        #: self-advertised staleness bound: a replica that has not
        #: heard from its leader within this many seconds tells read
        #: routers (via :meth:`status`) to route around it, instead of
        #: them discovering the lag one stale read at a time.  ``None``
        #: advertises no bound.
        self.max_staleness_s = (
            None if max_staleness_s is None else float(max_staleness_s))
        self._last_leader_contact = time.monotonic()
        if self._store.manifest is not None:
            # resume from the locally durable checkpoint before the
            # first contact with the leader
            self._rebuild()

    # -- syncing ---------------------------------------------------------------

    @property
    def seq(self):
        """Sequence number of the checkpoint this replica *serves* —
        updated only after the synced workspace is rebuilt and visible
        to readers (``None`` before the first sync)."""
        return self._seq

    @property
    def watermark(self):
        """Commit watermark of the checkpoint this replica serves: the
        sequence number of the last leader write it reflects (0 before
        the first sync).  After promotion, the live leader watermark."""
        svc = self._promoted
        if svc is not None:
            return svc.commit_watermark
        return self._watermark

    def sync(self):
        """Pull the leader's latest checkpoint if it is newer than ours.

        Returns a summary dict: ``seq``, ``fetched_records`` (how many
        records crossed the wire — O(log n) for a warm replica),
        ``ingested`` (False when we were already current).

        When tracing is on, the ``replica.sync`` span roots one
        distributed trace: each ``sync_manifest`` / ``sync_records``
        round-trip sends the span's trace context with the request and
        grafts the leader's ``net.request`` subtree back underneath it.
        """
        with self._lock:
            self._check_open()
            if self._promoted is not None:
                raise ReproError(
                    "{} was promoted to leader; it no longer syncs".format(
                        self.name))
            with _obs.span("replica.sync", path=self.path) as span:
                manifest = self._session().sync_manifest()
                # a manifest round-trip is proof of leader contact,
                # whether or not anything new gets ingested
                self._last_leader_contact = time.monotonic()
                if self._store.seq is not None and \
                        manifest["seq"] <= self._store.seq:
                    if span is not None:
                        span.attrs["ingested"] = False
                    return {"seq": self._store.seq, "fetched_records": 0,
                            "ingested": False}
                records = self._fetch_delta(manifest)
                self._store.ingest(manifest, records)
                self._rebuild()
                if span is not None:
                    span.attrs["seq"] = manifest["seq"]
                    span.attrs["fetched_records"] = len(records)
                return {"seq": manifest["seq"],
                        "fetched_records": len(records), "ingested": True}

    def _fetch_delta(self, manifest):
        """The Merkle walk: fetch every record reachable from the
        manifest's roots that the local store lacks, discovering tree
        children from the fetched payloads themselves."""
        tree_roots, blobs = manifest_addresses(manifest)
        records = {}

        def missing(addr):
            return addr and addr not in records \
                and not self._store.known(addr)

        # (addr, is_tree): blobs are fetched whole, never walked
        frontier = [(a, True) for a in tree_roots if missing(a)]
        frontier += [(a, False) for a in blobs if missing(a)]
        client = self._session()
        while frontier:
            batch, frontier = frontier[:_FETCH_BATCH], frontier[_FETCH_BATCH:]
            # the same subtree can be reachable from two parents; drop
            # addresses a previous batch already brought home
            want = {addr: is_tree for addr, is_tree in batch
                    if addr not in records}
            if not want:
                continue
            fetched = client.sync_records(list(want))
            _stats.bump("pager.sync.fetched_records", len(fetched))
            got = set()
            for addr, payload in fetched:
                got.add(addr)
                records[addr] = payload
                if want[addr]:
                    for child in node_children(payload):
                        if missing(child):
                            frontier.append((child, True))
            lost = set(want) - got
            if lost:
                raise ValueError(
                    "leader could not serve {} record(s) of checkpoint "
                    "{} (e.g. {}); its checkpoint moved mid-walk — "
                    "retry the sync".format(
                        len(lost), manifest["seq"],
                        sorted(lost)[0].hex()))
        return records

    def _rebuild(self):
        workspace = Workspace()
        self._store.restore_into(workspace)
        self._workspace = workspace
        self._seq = self._store.seq
        self._watermark = self._store.watermark or 0
        # readers parked in watch() wake to the new checkpoint
        with self._sync_cond:
            self._sync_cond.notify_all()

    # -- following (watch-driven, with failover) -------------------------------

    def follow(self, poll_s=None, *, heartbeat_s=5.0, leader_timeout_s=10.0):
        """Start the follower thread.

        One blocked ``watch`` round-trip on the leader is both change
        notification (it returns the moment a newer checkpoint commits,
        and the follower syncs immediately) and heartbeat (a reply
        within ``heartbeat_s`` proves the leader alive even when
        nothing changed) — no fixed-interval sleeping.  A leader that
        has not answered for ``leader_timeout_s`` is declared dead;
        with ``peers`` configured the replica runs the deterministic
        election (see :meth:`promote`), otherwise it keeps retrying and
        serving its last synced checkpoint.

        One initial sync runs immediately, raising on failure so
        misconfiguration surfaces at the call site — except a leader
        that simply has no checkpoint yet (a fresh fleet booting before
        its first write): the follower starts anyway and picks up
        checkpoint 1 when it lands.  Leaders that predate the ``watch``
        verb are followed by fixed-interval polling as before.

        ``poll_s`` is deprecated: the follower is notification-driven
        now, so the knob only sets the heartbeat period (and the legacy
        polling interval against an old leader).
        """
        self._check_open()
        if poll_s is not None:
            warnings.warn(
                "Replica.follow(poll_s=...) is deprecated: following is "
                "watch-driven (leader notify + heartbeat), not polled; "
                "use heartbeat_s to tune the heartbeat period",
                DeprecationWarning, stacklevel=2)
            heartbeat_s = float(poll_s)
        if self._poller is not None:
            return
        try:
            self.sync()
        except ReproError as exc:
            if "has not committed a checkpoint" not in str(exc):
                raise
        self._stop.clear()
        self._poller = threading.Thread(
            target=self._follow_loop, args=(heartbeat_s, leader_timeout_s),
            name=self.name + "/follow", daemon=True)
        self._poller.start()

    def _follow_loop(self, heartbeat_s, leader_timeout_s):
        last_ok = time.monotonic()
        legacy_poll = False
        while not self._stop.is_set() and self._promoted is None:
            try:
                if legacy_poll:
                    if self._stop.wait(heartbeat_s):
                        return
                    self.sync()
                else:
                    status = self._session().watch(
                        seq=self._seq or 0, timeout_s=heartbeat_s)
                    if status.get("checkpoint_seq", 0) > (self._seq or 0):
                        self.sync()
                last_ok = time.monotonic()
                # a watch reply is leader contact even when nothing
                # changed: the heartbeat bounds our staleness
                self._last_leader_contact = last_ok
            except ReproError as exc:
                if not legacy_poll and "unknown op" in str(exc):
                    # pre-watch leader: degrade to interval polling
                    legacy_poll = True
                    continue
                # transient leader outage: keep serving the last synced
                # checkpoint, keep probing — until the timeout says the
                # leader is dead, not slow
                _stats.bump("net.replica.sync_errors")
                if time.monotonic() - last_ok >= leader_timeout_s:
                    if self._handle_leader_loss():
                        return
                    last_ok = time.monotonic()
                elif self._stop.wait(min(heartbeat_s, 0.25)):
                    return

    def stop(self):
        """Stop the follower thread (the replica keeps serving reads)."""
        poller = self._poller
        if poller is None:
            return
        self._stop.set()
        if poller is not threading.current_thread():
            poller.join()
        self._poller = None

    # -- election and promotion ------------------------------------------------

    def _handle_leader_loss(self):
        """The leader went dark: elect and install a new one.

        Every replica probes the same electorate and applies the same
        rule — highest watermark wins, ties broken by smallest endpoint
        string — so they all pick the same winner without coordination.
        The winner promotes itself; losers also *send* ``promote`` to
        the winner (idempotent), so promotion converges even when the
        winner's own detection lags, then re-point their follow loop.

        Returns True when this replica should stop following (it became
        the leader).
        """
        _stats.bump("net.replica.leader_losses")
        probes = {ep: st for ep, st in self._probe_peers().items()
                  if st is not None}
        # a peer that already promoted wins outright
        for ep, st in sorted(probes.items()):
            if st.get("role") == "leader":
                self._repoint(ep)
                return False
        candidates = {ep: int(st.get("watermark") or 0)
                      for ep, st in probes.items()}
        if self.endpoint is not None:
            candidates[self.endpoint] = self.watermark
        if not candidates:
            return False  # nobody reachable: keep serving, keep probing
        winner = min(candidates, key=lambda ep: (-candidates[ep], ep))
        _stats.bump("net.replica.elections")
        if winner == self.endpoint:
            self.promote()
            return True
        try:
            self._rpc(winner, "promote")
        except ReproError:
            return False  # winner unreachable now: re-probe next round
        self._repoint(winner)
        return False

    def _probe_peers(self):
        """``{endpoint: status-dict-or-None}`` for every configured peer."""
        return {ep: self._rpc(ep, "status", swallow=True)
                for ep in self.peers if ep != self.endpoint}

    def _rpc(self, endpoint, verb, *, swallow=False):
        host, _, port = endpoint.rpartition(":")
        try:
            with NetSession(host, int(port), name=self.name + "/probe",
                            connect_timeout_s=2.0,
                            socket_timeout_s=5.0) as peer:
                return getattr(peer, verb)()
        except (ReproError, OSError):
            if swallow:
                return None
            raise

    def _repoint(self, endpoint):
        """Follow a different leader from now on."""
        host, _, port = endpoint.rpartition(":")
        with self._lock:
            if self._client is not None:
                self._client.close()
                self._client = None
            self.host, self.port = host, int(port)
        _stats.bump("net.replica.repoints")

    def promote(self):
        """Promote this replica to a full write-serving leader.

        Builds a :class:`~repro.service.TransactionService` recovered
        from the local checkpoint directory — the watermark picks up
        exactly where the synced checkpoint left off, so commit
        sequence numbers stay monotone across the failover — and stops
        following.  The serving facade flips its advertised role to
        ``leader`` and starts routing write verbs to the new service.
        Idempotent.  Returns the post-promotion status dict.
        """
        with self._lock:
            self._check_open()
            if self._promoted is None:
                from repro.service import TransactionService

                self._promoted = TransactionService(
                    config=self._service_config())
                _stats.bump("net.replica.promotions")
                with self._sync_cond:
                    self._sync_cond.notify_all()
        self.stop()
        return self.status()

    @property
    def promoted(self):
        """The post-promotion :class:`TransactionService` (None while
        still a follower)."""
        return self._promoted

    # -- fleet status surface (mirrors TransactionService) ---------------------

    def status(self):
        """This endpoint's fleet coordinates (same shape as
        :meth:`TransactionService.status`), plus the leader it follows."""
        svc = self._promoted
        if svc is not None:
            return svc.status()
        return {
            "role": "replica",
            "watermark": self._watermark,
            "checkpoint_seq": self._seq or 0,
            "checkpoint_watermark": self._watermark,
            "leader": "{}:{}".format(self.host, self.port),
            "staleness_s": round(self.staleness_s, 3),
            "max_staleness_s": self.max_staleness_s,
        }

    @property
    def staleness_s(self):
        """Seconds since this replica last heard from its leader (a
        watch heartbeat or a sync manifest both count) — an upper bound
        on how far behind the served snapshot can be.  0.0 once
        promoted: a leader is never stale relative to itself."""
        if self._promoted is not None:
            return 0.0
        return max(0.0, time.monotonic() - self._last_leader_contact)

    def watch(self, seq=0, timeout_s=10.0):
        """Long-poll until this replica serves a checkpoint newer than
        ``seq`` (or the timeout elapses); returns :meth:`status`.
        Chained replicas and cluster clients heartbeat through this."""
        svc = self._promoted
        if svc is not None:
            return svc.watch(seq=seq, timeout_s=timeout_s)
        deadline = time.monotonic() + max(0.0, float(timeout_s))
        with self._sync_cond:
            while (
                (self._seq or 0) <= seq
                and not self._closed
                and self._promoted is None
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._sync_cond.wait(remaining)
        _stats.bump("replica.watches")
        return self.status()

    # -- serving ---------------------------------------------------------------

    def serve(self, host="127.0.0.1", port=0):
        """Start this replica's TCP serving endpoint — the *same*
        server surface as the leader (same frame protocol, same verbs,
        same chunked streaming), fronting the synced checkpoint: read
        verbs answer stamped with the replica's watermark, write verbs
        raise :class:`ReplicaReadOnly` naming the leader.  Returns the
        :class:`~repro.net.server.ReproServer` (``server.address``
        carries the kernel-chosen port when ``port=0``)."""
        from repro.net.server import ReproServer

        self._check_open()
        if self._server is not None:
            return self._server
        if self._facade is None:
            self._facade = _ReplicaService(self, self._service_config())
        self._server = ReproServer(self._facade, host=host, port=port)
        self._server.start()
        self.endpoint = "{}:{}".format(*self._server.address)
        _stats.bump("net.replica.serving")
        return self._server

    def _service_config(self):
        from repro.service import ServiceConfig

        if self._config is not None:
            return self._config
        # post-promotion writes must checkpoint eagerly: the fleet's
        # only change-shipping channel *is* the checkpoint stream
        return ServiceConfig(
            checkpoint_path=self.path, checkpoint_every_n_commits=1)

    # -- read-only session surface ---------------------------------------------

    def query(self, source, *, answer=None):
        """Evaluate a read-only query against the synced checkpoint."""
        return self._ws().query(source, answer)

    def query_result(self, source, *, answer=None):
        """Like :meth:`query` but returns the full ``TxnResult``."""
        return self._ws().query_result(source, answer)

    def rows(self, pred):
        """Rows of a predicate at the synced checkpoint."""
        return self._ws().rows(pred)

    def explain(self, source, *, answer=None):
        """EXPLAIN ANALYZE against the synced checkpoint."""
        return self._ws().explain(source, answer)

    def exec(self, source, *, timeout=None):
        raise self.read_only_error("exec")

    def addblock(self, source, *, name=None, timeout=None):
        raise self.read_only_error("addblock")

    def removeblock(self, name, *, timeout=None):
        raise self.read_only_error("removeblock")

    def load(self, pred, tuples, remove=(), *, timeout=None):
        raise self.read_only_error("load")

    def read_only_error(self, verb):
        """The typed refusal every write verb gets here — also used by
        the serving facade so wire clients see the same error."""
        return ReplicaReadOnly(
            "{} is read-only: {} must go to the leader at {}:{}".format(
                self.name, verb, self.host, self.port))

    # -- lifecycle -------------------------------------------------------------

    def close(self):
        """Stop following and serving, release the leader connection."""
        if self._closed:
            return
        self.stop()
        self._closed = True
        with self._sync_cond:
            self._sync_cond.notify_all()
        if self._server is not None:
            self._server.stop()
            self._server = None
        if self._promoted is not None:
            self._promoted.close()
        if self._client is not None:
            self._client.close()
            self._client = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _session(self):
        if self._client is None:
            self._client = NetSession(
                self.host, self.port, name=self.name,
                **self._client_kwargs)
        return self._client

    def _ws(self):
        self._check_open()
        if self._workspace is None:
            raise ReplicaReadOnly(
                "{} has not synced a checkpoint yet; call sync() "
                "first".format(self.name))
        return self._workspace

    def _check_open(self):
        if self._closed:
            raise ReplicaReadOnly("{} is closed".format(self.name))

    def __repr__(self):
        return "Replica({}:{} -> {}, seq={}, watermark={})".format(
            self.host, self.port, self.path, self.seq, self.watermark)


class _ReplicaService:
    """The service facade a serving replica hands to ``ReproServer``.

    Pre-promotion it answers read verbs from the replica's synced
    workspace (role ``replica`` — the server's registry check refuses
    write verbs with the replica's own :class:`ReplicaReadOnly` before
    they get here); post-promotion every verb delegates to the
    promoted :class:`TransactionService` and the advertised role flips
    to ``leader``, so the *same socket* starts accepting writes.
    """

    role_when_following = "replica"

    def __init__(self, replica, config):
        self._replica = replica
        self.config = config
        self.faults = None

    # the server consults these for HELLO, response stamping, and the
    # registry's write-verb refusal
    @property
    def role(self):
        return ("leader" if self._replica.promoted is not None
                else self.role_when_following)

    @property
    def commit_watermark(self):
        return self._replica.watermark

    def read_only_error(self, op):
        return self._replica.read_only_error(op)

    def _svc(self):
        svc = self._replica.promoted
        if svc is None:
            # unreachable for wire traffic (the server refuses write
            # verbs on non-leaders first); kept as a typed backstop
            raise self._replica.read_only_error("write")
        return svc

    # -- read verbs (replica workspace, or the promoted leader) ----------------

    def query_result(self, source, *, answer=None):
        svc = self._replica.promoted
        if svc is not None:
            return svc.query_result(source, answer=answer)
        return self._replica.query_result(source, answer=answer)

    def rows(self, pred):
        svc = self._replica.promoted
        if svc is not None:
            return svc.rows(pred)
        return self._replica.rows(pred)

    def explain(self, source, *, answer=None):
        svc = self._replica.promoted
        if svc is not None:
            return svc.explain(source, answer=answer)
        return self._replica.explain(source, answer=answer)

    def service_stats(self):
        svc = self._replica.promoted
        if svc is not None:
            return svc.service_stats()
        status = self._replica.status()
        status["peers"] = list(self._replica.peers)
        return status

    def telemetry(self, *, ring_tail=32):
        svc = self._replica.promoted
        if svc is not None:
            return svc.telemetry(ring_tail=ring_tail)
        payload = _obs.telemetry_snapshot(ring_tail=ring_tail)
        payload["service"] = self.service_stats()
        return payload

    def status(self):
        return self._replica.status()

    def watch(self, seq=0, timeout_s=10.0):
        return self._replica.watch(seq=seq, timeout_s=timeout_s)

    def promote(self):
        return self._replica.promote()

    # -- write verbs (only reachable after promotion) --------------------------

    def exec(self, source, *, timeout=None, name=None):
        return self._svc().exec(source, timeout=timeout, name=name)

    def addblock(self, source, *, name=None, timeout=None):
        return self._svc().addblock(source, name=name, timeout=timeout)

    def removeblock(self, name, *, timeout=None):
        return self._svc().removeblock(name, timeout=timeout)

    def load(self, pred, tuples, remove=(), *, timeout=None):
        return self._svc().load(pred, tuples, remove, timeout=timeout)

    def checkpoint(self, *, timeout=None):
        return self._svc().checkpoint(timeout=timeout)

    def shard_prepare(self, source, **kwargs):
        return self._svc().shard_prepare(source, **kwargs)

    def shard_repair(self, token, corrections, **kwargs):
        return self._svc().shard_repair(token, corrections, **kwargs)

    def shard_commit(self, token, deltas, *, timeout=None):
        return self._svc().shard_commit(token, deltas, timeout=timeout)

    def shard_abort(self, token):
        return self._svc().shard_abort(token)

    def shard_apply(self, deltas, *, timeout=None):
        return self._svc().shard_apply(deltas, timeout=timeout)


assert all(hasattr(_ReplicaService, verb) for verb in WRITE_VERBS), \
    "every registered write verb needs a (post-promotion) delegate"


# -- CLI ----------------------------------------------------------------------


def main(argv=None):
    """``python -m repro.net.replica``: run one serving replica until
    SIGTERM/SIGINT — sync from the leader, serve reads, follow with
    heartbeat failover."""
    import argparse
    import signal

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--leader", required=True, metavar="HOST:PORT",
                        help="the leader's serving endpoint")
    parser.add_argument("--path", required=True,
                        help="local checkpoint directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="serving port (0: kernel-chosen)")
    parser.add_argument("--peers", default="",
                        help="comma-separated serving endpoints of the "
                             "other replicas (the failover electorate)")
    parser.add_argument("--heartbeat", type=float, default=2.0,
                        help="leader heartbeat period in seconds")
    parser.add_argument("--leader-timeout", type=float, default=6.0,
                        help="declare the leader dead after this many "
                             "seconds without a heartbeat reply")
    parser.add_argument("--max-staleness", type=float, default=None,
                        help="advertise this staleness bound in status(); "
                             "cluster clients drop the replica from read "
                             "rotation while it lags past the bound")
    args = parser.parse_args(argv)

    host, _, port = args.leader.rpartition(":")
    replica = Replica(
        host, int(port), args.path,
        peers=[p.strip() for p in args.peers.split(",") if p.strip()],
        max_staleness_s=args.max_staleness)
    replica.serve(host=args.host, port=args.port)
    replica.follow(heartbeat_s=args.heartbeat,
                   leader_timeout_s=args.leader_timeout)
    print("repro.net.replica serving on {} (leader {})".format(
        replica.endpoint, args.leader), flush=True)

    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    try:
        stop.wait()
    finally:
        print("stopping...", flush=True)
        replica.close()
        print("stopped", flush=True)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
