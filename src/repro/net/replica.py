"""Checkpoint-shipping read replicas.

A :class:`Replica` follows a leader server's durable checkpoints and
serves read-only queries from its own local copy of the workspace.
The shipping protocol is a *Merkle delta sync* over the pager's
content-addressed record store:

1. The follower fetches the leader's committed checkpoint manifest
   (``sync_manifest``).  A manifest names the treap *roots* of every
   relation/index plus a handful of flat blobs — all 16-byte
   blake2b addresses of immutable records.
2. Starting from those roots, the follower walks the trees top-down,
   fetching **only addresses it does not already hold**
   (``sync_records``, batched).  Children are discovered from the
   fetched node payloads themselves (:func:`~repro.storage.pager.node_children`);
   a locally-known address prunes its entire subtree, because content
   addressing makes "same address" mean "same subtree".
3. The fetched records are ingested into the local
   :class:`~repro.storage.pager.CheckpointStore` with the same staged
   commit protocol as a local checkpoint (pack fsync → dir fsync →
   atomic manifest replace), and the workspace is rebuilt from it.

Because checkpoints share structure (persistent treaps), a one-tuple
change on the leader perturbs only the spine above that tuple —
O(log n) nodes — and step 2 fetches exactly those: a warm replica's
delta sync transfers O(log n) records, not O(n).  The test suite
asserts this on the ``pager.sync.fetched_records`` counter.

The replica is read-only: ``query`` / ``query_result`` / ``rows``
serve from the last synced checkpoint; write verbs raise
:class:`~repro.net.protocol.ReplicaReadOnly` naming the leader.

    from repro.net import Replica

    replica = Replica("leader-host", 7411, "/var/lib/repro/replica")
    replica.sync()                 # one cold/delta sync
    replica.follow(poll_s=2.0)     # ...or poll for new checkpoints
    print(replica.query("_(s, v) <- inventory[s] = v."))
    replica.close()
"""

import threading

from repro import stats as _stats
from repro import obs as _obs
from repro.net.client import NetSession
from repro.net.protocol import DEFAULT_PORT, ReplicaReadOnly
from repro.runtime.workspace import Workspace
from repro.storage.pager import (
    CheckpointStore,
    manifest_addresses,
    node_children,
)

#: how many addresses one sync_records request carries
_FETCH_BATCH = 256


class Replica:
    """A read-only follower of one leader's checkpoint stream."""

    def __init__(self, host="127.0.0.1", port=DEFAULT_PORT, path=None, *,
                 name=None, **client_kwargs):
        if path is None:
            raise ValueError("Replica needs a local checkpoint directory")
        self.host = host
        self.port = port
        self.path = path
        self.name = name or "replica@{}:{}".format(host, port)
        self._client_kwargs = client_kwargs
        self._client = None
        self._store = CheckpointStore(path)
        self._workspace = None
        self._lock = threading.Lock()
        self._poller = None
        self._stop = threading.Event()
        self._closed = False
        self._seq = None
        if self._store.manifest is not None:
            # resume from the locally durable checkpoint before the
            # first contact with the leader
            self._rebuild()

    # -- syncing ---------------------------------------------------------------

    @property
    def seq(self):
        """Sequence number of the checkpoint this replica *serves* —
        updated only after the synced workspace is rebuilt and visible
        to readers (``None`` before the first sync)."""
        return self._seq

    def sync(self):
        """Pull the leader's latest checkpoint if it is newer than ours.

        Returns a summary dict: ``seq``, ``fetched_records`` (how many
        records crossed the wire — O(log n) for a warm replica),
        ``ingested`` (False when we were already current).

        When tracing is on, the ``replica.sync`` span roots one
        distributed trace: each ``sync_manifest`` / ``sync_records``
        round-trip sends the span's trace context with the request and
        grafts the leader's ``net.request`` subtree back underneath it.
        """
        with self._lock:
            self._check_open()
            with _obs.span("replica.sync", path=self.path) as span:
                manifest = self._session().sync_manifest()
                if self._store.seq is not None and \
                        manifest["seq"] <= self._store.seq:
                    if span is not None:
                        span.attrs["ingested"] = False
                    return {"seq": self._store.seq, "fetched_records": 0,
                            "ingested": False}
                records = self._fetch_delta(manifest)
                self._store.ingest(manifest, records)
                self._rebuild()
                if span is not None:
                    span.attrs["seq"] = manifest["seq"]
                    span.attrs["fetched_records"] = len(records)
                return {"seq": manifest["seq"],
                        "fetched_records": len(records), "ingested": True}

    def _fetch_delta(self, manifest):
        """The Merkle walk: fetch every record reachable from the
        manifest's roots that the local store lacks, discovering tree
        children from the fetched payloads themselves."""
        tree_roots, blobs = manifest_addresses(manifest)
        records = {}

        def missing(addr):
            return addr and addr not in records \
                and not self._store.known(addr)

        # (addr, is_tree): blobs are fetched whole, never walked
        frontier = [(a, True) for a in tree_roots if missing(a)]
        frontier += [(a, False) for a in blobs if missing(a)]
        client = self._session()
        while frontier:
            batch, frontier = frontier[:_FETCH_BATCH], frontier[_FETCH_BATCH:]
            # the same subtree can be reachable from two parents; drop
            # addresses a previous batch already brought home
            want = {addr: is_tree for addr, is_tree in batch
                    if addr not in records}
            if not want:
                continue
            fetched = client.sync_records(list(want))
            _stats.bump("pager.sync.fetched_records", len(fetched))
            got = set()
            for addr, payload in fetched:
                got.add(addr)
                records[addr] = payload
                if want[addr]:
                    for child in node_children(payload):
                        if missing(child):
                            frontier.append((child, True))
            lost = set(want) - got
            if lost:
                raise ValueError(
                    "leader could not serve {} record(s) of checkpoint "
                    "{} (e.g. {}); its checkpoint moved mid-walk — "
                    "retry the sync".format(
                        len(lost), manifest["seq"],
                        sorted(lost)[0].hex()))
        return records

    def _rebuild(self):
        workspace = Workspace()
        self._store.restore_into(workspace)
        self._workspace = workspace
        self._seq = self._store.seq

    def follow(self, poll_s=1.0):
        """Start a background thread polling the leader for new
        checkpoints every ``poll_s`` seconds (one initial sync runs
        immediately, raising on failure so misconfiguration surfaces
        at the call site)."""
        self._check_open()
        if self._poller is not None:
            return
        self.sync()
        self._stop.clear()

        def loop():
            while not self._stop.wait(poll_s):
                try:
                    self.sync()
                except Exception:
                    # transient leader outage: keep serving the last
                    # synced checkpoint and keep polling
                    _stats.bump("net.replica.sync_errors")

        self._poller = threading.Thread(
            target=loop, name=self.name + "/poll", daemon=True)
        self._poller.start()

    def stop(self):
        """Stop the polling thread (the replica keeps serving reads)."""
        if self._poller is None:
            return
        self._stop.set()
        self._poller.join()
        self._poller = None

    # -- read-only session surface ---------------------------------------------

    def query(self, source, *, answer=None):
        """Evaluate a read-only query against the synced checkpoint."""
        return self._ws().query(source, answer)

    def query_result(self, source, *, answer=None):
        """Like :meth:`query` but returns the full ``TxnResult``."""
        return self._ws().query_result(source, answer)

    def rows(self, pred):
        """Rows of a predicate at the synced checkpoint."""
        return self._ws().rows(pred)

    def exec(self, source, *, timeout=None):
        raise self._read_only("exec")

    def addblock(self, source, *, name=None, timeout=None):
        raise self._read_only("addblock")

    def removeblock(self, name, *, timeout=None):
        raise self._read_only("removeblock")

    def load(self, pred, tuples, remove=(), *, timeout=None):
        raise self._read_only("load")

    def _read_only(self, verb):
        return ReplicaReadOnly(
            "{} is read-only: {} must go to the leader at {}:{}".format(
                self.name, verb, self.host, self.port))

    # -- lifecycle -------------------------------------------------------------

    def close(self):
        """Stop polling and release the leader connection."""
        if self._closed:
            return
        self.stop()
        self._closed = True
        if self._client is not None:
            self._client.close()
            self._client = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _session(self):
        if self._client is None:
            self._client = NetSession(
                self.host, self.port, name=self.name,
                **self._client_kwargs)
        return self._client

    def _ws(self):
        self._check_open()
        if self._workspace is None:
            raise ReplicaReadOnly(
                "{} has not synced a checkpoint yet; call sync() "
                "first".format(self.name))
        return self._workspace

    def _check_open(self):
        if self._closed:
            raise ReplicaReadOnly("{} is closed".format(self.name))

    def __repr__(self):
        return "Replica({}:{} -> {}, seq={})".format(
            self.host, self.port, self.path, self.seq)
