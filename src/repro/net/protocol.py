"""The repro wire protocol: length-prefixed, versioned binary frames.

The network boundary reuses the *durability* codec as its value codec:
:func:`repro.storage.pager.encode_value` is already a canonical,
deterministic, msgpack-free binary encoding of the whole LogiQL value
universe (None/bool/int/float/str/bytes, tuples, lists, dicts, the
BOTTOM/TOP sentinels, aggregation states), so request arguments, answer
rows, and checkpoint records ship over TCP in exactly the bytes they
occupy on disk.  One codec, one set of invariants.

Frame layout (all integers little-endian)::

    +----------------+-----------+--------+------------------+
    | length u32     | version u8| type u8| payload bytes    |
    +----------------+-----------+--------+------------------+

``length`` counts everything after itself (version + type + payload),
so a reader needs exactly two reads per frame; the payload is one
encoded value (conventionally a dict).  Frames are bounded by
``max_frame_bytes`` — an oversized length is a protocol error, not an
allocation.

Frame types:

* ``HELLO``    — handshake, both directions.  The server's reply
  carries the protocol version, the service's retry/backoff policy
  (so clients honor the *server's* policy, not a hardcoded one), the
  row-chunk size for streamed results, and — since the fleet tier —
  the endpoint's ``role`` (``"leader"`` / ``"replica"``) and current
  commit ``watermark``, so a cluster client can route reads and writes
  from the handshake alone.
* ``REQUEST``  — ``{"id": n, "op": str, "args": {...}}``.  Requests may
  be pipelined; responses carry the id and may complete out of order.
  A tracing client adds ``"trace_ctx": {"trace": id, "span": sid}``
  (sent only after the server's HELLO advertised ``"trace": True``, so
  old peers never see the key; dict payloads tolerate unknown keys in
  both directions regardless).
* ``RESPONSE`` — ``{"id": n, "result": {...}}`` terminal success.
  Every response is stamped with ``"watermark"``: the commit watermark
  of the state it was served from (on a replica, the watermark of the
  synced checkpoint) — the basis of session consistency.  When
  the request carried a ``trace_ctx``, the server attaches ``"trace"``:
  its serialized span tree for the request (a
  :meth:`repro.obs.Span.to_dict` payload, scrubbed by
  :func:`trace_to_wire`), which the client grafts back under its own
  open span — one transaction, one stitched tree.
* ``CHUNK``    — ``{"id": n, "rows": [...]}`` partial answer rows for a
  streaming query; zero or more precede the RESPONSE.
* ``ERROR``    — ``{"id": n | None, "error": {...}}`` a typed error
  frame (see below); ``id`` is None for connection-level errors.
* ``GOODBYE``  — server is draining; finish in-flight work and
  reconnect elsewhere/later.

**Typed error frames.**  Every :class:`~repro.runtime.errors.ReproError`
subclass round-trips the wire: :func:`error_to_wire` captures the
class name, the exception args, and the class's declared payload
attributes (``preds``, ``deadline_s``, ``retry_after_s``, ...);
:func:`error_from_wire` rebuilds an instance of the same class with
the same ``str()`` and the same payload attributes, without re-running
``__init__`` (which would re-derive the message and double-append
suffixes).  Unknown class names — a newer server talking to an older
client — degrade to a plain :class:`ReproError` carrying the original
type name, never a crash.
"""

import io
import struct

from repro.runtime.errors import ReproError
from repro.storage.pager import decode_value, encode_value

PROTOCOL_VERSION = 1
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024
DEFAULT_PORT = 7411

_HEADER = struct.Struct("<I")
_HEADER_LEN = 4

# -- frame types --------------------------------------------------------------

F_HELLO = 0x01
F_REQUEST = 0x02
F_RESPONSE = 0x03
F_CHUNK = 0x04
F_ERROR = 0x05
F_GOODBYE = 0x06

FRAME_NAMES = {
    F_HELLO: "HELLO",
    F_REQUEST: "REQUEST",
    F_RESPONSE: "RESPONSE",
    F_CHUNK: "CHUNK",
    F_ERROR: "ERROR",
    F_GOODBYE: "GOODBYE",
}


# -- net error taxonomy -------------------------------------------------------


class NetError(ReproError):
    """Base class of errors raised by the network layer itself."""


class ProtocolError(NetError):
    """The peer sent bytes that are not a well-formed protocol frame
    (bad version, oversized length, undecodable payload)."""


class ConnectionLost(NetError, ConnectionError):
    """The transport failed mid-conversation: a torn frame, an EOF
    while a response was outstanding, or a refused reconnect.  For
    non-idempotent verbs the commit status of the in-flight transaction
    is unknown — the server may or may not have applied it."""


class ReplicaReadOnly(NetError):
    """A write verb was invoked on a read replica; writes must go to
    the leader."""


class StaleRead(NetError):
    """A session-consistency read could not be served at (or above) the
    client's own watermark: every reachable endpoint — including, after
    fallback, the leader — answered from a commit watermark below the
    highest one this session has already observed.  Seen in practice
    only when leadership moved to a replica whose last synced
    checkpoint predates the client's last write."""


class LeaderUnavailable(NetError):
    """The cluster client could not find a writable leader among its
    endpoints (all down, or every reachable endpoint is a replica and
    none has promoted yet)."""


#: the consistency modes every transport accepts (local workspace
#: path, single tcp:// server, cluster:// fleet): ``strong`` = reads
#: only from the leader; ``session`` = read-your-writes against the
#: session's observed watermark; ``eventual`` = any replica, any lag
CONSISTENCY_MODES = ("strong", "session", "eventual")


# -- the verb registry ---------------------------------------------------------


class VerbSpec:
    """One wire verb's routing/retry contract.

    ``write``     — the verb mutates leader state: replicas refuse it
                    with :class:`ReplicaReadOnly`, and cluster clients
                    always route it to the leader.
    ``retryable`` — the verb is idempotent: clients may transparently
                    reconnect and re-send it after a transport failure.

    Every routing decision derives from this one table: the server
    validates ops against it, replicas refuse ``write`` verbs from it,
    and the client takes its auto-retry policy from ``retryable`` —
    a new verb cannot be routable on one layer and unknown to another.
    """

    __slots__ = ("name", "write", "retryable")

    def __init__(self, name, *, write, retryable):
        self.name = name
        self.write = write
        self.retryable = retryable

    def __repr__(self):
        return "VerbSpec({!r}, write={}, retryable={})".format(
            self.name, self.write, self.retryable)


VERBS = {spec.name: spec for spec in (
    # -- writes: leader-only, never auto-retried (commit status of a
    #    torn-connection attempt is unknown)
    VerbSpec("exec", write=True, retryable=False),
    VerbSpec("addblock", write=True, retryable=False),
    VerbSpec("removeblock", write=True, retryable=False),
    VerbSpec("load", write=True, retryable=False),
    VerbSpec("checkpoint", write=True, retryable=False),
    # -- reads: served by any role, idempotent, auto-retried
    VerbSpec("query", write=False, retryable=True),
    VerbSpec("rows", write=False, retryable=True),
    VerbSpec("stats", write=False, retryable=True),
    VerbSpec("telemetry", write=False, retryable=True),
    VerbSpec("explain", write=False, retryable=True),
    VerbSpec("ping", write=False, retryable=True),
    VerbSpec("status", write=False, retryable=True),
    VerbSpec("watch", write=False, retryable=True),
    VerbSpec("sync_manifest", write=False, retryable=True),
    VerbSpec("sync_records", write=False, retryable=True),
    # -- control: *allowed* on replicas (it is how one becomes a
    #    leader), a no-op on an existing leader, not auto-retried
    VerbSpec("promote", write=False, retryable=False),
    # -- sharding (repro.shard): the cross-shard commit circuit.
    #    prepare/repair/commit mutate held transaction state and must
    #    not be blindly re-sent; abort is an idempotent token drop
    VerbSpec("shard_prepare", write=True, retryable=False),
    VerbSpec("shard_repair", write=True, retryable=False),
    VerbSpec("shard_commit", write=True, retryable=False),
    VerbSpec("shard_abort", write=True, retryable=True),
    VerbSpec("shard_apply", write=True, retryable=False),
)}

#: verbs a read-only replica refuses (derived — never listed twice)
WRITE_VERBS = frozenset(n for n, s in VERBS.items() if s.write)
#: verbs safe to re-send across a reconnect (derived)
RETRYABLE_VERBS = frozenset(n for n, s in VERBS.items() if s.retryable)


def verb_spec(op):
    """The :class:`VerbSpec` for ``op``; raises a typed error for ops
    outside the registry, so an unknown verb fails identically on every
    layer that consults the table."""
    spec = VERBS.get(op)
    if spec is None:
        raise ReproError("unknown op {!r}".format(op))
    return spec


# -- framing ------------------------------------------------------------------


def encode_frame(ftype, payload, *, max_frame_bytes=DEFAULT_MAX_FRAME_BYTES):
    """One wire frame for ``payload`` (any codec-encodable value)."""
    body = encode_value(payload)
    length = len(body) + 2
    if length > max_frame_bytes:
        raise ProtocolError(
            "frame of {} bytes exceeds the {} byte limit".format(
                length, max_frame_bytes))
    out = io.BytesIO()
    out.write(_HEADER.pack(length))
    out.write(bytes((PROTOCOL_VERSION, ftype)))
    out.write(body)
    return out.getvalue()


def decode_frame_body(body):
    """``(ftype, payload)`` from a frame body (version + type + bytes)."""
    if len(body) < 2:
        raise ProtocolError("truncated frame body ({} bytes)".format(len(body)))
    version, ftype = body[0], body[1]
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported protocol version {} (this side speaks {})".format(
                version, PROTOCOL_VERSION))
    if ftype not in FRAME_NAMES:
        raise ProtocolError("unknown frame type 0x{:02x}".format(ftype))
    try:
        payload = decode_value(body[2:])
    except (ValueError, IndexError, struct.error) as exc:
        raise ProtocolError("undecodable frame payload: {}".format(exc)) from exc
    return ftype, payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    TCP delivers bytes, not frames: a single ``recv`` may hold half a
    frame or three and a half.  Feed whatever arrives; complete frames
    come back in order, partial bytes are buffered for the next feed.
    """

    def __init__(self, *, max_frame_bytes=DEFAULT_MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def buffered(self):
        """Bytes held waiting for the rest of a frame (0 between frames
        — nonzero at EOF means the peer tore a frame mid-send)."""
        return len(self._buffer)

    def feed(self, data):
        """Consume ``data``; return the list of completed
        ``(ftype, payload)`` frames."""
        self._buffer.extend(data)
        frames = []
        while True:
            if len(self._buffer) < _HEADER_LEN:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise ProtocolError(
                    "incoming frame of {} bytes exceeds the {} byte "
                    "limit".format(length, self.max_frame_bytes))
            if len(self._buffer) < _HEADER_LEN + length:
                return frames
            body = bytes(self._buffer[_HEADER_LEN:_HEADER_LEN + length])
            del self._buffer[:_HEADER_LEN + length]
            frames.append(decode_frame_body(body))


# -- typed error frames -------------------------------------------------------

#: extra payload attributes carried per error class, beyond the args.
#: Keys are class *names* so the table survives import-order games.
_WIRE_ATTRS = {
    "ConstraintViolation": ("violations",),
    "ConflictError": ("preds",),
    "TxnTimeout": ("deadline_s",),
    "Overloaded": ("depth", "limit", "retry_after_s"),
}


class _WireConstraint:
    """Client-side stand-in for a compiled constraint inside a decoded
    :class:`ConstraintViolation` — carries the source text only."""

    __slots__ = ("text",)

    def __init__(self, text):
        self.text = text

    def __repr__(self):
        return self.text

    def __str__(self):
        return self.text


def _encode_attr(name, value):
    if name == "violations":
        return [
            [str(getattr(constraint, "text", None) or constraint), binding]
            for constraint, binding in value
        ]
    return value


def _decode_attr(name, value):
    if name == "violations":
        return [(_WireConstraint(text), binding) for text, binding in value]
    return value


def error_registry():
    """Every currently-importable :class:`ReproError` subclass, by name
    (including :class:`ReproError` itself).  The wire protocol promises
    to round-trip all of them; the test suite checks this exhaustively.
    """
    registry = {ReproError.__name__: ReproError}
    stack = [ReproError]
    while stack:
        for subclass in stack.pop().__subclasses__():
            if subclass.__name__ not in registry:
                registry[subclass.__name__] = subclass
                stack.append(subclass)
    return registry


def error_to_wire(exc):
    """The typed wire record of one :class:`ReproError` (or, for a
    foreign exception, of a :class:`ReproError` wrapping its repr)."""
    if not isinstance(exc, ReproError):
        return {
            "type": ReproError.__name__,
            "args": ("unexpected server error: {!r}".format(exc),),
            "attrs": {},
        }
    attrs = {}
    for name in _WIRE_ATTRS.get(type(exc).__name__, ()):
        attrs[name] = _encode_attr(name, getattr(exc, name, None))
    args = tuple(
        arg if isinstance(arg, (str, int, float, bool, bytes)) or arg is None
        else str(arg)
        for arg in exc.args
    )
    return {"type": type(exc).__name__, "args": args, "attrs": attrs}


def error_from_wire(record):
    """Rebuild the typed exception encoded by :func:`error_to_wire`.

    The instance is built with ``__new__`` + ``Exception.__init__`` so
    the message (already formatted once, server-side) is preserved
    verbatim — class ``__init__`` methods that append payload summaries
    must not run twice.
    """
    name = record.get("type") or ReproError.__name__
    args = tuple(record.get("args") or ())
    cls = error_registry().get(name)
    if cls is None:
        message = args[0] if args else ""
        return ReproError("remote {}: {}".format(name, message))
    exc = cls.__new__(cls)
    Exception.__init__(exc, *args)
    for attr_name in _WIRE_ATTRS.get(name, ()):
        value = record.get("attrs", {}).get(attr_name)
        setattr(exc, attr_name, _decode_attr(attr_name, value))
    return exc


# -- trace payloads over the wire ---------------------------------------------


_CODEC_SCALARS = (str, int, float, bool, bytes)


def trace_to_wire(record):
    """A :meth:`repro.obs.Span.to_dict` tree made codec-safe.

    Span attributes are arbitrary Python values (call sites annotate
    freely); the pager codec only encodes its value universe.  Scalars
    pass through, containers recurse, anything else degrades to its
    ``repr`` — a trace must never be the reason a response frame fails
    to encode."""
    def scrub(value):
        if value is None or isinstance(value, _CODEC_SCALARS):
            return value
        if isinstance(value, dict):
            return {str(key): scrub(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [scrub(item) for item in value]
        return repr(value)

    return scrub(record)


# -- delta maps over the wire -------------------------------------------------
#
# The shard verbs ship raw effect/correction maps (``{pred: Delta}``)
# between coordinator and shards, in the same ``(added, removed)`` row
# shape TxnResult deltas already use.


def deltas_to_wire(deltas):
    """``{pred: Delta}`` as a codec-safe dict."""
    return {
        pred: (list(delta.added), list(delta.removed))
        for pred, delta in (deltas or {}).items()
    }


def deltas_from_wire(record):
    """Rebuild a ``{pred: Delta}`` map encoded by :func:`deltas_to_wire`."""
    from repro.storage.relation import Delta

    return {
        pred: Delta.from_iters(added, removed)
        for pred, (added, removed) in (record or {}).items()
    }


# -- TxnResult over the wire --------------------------------------------------


def result_to_wire(result, *, include_rows=True):
    """A :class:`~repro.runtime.result.TxnResult` as a codec-safe dict.

    Deltas ship as ``{pred: (added_rows, removed_rows)}``; stats are
    already a flat counter dict.  ``include_rows=False`` omits the rows
    (they stream separately as CHUNK frames) and records the total.
    """
    record = {
        "status": result.status,
        "kind": result.kind,
        "deltas": {
            pred: (list(delta.added), list(delta.removed))
            for pred, delta in result.deltas.items()
        },
        "stats": dict(result.stats),
        "span_id": result.span_id,
        "block": result.block,
        "attempts": result.attempts,
        "repairs": result.repairs,
        "latency_s": result.latency_s,
    }
    if result.rows is None:
        record["rows"] = None
    elif include_rows:
        record["rows"] = list(result.rows)
    else:
        record["rows"] = None
        record["rows_total"] = len(result.rows)
    return record


def result_from_wire(record, *, rows=None):
    """Rebuild the :class:`TxnResult`; ``rows`` supplies rows collected
    from CHUNK frames when the server streamed them out-of-band."""
    from repro.runtime.result import TxnResult
    from repro.storage.relation import Delta

    wire_rows = record.get("rows")
    if wire_rows is None and rows is not None:
        wire_rows = rows
    return TxnResult(
        status=record.get("status", "committed"),
        kind=record.get("kind", "exec"),
        deltas={
            pred: Delta.from_iters(added, removed)
            for pred, (added, removed) in record.get("deltas", {}).items()
        },
        rows=wire_rows,
        stats=dict(record.get("stats") or {}),
        span_id=record.get("span_id"),
        block=record.get("block"),
        attempts=record.get("attempts", 1),
        repairs=record.get("repairs", 0),
        latency_s=record.get("latency_s"),
    )
