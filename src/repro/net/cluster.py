"""The cluster client: one session over a leader + replica fleet.

``repro.connect("cluster://leader:7411,r1:7412,r2:7413")`` returns a
:class:`ClusterSession` speaking the same verb surface as a local
:class:`~repro.service.session.Session` or a single-server
:class:`~repro.net.client.NetSession`, but routed:

* **Writes go to the leader.**  Which endpoint that is comes from the
  HELLO/status role advertisement, not configuration order — after a
  failover the client re-resolves by probing until a member reports
  ``role == "leader"`` (a promoted replica), raising a typed
  :class:`~repro.net.protocol.LeaderUnavailable` if none appears
  within the deadline.
* **Reads fan out across replicas**, round-robin, skipping members
  that recently failed a transport round-trip (excluded for
  ``exclude_s``, then re-tried).  The leader is the fallback of last
  resort, so reads keep answering through a full replica outage.
* **Session consistency is enforced centrally.**  Every response is
  stamped with the commit watermark of the state it was served from;
  the cluster session tracks the highest watermark it has observed
  (its own writes included).  Under ``consistency="session"`` a read
  answered below that watermark is *not returned*: the client retries
  the next replica, optionally waits ``stale_wait_s`` for the fleet to
  catch up, and finally falls back to the leader — which is
  definitionally current — so read-your-writes holds across the whole
  fleet.  ``"eventual"`` takes any replica's answer as-is;
  ``"strong"`` sends every read to the leader.

Write failover is deliberately conservative: a write that fails after
the request may have reached the old leader is **not** retried (the
commit status is unknown) unless ``retry_writes_on_failover=True``
opts into at-least-once. A write that provably never reached a server
(connection establishment failed) is always safe to retry against the
newly resolved leader.

Threading: like the sessions it is built from, one ``ClusterSession``
per thread.
"""

import itertools
import time

from repro import stats as _stats
from repro.net.client import NetSession
from repro.net.protocol import (
    CONSISTENCY_MODES,
    ConnectionLost,
    LeaderUnavailable,
    ProtocolError,
    ReplicaReadOnly,
    verb_spec,
)
from repro.runtime.errors import ReproError

_session_counter = itertools.count(1)

#: session-method name -> wire op, where they differ
_VERB_OPS = {"query_result": "query"}


def _parse_endpoint(endpoint):
    host, _, port = str(endpoint).strip().rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(
            "cluster endpoint must be 'host:port', got {!r}".format(endpoint))
    return host, int(port)


class _Member:
    """One fleet endpoint: its lazily opened session and what the
    cluster has learned about it (role, watermark, health)."""

    __slots__ = ("endpoint", "host", "port", "session", "role",
                 "watermark", "excluded_until", "lag_excluded",
                 "lag_probe_at")

    def __init__(self, endpoint):
        self.endpoint = "{}:{}".format(*_parse_endpoint(endpoint))
        self.host, self.port = _parse_endpoint(endpoint)
        self.session = None
        self.role = None  # unknown until the first HELLO/status
        self.watermark = 0
        self.excluded_until = 0.0
        # lag self-exclusion: the member's own advertised staleness
        # bound said "don't read from me"; re-probed, not timed out
        self.lag_excluded = False
        self.lag_probe_at = 0.0

    def excluded(self):
        return time.monotonic() < self.excluded_until


class ClusterSession:
    """One client's consistency-aware view of a replica fleet."""

    def __init__(self, endpoints, *, name=None, timeout=None,
                 consistency="session", stale_wait_s=0.05, exclude_s=1.0,
                 leader_wait_s=10.0, retry_writes_on_failover=False,
                 lag_probe_s=1.0, **client_kwargs):
        members = [_Member(ep) for ep in endpoints if str(ep).strip()]
        if not members:
            raise ValueError("ClusterSession needs at least one endpoint")
        if consistency not in CONSISTENCY_MODES:
            raise ValueError(
                "consistency must be one of {}, got {!r}".format(
                    "/".join(CONSISTENCY_MODES), consistency))
        self.name = name or "cluster-session-{}".format(
            next(_session_counter))
        self.timeout = timeout
        self.consistency = consistency
        self.stale_wait_s = stale_wait_s
        self.exclude_s = exclude_s
        self.leader_wait_s = leader_wait_s
        self.retry_writes_on_failover = retry_writes_on_failover
        #: how often (at most) to re-check a member's self-advertised
        #: staleness bound with a status() probe; 0 disables the check
        self.lag_probe_s = lag_probe_s
        self._client_kwargs = client_kwargs
        self._members = {m.endpoint: m for m in members}
        self._order = [m.endpoint for m in members]
        self._rr = 0
        #: highest commit watermark this session has observed — its own
        #: writes included, so it anchors read-your-writes fleet-wide
        self.watermark = 0
        self._closed = False

    # -- membership ------------------------------------------------------------

    def endpoints(self):
        """Configured endpoints in routing order."""
        return list(self._order)

    def fleet_stats(self):
        """What this client currently believes about the fleet: per
        member its last known role, watermark, and exclusion state,
        plus the session's own watermark."""
        return {
            "watermark": self.watermark,
            "consistency": self.consistency,
            "members": {
                m.endpoint: {
                    "role": m.role,
                    "watermark": m.watermark,
                    "excluded": m.excluded(),
                    "lag_excluded": m.lag_excluded,
                }
                for m in self._members.values()
            },
        }

    def _session_for(self, member):
        if member.session is None:
            member.session = NetSession(
                member.host, member.port,
                name="{}/{}".format(self.name, member.endpoint),
                timeout=self.timeout,
                # staleness is judged fleet-wide here, against the
                # cluster watermark — member sessions must not veto
                consistency="eventual",
                **self._client_kwargs)
            member.role = member.session.server_role
            member.watermark = member.session.server_watermark
        return member.session

    def _drop(self, member):
        if member.session is not None:
            try:
                member.session.close()
            except ReproError:  # pragma: no cover
                pass
            member.session = None

    def _exclude(self, member):
        member.excluded_until = time.monotonic() + self.exclude_s
        self._drop(member)
        _stats.bump("fleet.exclusions")

    def _observe(self, member):
        wm = member.session.last_watermark
        if wm is None:
            return None
        member.watermark = wm
        if wm > self.watermark:
            self.watermark = wm
        return wm

    # -- routing ---------------------------------------------------------------

    def _invoke(self, verb, *args, **kwargs):
        self._check_open()
        # the registry keys wire ops; session *methods* add one alias
        if verb_spec(_VERB_OPS.get(verb, verb)).write:
            return self._write(verb, args, kwargs)
        return self._read(verb, args, kwargs)

    def _read(self, verb, args, kwargs):
        """Round-robin across replicas, skip stale/excluded members,
        fall back to the leader (always current) last."""
        swept = 0
        while True:
            stale = 0
            for member in self._read_candidates():
                session = self._session_for_safe(member)
                if session is None:
                    continue
                if not self._lag_ok(member, session):
                    # the member itself says it is lagging past its
                    # advertised bound — route around it up front
                    # instead of discovering the lag via StaleRead
                    continue
                try:
                    out = getattr(session, verb)(*args, **kwargs)
                except (ConnectionLost, ProtocolError):
                    self._exclude(member)
                    continue
                except ReplicaReadOnly:
                    # an unsynced replica refuses reads until its first
                    # checkpoint lands: cool it off, try the next member
                    self._exclude(member)
                    continue
                wm = self._observe(member)
                if (
                    self.consistency == "session"
                    and member.role != "leader"
                    and wm is not None
                    and wm < self.watermark
                ):
                    # this replica hasn't caught up to our own history:
                    # its (valid, but stale) answer must not be returned
                    _stats.bump("fleet.stale_skips")
                    stale += 1
                    continue
                _stats.bump("fleet.reads")
                return out
            if stale and not swept and self.stale_wait_s > 0:
                # every live replica was behind: give the checkpoint
                # stream one beat to land before burdening the leader
                swept += 1
                time.sleep(self.stale_wait_s)
                continue
            break
        # all replicas down, stale, or excluded — the leader serves
        _stats.bump("fleet.leader_fallbacks")
        member = self._resolve_leader()
        out = getattr(self._session_for(member), verb)(*args, **kwargs)
        self._observe(member)
        _stats.bump("fleet.reads")
        return out

    def _read_candidates(self):
        """Non-leader members, round-robin rotated, healthy first;
        ``consistency="strong"`` yields nothing — reads go straight to
        the leader fallback."""
        if self.consistency == "strong":
            return
        n = len(self._order)
        self._rr = (self._rr + 1) % n
        rotated = self._order[self._rr:] + self._order[:self._rr]
        for endpoint in rotated:
            member = self._members[endpoint]
            if member.role == "leader" or member.excluded():
                continue
            yield member

    def _lag_ok(self, member, session):
        """Lag-based self-exclusion: honor the staleness bound the
        member advertises in its own ``status()``.  Probes at most
        every ``lag_probe_s`` seconds per member; between probes the
        last verdict stands.  Members advertising no bound (leaders,
        old replicas) always pass."""
        if not self.lag_probe_s:
            return True
        now = time.monotonic()
        if now < member.lag_probe_at:
            return not member.lag_excluded
        member.lag_probe_at = now + self.lag_probe_s
        try:
            status = session.status()
        except (ConnectionLost, ProtocolError):
            self._exclude(member)
            return False
        member.role = status.get("role") or member.role
        bound = status.get("max_staleness_s")
        lag = status.get("staleness_s")
        lagging = bound is not None and lag is not None and lag > bound
        if lagging and not member.lag_excluded:
            _stats.bump("fleet.lag_exclusions")
        member.lag_excluded = lagging
        return not lagging

    def _session_for_safe(self, member):
        try:
            return self._session_for(member)
        except (ConnectionLost, ProtocolError):
            self._exclude(member)
            return None

    def _write(self, verb, args, kwargs):
        """Route to the leader; on connection loss re-resolve it (a
        replica may have been promoted) and retry only when safe."""
        attempts = 0
        while True:
            attempts += 1
            member = self._resolve_leader()
            session = self._session_for_safe(member)
            if session is None:
                if attempts > 2:
                    raise LeaderUnavailable(
                        "leader {} keeps refusing connections".format(
                            member.endpoint))
                continue
            sent_nothing = False
            try:
                out = getattr(session, verb)(*args, **kwargs)
            except ConnectionLost as exc:
                # a connect-phase failure provably never sent the
                # request; anything later may have committed
                sent_nothing = "cannot connect" in str(exc)
                member.role = None  # stop believing it is the leader
                self._exclude(member)
                if attempts <= 2 and (
                        sent_nothing or self.retry_writes_on_failover):
                    _stats.bump("fleet.write_failovers")
                    continue
                raise ConnectionLost(
                    "{} (write {} not retried: commit status "
                    "unknown)".format(exc, verb)) from exc
            self._observe(member)
            _stats.bump("fleet.writes")
            return out

    def _resolve_leader(self):
        """The member currently advertising ``role == "leader"`` —
        probing the fleet (and waiting out an in-flight promotion, up
        to ``leader_wait_s``) when the last known leader is gone."""
        for member in self._members.values():
            if member.role == "leader" and not member.excluded():
                return member
        deadline = time.monotonic() + self.leader_wait_s
        while True:
            _stats.bump("fleet.leader_probes")
            for endpoint in self._order:
                member = self._members[endpoint]
                try:
                    status = self._session_for(member).status()
                except (ConnectionLost, ProtocolError):
                    self._drop(member)
                    continue
                member.role = status.get("role")
                member.watermark = int(status.get("watermark") or 0)
                if member.role == "leader":
                    member.excluded_until = 0.0
                    return member
            if time.monotonic() >= deadline:
                raise LeaderUnavailable(
                    "no member of {} advertises the leader role (probed "
                    "for {:.1f}s — election still converging, or the "
                    "fleet is down)".format(
                        ",".join(self._order), self.leader_wait_s))
            time.sleep(0.1)

    # -- the session verb surface ----------------------------------------------

    def exec(self, source, *, timeout=None):
        """Write transaction, routed to the leader."""
        return self._invoke("exec", source, timeout=timeout)

    def addblock(self, source, *, name=None, timeout=None):
        """Install logic on the leader."""
        return self._invoke("addblock", source, name=name, timeout=timeout)

    def removeblock(self, name, *, timeout=None):
        """Remove a block on the leader."""
        return self._invoke("removeblock", name, timeout=timeout)

    def load(self, pred, tuples, remove=(), *, timeout=None):
        """Bulk load on the leader."""
        return self._invoke("load", pred, tuples, remove, timeout=timeout)

    def checkpoint(self, *, timeout=None):
        """Durable checkpoint on the leader."""
        return self._invoke("checkpoint", timeout=timeout)

    def query(self, source, *, answer=None):
        """Read, fanned out across the replica fleet."""
        return self._invoke("query", source, answer=answer)

    def query_result(self, source, *, answer=None):
        """Like :meth:`query` but the full ``TxnResult``."""
        return self._invoke("query_result", source, answer=answer)

    def rows(self, pred):
        """Predicate rows from a replica (or the leader fallback)."""
        return self._invoke("rows", pred)

    def explain(self, source, *, answer=None):
        """EXPLAIN ANALYZE on a replica (or the leader fallback)."""
        return self._invoke("explain", source, answer=answer)

    def stats(self):
        """The leader's service counters."""
        member = self._resolve_leader()
        out = self._session_for(member).stats()
        self._observe(member)
        return out

    def telemetry(self, *, ring_tail=32):
        """Telemetry from a replica (or the leader fallback)."""
        return self._invoke("telemetry", ring_tail=ring_tail)

    def promote(self, endpoint):
        """Ask one member to promote itself (failover drills); returns
        its post-promotion status and re-learns the fleet's roles."""
        member = self._members.get(
            "{}:{}".format(*_parse_endpoint(endpoint)))
        if member is None:
            raise ValueError(
                "{} is not a member of this cluster".format(endpoint))
        status = self._session_for(member).promote()
        for other in self._members.values():
            if other.role == "leader":
                other.role = None
        member.role = status.get("role")
        return status

    # -- lifecycle -------------------------------------------------------------

    def close(self):
        """Close every member session."""
        if self._closed:
            return
        self._closed = True
        for member in self._members.values():
            self._drop(member)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _check_open(self):
        if self._closed:
            raise ReproError("session {} is closed".format(self.name))

    def __repr__(self):
        return "ClusterSession({}, {}, watermark={})".format(
            ",".join(self._order), self.consistency, self.watermark)


def connect(endpoints, *, name=None, timeout=None, consistency="session",
            **kwargs):
    """Open a cluster session over ``endpoints`` (an iterable of
    ``"host:port"`` strings, or one comma-separated string) — the
    fleet counterpart of :func:`repro.connect`."""
    if isinstance(endpoints, str):
        endpoints = [e for e in endpoints.split(",") if e.strip()]
    return ClusterSession(endpoints, name=name, timeout=timeout,
                          consistency=consistency, **kwargs)
