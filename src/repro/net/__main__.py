"""``python -m repro.net``: run a standalone leader server (same CLI
as ``python -m repro.net.server``, without runpy's re-import warning).
"""

import sys

from repro.net.server import main

if __name__ == "__main__":
    sys.exit(main())
