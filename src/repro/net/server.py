"""The repro TCP server: a network front end for the transaction service.

``ReproServer`` listens on a socket and speaks the frame protocol of
:mod:`repro.net.protocol`, turning the in-process
:class:`~repro.service.TransactionService` into a database *server*:

* **Per-connection sessions** — each accepted connection handshakes
  (HELLO exchange, which also hands the client the service's
  retry/backoff policy) and then submits pipelined requests; responses
  carry request ids and may complete out of order, so one connection
  can have many transactions in flight.
* **Blocking verbs off the loop** — the event loop never runs LogiQL.
  Requests dispatch to a thread pool where the service's verbs execute
  (and where their ``obs`` spans are recorded, thread-locally and
  therefore correctly); the loop only frames bytes.
* **Backpressure, twice** — per-connection in-flight requests are
  bounded by a semaphore: past the bound the server simply stops
  reading that socket, pushing back through TCP.  Past that, the
  service's own :class:`AdmissionController` sheds load with typed
  ``Overloaded`` frames carrying a retry-after hint.  Writes go through
  ``drain()`` so a slow reader stalls its own responses, not the server.
* **Streaming results** — query answers larger than
  ``net_chunk_rows`` stream as bounded CHUNK frames, so a million-row
  answer never materializes as one frame on either side.
* **Graceful drain** — ``stop()`` (wired to SIGTERM in the CLI) stops
  accepting, sends GOODBYE to every connection, lets in-flight requests
  finish within the drain budget, then closes.
* **Replica feed** — ``sync_manifest`` / ``sync_records`` serve the
  durable checkpoint's manifest and content-addressed records to read
  replicas (:mod:`repro.net.replica`), straight from the pack files.

Fault injection: the service's :class:`FaultInjector` gains two
transport points here — ``net_send`` (before writing a response frame;
``drop`` closes the connection instead, ``truncate`` sends half the
frame and closes) and ``net_recv`` (after reading a request frame) —
so tests can prove clients survive torn frames with typed errors.

``python -m repro.net.server --port 7411 --checkpoint-path ./ckpt``
runs a standalone leader.
"""

import argparse
import asyncio
import concurrent.futures
import os
import signal
import struct
import sys
import threading

from repro import obs as _obs
from repro import stats as _stats
from repro.net.protocol import (
    F_CHUNK,
    F_ERROR,
    F_GOODBYE,
    F_HELLO,
    F_REQUEST,
    F_RESPONSE,
    PROTOCOL_VERSION,
    ProtocolError,
    ReplicaReadOnly,
    decode_frame_body,
    deltas_from_wire,
    deltas_to_wire,
    encode_frame,
    error_to_wire,
    result_to_wire,
    trace_to_wire,
    verb_spec,
)
from repro.runtime.errors import Overloaded, ReproError

_HANDSHAKE_TIMEOUT_S = 10.0


class _Conn:
    """Per-connection state: transport, pipelining bound, in-flight tasks."""

    __slots__ = ("reader", "writer", "write_lock", "sem", "tasks", "peer",
                 "alive")

    def __init__(self, reader, writer, inflight_bound):
        self.reader = reader
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.sem = asyncio.Semaphore(inflight_bound)
        self.tasks = set()
        self.peer = writer.get_extra_info("peername")
        self.alive = True


class ReproServer:
    """Asyncio TCP server fronting one :class:`TransactionService`.

    The event loop runs in a dedicated thread (``start()`` /
    ``stop()``), so the server embeds in tests and REPLs as easily as
    it runs standalone.  ``address`` holds the bound ``(host, port)``
    after start — pass ``port=0`` to let the OS pick.
    """

    def __init__(self, service, host="127.0.0.1", port=0, *, faults=None):
        self.service = service
        self.host = host
        self.port = port
        self.faults = faults if faults is not None else service.faults
        cfg = service.config
        self.chunk_rows = cfg.net_chunk_rows
        self.max_connections = cfg.net_max_connections
        self.inflight_per_conn = cfg.net_inflight_per_conn
        self.max_frame_bytes = cfg.net_max_frame_bytes
        self.address = None
        self._loop = None
        self._thread = None
        self._server = None
        self._conns = set()
        self._draining = False
        self._inflight = 0
        self._started = threading.Event()
        self._startup_error = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=min(32, (os.cpu_count() or 4) * 4),
            thread_name_prefix="repro-net",
        )
        # watch long-polls park a thread for seconds at a time; they get
        # their own (lazily grown) pool so a fleet of heartbeating
        # replicas never starves the verb executor
        self._watch_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=64, thread_name_prefix="repro-net-watch",
        )
        self._sync_store = None
        self._sync_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------------

    def start(self):
        """Start serving on a dedicated event-loop thread; returns self
        once the listening socket is bound."""
        if self._thread is not None:
            raise ReproError("server already started")
        cfg = self.service.config
        if cfg.telemetry_interval_s > 0:
            _obs.start_sampler(cfg.telemetry_interval_s,
                               capacity=cfg.telemetry_ring)
            self._owns_sampler = True
        self._thread = threading.Thread(
            target=self._run, name="repro-net-server", daemon=True)
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self):
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._start_async())
        except Exception as exc:
            self._startup_error = ReproError(
                "could not bind {}:{}: {}".format(self.host, self.port, exc))
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    async def _start_async(self):
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        self.address = self._server.sockets[0].getsockname()[:2]
        # publish the kernel-chosen port when bound with port=0
        self.host, self.port = self.address

    def stop(self, *, drain_s=5.0):
        """Graceful drain from any thread: stop accepting, GOODBYE every
        connection, wait up to ``drain_s`` for in-flight requests, then
        close.  Idempotent."""
        loop = self._loop
        if loop is None or not loop.is_running():
            return
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(drain_s), loop)
        try:
            future.result(timeout=drain_s + 10.0)
        except concurrent.futures.TimeoutError:  # pragma: no cover
            pass
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._executor.shutdown(wait=False)
        self._watch_executor.shutdown(wait=False)
        if getattr(self, "_owns_sampler", False):
            self._owns_sampler = False
            _obs.stop_sampler()

    def __enter__(self):
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False

    async def _shutdown(self, drain_s):
        if self._draining:
            return
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        goodbye = encode_frame(F_GOODBYE, {"reason": "draining"})
        for conn in list(self._conns):
            try:
                async with conn.write_lock:
                    conn.writer.write(goodbye)
                    await conn.writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        deadline = self._loop.time() + drain_s
        while self._loop.time() < deadline:
            if not any(conn.tasks for conn in self._conns):
                break
            await asyncio.sleep(0.02)
        for conn in list(self._conns):
            await self._abort_conn(conn)

    # -- connection handling ---------------------------------------------------

    async def _handle_conn(self, reader, writer):
        if self._draining or len(self._conns) >= self.max_connections:
            error = Overloaded(
                "server draining" if self._draining else
                "server at connection capacity ({})".format(len(self._conns)),
                depth=len(self._conns),
                limit=self.max_connections,
                retry_after_s=self.service.config.backoff_cap_s,
            )
            _stats.bump("net.connections_refused")
            try:
                writer.write(encode_frame(
                    F_ERROR, {"id": None, "error": error_to_wire(error)}))
                await writer.drain()
            except ConnectionError:
                pass
            writer.close()
            return
        conn = _Conn(reader, writer, self.inflight_per_conn)
        self._conns.add(conn)
        _stats.bump("net.connections_accepted")
        _stats.gauge("net.connections", len(self._conns))
        try:
            if await self._handshake(conn):
                await self._read_loop(conn)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except ProtocolError as exc:
            await self._send_error(conn, None, exc)
        finally:
            if conn.tasks:
                await asyncio.wait(conn.tasks, timeout=5.0)
            self._conns.discard(conn)
            _stats.gauge("net.connections", len(self._conns))
            await self._abort_conn(conn)

    async def _handshake(self, conn):
        frame = await asyncio.wait_for(
            self._read_frame(conn), timeout=_HANDSHAKE_TIMEOUT_S)
        if frame is None:
            return False
        ftype, payload = frame
        if ftype != F_HELLO:
            raise ProtocolError(
                "expected HELLO, got {}".format(ftype))
        cfg = self.service.config
        reply = {
            "proto": PROTOCOL_VERSION,
            "server": "repro",
            # fleet coordinates: a cluster client routes from the
            # handshake alone (reads to replicas, writes to the leader)
            "role": getattr(self.service, "role", "leader"),
            "watermark": getattr(self.service, "commit_watermark", 0),
            "chunk_rows": self.chunk_rows,
            # trace-context negotiation: clients only attach trace_ctx
            # to requests after seeing this capability, so an old server
            # (no "trace" key) is never sent one and an old client
            # simply ignores the key — interop both ways
            "trace": True,
            "policy": {
                "max_retries": cfg.max_retries,
                "backoff_base_s": cfg.backoff_base_s,
                "backoff_cap_s": cfg.backoff_cap_s,
            },
        }
        # a shard server advertises its fleet identity up front so a
        # coordinator can verify its shard map against every member
        # before routing a single row
        identity = getattr(self.service, "shard_identity", None)
        identity = identity() if callable(identity) else None
        if identity is not None:
            reply["shard"] = {"index": identity[0], "count": identity[1]}
        return await self._send_frames(conn, [(F_HELLO, reply)], op="hello")

    async def _read_frame(self, conn):
        """One frame off the socket, or ``None`` on clean EOF."""
        try:
            header = await conn.reader.readexactly(4)
        except asyncio.IncompleteReadError:
            return None
        (length,) = struct.unpack("<I", header)
        if length > self.max_frame_bytes:
            raise ProtocolError(
                "incoming frame of {} bytes exceeds the {} byte limit".format(
                    length, self.max_frame_bytes))
        body = await conn.reader.readexactly(length)
        _stats.bump("net.bytes_in", 4 + length)
        _stats.bump("net.frames_in")
        return decode_frame_body(body)

    async def _read_loop(self, conn):
        while conn.alive and not self._draining:
            frame = await self._read_frame(conn)
            if frame is None:
                return
            ftype, payload = frame
            op = payload.get("op") if isinstance(payload, dict) else None
            if self.faults is not None:
                try:
                    action = self.faults.fire("net_recv", op)
                except ReproError as exc:
                    await self._send_error(
                        conn,
                        payload.get("id") if isinstance(payload, dict) else None,
                        exc)
                    continue
                if action == "drop":
                    _stats.bump("net.faults.recv_dropped")
                    continue
                if action == "truncate":
                    _stats.bump("net.faults.recv_torn")
                    await self._abort_conn(conn)
                    return
            if ftype == F_GOODBYE:
                return
            if ftype != F_REQUEST:
                raise ProtocolError(
                    "unexpected frame type {} from client".format(ftype))
            # pipelining bound: block the read loop (and thus the
            # socket) until a slot frees — backpressure through TCP
            await conn.sem.acquire()
            task = self._loop.create_task(self._serve_request(conn, payload))
            conn.tasks.add(task)
            task.add_done_callback(
                lambda t, c=conn: (c.tasks.discard(t), c.sem.release()))

    # -- request dispatch ------------------------------------------------------

    async def _serve_request(self, conn, payload):
        rid = payload.get("id")
        op = payload.get("op")
        args = payload.get("args") or {}
        trace_ctx = payload.get("trace_ctx")
        _stats.bump("net.requests")
        self._inflight += 1
        _stats.gauge("net.inflight", self._inflight)
        try:
            try:
                executor = (self._watch_executor if op == "watch"
                            else self._executor)
                frames = await self._loop.run_in_executor(
                    executor, self._dispatch, rid, op, args, trace_ctx)
            except ReproError as exc:
                _stats.bump("net.request_errors")
                frames = [(F_ERROR, {"id": rid, "error": error_to_wire(exc)})]
            except Exception as exc:
                _stats.bump("net.request_errors")
                frames = [(F_ERROR, {"id": rid, "error": error_to_wire(
                    ReproError("internal server error: {!r}".format(exc)))})]
            await self._send_frames(conn, frames, op=op)
        finally:
            self._inflight -= 1
            _stats.gauge("net.inflight", self._inflight)

    def _dispatch(self, rid, op, args, trace_ctx=None):
        """Run one verb on the service (worker thread, blocking) and
        build the response frames.

        When the request carried a ``trace_ctx``, the whole dispatch
        *continues the client's trace*: the ``net.request`` root adopts
        the remote trace id (installing a throwaway collector when
        tracing is otherwise off, so client-driven tracing costs the
        server nothing between traced requests), and the finished span
        tree — including the committer's grafted batch span — is
        attached to the RESPONSE frame for the client to stitch."""
        if trace_ctx is None:
            with _obs.span("net.request", op=op) as span_:
                frames = self._dispatch_op(rid, op, args)
                if span_ is not None:
                    span_.attrs["frames"] = len(frames)
            return frames
        collector = None if _obs.tracing() else _obs.Profile()
        request_span = None
        with _obs.remote_context(trace_ctx):
            if collector is not None:
                collector.__enter__()
            try:
                with _obs.span("net.request", op=op) as span_:
                    request_span = span_
                    frames = self._dispatch_op(rid, op, args)
                    if span_ is not None:
                        span_.attrs["frames"] = len(frames)
            finally:
                if collector is not None:
                    collector.__exit__(None, None, None)
        if request_span is not None:
            self._attach_trace(frames, request_span)
        return frames

    @staticmethod
    def _attach_trace(frames, span_):
        """Put the closed request span tree on the RESPONSE payload."""
        record = trace_to_wire(span_.to_dict())
        for ftype, payload in frames:
            if ftype == F_RESPONSE and isinstance(payload, dict):
                payload["trace"] = record

    def _dispatch_op(self, rid, op, args):
        svc = self.service
        # one registry decides routability: an op outside VERBS fails
        # here with the same typed error every layer raises for it, and
        # a write verb on a read-only endpoint is refused *before* the
        # backend sees it
        spec = verb_spec(op)
        if spec.write and getattr(svc, "role", "leader") != "leader":
            raise self._read_only_error(op)

        def respond(result_value):
            # every response carries the commit watermark of the state
            # it was served from — the session-consistency stamp
            return [(F_RESPONSE, {
                "id": rid,
                "result": result_value,
                "watermark": getattr(svc, "commit_watermark", 0),
            })]

        if op == "exec":
            result = svc.exec(
                args["source"],
                timeout=args.get("timeout"),
                name=args.get("name"),
            )
            return respond({"txn": result_to_wire(result)})
        if op == "query":
            result = svc.query_result(
                args["source"], answer=args.get("answer"))
            rows = result.rows or []
            if len(rows) > self.chunk_rows:
                frames = [
                    (F_CHUNK, {"id": rid, "rows": rows[i:i + self.chunk_rows]})
                    for i in range(0, len(rows), self.chunk_rows)
                ]
                frames.extend(respond(
                    {"txn": result_to_wire(result, include_rows=False)}))
                _stats.bump("net.chunked_queries")
                return frames
            return respond({"txn": result_to_wire(result)})
        if op == "addblock":
            result = svc.addblock(
                args["source"], name=args.get("name"),
                timeout=args.get("timeout"))
            return respond({"txn": result_to_wire(result)})
        if op == "removeblock":
            result = svc.removeblock(
                args["name"], timeout=args.get("timeout"))
            return respond({"txn": result_to_wire(result)})
        if op == "load":
            result = svc.load(
                args["pred"], args.get("tuples") or (),
                args.get("remove") or (), timeout=args.get("timeout"))
            return respond({"txn": result_to_wire(result)})
        if op == "rows":
            return respond({"rows": svc.rows(args["pred"])})
        if op == "checkpoint":
            return respond(
                {"counters": svc.checkpoint(timeout=args.get("timeout"))})
        if op == "stats":
            return respond({"stats": svc.service_stats()})
        if op == "telemetry":
            snapshot = svc.telemetry(ring_tail=args.get("ring_tail") or 0)
            return respond({"telemetry": trace_to_wire(snapshot)})
        if op == "explain":
            report = svc.explain(args["source"], answer=args.get("answer"))
            return respond({"explain": trace_to_wire(report.to_dict())})
        if op == "ping":
            return respond({})
        if op == "status":
            status = dict(svc.status()) if hasattr(svc, "status") else {
                "role": getattr(svc, "role", "leader"),
                "watermark": getattr(svc, "commit_watermark", 0),
            }
            status["endpoint"] = "{}:{}".format(*self.address)
            return respond({"status": status})
        if op == "watch":
            cap = getattr(self.service.config, "net_watch_cap_s", 30.0)
            timeout_s = min(float(args.get("timeout_s") or cap), cap)
            status = svc.watch(
                seq=int(args.get("seq") or 0), timeout_s=timeout_s)
            _stats.bump("net.watches")
            return respond({"status": status})
        if op == "promote":
            promote = getattr(svc, "promote", None)
            if promote is None:
                # already the leader: promotion is idempotent
                status = dict(svc.status())
            else:
                status = promote()
            status["endpoint"] = "{}:{}".format(*self.address)
            return respond({"status": status})
        if op == "sync_manifest":
            return respond({"manifest": self._sync_manifest()})
        if op == "sync_records":
            return respond(
                {"records": self._sync_records(args.get("addrs") or ())})
        if op == "shard_prepare":
            prepared = svc.shard_prepare(
                args["source"],
                name=args.get("name"),
                partition=args.get("partition"),
                shard_index=args.get("shard_index"),
                shard_count=args.get("shard_count"),
                preflight=args.get("preflight", True),
                timeout=args.get("timeout"),
            )
            return respond({
                "token": prepared["token"],
                "effects": deltas_to_wire(prepared["effects"]),
                "foreign": deltas_to_wire(prepared["foreign"]),
                "watermark": prepared["watermark"],
            })
        if op == "shard_repair":
            repaired = svc.shard_repair(
                args["token"],
                deltas_from_wire(args.get("corrections") or {}),
                partition=args.get("partition"),
                shard_index=args.get("shard_index"),
                shard_count=args.get("shard_count"),
            )
            return respond({
                "effects": deltas_to_wire(repaired["effects"]),
                "foreign": deltas_to_wire(repaired["foreign"]),
                "repairs": repaired["repairs"],
            })
        if op == "shard_commit":
            result = svc.shard_commit(
                args["token"],
                deltas_from_wire(args.get("deltas") or {}),
                timeout=args.get("timeout"),
            )
            return respond({"txn": result_to_wire(result)})
        if op == "shard_abort":
            return respond(svc.shard_abort(args["token"]))
        if op == "shard_apply":
            result = svc.shard_apply(
                deltas_from_wire(args.get("deltas") or {}),
                timeout=args.get("timeout"),
            )
            return respond({"txn": result_to_wire(result)})
        raise ReproError("unhandled op {!r}".format(op))

    def _read_only_error(self, op):
        exc = getattr(self.service, "read_only_error", None)
        if exc is not None:
            return exc(op)
        return ReplicaReadOnly(
            "{}:{} is a read-only replica: {} must go to the "
            "leader".format(self.host, self.port, op))

    # -- replica feed ----------------------------------------------------------

    def _sync_manifest(self):
        from repro.storage.pager import NodeStore, read_manifest

        path = self.service.config.checkpoint_path
        if not path:
            raise ReproError(
                "leader has no checkpoint_path configured; replicas "
                "sync from durable checkpoints")
        with self._sync_lock:
            manifest = read_manifest(path)
            if manifest is None:
                raise ReproError(
                    "leader has not committed a checkpoint yet; run "
                    "checkpoint() first")
            if self._sync_store is None:
                self._sync_store = NodeStore(path)
            self._sync_store.load_packs(manifest["packs"])
            return manifest

    def _sync_records(self, addrs):
        with self._sync_lock:
            store = self._sync_store
            if store is None:
                raise ReproError("sync_manifest must precede sync_records")
            records = []
            for addr in addrs:
                if addr in store:
                    records.append((addr, store.get(addr)))
            store.drop_payload_cache()
            _stats.bump("net.sync.records_served", len(records))
            return records

    # -- frame writing ---------------------------------------------------------

    async def _send_frames(self, conn, frames, *, op=None):
        """Write frames under the connection's write lock; returns False
        when a transport fault (injected or real) killed the connection."""
        try:
            async with conn.write_lock:
                for ftype, payload in frames:
                    action = None
                    if self.faults is not None:
                        action = self.faults.fire("net_send", op)
                    data = encode_frame(
                        ftype, payload, max_frame_bytes=self.max_frame_bytes)
                    if action == "drop":
                        _stats.bump("net.faults.send_dropped")
                        await self._abort_conn(conn)
                        return False
                    if action == "truncate":
                        _stats.bump("net.faults.send_torn")
                        conn.writer.write(data[:max(1, len(data) // 2)])
                        try:
                            await conn.writer.drain()
                        except ConnectionError:
                            pass
                        await self._abort_conn(conn)
                        return False
                    conn.writer.write(data)
                    _stats.bump("net.bytes_out", len(data))
                    _stats.bump("net.frames_out")
                await conn.writer.drain()
            return True
        except (ConnectionError, RuntimeError):
            await self._abort_conn(conn)
            return False

    async def _send_error(self, conn, rid, exc):
        await self._send_frames(
            conn, [(F_ERROR, {"id": rid, "error": error_to_wire(exc)})])

    async def _abort_conn(self, conn):
        if not conn.alive:
            return
        conn.alive = False
        try:
            conn.writer.close()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass


# -- CLI ----------------------------------------------------------------------


def main(argv=None):
    """``python -m repro.net.server``: run a standalone leader until
    SIGTERM/SIGINT, then drain gracefully."""
    from repro.net.protocol import DEFAULT_PORT
    from repro.service import ServiceConfig, TransactionService

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--checkpoint-path", default=None,
                        help="durable checkpoint dir (enables replicas)")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        help="auto-checkpoint every N commits")
    parser.add_argument("--max-pending", type=int, default=64)
    parser.add_argument("--mode", default="repair", choices=("repair", "occ"))
    parser.add_argument("--trace", default=None,
                        help="stream obs spans to this JSONL file")
    parser.add_argument("--telemetry-interval", type=float, default=1.0,
                        help="snapshot-ring sampling period in seconds "
                             "(0 disables the sampler)")
    parser.add_argument("--slow-txn", type=float, default=None,
                        help="log transactions slower than this many seconds")
    parser.add_argument("--shard-index", type=int, default=None,
                        help="this server's index in a sharded fleet")
    parser.add_argument("--shard-count", type=int, default=None,
                        help="total shard count of the fleet")
    parser.add_argument("--max-connections", type=int, default=None,
                        help="accepted-connection cap (default {})".format(
                            ServiceConfig.net_max_connections))
    args = parser.parse_args(argv)

    if args.trace:
        _obs.trace_to(args.trace)
    knobs = {}
    if args.max_connections is not None:
        knobs["net_max_connections"] = args.max_connections
    service = TransactionService(config=ServiceConfig(
        max_pending=args.max_pending,
        mode=args.mode,
        checkpoint_path=args.checkpoint_path,
        checkpoint_every_n_commits=args.checkpoint_every,
        telemetry_interval_s=args.telemetry_interval,
        slow_txn_s=args.slow_txn,
        shard_index=args.shard_index,
        shard_count=args.shard_count,
        **knobs,
    ))
    server = ReproServer(service, host=args.host, port=args.port)
    server.start()
    print("repro.net serving on {}:{}".format(*server.address), flush=True)

    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    try:
        stop.wait()
    finally:
        print("draining...", flush=True)
        server.stop()
        service.close()
        if args.trace:
            _obs.trace_file_off()
        print("stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
