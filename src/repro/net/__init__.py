"""repro.net — serve a repro workspace over TCP.

The network layer has four pieces, one module each:

* :mod:`repro.net.protocol` — the length-prefixed, versioned binary
  wire format.  Frames carry values in the pager's canonical codec
  (the same deterministic encoding checkpoints use), and server-side
  failures travel as *typed error frames* that reconstruct the exact
  :class:`~repro.runtime.errors.ReproError` subclass client-side.
* :mod:`repro.net.server` — an asyncio TCP server fronting a
  :class:`~repro.service.TransactionService`: per-connection sessions,
  request pipelining with per-connection bounds, chunked streaming of
  large query results, and graceful drain on SIGTERM.  Run one with
  ``python -m repro.net.server --checkpoint-path DIR``.
* :mod:`repro.net.client` — the blocking client:
  :func:`repro.net.connect` returns a :class:`NetSession` with the
  same verb surface and result shapes as an in-process
  :class:`~repro.service.session.Session`.
* :mod:`repro.net.replica` — checkpoint-shipping read replicas:
  a :class:`Replica` Merkle-delta-syncs the leader's durable
  checkpoints (fetching only the O(log n) records a small change
  perturbs) and serves read-only queries locally.
"""

from repro.net.client import NetSession, connect
from repro.net.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ConnectionLost,
    NetError,
    ProtocolError,
    ReplicaReadOnly,
)
from repro.net.replica import Replica
from repro.net.server import ReproServer

__all__ = [
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "ConnectionLost",
    "NetError",
    "NetSession",
    "ProtocolError",
    "Replica",
    "ReplicaReadOnly",
    "ReproServer",
    "connect",
]
