"""repro.net — serve a repro workspace over TCP.

The network layer has five pieces, one module each:

* :mod:`repro.net.protocol` — the length-prefixed, versioned binary
  wire format.  Frames carry values in the pager's canonical codec
  (the same deterministic encoding checkpoints use), and server-side
  failures travel as *typed error frames* that reconstruct the exact
  :class:`~repro.runtime.errors.ReproError` subclass client-side.
* :mod:`repro.net.server` — an asyncio TCP server fronting a
  :class:`~repro.service.TransactionService`: per-connection sessions,
  request pipelining with per-connection bounds, chunked streaming of
  large query results, and graceful drain on SIGTERM.  Run one with
  ``python -m repro.net.server --checkpoint-path DIR``.
* :mod:`repro.net.client` — the blocking client:
  ``repro.connect("tcp://host:port")`` returns a :class:`NetSession`
  with the same verb surface and result shapes as an in-process
  :class:`~repro.service.session.Session`, every response stamped
  with the serving commit watermark.
* :mod:`repro.net.replica` — checkpoint-shipping read replicas:
  a :class:`Replica` Merkle-delta-syncs the leader's durable
  checkpoints (fetching only the O(log n) records a small change
  perturbs), serves reads over the *same* TCP surface as the leader,
  follows via long-poll heartbeats, and can be promoted to leader on
  failover.
* :mod:`repro.net.cluster` — the fleet client:
  ``repro.connect("cluster://leader,replica1,replica2")`` returns a
  :class:`ClusterSession` routing writes to the leader and fanning
  reads across replicas with session-consistency (read-your-writes)
  enforced from the watermark stamps.
"""

from repro.net.client import NetSession, connect
from repro.net.cluster import ClusterSession
from repro.net.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    ConnectionLost,
    LeaderUnavailable,
    NetError,
    ProtocolError,
    ReplicaReadOnly,
    StaleRead,
)
from repro.net.replica import Replica
from repro.net.server import ReproServer

__all__ = [
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "ClusterSession",
    "ConnectionLost",
    "LeaderUnavailable",
    "NetError",
    "NetSession",
    "ProtocolError",
    "Replica",
    "ReplicaReadOnly",
    "ReproServer",
    "StaleRead",
    "connect",
]
