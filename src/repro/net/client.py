"""The blocking client library: ``repro.connect("tcp://host:port")``.

A :class:`NetSession` is the network twin of the in-process
:class:`~repro.service.session.Session` — the *same verb surface*
(``exec`` / ``query`` / ``query_result`` / ``addblock`` /
``removeblock`` / ``load`` / ``rows`` / ``checkpoint`` / ``close``,
context-manager lifecycle) returning the *same shapes*
(:class:`~repro.runtime.result.TxnResult` with real
:class:`~repro.storage.relation.Delta` objects, plain row lists for
``query``), so code written against a local session runs unchanged
against a server:

    import repro

    session = repro.connect("tcp://db.example.com:7411")
    session.addblock("inventory[s] = v -> string(s), int(v).")
    session.exec('^inventory["widget"] = 5.')
    print(session.query("_(s, v) <- inventory[s] = v."))
    session.close()

Error fidelity: server-side failures arrive as typed error frames and
re-raise as the *same* :class:`~repro.runtime.errors.ReproError`
subclass with the same message and payload attributes (``preds`` on a
:class:`ConflictError`, ``retry_after_s`` on :class:`Overloaded`, ...),
so retry logic written for local sessions works over the wire.

Reconnect policy: the HELLO handshake hands the client the *service's*
backoff policy (max retries, base, cap).  Which verbs may transparently
reconnect and retry is not hard-coded here: it is derived from the
single verb registry in :mod:`repro.net.protocol` — read verbs
(``query`` / ``rows`` / ``stats`` / the sync ops / ...) retry under
that policy when the transport fails; write verbs (``exec``, DDL,
``load``) never auto-retry across a transport failure — the commit
status is unknown — and raise a typed
:class:`~repro.net.protocol.ConnectionLost` instead of hanging.

Consistency: every response is stamped with the server's **commit
watermark** (the sequence number of the last committed write the
serving checkpoint reflects), and the session tracks the highest
watermark it has ever observed in :attr:`NetSession.watermark`.  Under
the default ``consistency="session"`` a data read answered *below* the
session's own watermark — a replica that has not yet caught up to this
client's last write, or a leader restarted from an old checkpoint —
raises a typed :class:`~repro.net.protocol.StaleRead` rather than
silently returning stale rows (read-your-writes).  ``"eventual"``
accepts any watermark; ``"strong"`` additionally refuses data reads
answered by a non-leader.  The cluster client
(:class:`repro.net.cluster.ClusterSession`) builds its replica routing
and stale-retry policy on exactly these primitives.

Threading: like local sessions, one ``NetSession`` per thread.
"""

import itertools
import socket
import time

from repro import obs as _obs
from repro import stats as _stats
from repro.net.protocol import (
    DEFAULT_MAX_FRAME_BYTES,
    DEFAULT_PORT,
    F_CHUNK,
    F_ERROR,
    F_GOODBYE,
    F_HELLO,
    F_REQUEST,
    F_RESPONSE,
    CONSISTENCY_MODES,
    PROTOCOL_VERSION,
    ConnectionLost,
    FrameDecoder,
    ProtocolError,
    StaleRead,
    deltas_from_wire,
    deltas_to_wire,
    encode_frame,
    error_from_wire,
    result_from_wire,
    verb_spec,
)
from repro.runtime.errors import ReproError

_session_counter = itertools.count(1)

#: the data-read verbs the consistency mode guards; control verbs
#: (``ping`` / ``status`` / ``watch`` / the sync feed) always answer
#: from whatever the peer has — they are *how* staleness is measured
_CONSISTENT_READS = frozenset(("query", "rows", "explain"))

#: fallback reconnect policy until the server's HELLO supplies one
_DEFAULT_POLICY = {
    "max_retries": 5,
    "backoff_base_s": 0.05,
    "backoff_cap_s": 1.0,
}


class NetSession:
    """One client's blocking connection to a :class:`ReproServer`.

    Mirrors the local :class:`~repro.service.session.Session` verb
    surface; every verb blocks until its response (or typed error)
    frame arrives.  Requests carry ids, so the transport supports
    pipelining — this synchronous client simply doesn't overlap its
    own calls.
    """

    def __init__(self, host="127.0.0.1", port=DEFAULT_PORT, *, name=None,
                 timeout=None, consistency="session", connect_timeout_s=5.0,
                 socket_timeout_s=60.0,
                 max_frame_bytes=DEFAULT_MAX_FRAME_BYTES):
        if consistency not in CONSISTENCY_MODES:
            raise ValueError(
                "consistency must be one of {}, got {!r}".format(
                    "/".join(CONSISTENCY_MODES), consistency))
        self.host = host
        self.port = port
        self.name = name or "net-session-{}".format(next(_session_counter))
        self.timeout = timeout
        self.consistency = consistency
        self.connect_timeout_s = connect_timeout_s
        self.socket_timeout_s = socket_timeout_s
        self.max_frame_bytes = max_frame_bytes
        self.policy = dict(_DEFAULT_POLICY)
        self._server_trace = False
        #: highest commit watermark this session has ever *observed* in
        #: a response — monotone, survives reconnects, the anchor of
        #: session consistency (read-your-writes)
        self.watermark = 0
        #: watermark stamped on the most recent response (None before
        #: the first verb); unlike :attr:`watermark` this can go *down*
        #: when a later read lands on a laggier server
        self.last_watermark = None
        #: role / watermark the connected server advertised in HELLO
        self.server_role = None
        self.server_watermark = 0
        #: ``{"index": i, "count": n}`` when the server is a member of
        #: a sharded fleet (advertised in HELLO), else ``None``
        self.server_shard = None
        self._sock = None
        self._decoder = None
        self._inbox = []
        self._ids = itertools.count(1)
        self._closed = False
        self._connect()

    # -- transport -------------------------------------------------------------

    def _connect(self):
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s)
        except OSError as exc:
            raise ConnectionLost(
                "cannot connect to {}:{}: {}".format(
                    self.host, self.port, exc)) from exc
        sock.settimeout(self.socket_timeout_s)
        self._sock = sock
        self._decoder = FrameDecoder(max_frame_bytes=self.max_frame_bytes)
        self._inbox = []
        _stats.bump("net.client.connects")
        self._send_raw(encode_frame(F_HELLO, {
            "proto": PROTOCOL_VERSION, "client": self.name}))
        ftype, payload = self._next_frame()
        if ftype == F_ERROR:
            raise error_from_wire(payload.get("error") or {})
        if ftype != F_HELLO:
            raise ProtocolError(
                "expected HELLO from server, got {}".format(ftype))
        policy = payload.get("policy") or {}
        self.policy = {**_DEFAULT_POLICY, **policy}
        # only servers that advertise the capability ever see trace_ctx,
        # so connecting to an old peer degrades to untraced requests
        self._server_trace = bool(payload.get("trace"))
        self.server_role = payload.get("role", "leader")
        # the server's HELLO watermark is advertisement, not history:
        # it must NOT raise self.watermark, or a fresh session against
        # a current leader would flag every replica read as stale
        self.server_watermark = int(payload.get("watermark") or 0)
        self.server_shard = payload.get("shard")

    def _drop_connection(self):
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
        self._sock = None
        self._decoder = None
        self._inbox = []

    def _send_raw(self, data):
        try:
            self._sock.sendall(data)
            _stats.bump("net.client.bytes_out", len(data))
        except OSError as exc:
            raise ConnectionLost(
                "send failed to {}:{}: {}".format(
                    self.host, self.port, exc)) from exc

    def _next_frame(self):
        if self._inbox:
            return self._inbox.pop(0)
        while True:
            try:
                data = self._sock.recv(65536)
            except socket.timeout as exc:
                raise ConnectionLost(
                    "no response from {}:{} within {}s".format(
                        self.host, self.port, self.socket_timeout_s)) from exc
            except OSError as exc:
                raise ConnectionLost(
                    "recv failed from {}:{}: {}".format(
                        self.host, self.port, exc)) from exc
            if not data:
                if self._decoder.buffered:
                    _stats.bump("net.client.torn_frames")
                    raise ConnectionLost(
                        "connection to {}:{} closed mid-frame ({} bytes of "
                        "a partial frame buffered)".format(
                            self.host, self.port, self._decoder.buffered))
                raise ConnectionLost(
                    "connection to {}:{} closed by server".format(
                        self.host, self.port))
            _stats.bump("net.client.bytes_in", len(data))
            frames = self._decoder.feed(data)
            if frames:
                self._inbox.extend(frames[1:])
                return frames[0]

    # -- request/response ------------------------------------------------------

    def _call(self, op, **args):
        self._check_open()
        # retryability is the registry's call, not per-call-site flags:
        # read verbs reconnect-and-retry, write verbs never do
        idempotent = verb_spec(op).retryable
        with _obs.span("net.call", op=op) as span_:
            return self._call_inner(op, idempotent, args, span_)

    def _call_inner(self, op, idempotent, args, span_):
        attempt = 0
        while True:
            attempt += 1
            try:
                if self._sock is None:
                    self._connect()
                outcome = self._roundtrip(op, args)
                if span_ is not None:
                    span_.attrs["attempts"] = attempt
                return outcome
            except (ConnectionLost, ProtocolError) as exc:
                self._drop_connection()
                max_retries = self.policy["max_retries"]
                if not idempotent or attempt > max_retries:
                    if isinstance(exc, ProtocolError):
                        raise
                    raise ConnectionLost(
                        "{} (op {}{})".format(
                            exc, op,
                            "" if idempotent else
                            "; not retried: commit status unknown")) from exc
                _stats.bump("net.client.reconnects")
                self._backoff(attempt)

    def _roundtrip(self, op, args):
        rid = next(self._ids)
        request = {"id": rid, "op": op, "args": args}
        if self._server_trace:
            ctx = _obs.trace_context()
            if ctx is not None:
                request["trace_ctx"] = ctx
        self._send_raw(encode_frame(
            F_REQUEST, request, max_frame_bytes=self.max_frame_bytes))
        _stats.bump("net.client.requests")
        rows = []
        while True:
            ftype, payload = self._next_frame()
            if ftype == F_CHUNK and payload.get("id") == rid:
                rows.extend(payload.get("rows") or ())
                continue
            if ftype == F_RESPONSE and payload.get("id") == rid:
                trace = payload.get("trace")
                if trace is not None:
                    # stitch the server's span tree under our net.call
                    # span: one client transaction, one trace
                    _obs.graft(trace, origin="server")
                self._observe_watermark(op, payload.get("watermark"))
                return payload.get("result") or {}, rows
            if ftype == F_ERROR:
                if payload.get("id") in (rid, None):
                    raise error_from_wire(payload.get("error") or {})
                continue  # stale error for an abandoned request id
            if ftype == F_GOODBYE:
                # server draining: the socket will close; surface it as
                # a transport failure so idempotent verbs reconnect
                raise ConnectionLost(
                    "server {}:{} is draining".format(self.host, self.port))
            raise ProtocolError(
                "unexpected frame {} for request {}".format(ftype, rid))

    def _backoff(self, attempt):
        base = self.policy["backoff_base_s"] * (2 ** (attempt - 1))
        time.sleep(min(self.policy["backoff_cap_s"], base))

    def _observe_watermark(self, op, wm):
        """Session-consistency bookkeeping on every stamped response.

        A data read below the session's own watermark is refused
        *before* the result reaches the caller; the error is typed
        (:class:`StaleRead`) so the cluster client can route the retry
        instead of surfacing stale rows.
        """
        if wm is None:  # pre-watermark peer: nothing to enforce
            return
        wm = int(wm)
        self.last_watermark = wm
        if op in _CONSISTENT_READS:
            if self.consistency == "strong" and self.server_role not in (
                    None, "leader"):
                _stats.bump("net.client.stale_reads")
                raise StaleRead(
                    "strong-consistency read answered by {} {}:{} "
                    "(watermark {}); route it to the leader".format(
                        self.server_role, self.host, self.port, wm))
            if self.consistency != "eventual" and wm < self.watermark:
                _stats.bump("net.client.stale_reads")
                raise StaleRead(
                    "read answered at watermark {} but this session has "
                    "observed {}; {}:{} is behind".format(
                        wm, self.watermark, self.host, self.port))
        if wm > self.watermark:
            self.watermark = wm

    # -- verbs (the Session surface) -------------------------------------------

    def exec(self, source, *, timeout=None):
        """Submit a write transaction; blocks until committed/aborted."""
        result, _ = self._call(
            "exec", source=source, timeout=self._timeout(timeout),
            name="{}/txn".format(self.name))
        return result_from_wire(result["txn"])

    def query(self, source, *, answer=None):
        """Lock-free read returning plain rows (evaluated on the server's
        head snapshot; large answers stream back in bounded chunks)."""
        return self.query_result(source, answer=answer).rows

    def query_result(self, source, *, answer=None):
        """Lock-free read returning the structured :class:`TxnResult`."""
        result, rows = self._call("query", source=source, answer=answer)
        return result_from_wire(result["txn"], rows=rows)

    def addblock(self, source, *, name=None, timeout=None):
        """Install logic (serialized with the server's write stream)."""
        result, _ = self._call(
            "addblock", source=source, name=name,
            timeout=self._timeout(timeout))
        return result_from_wire(result["txn"])

    def removeblock(self, name, *, timeout=None):
        """Remove a block (serialized with the write stream)."""
        result, _ = self._call(
            "removeblock", name=str(name), timeout=self._timeout(timeout))
        return result_from_wire(result["txn"])

    def load(self, pred, tuples, remove=(), *, timeout=None):
        """Bulk load (serialized with the write stream)."""
        result, _ = self._call(
            "load", pred=pred, tuples=[tuple(t) for t in tuples],
            remove=[tuple(t) for t in remove],
            timeout=self._timeout(timeout))
        return result_from_wire(result["txn"])

    def rows(self, pred):
        """Current rows of a predicate at the server's head snapshot."""
        result, _ = self._call("rows", pred=pred)
        return result["rows"]

    def checkpoint(self, *, timeout=None):
        """Ask the server to write a durable checkpoint now; returns the
        pager's counter dict (requires the server to be configured with
        a checkpoint path)."""
        result, _ = self._call(
            "checkpoint", timeout=self._timeout(timeout))
        return result["counters"]

    def stats(self):
        """The server's service counters (admission window, commits,
        queue depth, ...)."""
        result, _ = self._call("stats")
        return result["stats"]

    def telemetry(self, *, ring_tail=32):
        """The server's live telemetry snapshot (counters, gauges,
        histogram quantiles, span totals, slow-transaction log, and the
        last ``ring_tail`` snapshot-ring entries)."""
        result, _ = self._call("telemetry", ring_tail=ring_tail)
        return result["telemetry"]

    def explain(self, source, *, answer=None):
        """EXPLAIN ANALYZE on the server: returns an
        :class:`~repro.obs.ExplainReport` pairing the optimizer's
        estimated per-rule join cost with the executed join's actual
        movement counts."""
        result, _ = self._call(
            "explain", source=source, answer=answer)
        return _obs.ExplainReport.from_dict(result["explain"])

    def ping(self):
        """Round-trip latency in seconds."""
        started = time.perf_counter()
        self._call("ping")
        return time.perf_counter() - started

    # -- fleet surface (roles, watermarks, heartbeat) --------------------------

    def status(self):
        """The server's fleet status: ``role`` (leader/replica),
        ``watermark`` (last committed write it reflects),
        ``checkpoint_seq`` / ``checkpoint_watermark`` (the durable
        frontier), and ``endpoint``."""
        result, _ = self._call("status")
        return result["status"]

    def watch(self, seq=0, *, timeout_s=10.0):
        """Long-poll until the server owns a checkpoint with sequence
        number above ``seq``, or ``timeout_s`` elapses (the server
        clamps it to its ``net_watch_cap_s``); returns the server's
        :meth:`status` either way.  One blocked round-trip doubles as
        change notification *and* liveness heartbeat — this is how
        replicas follow the leader without fixed-interval polling."""
        result, _ = self._call("watch", seq=seq, timeout_s=timeout_s)
        return result["status"]

    def promote(self):
        """Promote the peer to leader (idempotent on an existing
        leader); returns its post-promotion :meth:`status`."""
        result, _ = self._call("promote")
        return result["status"]

    # -- replica feed (used by repro.net.replica) ------------------------------

    def sync_manifest(self):
        """The leader's committed checkpoint manifest."""
        result, _ = self._call("sync_manifest")
        return result["manifest"]

    def sync_records(self, addrs):
        """Fetch content-addressed records by address; returns
        ``[(addr, payload), ...]`` for the addresses the leader holds."""
        result, _ = self._call("sync_records", addrs=list(addrs))
        return result["records"]

    # -- cross-shard commit circuit (used by repro.shard) ----------------------

    def shard_prepare(self, source, *, name=None, partition=None,
                      shard_index=None, shard_count=None, preflight=True,
                      timeout=None):
        """Execute a transaction on the shard's snapshot and park it;
        returns ``{"token", "effects", "foreign", "watermark"}`` with
        the deltas decoded back into :class:`Delta` maps."""
        result, _ = self._call(
            "shard_prepare", source=source, name=name, partition=partition,
            shard_index=shard_index, shard_count=shard_count,
            preflight=preflight, timeout=self._timeout(timeout))
        return {
            "token": result["token"],
            "effects": deltas_from_wire(result["effects"]),
            "foreign": deltas_from_wire(result["foreign"]),
            "watermark": result["watermark"],
        }

    def shard_repair(self, token, corrections, *, partition=None,
                     shard_index=None, shard_count=None):
        """Repair a parked shard transaction against sibling shards'
        corrections; returns its re-split effects."""
        result, _ = self._call(
            "shard_repair", token=token,
            corrections=deltas_to_wire(corrections or {}),
            partition=partition,
            shard_index=shard_index, shard_count=shard_count)
        return {
            "effects": deltas_from_wire(result["effects"]),
            "foreign": deltas_from_wire(result["foreign"]),
            "repairs": result["repairs"],
        }

    def shard_commit(self, token, deltas, *, timeout=None):
        """Commit a parked shard transaction with the coordinator's
        final composed deltas."""
        result, _ = self._call(
            "shard_commit", token=token,
            deltas=deltas_to_wire(deltas or {}),
            timeout=self._timeout(timeout))
        return result_from_wire(result["txn"])

    def shard_abort(self, token):
        """Drop a parked shard transaction (idempotent)."""
        result, _ = self._call("shard_abort", token=token)
        return result

    def shard_apply(self, deltas, *, timeout=None):
        """Apply raw deltas on the shard (serialized with its write
        stream; IVM + constraint checked)."""
        result, _ = self._call(
            "shard_apply", deltas=deltas_to_wire(deltas or {}),
            timeout=self._timeout(timeout))
        return result_from_wire(result["txn"])

    # -- lifecycle -------------------------------------------------------------

    def close(self):
        """Close the connection (a GOODBYE, then the socket)."""
        if self._closed:
            return
        self._closed = True
        if self._sock is not None:
            try:
                self._send_raw(encode_frame(F_GOODBYE, {"client": self.name}))
            except ConnectionLost:
                pass
            self._drop_connection()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _check_open(self):
        if self._closed:
            raise ReproError("session {} is closed".format(self.name))

    def _timeout(self, timeout):
        return timeout if timeout is not None else self.timeout

    def __repr__(self):
        return "NetSession({}:{}, {}, {})".format(
            self.host, self.port, self.name,
            "closed" if self._closed else "open")


def connect(host="127.0.0.1", port=DEFAULT_PORT, *, name=None, timeout=None,
            **kwargs):
    """Deprecated: use ``repro.connect("tcp://host:port")``.

    One entry point now spans every transport — a workspace path, a
    single ``tcp://`` server, or a ``cluster://`` fleet — with the
    ``consistency`` keyword honored by all of them.  This shim keeps
    the old two-argument form working and returns the same
    :class:`NetSession`.
    """
    import warnings

    warnings.warn(
        "repro.net.connect(host, port) is deprecated; use "
        "repro.connect('tcp://{}:{}') — one entry point for local, "
        "tcp, and cluster transports".format(host, port),
        DeprecationWarning, stacklevel=2)
    return NetSession(host, port, name=name, timeout=timeout, **kwargs)
