"""Transaction-scoped tracing: hierarchical spans, profiles, and
cross-process trace context.

The paper's performance story — LFTJ cost measured in seeks/nexts per
iterator (Veldhuizen 2012), IVM work "proportional to the trace edit
distance" (§3.2), transaction repair proportional to the conflict
(§3.4) — is only verifiable if the engine can explain *where time and
work went*.  This module adds that explanation layer on top of the flat
counters of :mod:`repro.stats`:

* **Spans** — named, nested regions with wall time, key/value
  attributes, and the exact counter deltas bumped inside their window
  (via the scope stack of :mod:`repro.stats`).  The transaction
  lifecycle is instrumented end to end: ``txn.*`` → ``compile`` /
  ``plan`` / ``join`` (with per-execution seek/next/open counts and
  shard fan-out) / ``ivm.apply`` / ``ivm.dred`` / ``meta.update`` /
  ``constraints.check`` / ``repair.*``.
* **Profiles** — :class:`Profile` collects the root spans produced on
  its thread; :meth:`~repro.runtime.workspace.Workspace.profile` is the
  user-facing entry point.
* **Trace context** — every root span is stamped with a process-unique
  *trace id*.  :func:`trace_context` captures ``{"trace", "span"}`` for
  shipping across a process boundary; :func:`remote_context` installs a
  received context so the next root span on this thread *continues* the
  remote trace instead of starting a fresh one; :func:`graft` splices a
  serialized remote subtree (a :meth:`Span.to_dict` payload) back under
  the local open span, which is how the network client stitches the
  server/committer side of a transaction into one tree.
* **Exporters** — a JSON-lines trace dump (one span per line, parent
  links included, trace id stamped on every line).

Overhead contract: with tracing disabled (the default), every
instrumentation site costs one function call and one flag test —
:func:`span` returns a shared no-op context manager and the hot
seek/next counting in the executors stays off (their ``stats`` dicts
are simply not requested).  ``REPRO_TRACE=1`` force-enables tracing
process-wide; finished root spans then land in a bounded per-thread
ring buffer (:func:`last_roots`) so long test runs cannot accumulate
unbounded trace state.
"""

import itertools
import json
import os
import threading
import time
import uuid

from repro import stats

_TRACE_ENV = "REPRO_TRACE"
_AMBIENT_LIMIT = 256

_forced = os.environ.get(_TRACE_ENV, "") not in ("", "0")
_local = threading.local()
_totals_lock = threading.Lock()
_span_totals = {}  # span name -> [count, total wall seconds]


_span_ids = itertools.count(1)

# Trace ids must be unique *across* processes (a client, a server, and
# a replica all mint them), so they carry a per-process random seed —
# the span sids stay small ints because they only need to be unique
# within one process's trace file.
_TRACE_SEED = uuid.uuid4().hex[:12]
_trace_ids = itertools.count(1)


def _new_trace_id():
    return "{}-{:x}".format(_TRACE_SEED, next(_trace_ids))


class Span:
    """One named region of a trace: wall time, attributes, counter
    deltas, children.  Attribute values should be JSON-safe.

    ``sid`` is a process-unique span id; transaction results carry the
    root span's sid so a :class:`~repro.runtime.result.TxnResult` can
    be joined back to its trace.  ``trace_id`` is set on root spans
    only (children share their root's trace) and survives process hops:
    a root opened under :func:`remote_context` adopts the remote trace
    id, which is what makes one distributed transaction one trace."""

    __slots__ = ("sid", "name", "attrs", "children", "counters", "wall_s",
                 "trace_id", "_started", "_sink")

    def __init__(self, name, attrs):
        self.sid = next(_span_ids)
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.children = []
        self.counters = {}
        self.wall_s = 0.0
        self.trace_id = None
        self._started = time.perf_counter()
        self._sink = stats.push_scope()

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name):
        """First span named ``name`` in this subtree, or ``None``."""
        for span_ in self.walk():
            if span_.name == name:
                return span_
        return None

    def find_all(self, name):
        """Every span named ``name`` in this subtree."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self):
        """JSON-safe nested representation (the wire/graft exchange
        shape — :func:`span_from_dict` is the inverse)."""
        out = {
            "sid": self.sid,
            "name": self.name,
            "wall_s": self.wall_s,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }
        if self.trace_id is not None:
            out["trace"] = self.trace_id
        return out

    def format(self, indent=0):
        """Human-readable tree rendering."""
        extras = " ".join(
            "{}={}".format(key, value) for key, value in sorted(self.attrs.items())
        )
        line = "{}{:<28} {:>9.3f}ms{}".format(
            "  " * indent,
            self.name,
            self.wall_s * 1000.0,
            "  " + extras if extras else "",
        )
        lines = [line]
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)


# -- enablement --------------------------------------------------------------


def enable():
    """Force-enable tracing process-wide (the ``REPRO_TRACE=1`` path)."""
    global _forced
    _forced = True


def disable():
    """Undo :func:`enable` (collectors installed by :func:`Profile`
    keep tracing their own thread regardless)."""
    global _forced
    _forced = False


def _set_forced(value):
    """Restore the force flag to a saved value (test isolation helper —
    assigning ``obs._forced`` directly would only rebind the package
    attribute, not this module's global)."""
    global _forced
    _forced = bool(value)


def tracing():
    """True when spans are currently being recorded on this thread."""
    return _forced or getattr(_local, "collector", None) is not None


# -- the span stack ----------------------------------------------------------


def _stack():
    stack = getattr(_local, "spans", None)
    if stack is None:
        stack = _local.spans = []
    return stack


def _finish_one(span_):
    span_.wall_s = time.perf_counter() - span_._started
    span_.counters = span_._sink
    stats.pop_scope(span_._sink)
    with _totals_lock:
        entry = _span_totals.get(span_.name)
        if entry is None:
            _span_totals[span_.name] = [1, span_.wall_s]
        else:
            entry[0] += 1
            entry[1] += span_.wall_s


def _emit_root(span_):
    _write_trace_file(span_)
    collector = getattr(_local, "collector", None)
    if collector is not None:
        collector.roots.append(span_)
        return
    ring = getattr(_local, "ambient", None)
    if ring is None:
        ring = _local.ambient = []
    ring.append(span_)
    if len(ring) > _AMBIENT_LIMIT:
        del ring[: len(ring) - _AMBIENT_LIMIT]


# -- cross-process trace context ---------------------------------------------


def trace_context():
    """The current trace coordinates as ``{"trace", "span"}``, or
    ``None`` when no span is open (callers ship this across the wire;
    the receiving side installs it with :func:`remote_context`)."""
    stack = getattr(_local, "spans", None)
    if stack:
        return {"trace": stack[0].trace_id, "span": stack[-1].sid}
    ctx = getattr(_local, "remote_ctx", None)
    if ctx:
        return dict(ctx)
    return None


class _RemoteContext:
    """Context manager installing a received trace context on this
    thread: the next *root* span opened inside adopts the remote trace
    id and records the remote parent span sid."""

    __slots__ = ("_ctx", "_prev")

    def __init__(self, ctx):
        self._ctx = ctx
        self._prev = None

    def __enter__(self):
        self._prev = getattr(_local, "remote_ctx", None)
        _local.remote_ctx = self._ctx
        return self._ctx

    def __exit__(self, *exc):
        _local.remote_ctx = self._prev
        self._prev = None
        return False


def remote_context(ctx):
    """Adopt a remote trace context for the duration of the ``with``
    block (no-op when ``ctx`` is missing or malformed, so servers can
    pass whatever arrived on the wire without validating first)."""
    if not isinstance(ctx, dict) or ctx.get("trace") is None:
        return _NOOP
    return _RemoteContext(ctx)


def span_from_dict(record):
    """Rebuild a :class:`Span` tree from a :meth:`Span.to_dict`
    payload.  The rebuilt spans get fresh local sids (the remote sid is
    preserved as the ``remote_sid`` attribute) so id/parent links in
    exported traces stay unique within this process."""
    span_ = Span.__new__(Span)
    span_.sid = next(_span_ids)
    span_.name = str(record.get("name", "?"))
    attrs = record.get("attrs")
    span_.attrs = dict(attrs) if isinstance(attrs, dict) else {}
    remote_sid = record.get("sid")
    if remote_sid is not None:
        span_.attrs.setdefault("remote_sid", remote_sid)
    counters = record.get("counters")
    span_.counters = dict(counters) if isinstance(counters, dict) else {}
    try:
        span_.wall_s = float(record.get("wall_s") or 0.0)
    except (TypeError, ValueError):
        span_.wall_s = 0.0
    span_.trace_id = record.get("trace")
    span_._started = 0.0
    span_._sink = None
    span_.children = [
        span_from_dict(child) for child in record.get("children") or ()
        if isinstance(child, dict)
    ]
    return span_


def graft(record, **extra_attrs):
    """Splice a serialized remote span tree under the innermost open
    span on this thread.  Returns the grafted :class:`Span`, or
    ``None`` when there is no open span or the record is unusable —
    the client-side stitch point for distributed traces."""
    parent = current()
    if parent is None or not isinstance(record, dict):
        return None
    try:
        span_ = span_from_dict(record)
    except Exception:
        return None
    if extra_attrs:
        span_.attrs.update(extra_attrs)
    parent.children.append(span_)
    return span_


# -- streaming trace file -----------------------------------------------------
#
# Per-thread rings and Profiles cover single-threaded flows, but a
# network server finishes root spans on many executor threads at once;
# a long-running process also wants its trace on disk, not in memory.
# trace_to() installs a process-wide JSONL sink: every finished root
# span (any thread) is appended as flat id/parent-linked lines, the
# same exchange format Profile.to_jsonl writes and CI uploads.

_trace_file_lock = threading.Lock()
_trace_file = None


def root_jsonl_lines(root):
    """Flatten one finished root span into JSONL strings (parent links
    via the process-unique span sids; every line carries the root's
    trace id so multi-process dumps can be grouped into traces)."""
    lines = []
    trace_id = root.trace_id

    def emit(span_, parent_sid):
        lines.append(json.dumps({
            "id": span_.sid,
            "parent": parent_sid,
            "trace": trace_id,
            "name": span_.name,
            "wall_s": span_.wall_s,
            "attrs": span_.attrs,
            "counters": span_.counters,
        }, sort_keys=True, default=repr))
        for child in span_.children:
            emit(child, span_.sid)

    emit(root, None)
    return lines


def trace_to(path):
    """Enable tracing and stream every finished root span (from any
    thread) to ``path`` as JSON lines.  Returns the path."""
    global _trace_file
    enable()
    with _trace_file_lock:
        if _trace_file is not None:
            _trace_file.close()
        _trace_file = open(path, "a")
    return path


def trace_file_off():
    """Stop streaming spans to the trace file (tracing stays enabled)."""
    global _trace_file
    with _trace_file_lock:
        if _trace_file is not None:
            _trace_file.close()
            _trace_file = None


def _write_trace_file(span_):
    if _trace_file is None:
        return
    with _trace_file_lock:
        fh = _trace_file
        if fh is None:  # lost the race with trace_file_off()
            return
        for line in root_jsonl_lines(span_):
            fh.write(line + "\n")
        fh.flush()


def _finish(span_):
    """Close ``span_`` (and, defensively, any abandoned descendants
    still open above it) and attach it to its parent or emit it."""
    stack = _stack()
    while stack:
        top = stack.pop()
        _finish_one(top)
        if top is span_:
            break
        # an inner span leaked (e.g. a generator that was never fully
        # consumed); fold it into its parent rather than losing it
        if stack:
            stack[-1].children.append(top)
        else:
            _emit_root(top)
    parent = stack[-1] if stack else None
    if parent is not None:
        parent.children.append(span_)
    else:
        _emit_root(span_)


class _SpanHandle:
    """Context manager for one live span."""

    __slots__ = ("_span", "_name", "_attrs")

    def __init__(self, name, attrs):
        self._name = name
        self._attrs = attrs
        self._span = None

    def __enter__(self):
        stack = _stack()
        span_ = Span(self._name, self._attrs)
        if not stack:
            ctx = getattr(_local, "remote_ctx", None)
            if ctx:
                span_.trace_id = ctx.get("trace")
                remote_parent = ctx.get("span")
                if remote_parent is not None:
                    span_.attrs.setdefault("remote_parent", remote_parent)
            else:
                span_.trace_id = _new_trace_id()
        stack.append(span_)
        self._span = span_
        return span_

    def __exit__(self, *exc):
        _finish(self._span)
        return False


class _NoopSpan:
    """Shared do-nothing context manager: the tracing-disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NOOP = _NoopSpan()


def span(name, **attrs):
    """Open a span named ``name`` (a no-op when tracing is off).

    Yields the live :class:`Span` — or ``None`` when disabled, so call
    sites annotate with ``if sp is not None: sp.attrs[...] = ...``.
    """
    if not tracing():
        return _NOOP
    return _SpanHandle(name, attrs)


def current():
    """The innermost open span on this thread, or ``None``."""
    stack = getattr(_local, "spans", None)
    return stack[-1] if stack else None


def annotate(**attrs):
    """Attach attributes to the innermost open span (no-op when none)."""
    span_ = current()
    if span_ is not None:
        span_.attrs.update(attrs)


def last_roots():
    """Finished root spans captured outside any collector on this
    thread (the ``REPRO_TRACE=1`` ambient ring, newest last)."""
    return list(getattr(_local, "ambient", ()) or ())


def traced_bindings(name, attrs, run, exec_stats, bump_prefix=None):
    """Wrap a bindings iterator in a span covering its consumption.

    ``exec_stats`` is the executor's live counter dict (seeks, nexts,
    opens, steps, shard fan-out); on close it is folded into the span's
    attributes and — when ``bump_prefix`` is given — into the global
    counters (the parallel executor bumps its own, so only the serial
    path passes a prefix).
    """
    with span(name, **attrs) as span_:
        rows = 0
        try:
            for item in run:
                rows += 1
                yield item
        finally:
            if bump_prefix and exec_stats:
                for key, value in exec_stats.items():
                    stats.bump(bump_prefix + key, value)
            if span_ is not None:
                span_.attrs["rows"] = rows
                if exec_stats:
                    span_.attrs.update(exec_stats)


# -- collectors --------------------------------------------------------------


class Profile:
    """Collects the root spans finished on this thread while active.

    Usage::

        with workspace.profile() as prof:
            workspace.query(...)
        print(prof.format())
    """

    def __init__(self):
        self.roots = []
        self._previous = None

    def __enter__(self):
        self._previous = getattr(_local, "collector", None)
        _local.collector = self
        return self

    def __exit__(self, *exc):
        _local.collector = self._previous
        self._previous = None
        return False

    def walk(self):
        """Every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name):
        """First recorded span named ``name``, or ``None``."""
        for span_ in self.walk():
            if span_.name == name:
                return span_
        return None

    def find_all(self, name):
        """Every recorded span named ``name``."""
        return [s for s in self.walk() if s.name == name]

    def counters(self):
        """Counter deltas summed over the root spans (children's bumps
        are already included in their ancestors' windows)."""
        totals = {}
        for root in self.roots:
            for key, value in root.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def format(self):
        """Human-readable rendering of every root span tree."""
        if not self.roots:
            return "(no spans recorded)"
        return "\n".join(root.format() for root in self.roots)

    def to_dicts(self):
        """JSON-safe nested representation of all roots."""
        return [root.to_dict() for root in self.roots]

    def to_jsonl(self, path):
        """Write one JSON line per span (``id``/``parent`` links flatten
        the tree) — the trace-exchange format CI uploads."""
        with open(path, "w") as fh:
            for line in self.jsonl_lines():
                fh.write(line + "\n")

    def jsonl_lines(self):
        """The JSONL export as a list of strings."""
        lines = []
        next_id = [0]

        def emit(span_, parent_id, trace_id):
            span_id = next_id[0]
            next_id[0] += 1
            lines.append(json.dumps({
                "id": span_id,
                "parent": parent_id,
                "trace": trace_id,
                "name": span_.name,
                "wall_s": span_.wall_s,
                "attrs": span_.attrs,
                "counters": span_.counters,
            }, sort_keys=True, default=repr))
            for child in span_.children:
                emit(child, span_id, trace_id)

        for root in self.roots:
            emit(root, None, root.trace_id)
        return lines


def span_totals():
    """Process-wide per-name span aggregates (count, total seconds) —
    the cheap summary benchmarks embed next to wall times."""
    with _totals_lock:
        return {
            name: {"count": entry[0], "wall_s": entry[1]}
            for name, entry in _span_totals.items()
        }


def reset_span_totals():
    """Clear the per-name aggregates (test isolation only)."""
    with _totals_lock:
        _span_totals.clear()
