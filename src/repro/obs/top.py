"""``python -m repro.obs top HOST:PORT`` — a live terminal view.

Polls a server's ``telemetry`` wire verb (served straight from the
snapshot ring and stats sinks, never touching the committer) and
renders a compact dashboard: commit/abort throughput derived from
successive counter snapshots, the hottest counters, histogram
quantiles, and the tail of the slow-transaction log.

Pure stdlib — ANSI clear-screen between refreshes, ``--once`` for a
single non-interactive snapshot (CI smoke and tests use that).
"""

import sys
import time

_CLEAR = "\x1b[2J\x1b[H"

#: Counters whose per-second rate headlines the dashboard.
_RATE_KEYS = (
    ("service.commits", "commits/s"),
    ("service.conflicts", "conflicts/s"),
    ("net.requests", "requests/s"),
    ("join.seeks", "seeks/s"),
    ("join.vector_seeks", "vseeks/s"),
)


def _fmt_num(value):
    if isinstance(value, float):
        return "{:.4g}".format(value)
    if isinstance(value, int) and value >= 1_000_000:
        return "{:.2f}M".format(value / 1_000_000)
    if isinstance(value, int) and value >= 10_000:
        return "{:.1f}k".format(value / 1_000)
    return str(value)


def render(snapshot, previous=None, width=78, top_n=14):
    """Render one telemetry snapshot (optionally diffed against the
    previous poll for rates) as a text block."""
    lines = []
    ts = snapshot.get("ts", 0.0)
    pid = snapshot.get("pid")
    lines.append("repro top — pid {}  {}".format(
        pid, time.strftime("%H:%M:%S", time.localtime(ts))))
    counters = snapshot.get("counters") or {}

    if previous is not None:
        dt = max(1e-9, ts - (previous.get("ts") or 0.0))
        prev_counters = previous.get("counters") or {}
        rates = []
        for key, label in _RATE_KEYS:
            if key in counters or key in prev_counters:
                rate = (counters.get(key, 0) - prev_counters.get(key, 0)) / dt
                rates.append("{} {:.1f}".format(label, rate))
        if rates:
            lines.append("  " + "   ".join(rates))

    gauges = snapshot.get("gauges") or {}
    if gauges:
        lines.append("gauges:")
        for key in sorted(gauges):
            lines.append("  {:<44} {:>12}".format(key, _fmt_num(gauges[key])))

    lines.append("counters (top {} by value):".format(top_n))
    hottest = sorted(counters.items(), key=lambda kv: -kv[1])[:top_n]
    for key, value in hottest:
        lines.append("  {:<44} {:>12}".format(key, _fmt_num(value)))

    histograms = snapshot.get("histograms") or {}
    if histograms:
        lines.append("histograms (p50 / p90 / p99 / count):")
        for key in sorted(histograms):
            hist = histograms[key]
            lines.append("  {:<34} {:>9} {:>9} {:>9} {:>8}".format(
                key[:34], _fmt_num(hist.get("p50")), _fmt_num(hist.get("p90")),
                _fmt_num(hist.get("p99")), hist.get("count", 0)))

    slow = snapshot.get("slow_txns") or ()
    if slow:
        lines.append("slow transactions (latest {}):".format(min(5, len(slow))))
        for entry in slow[-5:]:
            lines.append("  {:<10} {:<20} {:>9.1f}ms  trace={}".format(
                entry.get("kind", "?"), str(entry.get("name"))[:20],
                (entry.get("latency_s") or 0.0) * 1000.0,
                entry.get("trace")))

    ring = snapshot.get("ring") or ()
    if ring:
        lines.append("ring: {} snapshots retained (seq {}..{})".format(
            len(ring), ring[0].get("seq"), ring[-1].get("seq")))
    return "\n".join(line[:width] for line in lines)


def main(argv=None, out=None):
    """CLI: ``top HOST:PORT [--interval S] [--once] [-n ROUNDS]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    out = out if out is not None else sys.stdout
    if not argv or ":" not in argv[0]:
        print("usage: python -m repro.obs top HOST:PORT "
              "[--interval S] [--once] [-n ROUNDS]", file=sys.stderr)
        return 2
    host, _, port = argv[0].partition(":")
    interval = 2.0
    rounds = None
    if "--interval" in argv:
        interval = float(argv[argv.index("--interval") + 1])
    if "-n" in argv:
        rounds = int(argv[argv.index("-n") + 1])
    if "--once" in argv:
        rounds = 1

    from repro.net import NetSession

    previous = None
    done = 0
    try:
        with NetSession(host, int(port)) as session:
            while True:
                snapshot = session.telemetry(ring_tail=8)
                if done or rounds != 1:
                    print(_CLEAR, end="", file=out)
                print(render(snapshot, previous), file=out)
                previous = snapshot
                done += 1
                if rounds is not None and done >= rounds:
                    break
                time.sleep(interval)
    except BrokenPipeError:  # ``top ... | head`` closed the pipe
        try:
            sys.stdout.close()
        except OSError:
            pass
    return 0
