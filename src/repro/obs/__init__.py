"""repro.obs — tracing spans, telemetry, and EXPLAIN ANALYZE.

The package splits the observability layer into:

* :mod:`repro.obs.core` — spans, profiles, trace files, and the
  cross-process trace context (:func:`trace_context` /
  :func:`remote_context` / :func:`graft`);
* :mod:`repro.obs.telemetry` — the snapshot ring, the background
  sampler, and the Prometheus text exposition with quantiles;
* :mod:`repro.obs.explain` — EXPLAIN ANALYZE (estimated-vs-actual
  per-rule join cost) and the slow-transaction log;
* :mod:`repro.obs.top` — the terminal dashboard
  (``python -m repro.obs top HOST:PORT``).

The full PR 2 surface is re-exported here, so ``from repro import obs``
call sites never changed.  Mutable module state (``_forced``, the trace
file, thread-locals) lives in :mod:`~repro.obs.core`; attribute reads
fall through to it via ``__getattr__`` so ``obs._forced`` stays truthful
— use :func:`_set_forced` (not assignment) to restore a saved value.
"""

import sys

from repro.obs import core as core
from repro.obs import explain as explain
from repro.obs import telemetry as telemetry
from repro.obs import top as top
from repro.obs.core import (
    Profile,
    Span,
    annotate,
    current,
    disable,
    enable,
    graft,
    last_roots,
    remote_context,
    reset_span_totals,
    root_jsonl_lines,
    span,
    span_from_dict,
    span_totals,
    trace_context,
    trace_file_off,
    trace_to,
    traced_bindings,
    tracing,
    _set_forced,
)
from repro.obs.explain import (
    ExplainReport,
    clear_slow_txn_log,
    explain_query,
    maybe_record_slow,
    set_slow_txn_threshold,
    slow_txn_log,
    slow_txn_threshold,
)
from repro.obs.telemetry import (
    TelemetryRing,
    prometheus_text,
    snapshot_entry,
    start_sampler,
    stop_sampler,
    telemetry_ring,
    telemetry_snapshot,
)


def __getattr__(name):
    # Delegate unknown attribute reads (the private mutable state tests
    # inspect: _forced, _AMBIENT_LIMIT, _local, ...) to the core module
    # so there is exactly one copy of each global.
    return getattr(core, name)


# -- demo / sample-trace CLI -------------------------------------------------


def _demo(jsonl_path=None, out=None):
    """Run one traced triangle-query transaction and render its trace.

    ``python -m repro.obs [--jsonl PATH]`` — CI uses this to produce
    the sample trace artifact.
    """
    out = out if out is not None else sys.stdout
    enable()
    from repro import Workspace

    workspace = Workspace()
    with Profile() as prof:
        workspace.addblock(
            "edge(x, y) -> int(x), int(y).\n"
            "tri(a, b, c) <- edge(a, b), edge(b, c), edge(a, c).\n"
        )
        workspace.load(
            "edge",
            [(a, b) for a in range(12) for b in range(12) if a < b and (a + b) % 3],
        )
        workspace.query("_(a, b, c) <- edge(a, b), edge(b, c), edge(a, c).")
    print(prof.format(), file=out)
    print(file=out)
    print(prometheus_text(), file=out)
    if jsonl_path:
        prof.to_jsonl(jsonl_path)
        print("wrote {} spans to {}".format(
            sum(1 for _ in prof.walk()), jsonl_path), file=out)
    return prof


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "top":
        return top.main(argv[1:])
    jsonl_path = None
    if "--jsonl" in argv:
        index = argv.index("--jsonl")
        jsonl_path = argv[index + 1]
    _demo(jsonl_path=jsonl_path)
    return 0
