"""The live telemetry plane: snapshot ring, sampler, and exporters.

A running server wants its counters observable *without* touching the
committer or pausing transactions.  This module keeps a bounded
in-memory ring of periodic counter/gauge/histogram snapshots (the
``telemetry`` wire verb serves it; ``python -m repro.obs top`` renders
it) and the Prometheus-style text exposition, including p50/p90/p99
quantile lines derived from :mod:`repro.stats` sample windows.

Everything here reads the global stats sinks — recording a snapshot is
a dict copy under the stats lock, so the sampler thread never blocks
the engine's hot paths.
"""

import os
import threading
import time

from repro import stats
from repro.obs import core as _core
from repro.obs import explain as _explain

_DEFAULT_CAPACITY = 128


class TelemetryRing:
    """A bounded ring of telemetry snapshots, newest last.

    Each entry is ``{"seq", "ts", "counters", "gauges", "histograms"}``
    — ``seq`` increases monotonically so pollers can detect gaps after
    a slow poll without comparing timestamps."""

    def __init__(self, capacity=_DEFAULT_CAPACITY):
        self.capacity = max(1, int(capacity))
        self._lock = threading.Lock()
        self._entries = []
        self._seq = 0

    def record(self, entry=None):
        """Append a snapshot (taken now when ``entry`` is None)."""
        if entry is None:
            entry = snapshot_entry()
        with self._lock:
            entry = dict(entry)
            entry["seq"] = self._seq
            self._seq += 1
            self._entries.append(entry)
            if len(self._entries) > self.capacity:
                del self._entries[: len(self._entries) - self.capacity]
        return entry

    def tail(self, n=None):
        """The last ``n`` snapshots (all retained ones when ``n`` is
        None), oldest first."""
        with self._lock:
            entries = self._entries if n is None else self._entries[-int(n):]
            return [dict(entry) for entry in entries]

    def __len__(self):
        with self._lock:
            return len(self._entries)


_ring = TelemetryRing()


def telemetry_ring():
    """The process-wide snapshot ring."""
    return _ring


def snapshot_entry():
    """One point-in-time snapshot of every stats sink."""
    return {
        "ts": time.time(),
        "counters": stats.snapshot(),
        "gauges": stats.gauges(),
        "histograms": stats.histograms(),
    }


def telemetry_snapshot(*, ring_tail=0):
    """The full telemetry payload the wire verb returns: a live
    snapshot plus span totals, the slow-transaction log, and (when
    ``ring_tail`` > 0) the most recent ring entries."""
    payload = snapshot_entry()
    payload["pid"] = os.getpid()
    payload["span_totals"] = _core.span_totals()
    payload["slow_txns"] = _explain.slow_txn_log()
    if ring_tail:
        payload["ring"] = _ring.tail(ring_tail)
    return payload


# -- the sampler thread ------------------------------------------------------

_sampler_lock = threading.Lock()
_sampler = None


class _Sampler(threading.Thread):
    def __init__(self, interval_s):
        super().__init__(name="repro-telemetry", daemon=True)
        self.interval_s = interval_s
        # NB: not ``_stop`` — threading.Thread owns that name internally
        self._halt = threading.Event()

    def run(self):
        while not self._halt.wait(self.interval_s):
            _ring.record()

    def stop(self):
        self._halt.set()


def start_sampler(interval_s, capacity=None):
    """Start (or retune) the periodic snapshot sampler.  Idempotent:
    a second call replaces the previous sampler."""
    global _sampler
    with _sampler_lock:
        if capacity is not None and capacity != _ring.capacity:
            _ring.capacity = max(1, int(capacity))
        if _sampler is not None:
            _sampler.stop()
        _sampler = _Sampler(float(interval_s))
        _sampler.start()
        return _sampler


def stop_sampler():
    """Stop the sampler if running (retained snapshots stay)."""
    global _sampler
    with _sampler_lock:
        if _sampler is not None:
            _sampler.stop()
            _sampler = None


# -- prometheus-style text dump ---------------------------------------------


def _metric_name(key):
    out = []
    for ch in key:
        out.append(ch if ch.isalnum() else "_")
    return "repro_" + "".join(out)


def prometheus_text():
    """Counters, gauges, and histograms as Prometheus text exposition
    lines; histograms are summaries with p50/p90/p99 quantile lines
    over the bounded sample window."""
    lines = []
    for key, value in sorted(stats.snapshot().items()):
        name = _metric_name(key)
        lines.append("# TYPE {} counter".format(name))
        lines.append("{} {}".format(name, value))
    for key, value in sorted(stats.gauges().items()):
        name = _metric_name(key)
        lines.append("# TYPE {} gauge".format(name))
        lines.append("{} {}".format(name, value))
    for key, hist in sorted(stats.histograms().items()):
        name = _metric_name(key)
        lines.append("# TYPE {} summary".format(name))
        lines.append('{}{{quantile="0.5"}} {}'.format(name, hist["p50"]))
        lines.append('{}{{quantile="0.9"}} {}'.format(name, hist["p90"]))
        lines.append('{}{{quantile="0.99"}} {}'.format(name, hist["p99"]))
        lines.append("{}_count {}".format(name, hist["count"]))
        lines.append("{}_sum {}".format(name, hist["sum"]))
        lines.append("{}_min {}".format(name, hist["min"]))
        lines.append("{}_max {}".format(name, hist["max"]))
    return "\n".join(lines) + "\n"
