"""EXPLAIN ANALYZE and the slow-transaction log.

The sampling optimizer (PR 6) predicts per-rule LFTJ cost from sampled
prefix cardinalities, and the executors count what actually happened
(seeks/nexts/steps per join, vectorized probes on the columnar path).
This module closes the loop: :func:`explain_query` runs a query with
the optimizer engaged and a profile collecting every ``join`` span,
then pairs each rule's *estimated* steps against its *actual* movement
counts.  The per-rule error ratio ``(est+1)/(actual+1)`` is observed
into the ``optimizer.estimate_error`` histogram — the calibration
signal for the sampler (a well-calibrated optimizer keeps p50 near 1).

The slow-transaction log is the automatic entry point: when a latency
threshold is configured (``REPRO_SLOW_TXN_S`` or
``ServiceConfig.slow_txn_s``), every transaction verb over the
threshold is recorded — kind, name, latency, counter deltas, and trace
coordinates — into a bounded process-wide log served by the telemetry
verb.  With no threshold set the hook is one flag test per
transaction, preserving the PR 2 overhead contract.
"""

import os
import threading
import time

from repro import stats
from repro.obs import core as _core

# -- slow-transaction log ----------------------------------------------------

_SLOW_ENV = "REPRO_SLOW_TXN_S"
_SLOW_LIMIT = 64

_slow_lock = threading.Lock()
_slow_log = []


def _env_threshold():
    raw = os.environ.get(_SLOW_ENV, "")
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


_slow_threshold = _env_threshold()


def set_slow_txn_threshold(seconds):
    """Record transactions slower than ``seconds`` (None disables)."""
    global _slow_threshold
    _slow_threshold = float(seconds) if seconds else None
    return _slow_threshold


def slow_txn_threshold():
    """The active latency threshold in seconds, or ``None``."""
    return _slow_threshold


def slow_txn_log():
    """The recorded slow transactions, oldest first (bounded)."""
    with _slow_lock:
        return [dict(entry) for entry in _slow_log]


def clear_slow_txn_log():
    """Drop every recorded entry (test isolation only)."""
    with _slow_lock:
        del _slow_log[:]


def maybe_record_slow(kind, name, latency_s, *, counters=None, span=None):
    """Record one transaction if it crossed the threshold.

    The disabled path (no threshold configured) is a single flag test.
    Returns the recorded entry, or ``None``."""
    threshold = _slow_threshold
    if threshold is None or latency_s < threshold:
        return None
    entry = {
        "ts": time.time(),
        "kind": kind,
        "name": name,
        "latency_s": latency_s,
        "counters": dict(counters) if counters else {},
    }
    if span is not None:
        entry["trace"] = span.trace_id
        entry["span"] = span.sid
    with _slow_lock:
        _slow_log.append(entry)
        if len(_slow_log) > _SLOW_LIMIT:
            del _slow_log[: len(_slow_log) - _SLOW_LIMIT]
    stats.bump("obs.slow_txns")
    return entry


# -- EXPLAIN ANALYZE ---------------------------------------------------------


def _actual_steps(span_):
    """The executor movement count recorded on one ``join`` span,
    across backends (serial folds exec stats into attrs and bumps
    ``join.*`` into the span's counter sink; parallel and columnar bump
    ``join.*`` themselves, which the sink also captures)."""
    counters = span_.counters
    steps = counters.get("join.steps") or span_.attrs.get("steps")
    if steps:
        return steps
    moved = counters.get("join.seeks", 0) + counters.get("join.nexts", 0)
    if moved:
        return moved
    vector = counters.get("join.vector_seeks", 0)
    if vector:
        return vector
    return span_.attrs.get("seeks", 0) + span_.attrs.get("nexts", 0)


class ExplainReport:
    """Per-rule estimated-vs-actual join cost for one query.

    ``rules`` is a list of dicts with keys ``rule``, ``var_order``,
    ``estimated_steps``, ``actual_steps``, ``error_ratio``, ``rows``,
    ``indexes``, ``executions`` — JSON/codec-safe so reports travel the
    wire unchanged."""

    def __init__(self, source, answer, row_count, wall_s, backend, rules):
        self.source = source
        self.answer = answer
        self.row_count = row_count
        self.wall_s = wall_s
        self.backend = backend
        self.rules = rules

    def to_dict(self):
        return {
            "source": self.source,
            "answer": self.answer,
            "row_count": self.row_count,
            "wall_s": self.wall_s,
            "backend": self.backend,
            "rules": [dict(rule) for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            payload.get("source", ""),
            payload.get("answer"),
            payload.get("row_count", 0),
            payload.get("wall_s", 0.0),
            payload.get("backend"),
            [dict(rule) for rule in payload.get("rules") or ()],
        )

    def format(self):
        """Human-readable EXPLAIN ANALYZE table."""
        lines = [
            "EXPLAIN ANALYZE  answer={}  rows={}  wall={:.3f}ms  backend={}".format(
                self.answer, self.row_count, self.wall_s * 1000.0, self.backend
            )
        ]
        header = "  {:<20} {:<18} {:>12} {:>12} {:>10} {:>8}".format(
            "rule", "var order", "est. steps", "actual", "est/act", "rows"
        )
        lines.append(header)
        for rule in self.rules:
            order = rule.get("var_order")
            ratio = rule.get("error_ratio")
            lines.append("  {:<20} {:<18} {:>12} {:>12} {:>10} {:>8}".format(
                str(rule.get("rule"))[:20],
                ",".join(order)[:18] if order else "(default)",
                rule.get("estimated_steps", "-"),
                rule.get("actual_steps", "-"),
                "{:.2f}".format(ratio) if ratio is not None else "-",
                rule.get("rows", 0),
            ))
        if not self.rules:
            lines.append("  (no join rules)")
        return "\n".join(lines)


def explain_query(state, source, answer=None, *, parallel=None, backend=None,
                  sample_size=256, max_candidates=24):
    """Run ``source`` as a query with the sampling optimizer engaged
    and return an :class:`ExplainReport` pairing the optimizer's
    estimate with the executed join's movement counts per rule.

    Mirrors :func:`repro.runtime.workspace.evaluate_query` but plans
    fresh (no plan cache) so the chooser is consulted for every rule,
    and collects the run under a private :class:`~repro.obs.Profile`
    so it works with tracing globally off."""
    from repro.engine.evaluator import Evaluator, RuleSet
    from repro.engine.ir import PredAtom
    from repro.engine.optimizer import SamplingOptimizer
    from repro.logiql.compiler import compile_program
    from repro.runtime.errors import TransactionAborted
    from repro.storage.relation import Relation

    started = time.perf_counter()
    block = compile_program(source)
    if block.reactive_rules:
        raise TransactionAborted("queries cannot contain reactive rules")
    ruleset = RuleSet(block.rules)
    env = state.env_with_defaults()
    for rule in block.rules:
        for atom in rule.body:
            if isinstance(atom, PredAtom) and atom.pred not in env:
                if atom.pred not in ruleset.derived:
                    env[atom.pred] = Relation.empty(len(atom.args))
    optimizer = SamplingOptimizer(
        sample_size=sample_size, max_candidates=max_candidates
    )
    evaluator = Evaluator(
        ruleset,
        order_chooser=optimizer,
        prefer_array=False,
        plan_cache=None,
        parallel=parallel,
        backend=backend,
    )
    with _core.Profile() as prof:
        with _core.span("explain", chars=len(source)):
            relations, _ = evaluator.evaluate(env)
    wall_s = time.perf_counter() - started
    if answer is None:
        answer = "_" if "_" in ruleset.derived else block.rules[-1].head_pred
    rows = sorted(relations[answer])

    joins_by_rule = {}
    for span_ in prof.find_all("join"):
        joins_by_rule.setdefault(span_.attrs.get("rule"), []).append(span_)

    report_rules = []
    for rule in block.rules:
        label = rule.name or rule.head_pred
        spans = joins_by_rule.get(label, ())
        if not spans and not any(
            isinstance(atom, PredAtom) for atom in rule.body
        ):
            continue
        actual = sum(_actual_steps(s) for s in spans)
        produced = sum(s.attrs.get("rows", 0) for s in spans)
        prediction = optimizer.explain_rule(rule, relations)
        entry = {
            "rule": label,
            "executions": len(spans),
            "actual_steps": actual,
            "rows": produced,
            "var_order": None,
            "estimated_steps": None,
            "indexes": None,
            "error_ratio": None,
        }
        if prediction is not None:
            order, estimated, indexes = prediction
            ratio = (estimated + 1.0) / (actual + 1.0)
            entry.update(
                var_order=list(order),
                estimated_steps=estimated,
                indexes=indexes,
                error_ratio=ratio,
            )
            stats.observe("optimizer.estimate_error", ratio)
        report_rules.append(entry)

    return ExplainReport(
        source, answer, len(rows), wall_s,
        evaluator.backend, report_rules,
    )
