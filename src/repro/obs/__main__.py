"""``python -m repro.obs`` — demo trace exporter and the ``top``
dashboard (``python -m repro.obs top HOST:PORT``)."""

import sys

from repro.obs import main

sys.exit(main())
