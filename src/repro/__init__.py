"""repro — a from-scratch Python reproduction of the LogicBlox system.

Design and Implementation of the LogicBlox System (SIGMOD 2015):
LogiQL, purely functional data structures, leapfrog triejoin,
incremental view maintenance, live programming via a meta-engine,
transaction repair, and prescriptive/predictive analytics.

Quickstart::

    from repro import Workspace

    ws = Workspace()
    ws.addblock('''
        parent(x, y) -> string(x), string(y).
        ancestor(x, y) <- parent(x, y).
        ancestor(x, z) <- ancestor(x, y), parent(y, z).
    ''')
    ws.load('parent', [('adam', 'seth'), ('seth', 'enos')])
    print(ws.rows('ancestor'))
"""

from repro.runtime import (
    ConstraintViolation,
    TransactionAborted,
    UnknownPredicate,
    Workspace,
)
from repro.runtime.workbook import Workbook

__version__ = "0.1.0"

__all__ = [
    "Workspace",
    "Workbook",
    "ConstraintViolation",
    "TransactionAborted",
    "UnknownPredicate",
    "__version__",
]
