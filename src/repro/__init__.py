"""repro — a from-scratch Python reproduction of the LogicBlox system.

Design and Implementation of the LogicBlox System (SIGMOD 2015):
LogiQL, purely functional data structures, leapfrog triejoin,
incremental view maintenance, live programming via a meta-engine,
transaction repair, and prescriptive/predictive analytics.

Quickstart::

    from repro import Workspace

    ws = Workspace()
    ws.addblock('''
        parent(x, y) -> string(x), string(y).
        ancestor(x, y) <- parent(x, y).
        ancestor(x, z) <- ancestor(x, y), parent(y, z).
    ''')
    ws.load('parent', [('adam', 'seth'), ('seth', 'enos')])
    print(ws.rows('ancestor'))

Concurrent sessions (the service layer)::

    import repro

    session = repro.connect()
    session.addblock('counter[s] = v -> string(s), int(v).')
    session.load('counter', [('hits', 0)])
    session.exec('^counter["hits"] = x <- counter@start["hits"] = y, x = y + 1.')
    session.close()
"""

from repro.runtime import (
    ConflictError,
    ConstraintViolation,
    Overloaded,
    ReproError,
    TransactionAborted,
    TxnResult,
    TxnTimeout,
    UnknownPredicate,
    Workspace,
)
from repro.runtime.workbook import Workbook
from repro.service.session import connect

__version__ = "0.2.0"

__all__ = [
    "Workspace",
    "Workbook",
    "connect",
    "TxnResult",
    "ReproError",
    "TransactionAborted",
    "ConstraintViolation",
    "ConflictError",
    "TxnTimeout",
    "Overloaded",
    "UnknownPredicate",
    "__version__",
]
