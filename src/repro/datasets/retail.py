"""Retail planning workload generator (the paper's §2.1 scenario).

Produces the 6NF base relations of a small retail application: SKUs,
stores, weekly sales with seasonal + promotional structure, prices, and
per-SKU features — enough to drive the assortment, promotion, and
prediction examples and benchmarks.
"""

import math
import random


def retail_workload(n_skus=10, n_stores=4, n_weeks=52, seed=0):
    """Generate retail base data.

    Returns a dict of relations::

        sku(s)                      store(t)
        sales[s, t, w] = units      price[s] = p
        cost[s] = c                 promo(s, w)
        spacePerSku[s] = v          feature[s, t, w, name] = value
    """
    rng = random.Random(seed)
    skus = ["sku{:03d}".format(i) for i in range(n_skus)]
    stores = ["store{:02d}".format(i) for i in range(n_stores)]
    data = {
        "sku": [(s,) for s in skus],
        "store": [(t,) for t in stores],
        "price": [],
        "cost": [],
        "spacePerSku": [],
        "promo": [],
        "sales": [],
        "feature": [],
    }
    base_demand = {}
    for s in skus:
        price = round(rng.uniform(2.0, 20.0), 2)
        data["price"].append((s, price))
        data["cost"].append((s, round(price * rng.uniform(0.4, 0.8), 2)))
        data["spacePerSku"].append((s, round(rng.uniform(0.5, 3.0), 2)))
        base_demand[s] = rng.uniform(5, 60)
    promo_weeks = {}
    for s in skus:
        weeks = sorted(rng.sample(range(n_weeks), max(1, n_weeks // 10)))
        promo_weeks[s] = set(weeks)
        for w in weeks:
            data["promo"].append((s, w))
    for s in skus:
        for t in stores:
            store_factor = rng.uniform(0.6, 1.4)
            for w in range(n_weeks):
                season = 1.0 + 0.3 * math.sin(2 * math.pi * w / 52.0)
                promo_lift = 1.8 if w in promo_weeks[s] else 1.0
                noise = rng.gauss(1.0, 0.08)
                units = max(
                    0.0,
                    base_demand[s] * store_factor * season * promo_lift * noise,
                )
                data["sales"].append((s, t, w, round(units, 2)))
                data["feature"].append((s, t, w, "season", round(season, 4)))
                data["feature"].append(
                    (s, t, w, "promo", 1.0 if w in promo_weeks[s] else 0.0)
                )
    return data


RETAIL_SCHEMA = """
sku(s) -> .
store(t) -> .
price[s] = p -> sku(s), float(p).
cost[s] = c -> sku(s), float(c).
spacePerSku[s] = v -> sku(s), float(v).
promo(s, w) -> sku(s), int(w).
sales[s, t, w] = u -> sku(s), store(t), int(w), float(u).
feature[s, t, w, n] = v -> sku(s), store(t), int(w), string(n), float(v).
"""


def load_retail(workspace, data=None, **kwargs):
    """Install the retail schema and load a generated workload."""
    if data is None:
        data = retail_workload(**kwargs)
    workspace.addblock(RETAIL_SCHEMA, name="retail-schema")
    for pred in ("sku", "store", "price", "cost", "spacePerSku", "promo",
                 "sales", "feature"):
        workspace.load(pred, data[pred])
    return data
