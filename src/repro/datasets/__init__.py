"""Synthetic workload and dataset generators for examples and benches."""

from repro.datasets.graphs import erdos_renyi, grid_graph, powerlaw_graph
from repro.datasets.retail import retail_workload
from repro.datasets.txnload import alpha_transactions

__all__ = [
    "erdos_renyi",
    "grid_graph",
    "powerlaw_graph",
    "retail_workload",
    "alpha_transactions",
]
