"""The paper's §3.4 transactional workload.

"Suppose there are n items in total, and each transaction modifies the
inventory value for any given item with independent probability
α·n^(−1/2) ... The expected number of items common to two transactions
is α² — an instance of the Birthday Paradox."
"""

import random

INVENTORY_SCHEMA = """
inventory[s] = v -> string(s), int(v).
auto_order(s) -> string(s).
place_order(x) <- inventory[x] = 0, auto_order(x).
"""


def item_name(index):
    """Canonical inventory item name."""
    return "item{:05d}".format(index)


def setup_inventory(workspace, n_items, initial=5, auto_every=3):
    """Install the inventory schema and stock ``n_items`` items."""
    workspace.addblock(INVENTORY_SCHEMA, name="inventory")
    workspace.load("inventory", [(item_name(i), initial) for i in range(n_items)])
    workspace.load(
        "auto_order", [(item_name(i),) for i in range(0, n_items, auto_every)]
    )


def alpha_transactions(n_items, n_txns, alpha, seed=0):
    """LogiQL sources for the §3.4 decrement workload.

    Each transaction decrements every item independently with
    probability ``alpha / sqrt(n_items)`` (at least one item, so no
    transaction is empty).
    """
    rng = random.Random(seed)
    probability = alpha * n_items ** -0.5
    sources = []
    for _ in range(n_txns):
        items = [
            item_name(i) for i in range(n_items) if rng.random() < probability
        ]
        if not items:
            items = [item_name(rng.randrange(n_items))]
        lines = [
            '^inventory["{0}"] = x <- inventory@start["{0}"] = y, '
            "x = y - 1.".format(s)
            for s in items
        ]
        sources.append("\n".join(lines))
    return sources
