"""Synthetic graph generators.

The paper's Figure 5 runs the 3-clique query on (subsets of) the
LiveJournal social graph.  That dataset is unavailable offline, so the
benchmarks use :func:`powerlaw_graph` — preferential attachment in the
Barabási–Albert style, which preserves the heavy-tailed degree
distribution that makes binary join plans blow up on cyclic queries
(the effect Figure 5 demonstrates).  See DESIGN.md for the substitution
rationale.
"""

import random


def powerlaw_graph(n_nodes, edges_per_node=4, seed=0):
    """Directed edges of a preferential-attachment graph.

    Every new node attaches to ``edges_per_node`` existing nodes chosen
    proportionally to degree; each undirected attachment is emitted in
    both directions (social-graph style), matching how the triangle
    query is usually run on LiveJournal.
    """
    rng = random.Random(seed)
    edges = set()
    targets = list(range(min(edges_per_node, n_nodes)))
    repeated = list(targets)
    for node in range(len(targets), n_nodes):
        chosen = set()
        while len(chosen) < min(edges_per_node, node):
            pick = rng.choice(repeated) if repeated else rng.randrange(node)
            chosen.add(pick)
        for other in chosen:
            edges.add((node, other))
            edges.add((other, node))
            repeated.append(other)
            repeated.append(node)
    return sorted(edges)


def erdos_renyi(n_nodes, n_edges, seed=0, symmetric=False):
    """Uniformly random simple directed edges (no self-loops)."""
    rng = random.Random(seed)
    edges = set()
    while len(edges) < n_edges:
        a = rng.randrange(n_nodes)
        b = rng.randrange(n_nodes)
        if a == b:
            continue
        edges.add((a, b))
        if symmetric:
            edges.add((b, a))
    return sorted(edges)


def hub_graph(n_nodes, sparse_edges=None, seed=0):
    """A hub-skewed graph: node 0 connects to everyone (both ways) plus
    sparse random edges among the leaves.

    This is the degree skew — LiveJournal's celebrity hubs, in the
    extreme — that separates worst-case-optimal joins from binary
    plans: the open wedges through the hub number Θ(n²) while the
    triangle count stays Θ(sparse_edges).
    """
    rng = random.Random(seed)
    if sparse_edges is None:
        sparse_edges = 3 * n_nodes
    edges = set()
    for node in range(1, n_nodes):
        edges.add((0, node))
        edges.add((node, 0))
    target = 2 * (n_nodes - 1) + sparse_edges
    while len(edges) < target:
        a = rng.randrange(1, n_nodes)
        b = rng.randrange(1, n_nodes)
        if a != b:
            edges.add((a, b))
    return sorted(edges)


def grid_graph(side):
    """Edges of a ``side × side`` grid (no triangles — a worst case for
    plans that materialize open wedges)."""
    edges = []
    for row in range(side):
        for column in range(side):
            node = row * side + column
            if column + 1 < side:
                edges.append((node, node + 1))
                edges.append((node + 1, node))
            if row + 1 < side:
                edges.append((node, node + side))
                edges.append((node + side, node))
    return sorted(set(edges))
