"""A minimal interactive LogiQL REPL.

The paper's footnote 4 points at developer.logicblox.com's "online REPL
for interactive tryout programming"; this is the equivalent for this
reproduction.  Run ``python -m repro.repl``.

Commands::

    <clause(s)>.            addblock the clauses (schema, rules, facts)
    exec  <reactive logic>  run an exec transaction
    query <rule(s)>         run a query (answer predicate: _)
    print <pred>            show a predicate's rows
    blocks | branches       list installed blocks / branches
    branch <name>           create and switch to a branch
    switch <name>           switch branches
    solve                   run lang:solve directives
    meta <pred>             show a meta-engine relation (lang_edb, ...)
    :stats [prom]           engine counters (JSON; 'prom' = Prometheus text)
    :profile <command>      run any command traced, print its span tree
    :explain <rule(s)>      EXPLAIN ANALYZE a query: per-rule estimated
                            vs. actual join cost, and the error ratio
    :serve [--tcp] [W [N]]  demo the concurrent service (W writers x N txns;
                            --tcp routes every transaction through a
                            loopback repro.net server)
    :checkpoint <dir>       write a durable checkpoint (incremental)
    :open <dir>             replace the session workspace from a checkpoint
    help | quit
"""

import json
import sys

from repro import ConstraintViolation, TransactionAborted, Workspace
from repro import obs

PROMPT = "logiql> "


class Repl:
    """Line-oriented REPL over one workspace."""

    def __init__(self, workspace=None, out=sys.stdout):
        self.workspace = workspace or Workspace()
        self.out = out

    def emit(self, text=""):
        print(text, file=self.out)

    def show_rows(self, rows, limit=50):
        for row in rows[:limit]:
            self.emit("  " + ", ".join(repr(value) for value in row))
        if len(rows) > limit:
            self.emit("  ... ({} rows total)".format(len(rows)))
        if not rows:
            self.emit("  (empty)")

    def handle(self, line):
        """Process one input line; returns False to quit."""
        stripped = line.strip()
        if not stripped:
            return True
        command, _, rest = stripped.partition(" ")
        try:
            if command in ("quit", "exit"):
                return False
            if command == "help":
                self.emit(__doc__)
            elif command == "print":
                self.show_rows(self.workspace.rows(rest.strip()))
            elif command == "blocks":
                self.emit("  " + ", ".join(self.workspace.blocks() or ["(none)"]))
            elif command == "branches":
                current = self.workspace.branch
                names = [
                    "*" + name if name == current else name
                    for name in self.workspace.branches()
                ]
                self.emit("  " + ", ".join(names))
            elif command == "branch":
                self.workspace.create_branch(rest.strip())
                self.workspace.switch(rest.strip())
                self.emit("  on branch {}".format(rest.strip()))
            elif command == "switch":
                self.workspace.switch(rest.strip())
                self.emit("  on branch {}".format(rest.strip()))
            elif command == "exec":
                result = self.workspace.exec(rest)
                self.emit("  ok ({} predicates changed)".format(
                    len(result.deltas)))
            elif command == "query":
                self.show_rows(self.workspace.query(rest))
            elif command == "solve":
                from repro.solver import solve_workspace

                result, _ = solve_workspace(self.workspace)
                self.emit("  {} (objective {})".format(
                    result.status, result.objective))
            elif command == "meta":
                meta = self.workspace.state.meta_state
                self.show_rows(meta.rows(rest.strip()))
            elif command == "removeblock":
                self.workspace.removeblock(rest.strip())
                self.emit("  removed")
            elif command == ":stats":
                if rest.strip() == "prom":
                    self.emit(obs.prometheus_text().rstrip())
                else:
                    self.emit(json.dumps(
                        self.workspace.engine_stats(), indent=2, sort_keys=True,
                        default=repr,
                    ))
            elif command == ":profile":
                if not rest.strip():
                    self.emit("  usage: :profile <command>")
                else:
                    with self.workspace.profile() as prof:
                        keep_going = self.handle(rest)
                    self.emit(prof.format())
                    return keep_going
            elif command == ":explain":
                if not rest.strip():
                    self.emit("  usage: :explain <rule(s)>")
                else:
                    self.emit(self.workspace.explain(rest).format())
            elif command == ":serve":
                self.serve(rest)
            elif command == ":checkpoint":
                path = rest.strip()
                if not path:
                    self.emit("  usage: :checkpoint <dir>")
                else:
                    result = self.workspace.checkpoint(path)
                    self.emit(
                        "  checkpoint {} at {}: {} nodes "
                        "({} bytes) written".format(
                            result["seq"], path,
                            result["nodes_written"], result["bytes_written"]))
            elif command == ":open":
                path = rest.strip()
                if not path:
                    self.emit("  usage: :open <dir>")
                else:
                    self.workspace = Workspace.open(path)
                    self.emit("  opened {} (branch {})".format(
                        path, self.workspace.branch))
            else:
                result = self.workspace.addblock(stripped)
                self.emit("  added block {}".format(result.block))
        except (ConstraintViolation, TransactionAborted) as error:
            self.emit("  ABORTED: {}".format(error))
        except Exception as error:  # surface, keep the session alive
            self.emit("  ERROR: {}".format(error))
        return True

    def serve(self, rest):
        """The ``:serve`` command: run the multi-writer service soak
        (a fresh workspace behind a :class:`TransactionService`) and
        print its counters — the quickest way to see group commit,
        repair, and the admission queue in action.  With ``--tcp`` the
        same soak runs through a loopback :mod:`repro.net` server, so
        every transaction crosses the wire protocol."""
        from repro.service.__main__ import soak

        parts = rest.split()
        tcp = bool(parts) and parts[0] == "--tcp"
        if tcp:
            parts = parts[1:]
        writers = int(parts[0]) if parts else 4
        txns = int(parts[1]) if len(parts) > 1 else 20
        if not tcp:
            soak(writers=writers, txns=txns, out=self.out)
            return
        from repro.service import ServiceConfig, TransactionService

        service = TransactionService(
            config=ServiceConfig(max_pending=writers * 2))
        server = service.serve()
        try:
            self.emit("serving on {}:{}".format(server.host, server.port))
            soak(writers=writers, txns=txns, out=self.out,
                 net=(server.host, server.port))
        finally:
            server.stop()
            service.close()

    def run(self, stdin=sys.stdin):
        """Interactive loop."""
        self.emit("LogiQL REPL — 'help' for commands, 'quit' to leave.")
        while True:
            self.out.write(PROMPT)
            self.out.flush()
            line = stdin.readline()
            if not line:
                break
            # allow multi-line clauses terminated by '.'
            while line.strip() and not _complete(line):
                more = stdin.readline()
                if not more:
                    break
                line += more
            if not self.handle(line):
                break
        self.emit("bye")


def _complete(text):
    stripped = text.strip()
    command, _, rest = stripped.partition(" ")
    if command == ":profile":
        # completeness is decided by the command being profiled
        return bool(rest.strip()) and _complete(rest)
    if command == ":explain":
        return bool(rest.strip()) and _complete(rest)
    if command in ("help", "quit", "exit", "print", "blocks", "branches",
                   "branch", "switch", "solve", "meta", "removeblock",
                   ":stats", ":serve", ":checkpoint", ":open"):
        return True
    return stripped.endswith(".") or stripped.endswith("}")


def main():
    Repl().run()


if __name__ == "__main__":
    main()
