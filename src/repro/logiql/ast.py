"""Abstract syntax of LogiQL programs (paper §2.2).

The AST mirrors the surface language: clauses are derivation rules,
integrity constraints (rightward arrow), or directives; atoms come in
relational ``R(t...)`` and functional ``R[t...] = t`` forms, optionally
negated, delta-marked (``+R``, ``-R``, ``^R``), or versioned
(``R@start``); terms include arithmetic, functional applications used
as expressions, and distribution terms (``Flip[p]``).
"""


class Node:
    """Base AST node with structural equality for tests."""

    __slots__ = ()

    def _fields(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __eq__(self, other):
        return type(other) is type(self) and other._fields() == self._fields()

    def __hash__(self):
        return hash((type(self).__name__, self._fields()))


# -- terms -------------------------------------------------------------------


class VarT(Node):
    """A variable occurrence."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name


class Wildcard(Node):
    """The anonymous variable ``_``."""

    __slots__ = ()

    def __repr__(self):
        return "_"


class NumT(Node):
    """A numeric literal (int or float)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return repr(self.value)


class StrT(Node):
    """A string literal."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return repr(self.value)


class BoolT(Node):
    """A boolean literal."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "true" if self.value else "false"


class Arith(Node):
    """Binary arithmetic over terms."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self):
        return "({} {} {})".format(self.left, self.op, self.right)


class FuncTerm(Node):
    """A functional application used as a term: ``price[sku]``."""

    __slots__ = ("pred", "keys", "at_start")

    def __init__(self, pred, keys, at_start=False):
        self.pred = pred
        self.keys = tuple(keys)
        self.at_start = at_start

    def __repr__(self):
        suffix = "@start" if self.at_start else ""
        return "{}{}[{}]".format(self.pred, suffix, ", ".join(map(repr, self.keys)))


class CallT(Node):
    """A built-in scalar function call used as a term."""

    __slots__ = ("fn", "args")

    def __init__(self, fn, args):
        self.fn = fn
        self.args = tuple(args)

    def __repr__(self):
        return "{}({})".format(self.fn, ", ".join(map(repr, self.args)))


class FlipT(Node):
    """``Flip[r]``: a Bernoulli distribution term (paper §2.3.3)."""

    __slots__ = ("param",)

    def __init__(self, param):
        self.param = param

    def __repr__(self):
        return "Flip[{!r}]".format(self.param)


class _RelTermAtom(Node):
    """Internal: a relational application parsed in term position.

    The parser resolves it into a :class:`RelAtom` at atom level; its
    appearance inside arithmetic is a syntax error raised by the
    compiler.
    """

    __slots__ = ("pred", "terms", "at_start")

    def __init__(self, pred, terms, at_start=False):
        self.pred = pred
        self.terms = tuple(terms)
        self.at_start = at_start

    def __repr__(self):
        suffix = "@start" if self.at_start else ""
        return "{}{}({})".format(self.pred, suffix, ", ".join(map(repr, self.terms)))


class PredRef(Node):
    """A backquoted predicate reference: ``` `Stock ```."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "`" + self.name


# -- atoms -------------------------------------------------------------------


class RelAtom(Node):
    """A relational atom ``R(t1, ..., tn)``."""

    __slots__ = ("pred", "terms", "negated", "delta", "at_start")

    def __init__(self, pred, terms, negated=False, delta=None, at_start=False):
        self.pred = pred
        self.terms = tuple(terms)
        self.negated = negated
        self.delta = delta  # None | '+' | '-' | '^'
        self.at_start = at_start

    def __repr__(self):
        prefix = ("!" if self.negated else "") + (self.delta or "")
        suffix = "@start" if self.at_start else ""
        return "{}{}{}({})".format(
            prefix, self.pred, suffix, ", ".join(map(repr, self.terms))
        )


class FuncAtom(Node):
    """A functional atom ``R[t1, ..., tn-1] = t``."""

    __slots__ = ("pred", "keys", "value", "negated", "delta", "at_start")

    def __init__(self, pred, keys, value, negated=False, delta=None, at_start=False):
        self.pred = pred
        self.keys = tuple(keys)
        self.value = value
        self.negated = negated
        self.delta = delta
        self.at_start = at_start

    def __repr__(self):
        prefix = ("!" if self.negated else "") + (self.delta or "")
        suffix = "@start" if self.at_start else ""
        return "{}{}{}[{}] = {!r}".format(
            prefix, self.pred, suffix, ", ".join(map(repr, self.keys)), self.value
        )


class Comparison(Node):
    """A comparison atom ``t1 op t2``."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self):
        return "({!r} {} {!r})".format(self.left, self.op, self.right)


class TypeAtom(Node):
    """A primitive type atom in a constraint RHS: ``float(v)``."""

    __slots__ = ("type_name", "term")

    def __init__(self, type_name, term):
        self.type_name = type_name
        self.term = term

    def __repr__(self):
        return "{}({!r})".format(self.type_name, self.term)


# -- clauses -------------------------------------------------------------------


class AggClause(Node):
    """``agg<<u = fn(z)>>`` on a P2P rule."""

    __slots__ = ("result_var", "fn", "value")

    def __init__(self, result_var, fn, value):
        self.result_var = result_var
        self.fn = fn
        self.value = value  # a term (usually VarT)

    def __repr__(self):
        return "agg<<{} = {}({!r})>>".format(self.result_var, self.fn, self.value)


class PredictClause(Node):
    """``predict m = fn(v|f)``: a machine-learning P2P rule (§2.3.2)."""

    __slots__ = ("result_var", "fn", "target", "feature")

    def __init__(self, result_var, fn, target, feature):
        self.result_var = result_var
        self.fn = fn  # e.g. 'logist', 'linear', 'eval', 'kmeans'
        self.target = target  # term bound to the target/model variable
        self.feature = feature  # term bound to the feature variable

    def __repr__(self):
        return "predict {} = {}({!r}|{!r})".format(
            self.result_var, self.fn, self.target, self.feature
        )


class RuleClause(Node):
    """A derivation rule (plain, aggregate, predict, reactive, or fact)."""

    __slots__ = ("head", "body", "agg", "predict")

    def __init__(self, head, body, agg=None, predict=None):
        self.head = head
        self.body = tuple(body)
        self.agg = agg
        self.predict = predict

    def __repr__(self):
        extra = ""
        if self.agg:
            extra = " {!r}".format(self.agg)
        if self.predict:
            extra = " {!r}".format(self.predict)
        return "{!r} <-{} {}.".format(self.head, extra, ", ".join(map(repr, self.body)))


class ConstraintClause(Node):
    """An integrity constraint ``F -> G`` (optionally soft-weighted)."""

    __slots__ = ("lhs", "rhs", "weight")

    def __init__(self, lhs, rhs, weight=None):
        self.lhs = tuple(lhs)
        self.rhs = tuple(rhs)
        self.weight = weight

    def __repr__(self):
        prefix = "{}: ".format(self.weight) if self.weight is not None else ""
        return "{}{} -> {}.".format(
            prefix,
            ", ".join(map(repr, self.lhs)),
            ", ".join(map(repr, self.rhs)),
        )


class DirectiveClause(Node):
    """A ``lang:...`` directive, e.g. ``lang:solve:max(`totalProfit)``."""

    __slots__ = ("name", "args")

    def __init__(self, name, args):
        self.name = name
        self.args = tuple(args)

    def __repr__(self):
        return "{}({}).".format(self.name, ", ".join(map(repr, self.args)))


class Program(Node):
    """A parsed block: an ordered list of clauses."""

    __slots__ = ("clauses",)

    def __init__(self, clauses):
        self.clauses = tuple(clauses)

    def __repr__(self):
        return "\n".join(repr(c) for c in self.clauses)
