"""Compilation of LogiQL ASTs into engine-level objects.

Lowers parsed clauses into:

* :class:`~repro.engine.rules.Rule` objects (plain, aggregate, and
  reactive rules over delta predicates);
* :class:`Constraint` objects — integrity constraints checked as
  "every LHS binding extends to an RHS binding";
* schema declarations extracted from type-declaration constraints
  (``Stock[p] = v -> Product(p), float(v).``) and entity declarations
  (``Product(p) -> .``);
* solve directives, predict rules, and probabilistic (``Flip``) rules,
  interpreted by the solver / ml / prob subsystems.

Desugaring performed here: functional terms used as expressions become
fresh variables plus atoms; arithmetic in heads and atom arguments
becomes ``AssignAtom`` bindings; ``^R`` reactive heads expand into the
``+R`` / ``-R`` pair with an ``R@start`` lookup; ``=`` between an
otherwise-unbound variable and an expression becomes an assignment.
"""

import itertools

from repro.engine import ir
from repro.engine.rules import AggSpec, Rule
from repro.logiql import ast
from repro.storage.datum import PrimitiveType, type_from_name
from repro.storage.schema import EntityType, PredicateDecl


class CompileError(ValueError):
    """Semantic error during compilation."""


DELTA_PLUS = "+"
DELTA_MINUS = "-"


def delta_pred(name, sign):
    """Name of the delta predicate (``+R`` / ``-R``)."""
    return sign + name


def start_pred(name):
    """Name of the transaction-start version (``R@start``)."""
    return name + "@start"


class Constraint:
    """An integrity constraint: every LHS binding must extend to RHS.

    ``lhs`` and ``rhs`` are lists of engine IR atoms; ``type_checks``
    holds ``(PrimitiveType, var_name)`` pairs from type atoms and
    ``entity_checks`` holds ``(entity_name, var_name)`` pairs.  Soft
    constraints carry a ``weight`` and are skipped by the enforcing
    checker (they feed MAP inference instead, §2.3.3).
    """

    __slots__ = ("lhs", "rhs", "type_checks", "entity_checks", "weight", "text")

    def __init__(self, lhs, rhs, type_checks, entity_checks, weight=None, text=None):
        self.lhs = list(lhs)
        self.rhs = list(rhs)
        self.type_checks = list(type_checks)
        self.entity_checks = list(entity_checks)
        self.weight = weight
        self.text = text

    @property
    def is_soft(self):
        """Soft constraints carry weights and are never enforced."""
        return self.weight is not None

    def __repr__(self):
        return "Constraint({} -> {})".format(self.lhs, self.rhs)


class PredictRule:
    """A ``predict`` P2P rule (paper §2.3.2), interpreted by repro.ml."""

    __slots__ = ("head_pred", "head_keys", "fn", "target_var", "feature_var", "body", "n_keys")

    def __init__(self, head_pred, head_keys, fn, target_var, feature_var, body):
        self.head_pred = head_pred
        self.head_keys = tuple(head_keys)
        self.fn = fn
        self.target_var = target_var
        self.feature_var = feature_var
        self.body = list(body)
        self.n_keys = len(self.head_keys)

    def __repr__(self):
        return "PredictRule({}, fn={})".format(self.head_pred, self.fn)


class ProbRule:
    """A probabilistic rule whose head draws from ``Flip[p]`` (§2.3.3)."""

    __slots__ = ("head_pred", "head_args", "param_expr", "body")

    def __init__(self, head_pred, head_args, param_expr, body):
        self.head_pred = head_pred
        self.head_args = tuple(head_args)
        self.param_expr = param_expr
        self.body = list(body)

    def __repr__(self):
        return "ProbRule({})".format(self.head_pred)


class CompiledBlock:
    """Everything a parsed block contributes to a workspace."""

    def __init__(self):
        self.rules = []  # engine Rules with ordinary heads
        self.reactive_rules = []  # engine Rules with +R / -R heads
        self.constraints = []  # Constraint objects (hard and soft)
        self.decls = []  # PredicateDecl
        self.entities = []  # EntityType
        self.directives = []  # ast.DirectiveClause
        self.predict_rules = []  # PredictRule
        self.prob_rules = []  # ProbRule
        self.source = None  # original LogiQL text (durable checkpoints)


class _Lowerer:
    """Per-clause lowering context: fresh variables + emitted atoms."""

    def __init__(self, reactive=False):
        self.atoms = []
        self.fresh = itertools.count()
        self.reactive = reactive
        self.type_checks = []
        self.entity_checks = []

    def fresh_var(self, hint="t"):
        return "${}{}".format(hint, next(self.fresh))

    def _pred_name(self, name, delta, at_start):
        if delta:
            name = delta + name
        if at_start:
            name = start_pred(name)
        elif self.reactive and not delta:
            # inside reactive logic, plain references read the
            # transaction-start state (the new state is only defined by
            # the frame rules afterwards)
            name = start_pred(name)
        return name

    def term(self, node, as_arg=False):
        """Lower a term to an IR expression (Var/Const/BinOp/Call).

        With ``as_arg=True`` the result must be a Var or Const; complex
        expressions are bound to fresh variables via assignments.
        """
        expr = self._term(node)
        if as_arg and not isinstance(expr, (ir.Var, ir.Const)):
            var = self.fresh_var("e")
            self.atoms.append(ir.AssignAtom(var, expr))
            return ir.Var(var)
        return expr

    def _term(self, node):
        if isinstance(node, ast.VarT):
            return ir.Var(node.name)
        if isinstance(node, ast.Wildcard):
            return ir.Var(self.fresh_var("w"))
        if isinstance(node, (ast.NumT, ast.StrT, ast.BoolT)):
            return ir.Const(node.value)
        if isinstance(node, ast.Arith):
            return ir.BinOp(node.op, self._term(node.left), self._term(node.right))
        if isinstance(node, ast.CallT):
            return ir.Call(node.fn, [self._term(a) for a in node.args])
        if isinstance(node, ast.FuncTerm):
            value = self.fresh_var("f")
            keys = [self.term(k, as_arg=True) for k in node.keys]
            name = self._pred_name(node.pred, None, node.at_start)
            self.atoms.append(ir.PredAtom(name, keys + [ir.Var(value)]))
            return ir.Var(value)
        if isinstance(node, ast.FlipT):
            raise CompileError("Flip[...] is only allowed as a rule head value")
        if isinstance(node, ast.PredRef):
            return ir.Const(node.name)
        if isinstance(node, ast._RelTermAtom):
            raise CompileError(
                "predicate application {}(...) used as a term".format(node.pred)
            )
        raise CompileError("unsupported term: {!r}".format(node))

    def atom(self, node):
        """Lower one AST atom, appending IR atoms to this context."""
        if isinstance(node, ast.RelAtom):
            name = self._pred_name(node.pred, node.delta, node.at_start)
            args = [self.term(t, as_arg=True) for t in node.terms]
            self.atoms.append(ir.PredAtom(name, args, node.negated))
            return
        if isinstance(node, ast.FuncAtom):
            name = self._pred_name(node.pred, node.delta, node.at_start)
            keys = [self.term(t, as_arg=True) for t in node.keys]
            value = self.term(node.value, as_arg=True)
            self.atoms.append(ir.PredAtom(name, keys + [value], node.negated))
            return
        if isinstance(node, ast.Comparison):
            left = self._term(node.left)
            right = self._term(node.right)
            self.atoms.append(ir.CompareAtom(node.op, left, right))
            return
        if isinstance(node, ast.TypeAtom):
            primitive = type_from_name(node.type_name)
            term = self._term(node.term)
            if isinstance(term, ir.Var):
                self.type_checks.append((primitive, term.name))
            return
        raise CompileError("unsupported atom: {!r}".format(node))

    def finish(self):
        """Convert unbound ``=`` comparisons into assignments."""
        bound = set()
        for atom in self.atoms:
            if isinstance(atom, ir.PredAtom) and not atom.negated:
                bound.update(a.name for a in atom.args if isinstance(a, ir.Var))
        changed = True
        while changed:
            changed = False
            for index, atom in enumerate(self.atoms):
                if not isinstance(atom, ir.CompareAtom) or atom.op != "=":
                    continue
                for target, source in ((atom.left, atom.right), (atom.right, atom.left)):
                    if (
                        isinstance(target, ir.Var)
                        and target.name not in bound
                        and target.name not in ir.expr_vars(source)
                        and ir.expr_vars(source) <= bound | _const_closure(source)
                    ):
                        self.atoms[index] = ir.AssignAtom(target.name, source)
                        bound.add(target.name)
                        changed = True
                        break
            # also pick up variables bound by existing assignments
            for atom in self.atoms:
                if isinstance(atom, ir.AssignAtom) and atom.var not in bound:
                    if atom.input_vars() <= bound:
                        bound.add(atom.var)
                        changed = True
        return self.atoms


def _const_closure(expr):
    # helper so fully-constant expressions qualify as sources
    return set()


_TYPE_NAMES = {t.value for t in PrimitiveType}


def _is_declaration(clause, known_entities):
    """Is this constraint a predicate type declaration?

    Pattern: single positive atom on the left with distinct plain
    variables, and a right side of only type atoms / entity atoms over
    those variables.
    """
    if len(clause.lhs) != 1 or clause.weight is not None:
        return False
    atom = clause.lhs[0]
    if isinstance(atom, ast.RelAtom):
        terms = atom.terms
        if atom.negated or atom.delta or atom.at_start:
            return False
    elif isinstance(atom, ast.FuncAtom):
        if atom.negated or atom.delta or atom.at_start:
            return False
        terms = atom.keys + (atom.value,)
    else:
        return False
    names = []
    for term in terms:
        if not isinstance(term, ast.VarT):
            return False
        names.append(term.name)
    if len(set(names)) != len(names):
        return False
    for item in clause.rhs:
        if isinstance(item, ast.TypeAtom):
            if not isinstance(item.term, ast.VarT) or item.term.name not in names:
                return False
        elif isinstance(item, ast.RelAtom):
            if len(item.terms) != 1 or not isinstance(item.terms[0], ast.VarT):
                return False
        else:
            return False
    return True


def _extract_declaration(clause, block):
    atom = clause.lhs[0]
    if isinstance(atom, ast.RelAtom):
        names = [t.name for t in atom.terms]
        is_functional = False
    else:
        names = [t.name for t in atom.keys] + [atom.value.name]
        is_functional = True
    types = {}
    entities = {}
    for item in clause.rhs:
        if isinstance(item, ast.TypeAtom):
            types[item.term.name] = type_from_name(item.type_name)
        elif isinstance(item, ast.RelAtom):
            entities[item.terms[0].name] = item.pred
    arg_types = []
    for name in names:
        if name in types:
            arg_types.append(types[name])
        elif name in entities:
            arg_types.append(EntityType(entities[name]))
        else:
            arg_types.append(None)
    block.decls.append(
        PredicateDecl(atom.pred, arg_types, is_functional=is_functional)
    )


def _compile_constraint(clause, block):
    if not clause.rhs:
        # entity declaration: Product(p) -> .
        atom = clause.lhs[0] if len(clause.lhs) == 1 else None
        if (
            isinstance(atom, ast.RelAtom)
            and len(atom.terms) == 1
            and not atom.negated
            and not atom.delta
        ):
            block.entities.append(EntityType(atom.pred))
            block.decls.append(PredicateDecl(atom.pred, [None]))
            return
        raise CompileError("constraint with empty right-hand side must be "
                           "an entity declaration")
    if _is_declaration(clause, block.entities):
        _extract_declaration(clause, block)
    lhs_ctx = _Lowerer()
    for atom in clause.lhs:
        lhs_ctx.atom(atom)
    lhs = lhs_ctx.finish()
    rhs_ctx = _Lowerer()
    for atom in clause.rhs:
        rhs_ctx.atom(atom)
    rhs = rhs_ctx.finish()
    entity_checks = []
    rhs_atoms = []
    for atom in rhs:
        if isinstance(atom, ir.PredAtom) and len(atom.args) == 1:
            # unary atoms over entity types become entity checks at
            # enforcement time; kept as atoms otherwise
            rhs_atoms.append(atom)
        else:
            rhs_atoms.append(atom)
    block.constraints.append(
        Constraint(
            lhs,
            rhs_atoms,
            lhs_ctx.type_checks + rhs_ctx.type_checks,
            entity_checks,
            clause.weight,
            text=repr(clause),
        )
    )


def _compile_rule(clause, block):
    head = clause.head
    reactive = isinstance(head, (ast.RelAtom, ast.FuncAtom)) and head.delta is not None

    if isinstance(head, ast.FuncAtom) and isinstance(head.value, ast.FlipT):
        context = _Lowerer()
        keys = [context.term(k, as_arg=True) for k in head.keys]
        param = context._term(head.value.param)
        for atom in clause.body:
            context.atom(atom)
        block.prob_rules.append(
            ProbRule(head.pred, keys, param, context.finish())
        )
        return

    if clause.predict is not None:
        context = _Lowerer()
        if not isinstance(head, ast.FuncAtom):
            raise CompileError("predict rules need a functional head")
        keys = [context.term(k, as_arg=True) for k in head.keys]
        for atom in clause.body:
            context.atom(atom)
        target = clause.predict.target
        feature = clause.predict.feature
        if not isinstance(target, ast.VarT) or not isinstance(feature, ast.VarT):
            raise CompileError("predict arguments must be variables")
        block.predict_rules.append(
            PredictRule(
                head.pred,
                keys,
                clause.predict.fn,
                target.name,
                feature.name,
                context.finish(),
            )
        )
        return

    if reactive and head.delta == "^":
        _compile_caret_rule(clause, block)
        return

    context = _Lowerer(reactive=reactive)
    if isinstance(head, ast.RelAtom):
        head_args = [context.term(t, as_arg=True) for t in head.terms]
        head_pred = (head.delta or "") + head.pred
        n_keys = len(head_args)
        functional = False
    elif isinstance(head, ast.FuncAtom):
        keys = [context.term(t, as_arg=True) for t in head.keys]
        if clause.agg is not None:
            value = ir.Var(clause.agg.result_var)
        else:
            value = context.term(head.value, as_arg=True)
        head_args = keys + [value]
        head_pred = (head.delta or "") + head.pred
        n_keys = len(keys)
        functional = True
    else:
        raise CompileError("rule head must be a predicate atom")

    agg = None
    if clause.agg is not None:
        value_expr = context.term(clause.agg.value, as_arg=True)
        if isinstance(value_expr, ir.Const):
            var = context.fresh_var("agv")
            context.atoms.append(ir.AssignAtom(var, value_expr))
            value_expr = ir.Var(var)
        agg = AggSpec(clause.agg.fn, clause.agg.result_var, value_expr.name)

    for atom in clause.body:
        context.atom(atom)
    body = context.finish()
    rule = Rule(head_pred, head_args, body, agg, n_keys if functional else None)
    if reactive:
        block.reactive_rules.append(rule)
    else:
        block.rules.append(rule)


def _compile_caret_rule(clause, block):
    """``^R[k] = v <- body`` expands to the +R / -R pair with frame
    lookup of the old value (paper §2.2.1)."""
    head = clause.head
    if not isinstance(head, ast.FuncAtom):
        raise CompileError("^ heads are only supported on functional predicates")
    plus = ast.RuleClause(
        ast.FuncAtom(head.pred, head.keys, head.value, delta="+"),
        clause.body,
        clause.agg,
    )
    _compile_rule(plus, block)
    old = ast.VarT("$old")
    minus_body = list(clause.body) + [
        ast.FuncAtom(head.pred, head.keys, old, at_start=True)
    ]
    minus = ast.RuleClause(
        ast.FuncAtom(head.pred, head.keys, old, delta="-"),
        minus_body,
    )
    _compile_rule(minus, block)


def compile_program(program):
    """Compile a parsed :class:`ast.Program` into a :class:`CompiledBlock`."""
    source = program if isinstance(program, str) else None
    if isinstance(program, str):
        from repro.logiql.parser import parse_program

        program = parse_program(program)
    block = CompiledBlock()
    block.source = source
    for clause in program.clauses:
        if isinstance(clause, ast.DirectiveClause):
            block.directives.append(clause)
        elif isinstance(clause, ast.ConstraintClause):
            _compile_constraint(clause, block)
        elif isinstance(clause, ast.RuleClause):
            _compile_rule(clause, block)
        else:
            raise CompileError("unsupported clause: {!r}".format(clause))
    return block
