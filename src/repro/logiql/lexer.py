"""Tokenizer for LogiQL source text."""


class ParseError(ValueError):
    """Lexical or syntactic error, with position information."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = " at line {}, column {}".format(line, column)
        super().__init__(message + location)
        self.line = line
        self.column = column


class Token:
    """One lexical token."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind, value, line, column):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return "Token({}, {!r})".format(self.kind, self.value)


_PUNCT = [
    # longest first
    ("<<", "LSHIFT"),
    (">>", "RSHIFT"),
    ("<-", "LARROW"),
    ("->", "RARROW"),
    ("<=", "LE"),
    (">=", "GE"),
    ("!=", "NE"),
    ("+=", "PLUSEQ"),
    ("(", "LPAREN"),
    (")", "RPAREN"),
    ("[", "LBRACK"),
    ("]", "RBRACK"),
    ("{", "LBRACE"),
    ("}", "RBRACE"),
    (",", "COMMA"),
    (".", "DOT"),
    ("!", "BANG"),
    ("+", "PLUS"),
    ("-", "MINUS"),
    ("*", "STAR"),
    ("/", "SLASH"),
    ("%", "PERCENT"),
    ("=", "EQ"),
    ("<", "LT"),
    (">", "GT"),
    ("@", "AT"),
    ("`", "BACKQUOTE"),
    ("^", "CARET"),
    ("|", "PIPE"),
    (":", "COLON"),
    (";", "SEMI"),
]


def _is_ident_start(ch):
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch):
    return ch.isalnum() or ch == "_"


def tokenize(text):
    """Tokenize LogiQL source into a list of :class:`Token`.

    Identifiers may contain namespace colons (``lang:solve:max``) —
    a colon glues two identifier parts together when it is directly
    surrounded by identifier characters.
    """
    tokens = []
    i = 0
    n = len(text)
    line = 1
    line_start = 0

    def here():
        return line, i - line_start + 1

    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                    line_start = i + 1
                i += 1
            if i + 1 >= n:
                raise ParseError("unterminated block comment", *here())
            i += 2
            continue
        if ch == '"':
            l0, c0 = here()
            i += 1
            parts = []
            while i < n and text[i] != '"':
                if text[i] == "\\" and i + 1 < n:
                    escape = text[i + 1]
                    parts.append(
                        {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape, escape)
                    )
                    i += 2
                else:
                    if text[i] == "\n":
                        line += 1
                        line_start = i + 1
                    parts.append(text[i])
                    i += 1
            if i >= n:
                raise ParseError("unterminated string literal", l0, c0)
            i += 1
            tokens.append(Token("STRING", "".join(parts), l0, c0))
            continue
        if ch.isdigit():
            l0, c0 = here()
            start = i
            while i < n and text[i].isdigit():
                i += 1
            is_float = False
            if i + 1 < n and text[i] == "." and text[i + 1].isdigit():
                is_float = True
                i += 1
                while i < n and text[i].isdigit():
                    i += 1
            if i < n and text[i] in "eE":
                peek = i + 1
                if peek < n and text[peek] in "+-":
                    peek += 1
                if peek < n and text[peek].isdigit():
                    is_float = True
                    i = peek
                    while i < n and text[i].isdigit():
                        i += 1
            raw = text[start:i]
            value = float(raw) if is_float else int(raw)
            tokens.append(Token("NUMBER", value, l0, c0))
            continue
        if _is_ident_start(ch):
            l0, c0 = here()
            start = i
            while i < n and _is_ident_char(text[i]):
                i += 1
            # namespace colons: ident ':' ident glue (lang:solve:max)
            while (
                i + 1 < n
                and text[i] == ":"
                and _is_ident_start(text[i + 1])
            ):
                i += 1
                while i < n and _is_ident_char(text[i]):
                    i += 1
            name = text[start:i]
            if name == "true":
                tokens.append(Token("BOOL", True, l0, c0))
            elif name == "false":
                tokens.append(Token("BOOL", False, l0, c0))
            else:
                tokens.append(Token("IDENT", name, l0, c0))
            continue
        matched = False
        for text_punct, kind in _PUNCT:
            if text.startswith(text_punct, i):
                l0, c0 = here()
                tokens.append(Token(kind, text_punct, l0, c0))
                i += len(text_punct)
                matched = True
                break
        if not matched:
            raise ParseError("unexpected character {!r}".format(ch), *here())
    tokens.append(Token("EOF", None, line, i - line_start + 1))
    return tokens
