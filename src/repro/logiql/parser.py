"""Recursive-descent parser for LogiQL (paper §2.2).

Supported surface syntax:

* derivation rules ``Head <- Body.`` including facts (``Head <- .`` or
  ``Head.``), aggregation P2P rules ``Head <- agg<<u = sum(z)>> Body.``
  and the ``F[] += expr`` sum sugar, predict P2P rules
  (``... <- predict m = logist(v|f) Body.``);
* integrity constraints ``F -> G.`` including type declarations and
  entity declarations (``Product(p) -> .``), and soft constraints with
  a numeric weight prefix (``2.0 : F -> G.``);
* reactive rules over delta and versioned predicates
  (``+R``, ``-R``, ``^R``, ``R@start``);
* directives such as ``lang:solve:variable(`Stock).``;
* arithmetic terms, functional applications as terms
  (``sellingPrice[sku] - buyingPrice[sku]``), built-in scalar calls,
  and distribution terms (``Flip[0.01]``).
"""

from repro.logiql import ast
from repro.logiql.lexer import ParseError, tokenize

_PRIMITIVE_TYPES = {"int", "float", "decimal", "string", "boolean", "date"}
_BUILTIN_FNS = {
    "abs", "min", "max", "floor", "ceil", "sqrt", "exp", "log", "pow",
    "float", "int",
}
_AGG_FNS = {"sum", "count", "min", "max", "avg"}
_COMPARE_OPS = {"EQ": "=", "NE": "!=", "LT": "<", "LE": "<=", "GT": ">", "GE": ">="}


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset=0):
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def check(self, kind, value=None):
        token = self.peek()
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind, what=None):
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                "expected {} but found {!r}".format(what or kind, token.value),
                token.line,
                token.column,
            )
        return self.advance()

    def error(self, message):
        token = self.peek()
        raise ParseError(message, token.line, token.column)

    # -- program ----------------------------------------------------------

    def parse_program(self):
        clauses = []
        while not self.check("EOF"):
            clauses.append(self.parse_clause())
        return ast.Program(clauses)

    def parse_clause(self):
        weight = None
        if self.check("NUMBER") and self.peek(1).kind == "COLON":
            weight = self.advance().value
            self.advance()  # colon
        elif (
            self.check("MINUS")
            and self.peek(1).kind == "NUMBER"
            and self.peek(2).kind == "COLON"
        ):
            self.advance()
            weight = -self.advance().value
            self.advance()  # colon

        # += sugar: F[keys] += expr.
        sugar = self._try_plus_equals()
        if sugar is not None:
            return sugar

        lhs = self.parse_atom_list(stop_kinds=("RARROW", "LARROW", "DOT"))
        if self.accept("RARROW"):
            if self.accept("DOT"):
                return ast.ConstraintClause(lhs, (), weight)
            rhs = self.parse_atom_list(stop_kinds=("DOT",))
            self.expect("DOT", "'.' at end of constraint")
            return ast.ConstraintClause(lhs, rhs, weight)
        if self.accept("LARROW"):
            if weight is not None:
                self.error("weights are only allowed on constraints")
            if len(lhs) != 1:
                self.error("rule head must be a single atom")
            head = lhs[0]
            agg = self._try_agg_clause()
            predict = self._try_predict_clause() if agg is None else None
            if self.accept("DOT"):
                return ast.RuleClause(head, (), agg, predict)
            body = self.parse_atom_list(stop_kinds=("DOT",))
            self.expect("DOT", "'.' at end of rule")
            return ast.RuleClause(head, body, agg, predict)
        self.expect("DOT", "'.', '<-' or '->' after clause")
        if weight is not None:
            self.error("weights are only allowed on constraints")
        if len(lhs) == 1 and isinstance(lhs[0], ast.RelAtom) and ":" in lhs[0].pred:
            atom = lhs[0]
            return ast.DirectiveClause(atom.pred, atom.terms)
        if len(lhs) != 1:
            self.error("a fact must be a single atom")
        return ast.RuleClause(lhs[0], ())

    def _try_plus_equals(self):
        """``F[keys] += expr.`` is sugar for a sum-aggregation rule."""
        start = self.position
        if not self.check("IDENT"):
            return None
        name = self.advance().value
        if not self.accept("LBRACK"):
            self.position = start
            return None
        keys = []
        if not self.check("RBRACK"):
            keys.append(self.parse_term())
            while self.accept("COMMA"):
                keys.append(self.parse_term())
        if not self.accept("RBRACK") or not self.accept("PLUSEQ"):
            self.position = start
            return None
        value = self.parse_term()
        body = []
        if self.accept("COMMA"):
            body = list(self.parse_atom_list(stop_kinds=("DOT",)))
        self.expect("DOT", "'.' at end of rule")
        result = ast.VarT("$agg")
        head = ast.FuncAtom(name, keys, result)
        agg = ast.AggClause("$agg", "sum", value)
        return ast.RuleClause(head, body, agg)

    def _try_agg_clause(self):
        if not (self.check("IDENT", "agg") and self.peek(1).kind == "LSHIFT"):
            return None
        self.advance()
        self.advance()
        result = self.expect("IDENT", "aggregation result variable").value
        self.expect("EQ")
        fn = self.expect("IDENT", "aggregation function").value
        if fn not in _AGG_FNS:
            self.error("unknown aggregation function {!r}".format(fn))
        self.expect("LPAREN")
        value = self.parse_term()
        self.expect("RPAREN")
        self.expect("RSHIFT", "'>>' closing aggregation")
        return ast.AggClause(result, fn, value)

    def _try_predict_clause(self):
        if not self.check("IDENT", "predict"):
            return None
        if self.peek(1).kind != "IDENT":
            return None
        self.advance()
        result = self.expect("IDENT", "predict result variable").value
        self.expect("EQ")
        fn = self.expect("IDENT", "predict function").value
        self.expect("LPAREN")
        target = self.parse_term()
        self.expect("PIPE", "'|' inside predict(...)")
        feature = self.parse_term()
        self.expect("RPAREN")
        return ast.PredictClause(result, fn, target, feature)

    # -- atoms --------------------------------------------------------------

    def parse_atom_list(self, stop_kinds):
        atoms = [self.parse_atom()]
        while self.accept("COMMA"):
            atoms.append(self.parse_atom())
        return tuple(atoms)

    def parse_atom(self):
        negated = bool(self.accept("BANG"))
        delta = None
        if self.peek().kind in ("PLUS", "MINUS", "CARET"):
            nxt = self.peek(1)
            after = self.peek(2)
            if nxt.kind == "IDENT" and after.kind in ("LPAREN", "LBRACK", "AT"):
                delta = {"PLUS": "+", "MINUS": "-", "CARET": "^"}[self.advance().kind]
        left = self.parse_term()
        op_kind = self.peek().kind
        if op_kind in _COMPARE_OPS:
            op = _COMPARE_OPS[op_kind]
            self.advance()
            right = self.parse_term()
            if op == "=" and isinstance(left, ast.FuncTerm):
                return ast.FuncAtom(
                    left.pred, left.keys, right, negated, delta, left.at_start
                )
            if op == "=" and isinstance(right, ast.FuncTerm) and isinstance(
                left, (ast.VarT, ast.NumT, ast.StrT, ast.BoolT)
            ) and delta is None and not negated:
                # x = price[s] reads more naturally flipped
                return ast.FuncAtom(
                    right.pred, right.keys, left, False, None, right.at_start
                )
            if negated or delta:
                self.error("comparisons cannot be negated or delta-marked")
            return ast.Comparison(op, left, right)
        # not a comparison: must be a relational atom or a type atom
        atom = self._term_to_atom(left, negated, delta)
        if atom is None:
            self.error("expected an atom")
        return atom

    def _term_to_atom(self, term, negated, delta):
        if isinstance(term, ast.CallT):
            if term.fn in _PRIMITIVE_TYPES and len(term.args) == 1:
                if negated or delta:
                    self.error("type atoms cannot be negated or delta-marked")
                return ast.TypeAtom(term.fn, term.args[0])
            return ast.RelAtom(term.fn, term.args, negated, delta)
        if isinstance(term, ast.FuncTerm):
            # R[keys] with no value: existence atom R[keys] = _
            return ast.FuncAtom(
                term.pred, term.keys, ast.Wildcard(), negated, delta, term.at_start
            )
        if isinstance(term, ast._RelTermAtom):
            return ast.RelAtom(term.pred, term.terms, negated, delta, term.at_start)
        return None

    # -- terms --------------------------------------------------------------

    def parse_term(self):
        return self._parse_additive()

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while self.peek().kind in ("PLUS", "MINUS"):
            op = "+" if self.advance().kind == "PLUS" else "-"
            right = self._parse_multiplicative()
            left = ast.Arith(op, left, right)
        return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while self.peek().kind in ("STAR", "SLASH", "PERCENT"):
            kind = self.advance().kind
            op = {"STAR": "*", "SLASH": "/", "PERCENT": "%"}[kind]
            right = self._parse_unary()
            left = ast.Arith(op, left, right)
        return left

    def _parse_unary(self):
        if self.accept("MINUS"):
            inner = self._parse_unary()
            if isinstance(inner, ast.NumT):
                return ast.NumT(-inner.value)
            return ast.Arith("-", ast.NumT(0), inner)
        return self._parse_primary()

    def _parse_primary(self):
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            return ast.NumT(token.value)
        if token.kind == "STRING":
            self.advance()
            return ast.StrT(token.value)
        if token.kind == "BOOL":
            self.advance()
            return ast.BoolT(token.value)
        if token.kind == "BACKQUOTE":
            self.advance()
            name = self.expect("IDENT", "predicate name after backquote").value
            return ast.PredRef(name)
        if self.accept("LPAREN"):
            inner = self.parse_term()
            self.expect("RPAREN")
            return inner
        if token.kind == "IDENT":
            return self._parse_ident_term()
        self.error("expected a term")

    def _parse_ident_term(self):
        name = self.advance().value
        at_start = False
        if self.check("AT"):
            if self.peek(1).kind == "IDENT" and self.peek(1).value == "start":
                self.advance()
                self.advance()
                at_start = True
            else:
                self.error("expected @start")
        if name == "Flip" and self.check("LBRACK"):
            self.advance()
            param = self.parse_term()
            self.expect("RBRACK")
            return ast.FlipT(param)
        if self.accept("LBRACK"):
            # float[64](v) style sized type atom
            if (
                name in _PRIMITIVE_TYPES
                and self.check("NUMBER")
                and self.peek(1).kind == "RBRACK"
            ):
                self.advance()
                self.advance()
                self.expect("LPAREN")
                inner = self.parse_term()
                self.expect("RPAREN")
                return ast.CallT(name, [inner])
            keys = []
            if not self.check("RBRACK"):
                keys.append(self.parse_term())
                while self.accept("COMMA"):
                    keys.append(self.parse_term())
            self.expect("RBRACK")
            return ast.FuncTerm(name, keys, at_start)
        if self.accept("LPAREN"):
            args = []
            if not self.check("RPAREN"):
                args.append(self.parse_term())
                while self.accept("COMMA"):
                    args.append(self.parse_term())
            self.expect("RPAREN")
            if at_start:
                return ast._RelTermAtom(name, tuple(args), True)
            if name in _BUILTIN_FNS and name not in _PRIMITIVE_TYPES:
                return ast.CallT(name, args)
            if name in _PRIMITIVE_TYPES:
                return ast.CallT(name, args)
            return ast._RelTermAtom(name, tuple(args), False)
        if at_start:
            self.error("@start requires a predicate application")
        if name == "_":
            return ast.Wildcard()
        return ast.VarT(name)


def parse_program(text):
    """Parse LogiQL source into an :class:`ast.Program`."""
    return _Parser(tokenize(text)).parse_program()


def parse_clause(text):
    """Parse a single clause."""
    parser = _Parser(tokenize(text))
    clause = parser.parse_clause()
    if not parser.check("EOF"):
        parser.error("trailing input after clause")
    return clause
