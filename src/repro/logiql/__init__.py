"""LogiQL: the unified declarative language (paper §2).

The front-end: lexer, parser, AST, semantic analysis, and compilation
into engine rules, schema declarations, integrity constraints, and
solve/predict directives.
"""

from repro.logiql.parser import parse_program, parse_clause, ParseError
from repro.logiql.compiler import compile_program, CompileError

__all__ = [
    "parse_program",
    "parse_clause",
    "ParseError",
    "compile_program",
    "CompileError",
]
