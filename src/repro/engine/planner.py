"""Query planning for leapfrog triejoin (paper §3.2).

"When joins are evaluated using LFTJ, query optimization essentially
boils down to choosing a good variable order."  The planner:

* picks (or validates) a global variable order;
* rewrites repeated variables within an atom into fresh variables plus
  equality bindings (``R(x, x)`` becomes ``R(x, y), y := x``);
* assigns each positive atom a storage permutation — constants first
  (the virtual ``Const`` predicate trick), then its variables in global
  order (a secondary index when that differs from the declared column
  order), then trailing wildcard columns handled existentially;
* attaches comparison and negation filters, and arithmetic assignments,
  to the earliest level at which they are fully bound.
"""

import itertools

from repro.engine.ir import AssignAtom, CompareAtom, Const, PredAtom, Var


class AtomPlan:
    """Execution shape of one positive atom."""

    __slots__ = ("pred", "perm", "const_prefix", "levels", "atom")

    def __init__(self, pred, perm, const_prefix, levels, atom):
        self.pred = pred
        self.perm = tuple(perm)
        self.const_prefix = tuple(const_prefix)
        self.levels = tuple(levels)  # global level index per variable level
        self.atom = atom

    def __repr__(self):
        return "AtomPlan({}, perm={}, consts={}, levels={})".format(
            self.pred, self.perm, self.const_prefix, self.levels
        )


class Plan:
    """A complete LFTJ execution plan for one rule body."""

    __slots__ = (
        "var_order",
        "atom_plans",
        "participants",
        "assigns",
        "filters",
        "ground_atoms",
        "ground_filters",
        "output_positions",
    )

    def __init__(self, var_order, atom_plans, assigns, filters, ground_atoms, ground_filters):
        self.var_order = tuple(var_order)
        self.atom_plans = atom_plans
        self.participants = [[] for _ in var_order]
        for atom_index, plan in enumerate(atom_plans):
            for own_level, global_level in enumerate(plan.levels):
                self.participants[global_level].append((atom_index, own_level))
        self.assigns = assigns  # level -> AssignAtom
        self.filters = filters  # level -> [CompareAtom | PredAtom(negated)]
        self.ground_atoms = ground_atoms  # fully-ground positive/negative atoms
        self.ground_filters = ground_filters  # variable-free comparisons
        self.output_positions = None

    def needs_index(self, atom_plan):
        """True when the atom requires a non-identity secondary index."""
        return atom_plan.perm != tuple(range(len(atom_plan.perm)))

    def body_preds(self):
        """Every predicate name the executor will look up at run time
        (joined atoms, filter probes, ground checks) — the environment a
        parallel shard worker must be shipped."""
        names = {atom_plan.pred for atom_plan in self.atom_plans}
        for atoms in self.filters.values():
            for atom in atoms:
                if isinstance(atom, PredAtom):
                    names.add(atom.pred)
        for atom in self.ground_atoms:
            if isinstance(atom, PredAtom):
                names.add(atom.pred)
        return names

    def __repr__(self):
        return "Plan(vars={}, atoms={})".format(self.var_order, self.atom_plans)


class PlanError(ValueError):
    """Raised for unsafe or inconsistent rule bodies."""


def _rewrite_repeats(atoms):
    """Replace repeated variables within positive atoms by fresh ones."""
    rewritten = []
    extra = []
    fresh = itertools.count()
    for atom in atoms:
        if not isinstance(atom, PredAtom) or atom.negated:
            rewritten.append(atom)
            continue
        seen = set()
        new_args = []
        for arg in atom.args:
            if isinstance(arg, Var) and arg.name in seen:
                alias = "{}@{}".format(arg.name, next(fresh))
                new_args.append(Var(alias))
                extra.append(AssignAtom(alias, Var(arg.name)))
            else:
                if isinstance(arg, Var):
                    seen.add(arg.name)
                new_args.append(arg)
        if len(new_args) == len(atom.args) and all(
            a is b for a, b in zip(new_args, atom.args)
        ):
            rewritten.append(atom)
        else:
            rewritten.append(PredAtom(atom.pred, new_args, atom.negated))
    return rewritten + extra


def _collect_vars(atoms):
    """All variable names, in first-appearance order."""
    order = []
    seen = set()

    def note(name):
        if name not in seen:
            seen.add(name)
            order.append(name)

    for atom in atoms:
        if isinstance(atom, PredAtom):
            for arg in atom.args:
                if isinstance(arg, Var):
                    note(arg.name)
        elif isinstance(atom, AssignAtom):
            for name in sorted(atom.input_vars()):
                note(name)
            note(atom.var)
        elif isinstance(atom, CompareAtom):
            for name in sorted(atom.var_names()):
                note(name)
    return order


def _bound_vars(atoms):
    """Variables bound by a positive atom or an assignment."""
    bound = set()
    for atom in atoms:
        if isinstance(atom, PredAtom) and not atom.negated:
            bound.update(a.name for a in atom.args if isinstance(a, Var))
        elif isinstance(atom, AssignAtom):
            bound.add(atom.var)
    return bound


def default_var_order(atoms, output_vars=()):
    """A safe default order: first appearance, assignments after inputs.

    Repeatedly emits the first not-yet-ordered variable whose assignment
    dependencies (if any) are satisfied.
    """
    atoms = _rewrite_repeats(list(atoms))
    appearance = _collect_vars(atoms)
    deps = {}
    for atom in atoms:
        if isinstance(atom, AssignAtom):
            deps.setdefault(atom.var, set()).update(atom.input_vars())
    ordered = []
    placed = set()
    remaining = list(appearance)
    while remaining:
        progress = False
        for name in remaining:
            if deps.get(name, set()) <= placed:
                ordered.append(name)
                placed.add(name)
                remaining.remove(name)
                progress = True
                break
        if not progress:
            raise PlanError("cyclic assignment dependencies among {}".format(remaining))
    return ordered


def build_plan(atoms, var_order=None, output_vars=()):
    """Build a :class:`Plan` for the given body atoms.

    ``output_vars`` are the variables the caller needs (head / answer
    variables); variables used once in a single atom and not output are
    handled existentially as trailing wildcards.
    """
    atoms = _rewrite_repeats(list(atoms))
    bound = _bound_vars(atoms)
    all_vars = _collect_vars(atoms)
    occurrences = {}
    for atom in atoms:
        names = set()
        if isinstance(atom, PredAtom):
            names = {a.name for a in atom.args if isinstance(a, Var)}
        elif isinstance(atom, AssignAtom):
            names = atom.input_vars() | {atom.var}
        elif isinstance(atom, CompareAtom):
            names = atom.var_names()
        for name in names:
            occurrences[name] = occurrences.get(name, 0) + 1
    for atom in atoms:
        if isinstance(atom, PredAtom) and atom.negated:
            # variables local to a negated atom are existential inside
            # the negation (prefix-absence test); shared unbound ones
            # are a safety error
            unbound = [
                a.name
                for a in atom.args
                if isinstance(a, Var)
                and a.name not in bound
                and occurrences.get(a.name, 0) > 1
            ]
            if unbound:
                raise PlanError(
                    "negated atom {} has unbound variables {}".format(atom, unbound)
                )
        elif isinstance(atom, CompareAtom):
            unbound = sorted(atom.var_names() - bound)
            if unbound:
                raise PlanError(
                    "comparison {} has unbound variables {}".format(atom, unbound)
                )
    for name in output_vars:
        if name not in bound and name in all_vars:
            raise PlanError("output variable {} is not bound by the body".format(name))

    # classify wildcard (existential) variables: used once, not output,
    # and not owned by an assignment or comparison
    output_set = set(output_vars)
    wildcards = {
        name
        for name, count in occurrences.items()
        if count == 1 and name not in output_set
    }
    for atom in atoms:
        if isinstance(atom, (AssignAtom, CompareAtom)):
            names = (
                atom.input_vars() | {atom.var}
                if isinstance(atom, AssignAtom)
                else atom.var_names()
            )
            wildcards -= names

    if var_order is None:
        var_order = [v for v in default_var_order(atoms, output_vars) if v not in wildcards]
    else:
        var_order = list(var_order)
        missing = [v for v in all_vars if v not in var_order and v not in wildcards]
        if missing:
            raise PlanError("variable order misses {}".format(missing))
    level_of = {name: level for level, name in enumerate(var_order)}

    atom_plans = []
    ground_atoms = []
    assigns = {}
    filters = {level: [] for level in range(len(var_order))}
    ground_filters = []

    for atom in atoms:
        if isinstance(atom, PredAtom):
            has_var = any(
                isinstance(arg, Var) and arg.name not in wildcards
                for arg in atom.args
            )
            if atom.negated or not has_var:
                max_level = -1
                for arg in atom.args:
                    if isinstance(arg, Var) and arg.name in level_of:
                        max_level = max(max_level, level_of[arg.name])
                if max_level < 0:
                    ground_atoms.append(atom)
                else:
                    filters[max_level].append(atom)
                continue
            const_positions = [
                i for i, a in enumerate(atom.args) if isinstance(a, Const)
            ]
            var_positions = [
                (level_of[a.name], i)
                for i, a in enumerate(atom.args)
                if isinstance(a, Var) and a.name not in wildcards
            ]
            var_positions.sort()
            wildcard_positions = [
                i
                for i, a in enumerate(atom.args)
                if isinstance(a, Var) and a.name in wildcards
            ]
            perm = (
                const_positions
                + [pos for _, pos in var_positions]
                + wildcard_positions
            )
            const_prefix = [atom.args[i].value for i in const_positions]
            levels = [level for level, _ in var_positions]
            atom_plans.append(AtomPlan(atom.pred, perm, const_prefix, levels, atom))
        elif isinstance(atom, AssignAtom):
            level = level_of[atom.var]
            for name in atom.input_vars():
                if level_of[name] >= level:
                    raise PlanError(
                        "assignment {} uses variable bound later in order".format(atom)
                    )
            if level in assigns:
                raise PlanError(
                    "variable {} assigned more than once".format(atom.var)
                )
            assigns[level] = atom
        elif isinstance(atom, CompareAtom):
            names = atom.var_names()
            if not names:
                ground_filters.append(atom)
            else:
                filters[max(level_of[name] for name in names)].append(atom)
        else:
            raise PlanError("unknown atom type: {!r}".format(atom))

    plan = Plan(var_order, atom_plans, assigns, filters, ground_atoms, ground_filters)
    for level, name in enumerate(var_order):
        if not plan.participants[level] and level not in assigns:
            raise PlanError(
                "variable {} is bound by no iterator at its level".format(name)
            )
    return plan
