"""Query planning for leapfrog triejoin (paper §3.2).

"When joins are evaluated using LFTJ, query optimization essentially
boils down to choosing a good variable order."  The planner:

* picks (or validates) a global variable order;
* rewrites repeated variables within an atom into fresh variables plus
  equality bindings (``R(x, x)`` becomes ``R(x, y), y := x``);
* assigns each positive atom a storage permutation — constants first
  (the virtual ``Const`` predicate trick), then its variables in global
  order (a secondary index when that differs from the declared column
  order), then trailing wildcard columns handled existentially;
* attaches comparison and negation filters, and arithmetic assignments,
  to the earliest level at which they are fully bound.
"""

import itertools

from repro.engine.ir import AssignAtom, CompareAtom, Const, PredAtom, Var


class AtomPlan:
    """Execution shape of one positive atom."""

    __slots__ = ("pred", "perm", "const_prefix", "levels", "atom")

    def __init__(self, pred, perm, const_prefix, levels, atom):
        self.pred = pred
        self.perm = tuple(perm)
        self.const_prefix = tuple(const_prefix)
        self.levels = tuple(levels)  # global level index per variable level
        self.atom = atom

    def __repr__(self):
        return "AtomPlan({}, perm={}, consts={}, levels={})".format(
            self.pred, self.perm, self.const_prefix, self.levels
        )


class Plan:
    """A complete LFTJ execution plan for one rule body."""

    __slots__ = (
        "var_order",
        "atom_plans",
        "participants",
        "assigns",
        "filters",
        "ground_atoms",
        "ground_filters",
        "output_positions",
    )

    def __init__(self, var_order, atom_plans, assigns, filters, ground_atoms, ground_filters):
        self.var_order = tuple(var_order)
        self.atom_plans = atom_plans
        self.participants = [[] for _ in var_order]
        for atom_index, plan in enumerate(atom_plans):
            for own_level, global_level in enumerate(plan.levels):
                self.participants[global_level].append((atom_index, own_level))
        self.assigns = assigns  # level -> AssignAtom
        self.filters = filters  # level -> [CompareAtom | PredAtom(negated)]
        self.ground_atoms = ground_atoms  # fully-ground positive/negative atoms
        self.ground_filters = ground_filters  # variable-free comparisons
        self.output_positions = None

    def needs_index(self, atom_plan):
        """True when the atom requires a non-identity secondary index."""
        return atom_plan.perm != tuple(range(len(atom_plan.perm)))

    def body_preds(self):
        """Every predicate name the executor will look up at run time
        (joined atoms, filter probes, ground checks) — the environment a
        parallel shard worker must be shipped."""
        names = {atom_plan.pred for atom_plan in self.atom_plans}
        for atoms in self.filters.values():
            for atom in atoms:
                if isinstance(atom, PredAtom):
                    names.add(atom.pred)
        for atom in self.ground_atoms:
            if isinstance(atom, PredAtom):
                names.add(atom.pred)
        return names

    def __repr__(self):
        return "Plan(vars={}, atoms={})".format(self.var_order, self.atom_plans)


class PlanError(ValueError):
    """Raised for unsafe or inconsistent rule bodies."""


def _rewrite_repeats(atoms):
    """Replace repeated variables within positive atoms by fresh ones."""
    rewritten = []
    extra = []
    fresh = itertools.count()
    for atom in atoms:
        if not isinstance(atom, PredAtom) or atom.negated:
            rewritten.append(atom)
            continue
        seen = set()
        new_args = []
        for arg in atom.args:
            if isinstance(arg, Var) and arg.name in seen:
                alias = "{}@{}".format(arg.name, next(fresh))
                new_args.append(Var(alias))
                extra.append(AssignAtom(alias, Var(arg.name)))
            else:
                if isinstance(arg, Var):
                    seen.add(arg.name)
                new_args.append(arg)
        if len(new_args) == len(atom.args) and all(
            a is b for a, b in zip(new_args, atom.args)
        ):
            rewritten.append(atom)
        else:
            rewritten.append(PredAtom(atom.pred, new_args, atom.negated))
    return rewritten + extra


def _collect_vars(atoms):
    """All variable names, in first-appearance order."""
    order = []
    seen = set()

    def note(name):
        if name not in seen:
            seen.add(name)
            order.append(name)

    for atom in atoms:
        if isinstance(atom, PredAtom):
            for arg in atom.args:
                if isinstance(arg, Var):
                    note(arg.name)
        elif isinstance(atom, AssignAtom):
            for name in sorted(atom.input_vars()):
                note(name)
            note(atom.var)
        elif isinstance(atom, CompareAtom):
            for name in sorted(atom.var_names()):
                note(name)
    return order


def _bound_vars(atoms):
    """Variables bound by a positive atom or an assignment."""
    bound = set()
    for atom in atoms:
        if isinstance(atom, PredAtom) and not atom.negated:
            bound.update(a.name for a in atom.args if isinstance(a, Var))
        elif isinstance(atom, AssignAtom):
            bound.add(atom.var)
    return bound


def default_var_order(atoms, output_vars=()):
    """A safe default order: first appearance, assignments after inputs.

    Repeatedly emits the first not-yet-ordered variable whose assignment
    dependencies (if any) are satisfied.
    """
    atoms = _rewrite_repeats(list(atoms))
    appearance = _collect_vars(atoms)
    deps = {}
    for atom in atoms:
        if isinstance(atom, AssignAtom):
            deps.setdefault(atom.var, set()).update(atom.input_vars())
    ordered = []
    placed = set()
    remaining = list(appearance)
    while remaining:
        progress = False
        for name in remaining:
            if deps.get(name, set()) <= placed:
                ordered.append(name)
                placed.add(name)
                remaining.remove(name)
                progress = True
                break
        if not progress:
            raise PlanError("cyclic assignment dependencies among {}".format(remaining))
    return ordered


def build_plan(atoms, var_order=None, output_vars=()):
    """Build a :class:`Plan` for the given body atoms.

    ``output_vars`` are the variables the caller needs (head / answer
    variables); variables used once in a single atom and not output are
    handled existentially as trailing wildcards.
    """
    atoms = _rewrite_repeats(list(atoms))
    bound = _bound_vars(atoms)
    all_vars = _collect_vars(atoms)
    occurrences = {}
    for atom in atoms:
        names = set()
        if isinstance(atom, PredAtom):
            names = {a.name for a in atom.args if isinstance(a, Var)}
        elif isinstance(atom, AssignAtom):
            names = atom.input_vars() | {atom.var}
        elif isinstance(atom, CompareAtom):
            names = atom.var_names()
        for name in names:
            occurrences[name] = occurrences.get(name, 0) + 1
    for atom in atoms:
        if isinstance(atom, PredAtom) and atom.negated:
            # variables local to a negated atom are existential inside
            # the negation (prefix-absence test); shared unbound ones
            # are a safety error
            unbound = [
                a.name
                for a in atom.args
                if isinstance(a, Var)
                and a.name not in bound
                and occurrences.get(a.name, 0) > 1
            ]
            if unbound:
                raise PlanError(
                    "negated atom {} has unbound variables {}".format(atom, unbound)
                )
        elif isinstance(atom, CompareAtom):
            unbound = sorted(atom.var_names() - bound)
            if unbound:
                raise PlanError(
                    "comparison {} has unbound variables {}".format(atom, unbound)
                )
    for name in output_vars:
        if name not in bound and name in all_vars:
            raise PlanError("output variable {} is not bound by the body".format(name))

    # classify wildcard (existential) variables: used once, not output,
    # and not owned by an assignment or comparison
    output_set = set(output_vars)
    wildcards = {
        name
        for name, count in occurrences.items()
        if count == 1 and name not in output_set
    }
    for atom in atoms:
        if isinstance(atom, (AssignAtom, CompareAtom)):
            names = (
                atom.input_vars() | {atom.var}
                if isinstance(atom, AssignAtom)
                else atom.var_names()
            )
            wildcards -= names

    if var_order is None:
        var_order = [v for v in default_var_order(atoms, output_vars) if v not in wildcards]
    else:
        var_order = list(var_order)
        missing = [v for v in all_vars if v not in var_order and v not in wildcards]
        if missing:
            raise PlanError("variable order misses {}".format(missing))
    level_of = {name: level for level, name in enumerate(var_order)}

    atom_plans = []
    ground_atoms = []
    assigns = {}
    filters = {level: [] for level in range(len(var_order))}
    ground_filters = []

    for atom in atoms:
        if isinstance(atom, PredAtom):
            has_var = any(
                isinstance(arg, Var) and arg.name not in wildcards
                for arg in atom.args
            )
            if atom.negated or not has_var:
                max_level = -1
                for arg in atom.args:
                    if isinstance(arg, Var) and arg.name in level_of:
                        max_level = max(max_level, level_of[arg.name])
                if max_level < 0:
                    ground_atoms.append(atom)
                else:
                    filters[max_level].append(atom)
                continue
            const_positions = [
                i for i, a in enumerate(atom.args) if isinstance(a, Const)
            ]
            var_positions = [
                (level_of[a.name], i)
                for i, a in enumerate(atom.args)
                if isinstance(a, Var) and a.name not in wildcards
            ]
            var_positions.sort()
            wildcard_positions = [
                i
                for i, a in enumerate(atom.args)
                if isinstance(a, Var) and a.name in wildcards
            ]
            perm = (
                const_positions
                + [pos for _, pos in var_positions]
                + wildcard_positions
            )
            const_prefix = [atom.args[i].value for i in const_positions]
            levels = [level for level, _ in var_positions]
            atom_plans.append(AtomPlan(atom.pred, perm, const_prefix, levels, atom))
        elif isinstance(atom, AssignAtom):
            level = level_of[atom.var]
            for name in atom.input_vars():
                if level_of[name] >= level:
                    raise PlanError(
                        "assignment {} uses variable bound later in order".format(atom)
                    )
            if level in assigns:
                raise PlanError(
                    "variable {} assigned more than once".format(atom.var)
                )
            assigns[level] = atom
        elif isinstance(atom, CompareAtom):
            names = atom.var_names()
            if not names:
                ground_filters.append(atom)
            else:
                filters[max(level_of[name] for name in names)].append(atom)
        else:
            raise PlanError("unknown atom type: {!r}".format(atom))

    plan = Plan(var_order, atom_plans, assigns, filters, ground_atoms, ground_filters)
    for level, name in enumerate(var_order):
        if not plan.participants[level] and level not in assigns:
            raise PlanError(
                "variable {} is bound by no iterator at its level".format(name)
            )
    return plan


# -- co-partition analysis (repro.shard) -------------------------------------
#
# When EDB relations are hash-partitioned across shard processes
# (:mod:`repro.shard`), a rule can be pushed shard-local exactly when
# every satisfying assignment is witnessed entirely by one shard's
# fragment.  The analysis below classifies each predicate's placement:
#
# * ``replicated`` — identical extension on every shard (non-partitioned
#   EDBs, and views derived only from replicated data);
# * ``keyed(col)`` — each row lives on exactly the shard owning
#   ``stable_hash(row[col])``: partitioned EDBs, and views that keep the
#   partition variable in their head;
# * ``scattered`` — the global extension is the union of the shard
#   extensions, but the same row may appear on several shards (the
#   partition variable was projected away);
# * ``partial_agg(fn)`` — per-shard values are group-state partials that
#   the coordinator must re-combine (sum/count add, min/max fold; avg is
#   not recombinable from its partials).
#
# A rule that cannot be evaluated shard-local-exactly under any of these
# readings is *broken* for the given partition spec — the coordinator
# either refuses to install it or falls back to gathering fragments.

KEY_REPLICATED = "replicated"
KEY_KEYED = "keyed"
KEY_SCATTERED = "scattered"
KEY_PARTIAL_AGG = "partial_agg"
KEY_BROKEN = "broken"

_CLASS_RANK = {
    KEY_REPLICATED: 0,
    KEY_KEYED: 1,
    KEY_SCATTERED: 2,
    KEY_PARTIAL_AGG: 3,
    KEY_BROKEN: 3,
}


def base_pred(name):
    """The storage predicate behind a delta or versioned reference
    (``+p``, ``-p``, ``^p``, ``p@start`` all answer ``p``)."""
    while name and name[0] in "+-^":
        name = name[1:]
    if name.endswith("@start"):
        name = name[: -len("@start")]
    return name


class PredClass:
    """Placement of one predicate's rows across hash shards."""

    __slots__ = ("kind", "col", "fn")

    def __init__(self, kind, col=None, fn=None):
        self.kind = kind
        self.col = col
        self.fn = fn

    def __eq__(self, other):
        return (
            isinstance(other, PredClass)
            and self.kind == other.kind
            and self.col == other.col
            and self.fn == other.fn
        )

    def __hash__(self):
        return hash((self.kind, self.col, self.fn))

    def __repr__(self):
        if self.kind == KEY_KEYED:
            return "keyed({})".format(self.col)
        if self.kind == KEY_PARTIAL_AGG:
            return "partial_agg({})".format(self.fn)
        return self.kind


REPLICATED = PredClass(KEY_REPLICATED)
SCATTERED = PredClass(KEY_SCATTERED)
BROKEN = PredClass(KEY_BROKEN)


def _join_class(a, b):
    """Least placement covering two defining rules of the same head."""
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    if a.kind == KEY_BROKEN or b.kind == KEY_BROKEN:
        return BROKEN
    if a.kind == KEY_PARTIAL_AGG or b.kind == KEY_PARTIAL_AGG:
        # a partial aggregate cannot be unioned with rows from another
        # defining rule — the per-shard values are not final
        return BROKEN
    # replicated/keyed/keyed-elsewhere mixes all degrade to scattered:
    # the union is still exact, but rows repeat or move across shards
    return SCATTERED


class RuleAnchor:
    """How one rule touches partitioned data.

    ``kind`` is ``"var"`` (all shard-keyed atoms agree on one partition
    variable, named ``var``), ``"const"`` (they pin literal keys, listed
    in ``consts`` — the coordinator routes by hashing them), or ``None``
    for a rule that reads no partitioned data.
    """

    __slots__ = ("kind", "var", "consts")

    def __init__(self, kind=None, var=None, consts=()):
        self.kind = kind
        self.var = var
        self.consts = tuple(consts)

    def __repr__(self):
        if self.kind == "var":
            return "anchor(var={})".format(self.var)
        if self.kind == "const":
            return "anchor(consts={})".format(list(self.consts))
        return "anchor(none)"


class PartitionAnalysis:
    """Classification of a rule program against a partition spec.

    ``classes`` maps every head predicate (plus the seeded base
    predicates) to its :class:`PredClass`; ``broken`` lists
    ``(rule, reason)`` pairs for rules that are not shard-local-exact;
    ``anchors`` maps ``id(rule)`` to the rule's :class:`RuleAnchor`.
    """

    __slots__ = ("classes", "broken", "anchors")

    def __init__(self, classes, broken, anchors):
        self.classes = classes
        self.broken = broken
        self.anchors = anchors

    @property
    def copartitioned(self):
        """True when every rule can be pushed shard-local exactly."""
        return not self.broken

    def class_of(self, pred):
        return self.classes.get(base_pred(pred), REPLICATED)


def _rule_class(rule, classes, reasons):
    """Transfer function: the head placement one rule induces, given the
    current placement of its body predicates.  Appends a reason string
    to ``reasons`` when the rule is broken, and returns
    ``(pred_class, anchor)``."""
    positive_vars = set()
    positive_consts = []
    negated_keys = []
    scattered_dep = False
    for atom in rule.body:
        if not isinstance(atom, PredAtom):
            continue
        cls = classes.get(base_pred(atom.pred), REPLICATED)
        if cls.kind == KEY_BROKEN:
            reasons.append(
                "body predicate {} is not shard-local".format(atom.pred))
            return BROKEN, RuleAnchor()
        if cls.kind == KEY_PARTIAL_AGG:
            reasons.append(
                "partial aggregate {} consumed by a rule body (per-shard "
                "values are not final)".format(atom.pred))
            return BROKEN, RuleAnchor()
        if cls.kind == KEY_SCATTERED:
            if atom.negated:
                reasons.append(
                    "negation over scattered predicate {} (local absence is "
                    "not global absence)".format(atom.pred))
                return BROKEN, RuleAnchor()
            scattered_dep = True
            continue
        if cls.kind != KEY_KEYED:
            continue
        if cls.col >= len(atom.args):
            reasons.append(
                "atom {} is narrower than its partition column".format(atom))
            return BROKEN, RuleAnchor()
        term = atom.args[cls.col]
        if atom.negated:
            negated_keys.append((atom, term))
        elif isinstance(term, Var):
            positive_vars.add(term.name)
        elif isinstance(term, Const):
            positive_consts.append(term.value)
    if not positive_vars and not positive_consts:
        if negated_keys:
            reasons.append(
                "negated shard-keyed atom {} has no positive partition "
                "anchor".format(negated_keys[0][0]))
            return BROKEN, RuleAnchor()
        if scattered_dep:
            if rule.agg is not None:
                reasons.append(
                    "aggregate over scattered rows double-counts across "
                    "shards")
                return BROKEN, RuleAnchor()
            return SCATTERED, RuleAnchor()
        return REPLICATED, RuleAnchor()
    if scattered_dep:
        reasons.append(
            "rule joins shard-keyed atoms with scattered rows (the "
            "scattered side may live on another shard)")
        return BROKEN, RuleAnchor()
    if positive_vars and positive_consts:
        reasons.append(
            "rule mixes variable and literal partition keys")
        return BROKEN, RuleAnchor()
    if len(positive_vars) > 1:
        reasons.append(
            "atoms partitioned on different variables {}".format(
                sorted(positive_vars)))
        return BROKEN, RuleAnchor()
    if positive_consts:
        # derivations are confined to the shard(s) owning the literal
        # keys; the coordinator verifies they co-reside (it knows N)
        key_consts = list(positive_consts)
        for atom, term in negated_keys:
            if not isinstance(term, Const):
                reasons.append(
                    "negated shard-keyed atom {} is not pinned to a literal "
                    "key alongside literal positive anchors".format(atom))
                return BROKEN, RuleAnchor()
            key_consts.append(term.value)
        anchor = RuleAnchor("const", consts=key_consts)
        return SCATTERED, anchor
    k = next(iter(positive_vars))
    for atom, term in negated_keys:
        if not (isinstance(term, Var) and term.name == k):
            reasons.append(
                "negated shard-keyed atom {} is not keyed by the partition "
                "variable {}".format(atom, k))
            return BROKEN, RuleAnchor()
    anchor = RuleAnchor("var", var=k)
    if rule.agg is not None:
        group_args = rule.head_args[: rule.n_keys]
        for col, arg in enumerate(group_args):
            if isinstance(arg, Var) and arg.name == k:
                return PredClass(KEY_KEYED, col=col), anchor
        return PredClass(KEY_PARTIAL_AGG, fn=rule.agg.fn), anchor
    for col, arg in enumerate(rule.head_args):
        if isinstance(arg, Var) and arg.name == k:
            return PredClass(KEY_KEYED, col=col), anchor
    return SCATTERED, anchor


def classify_rules(rules, partition, seed_classes=None):
    """Classify a rule program's predicates against a partition spec.

    ``partition`` maps partitioned base predicates to their key column;
    ``seed_classes`` carries placements of already-installed predicates
    (so a query program can be analysed on top of an installed one).
    Any predicate with no class and no rules is replicated — it is a
    non-partitioned EDB, present in full on every shard.

    Returns a :class:`PartitionAnalysis`.  The fixpoint starts every
    head at the bottom of the ``replicated < keyed < scattered <
    broken`` lattice and re-applies the per-rule transfer function until
    placements stabilize, so mutually recursive rules are handled
    soundly (monotone joins on a finite lattice).
    """
    from repro.engine.rules import stratify

    classes = {}
    for pred, col in (partition or {}).items():
        classes[pred] = PredClass(KEY_KEYED, col=col)
    if seed_classes:
        for pred, cls in seed_classes.items():
            classes.setdefault(pred, cls)
    rules_of = {}
    for rule in rules:
        rules_of.setdefault(base_pred(rule.head_pred), []).append(rule)
    broken = []
    anchors = {}
    strata, _ = stratify(rules)
    ordered_heads = [base_pred(p) for stratum in strata for p in stratum]
    seen_heads = set()
    component_of = {}
    for index, stratum in enumerate(strata):
        for pred in stratum:
            component_of[base_pred(pred)] = index
    for head in ordered_heads:
        if head in seen_heads:
            continue
        component = [
            p for p in ordered_heads
            if component_of[p] == component_of[head] and p not in seen_heads
        ]
        seen_heads.update(component)
        for pred in component:
            classes[pred] = None
        changed = True
        while changed:
            changed = False
            for pred in component:
                merged = None
                for rule in rules_of.get(pred, ()):
                    lookup = dict(classes)
                    for member in component:
                        if lookup.get(member) is None:
                            lookup[member] = REPLICATED
                    cls, _ = _rule_class(rule, lookup, [])
                    merged = _join_class(merged, cls)
                before = classes.get(pred)
                after = merged if merged is not None else REPLICATED
                if before is not None and _CLASS_RANK[after.kind] < _CLASS_RANK[before.kind]:
                    after = before  # placements only move up the lattice
                if after != before:
                    classes[pred] = after
                    changed = True
        # reasons and anchors come from one pass over the *stabilized*
        # placements — intermediate fixpoint iterations see optimistic
        # classes and would report breakage that later resolves
        for pred in component:
            for rule in rules_of.get(pred, ()):
                reasons = []
                _, anchor = _rule_class(rule, classes, reasons)
                anchors[id(rule)] = anchor
                if reasons:
                    broken.append((rule, reasons[0]))
    return PartitionAnalysis(classes, broken, anchors)
