"""Linear and trie iterators (paper §3.2).

The paper's iterator contract:

* linear: ``key() / next() / seek(v) / at_end()`` with O(log N) seeks
  and amortized O(1 + log(N/m)) ascending scans;
* trie: additionally ``open()`` (descend to the first child) and
  ``up()`` (return to the parent), presenting an n-ary relation as a
  trie whose levels are argument positions.

Two interchangeable backends implement the contract over a relation:

* :class:`TreapTrieIterator` navigates the persistent treap directly
  (seek = O(log N) root descent).  Fresh versions produced by small
  deltas are iterable immediately — nothing is re-materialized, which
  the incremental-maintenance cost model depends on.
* :class:`ArrayTrieIterator` runs over a cached sorted array with
  bisect (C-speed comparisons); the evaluator requests it for full,
  non-incremental runs over large static relations.

Both expose *levels* through :class:`TrieLevel` handles so the leapfrog
loops never care which backend they drive.
"""

from bisect import bisect_left

from repro.storage.datum import TOP


class TreapTrieIterator:
    """Trie navigation over a treap of lexicographically sorted tuples.

    ``fixed_prefix`` pre-binds leading columns to constants (the
    planner permutes constant arguments to the front, the moral
    equivalent of the paper's virtual ``Const`` predicates).
    """

    __slots__ = ("_root", "arity", "_prefix", "_values", "_at_end", "_fixed")

    def __init__(self, root, arity, fixed_prefix=()):
        self._root = root
        self.arity = arity
        self._fixed = tuple(fixed_prefix)
        self._values = []  # current value at each open depth
        self._at_end = False

    @property
    def depth(self):
        """Number of currently open levels (0 = at root)."""
        return len(self._values)

    def _lower_bound(self, key):
        """First stored tuple >= ``key``, or ``None``."""
        node = self._root
        best = None
        while node is not None:
            if node.key < key:
                node = node.right
            else:
                best = node.key
                node = node.left
        return best

    def _position(self, seek_key):
        """Move the current level to the first value whose full prefix
        extends ``seek_key``; sets the at-end flag otherwise."""
        depth = len(self._fixed) + len(self._values) - 1
        found = self._lower_bound(seek_key)
        context = seek_key[:depth]
        if found is None or found[:depth] != context:
            self._at_end = True
            self._values[-1] = None
        else:
            self._at_end = False
            self._values[-1] = found[depth]

    def open(self):
        """Descend to the first value at the next level."""
        context = self._fixed + tuple(self._values)
        self._values.append(None)
        self._position(context)

    def up(self):
        """Return to the parent level (its position is unchanged)."""
        self._values.pop()
        self._at_end = False

    def at_end(self):
        """True when the current level is exhausted."""
        return self._at_end

    def key(self):
        """Value at the current level position."""
        return self._values[-1]

    def next(self):
        """Advance to the next distinct value at the current level."""
        context = self._fixed + tuple(self._values[:-1])
        self._position(context + (self._values[-1], TOP))

    def seek(self, value):
        """Least-upper-bound seek at the current level."""
        context = self._fixed + tuple(self._values[:-1])
        self._position(context + (value,))

    def context(self):
        """Permuted prefix under which the current level is explored
        (fixed constants plus values bound at earlier levels)."""
        return self._fixed + tuple(self._values[:-1])

    def check_fixed_prefix(self):
        """True iff a tuple with the fixed constant prefix exists."""
        if not self._fixed:
            return self._root is not None
        found = self._lower_bound(self._fixed)
        return found is not None and found[: len(self._fixed)] == self._fixed


class ArrayTrieIterator:
    """Same contract as :class:`TreapTrieIterator` over a sorted list."""

    __slots__ = ("_rows", "arity", "_fixed", "_values", "_at_end")

    def __init__(self, rows, arity, fixed_prefix=()):
        self._rows = rows
        self.arity = arity
        self._fixed = tuple(fixed_prefix)
        self._values = []
        self._at_end = False

    @property
    def depth(self):
        """Number of currently open levels (0 = at root)."""
        return len(self._values)

    def _position(self, seek_key):
        depth = len(self._fixed) + len(self._values) - 1
        rows = self._rows
        index = bisect_left(rows, seek_key)
        if index >= len(rows):
            self._at_end = True
            self._values[-1] = None
            return
        found = rows[index]
        if found[:depth] != seek_key[:depth]:
            self._at_end = True
            self._values[-1] = None
        else:
            self._at_end = False
            self._values[-1] = found[depth]

    def open(self):
        """Descend to the first value at the next level."""
        context = self._fixed + tuple(self._values)
        self._values.append(None)
        self._position(context)

    def up(self):
        """Return to the parent level (its position is unchanged)."""
        self._values.pop()
        self._at_end = False

    def at_end(self):
        """True when the current level is exhausted."""
        return self._at_end

    def key(self):
        """Value at the current level position."""
        return self._values[-1]

    def next(self):
        """Advance to the next distinct value at the current level."""
        context = self._fixed + tuple(self._values[:-1])
        self._position(context + (self._values[-1], TOP))

    def seek(self, value):
        """Least-upper-bound seek at the current level."""
        context = self._fixed + tuple(self._values[:-1])
        self._position(context + (value,))

    def context(self):
        """Permuted prefix under which the current level is explored
        (fixed constants plus values bound at earlier levels)."""
        return self._fixed + tuple(self._values[:-1])

    def check_fixed_prefix(self):
        """True iff a tuple with the fixed constant prefix exists."""
        if not self._fixed:
            return bool(self._rows)
        index = bisect_left(self._rows, self._fixed)
        if index >= len(self._rows):
            return False
        return self._rows[index][: len(self._fixed)] == self._fixed


class SingletonIterator:
    """A virtual one-value linear iterator.

    Serves computed bindings (``z = x - y`` once ``x, y`` are bound) and
    constant variables — the paper's virtual, non-materialized
    predicates accessed "through the same trie-iterator interface".
    """

    __slots__ = ("_value", "_at_end")

    def __init__(self, value):
        self._value = value
        self._at_end = False

    def at_end(self):
        """True once advanced past the single value."""
        return self._at_end

    def key(self):
        """The single value."""
        return self._value

    def next(self):
        """Exhausts the iterator."""
        self._at_end = True

    def seek(self, value):
        """Positions at the value when ``value`` <= it, else at end."""
        if self._value < value:
            self._at_end = True


class RangeIterator:
    """A virtual linear iterator over ``range(start, stop)`` integers.

    Used by virtual arithmetic predicates such as ``int:range`` and in
    tests; demonstrates that any monotone generator fits the contract.
    """

    __slots__ = ("_current", "_stop")

    def __init__(self, start, stop):
        self._current = start
        self._stop = stop

    def at_end(self):
        """True when past the last integer."""
        return self._current >= self._stop

    def key(self):
        """Current integer."""
        return self._current

    def next(self):
        """Advance by one."""
        self._current += 1

    def seek(self, value):
        """Jump forward to ``value``."""
        if value > self._current:
            self._current = value


def level_keys(relation, perm, fixed_prefix=(), prefer_array=False):
    """Distinct first-level values of ``relation`` permuted by ``perm``
    under ``fixed_prefix`` — the key domain the outermost unary leapfrog
    iterates.  Parallel LFTJ seeds its shard boundaries from this list.
    """
    it = trie_iterator(relation, perm, fixed_prefix, prefer_array)
    if fixed_prefix and not it.check_fixed_prefix():
        return []
    keys = []
    it.open()
    while not it.at_end():
        keys.append(it.key())
        it.next()
    return keys


def trie_iterator(relation, perm, fixed_prefix=(), prefer_array=False):
    """Build the best trie iterator for ``relation`` permuted by ``perm``.

    Uses the array backend when it is already materialized (or when the
    caller asks for it); otherwise navigates the treap directly.
    """
    perm = tuple(perm)
    if prefer_array or relation.has_flat(perm):
        return ArrayTrieIterator(relation.flat(perm), relation.arity, fixed_prefix)
    return TreapTrieIterator(relation.index_root(perm), relation.arity, fixed_prefix)
