"""Unary leapfrog join (paper §3.2, Figure 3).

Joins k linear iterators by repeatedly taking the iterator at the
smallest key and seeking it to the current largest key, "leapfrogging"
until all iterators agree.  The join itself implements the same linear
iterator contract, so it plugs directly into the trie-level search of
the full LFTJ.

Every movement optionally reports to a recorder, producing the
*sensitivity intervals* of the run: ``seek(v)`` landing at ``u`` records
``[v, u]``, ``next()`` from ``a`` landing at ``b`` records ``[a, b]``,
initial positioning records ``[-inf, first]``, and running off the end
closes with ``+inf`` — exactly the intervals listed for Figure 3.

When given a ``stats`` dict the join counts its iterator movements
(``seeks`` / ``nexts``) — the per-iterator cost accounting Veldhuizen's
LFTJ paper frames its complexity analysis in.  With ``stats=None`` (the
default) no counting work happens at all.
"""

from repro.storage.datum import BOTTOM, TOP


class LeapfrogJoin:
    """Leapfrog intersection of linear iterators.

    ``iters`` is a non-empty list of objects honouring the linear
    iterator contract.  ``trackers`` is an optional parallel list whose
    entries expose ``record(low, high)`` (or ``None`` for untracked
    iterators).
    """

    __slots__ = ("_iters", "_trackers", "_stats", "_p", "_at_end", "key")

    def __init__(self, iters, trackers=None, stats=None):
        self._iters = iters
        self._trackers = trackers if trackers is not None else [None] * len(iters)
        self._stats = stats  # optional dict counting seeks/nexts
        self._p = 0
        self._at_end = False
        self.key = None
        self._init()

    def _record(self, index, low, high):
        tracker = self._trackers[index]
        if tracker is not None:
            tracker.record(low, high)

    def _init(self):
        for index, it in enumerate(self._iters):
            if it.at_end():
                self._record(index, BOTTOM, TOP)
                self._at_end = True
            else:
                self._record(index, BOTTOM, it.key())
        if self._at_end:
            return
        order = sorted(range(len(self._iters)), key=lambda i: self._iters[i].key())
        self._iters = [self._iters[i] for i in order]
        self._trackers = [self._trackers[i] for i in order]
        self._p = 0
        self._search()

    def _search(self):
        iters = self._iters
        count = len(iters)
        stats = self._stats
        p = self._p
        max_key = iters[p - 1].key() if count > 1 else iters[0].key()
        while True:
            it = iters[p]
            key = it.key()
            if key == max_key:
                self.key = key
                self._p = p
                return
            if stats is not None:
                stats["seeks"] = stats.get("seeks", 0) + 1
            it.seek(max_key)
            if it.at_end():
                self._record(p, max_key, TOP)
                self._at_end = True
                self.key = None
                self._p = p
                return
            landed = it.key()
            self._record(p, max_key, landed)
            max_key = landed
            p = (p + 1) % count

    def at_end(self):
        """True when the intersection is exhausted."""
        return self._at_end

    def next(self):
        """Advance to the next common key."""
        it = self._iters[self._p]
        previous = it.key()
        stats = self._stats
        if stats is not None:
            stats["nexts"] = stats.get("nexts", 0) + 1
        it.next()
        if it.at_end():
            self._record(self._p, previous, TOP)
            self._at_end = True
            self.key = None
            return
        self._record(self._p, previous, it.key())
        self._p = (self._p + 1) % len(self._iters)
        self._search()

    def seek(self, value):
        """Position at the least common key >= ``value``."""
        it = self._iters[self._p]
        stats = self._stats
        if stats is not None:
            stats["seeks"] = stats.get("seeks", 0) + 1
        it.seek(value)
        if it.at_end():
            self._record(self._p, value, TOP)
            self._at_end = True
            self.key = None
            return
        self._record(self._p, value, it.key())
        self._p = (self._p + 1) % len(self._iters)
        self._search()
