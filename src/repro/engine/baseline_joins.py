"""Binary join plan baselines (hash join and sort-merge join).

These implement the classical one-join-at-a-time, materialize-the-
intermediate strategy of traditional RDBMSs.  They stand in for the
comparison systems of the paper's Figure 5 (PostgreSQL, MonetDB,
Virtuoso, Neo4j, System HC, RedShift): the paper's companion study [32]
attributes those systems' behaviour on cyclic queries to exactly this
plan shape, whose intermediate results can be asymptotically larger
than the final output — the effect LFTJ's worst-case optimality avoids.

Only positive, constant-free conjunctive queries are supported (that is
all the benchmarks need); results are deduplicated at the end, matching
SQL ``SELECT DISTINCT`` semantics for these queries.
"""

from repro.engine.ir import Const, PredAtom, Var


class _Intermediate:
    """A materialized intermediate: variable names + rows (bag)."""

    __slots__ = ("vars", "rows")

    def __init__(self, vars_, rows):
        self.vars = list(vars_)
        self.rows = rows


def _atom_to_intermediate(atom, relations):
    relation = relations[atom.pred]
    names = []
    positions = []
    for position, arg in enumerate(atom.args):
        if not isinstance(arg, Var):
            raise ValueError("baseline joins support variable-only atoms")
        if arg.name in names:
            raise ValueError("baseline joins support distinct variables per atom")
        names.append(arg.name)
        positions.append(position)
    rows = [tuple(t[p] for p in positions) for t in relation]
    return _Intermediate(names, rows)


def _hash_join(left, right):
    shared = [name for name in left.vars if name in right.vars]
    left_keys = [left.vars.index(name) for name in shared]
    right_keys = [right.vars.index(name) for name in shared]
    right_extra = [i for i, name in enumerate(right.vars) if name not in shared]
    out_vars = left.vars + [right.vars[i] for i in right_extra]
    table = {}
    for row in right.rows:
        key = tuple(row[i] for i in right_keys)
        table.setdefault(key, []).append(tuple(row[i] for i in right_extra))
    out_rows = []
    for row in left.rows:
        key = tuple(row[i] for i in left_keys)
        for extra in table.get(key, ()):
            out_rows.append(row + extra)
    return _Intermediate(out_vars, out_rows)


def _merge_join(left, right):
    shared = [name for name in left.vars if name in right.vars]
    left_keys = [left.vars.index(name) for name in shared]
    right_keys = [right.vars.index(name) for name in shared]
    right_extra = [i for i, name in enumerate(right.vars) if name not in shared]
    out_vars = left.vars + [right.vars[i] for i in right_extra]
    if not shared:
        out_rows = [l + tuple(r[i] for i in right_extra) for l in left.rows for r in right.rows]
        return _Intermediate(out_vars, out_rows)
    left_sorted = sorted(left.rows, key=lambda r: tuple(r[i] for i in left_keys))
    right_sorted = sorted(right.rows, key=lambda r: tuple(r[i] for i in right_keys))
    out_rows = []
    i = j = 0
    n, m = len(left_sorted), len(right_sorted)
    while i < n and j < m:
        left_key = tuple(left_sorted[i][k] for k in left_keys)
        right_key = tuple(right_sorted[j][k] for k in right_keys)
        if left_key < right_key:
            i += 1
        elif right_key < left_key:
            j += 1
        else:
            # gather the equal-key blocks on both sides
            i_end = i
            while i_end < n and tuple(left_sorted[i_end][k] for k in left_keys) == left_key:
                i_end += 1
            j_end = j
            while j_end < m and tuple(right_sorted[j_end][k] for k in right_keys) == left_key:
                j_end += 1
            for a in range(i, i_end):
                for b in range(j, j_end):
                    out_rows.append(
                        left_sorted[a] + tuple(right_sorted[b][k] for k in right_extra)
                    )
            i, j = i_end, j_end
    return _Intermediate(out_vars, out_rows)


def _run_plan(atoms, relations, join):
    if not atoms:
        raise ValueError("empty query")
    for atom in atoms:
        if not isinstance(atom, PredAtom) or atom.negated:
            raise ValueError("baseline joins support positive atoms only")
        if any(isinstance(arg, Const) for arg in atom.args):
            raise ValueError("baseline joins support variable-only atoms")
    current = _atom_to_intermediate(atoms[0], relations)
    for atom in atoms[1:]:
        current = join(current, _atom_to_intermediate(atom, relations))
    return current


def hash_join_query(atoms, relations, output_vars=None, stats=None):
    """Left-deep hash-join plan; returns the distinct output rows.

    ``stats['intermediate_rows']`` records the total size of the
    materialized intermediates — the quantity that separates binary
    plans from worst-case-optimal joins on cyclic queries.
    """
    return _query(atoms, relations, _hash_join, output_vars, stats)


def merge_join_query(atoms, relations, output_vars=None, stats=None):
    """Left-deep sort-merge-join plan; returns the distinct output rows."""
    return _query(atoms, relations, _merge_join, output_vars, stats)


def _query(atoms, relations, join, output_vars, stats):
    if stats is not None:
        stats["intermediate_rows"] = 0

        def counting_join(left, right):
            out = join(left, right)
            stats["intermediate_rows"] += len(out.rows)
            return out

        final = _run_plan(atoms, relations, counting_join)
    else:
        final = _run_plan(atoms, relations, join)
    if output_vars is None:
        output_vars = final.vars
    positions = [final.vars.index(name) for name in output_vars]
    return {tuple(row[p] for p in positions) for row in final.rows}
