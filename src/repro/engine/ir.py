"""Body IR: the engine-level representation of rule bodies.

The LogiQL compiler lowers parsed rules into this small algebra; the
planner and LFTJ executor consume it.  A rule body is a conjunction of:

* :class:`PredAtom` — (possibly negated) predicate atoms over variables
  and constants;
* :class:`CompareAtom` — comparisons between scalar expressions,
  applied as filters once their variables are bound;
* :class:`AssignAtom` — functional bindings ``var := expr`` evaluated
  as singleton iterators at the variable's level (the paper's virtual
  arithmetic predicates).
"""

import math
import operator


class Var:
    """A variable reference inside an expression."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self):
        return hash(("var", self.name))

    def __repr__(self):
        return self.name


class Const:
    """A literal constant inside an expression."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Const) and other.value == self.value and type(other.value) is type(self.value)

    def __hash__(self):
        return hash(("const", self.value))

    def __repr__(self):
        return repr(self.value)


_BINOPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}

_BUILTINS = {
    "abs": abs,
    "min": min,
    "max": max,
    "floor": math.floor,
    "ceil": math.ceil,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "pow": pow,
    "float": float,
    "int": int,
}


class BinOp:
    """A binary arithmetic expression."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        if op not in _BINOPS:
            raise ValueError("unknown operator {!r}".format(op))
        self.op = op
        self.left = left
        self.right = right

    def __eq__(self, other):
        return (
            isinstance(other, BinOp)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self):
        return hash(("binop", self.op, self.left, self.right))

    def __repr__(self):
        return "({} {} {})".format(self.left, self.op, self.right)


class Call:
    """A call to a built-in scalar function."""

    __slots__ = ("fn", "args")

    def __init__(self, fn, args):
        if fn not in _BUILTINS:
            raise ValueError("unknown builtin {!r}".format(fn))
        self.fn = fn
        self.args = tuple(args)

    def __eq__(self, other):
        return isinstance(other, Call) and other.fn == self.fn and other.args == self.args

    def __hash__(self):
        return hash(("call", self.fn, self.args))

    def __repr__(self):
        return "{}({})".format(self.fn, ", ".join(map(repr, self.args)))


def eval_expr(expr, bindings):
    """Evaluate an expression under a ``{var_name: value}`` mapping."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        return bindings[expr.name]
    if isinstance(expr, BinOp):
        return _BINOPS[expr.op](eval_expr(expr.left, bindings), eval_expr(expr.right, bindings))
    if isinstance(expr, Call):
        return _BUILTINS[expr.fn](*(eval_expr(a, bindings) for a in expr.args))
    raise TypeError("not an expression: {!r}".format(expr))


def expr_vars(expr):
    """The set of variable names occurring in an expression."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, Const):
        return set()
    if isinstance(expr, BinOp):
        return expr_vars(expr.left) | expr_vars(expr.right)
    if isinstance(expr, Call):
        names = set()
        for arg in expr.args:
            names |= expr_vars(arg)
        return names
    raise TypeError("not an expression: {!r}".format(expr))


class PredAtom:
    """A (possibly negated) predicate atom; args are ``Var``/``Const``."""

    __slots__ = ("pred", "args", "negated")

    def __init__(self, pred, args, negated=False):
        self.pred = pred
        self.args = tuple(args)
        self.negated = negated

    @property
    def arity(self):
        """Number of arguments."""
        return len(self.args)

    def var_names(self):
        """Ordered, deduplicated variable names of the atom."""
        names = []
        for arg in self.args:
            if isinstance(arg, Var) and arg.name not in names:
                names.append(arg.name)
        return names

    def __repr__(self):
        body = "{}({})".format(self.pred, ", ".join(map(repr, self.args)))
        return "!" + body if self.negated else body


_COMPARE_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class CompareAtom:
    """A comparison filter between two scalar expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        if op not in _COMPARE_OPS:
            raise ValueError("unknown comparison {!r}".format(op))
        self.op = op
        self.left = left
        self.right = right

    def holds(self, bindings):
        """Evaluate the comparison under bound variables."""
        return _COMPARE_OPS[self.op](
            eval_expr(self.left, bindings), eval_expr(self.right, bindings)
        )

    def var_names(self):
        """All variable names on either side."""
        return expr_vars(self.left) | expr_vars(self.right)

    def __repr__(self):
        return "({} {} {})".format(self.left, self.op, self.right)


class AssignAtom:
    """A functional binding ``var := expr`` (arithmetic, built-ins)."""

    __slots__ = ("var", "expr")

    def __init__(self, var, expr):
        self.var = var
        self.expr = expr

    def compute(self, bindings):
        """The value for ``var`` under bound variables."""
        return eval_expr(self.expr, bindings)

    def input_vars(self):
        """Variables the expression depends on."""
        return expr_vars(self.expr)

    def __repr__(self):
        return "{} := {}".format(self.var, self.expr)
